file(REMOVE_RECURSE
  "libsb_forecast.a"
)
