
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/latency.cpp" "src/geo/CMakeFiles/sb_geo.dir/latency.cpp.o" "gcc" "src/geo/CMakeFiles/sb_geo.dir/latency.cpp.o.d"
  "/root/repo/src/geo/topology.cpp" "src/geo/CMakeFiles/sb_geo.dir/topology.cpp.o" "gcc" "src/geo/CMakeFiles/sb_geo.dir/topology.cpp.o.d"
  "/root/repo/src/geo/world.cpp" "src/geo/CMakeFiles/sb_geo.dir/world.cpp.o" "gcc" "src/geo/CMakeFiles/sb_geo.dir/world.cpp.o.d"
  "/root/repo/src/geo/world_presets.cpp" "src/geo/CMakeFiles/sb_geo.dir/world_presets.cpp.o" "gcc" "src/geo/CMakeFiles/sb_geo.dir/world_presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
