# Empty compiler generated dependencies file for sb_predict.
# This may be replaced when dependencies are built.
