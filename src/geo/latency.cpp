#include "geo/latency.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"

namespace sb {

LatencyMatrix::LatencyMatrix(std::size_t dc_count, std::size_t location_count)
    : dc_count_(dc_count),
      location_count_(location_count),
      ms_(dc_count * location_count, 0.0) {
  require(dc_count > 0 && location_count > 0,
          "LatencyMatrix: empty dimensions");
}

LatencyMatrix LatencyMatrix::from_topology(const World& world,
                                           const Topology& topo,
                                           double access_ms) {
  require(access_ms >= 0.0, "from_topology: negative access latency");
  LatencyMatrix m(world.dc_count(), world.location_count());
  for (DcId dc : world.dc_ids()) {
    const LocationId dc_loc = world.datacenter(dc).location;
    for (LocationId loc : world.location_ids()) {
      m.set_latency_ms(dc, loc, topo.distance_ms(dc_loc, loc) + access_ms);
    }
  }
  return m;
}

std::size_t LatencyMatrix::index(DcId dc, LocationId loc) const {
  require(dc.valid() && dc.value() < dc_count_, "LatencyMatrix: bad dc");
  require(loc.valid() && loc.value() < location_count_,
          "LatencyMatrix: bad location");
  return static_cast<std::size_t>(dc.value()) * location_count_ + loc.value();
}

double LatencyMatrix::latency_ms(DcId dc, LocationId loc) const {
  return ms_[index(dc, loc)];
}

void LatencyMatrix::set_latency_ms(DcId dc, LocationId loc, double ms) {
  require(ms >= 0.0, "set_latency_ms: negative latency");
  ms_[index(dc, loc)] = ms;
}

DcId LatencyMatrix::closest_dc(LocationId loc) const {
  std::vector<DcId> all;
  all.reserve(dc_count_);
  for (std::size_t i = 0; i < dc_count_; ++i) {
    all.push_back(DcId(static_cast<std::uint32_t>(i)));
  }
  return closest_dc(loc, all);
}

DcId LatencyMatrix::closest_dc(LocationId loc,
                               const std::vector<DcId>& candidates) const {
  require(!candidates.empty(), "closest_dc: empty candidate set");
  DcId best = candidates.front();
  double best_ms = latency_ms(best, loc);
  for (DcId dc : candidates) {
    const double ms = latency_ms(dc, loc);
    if (ms < best_ms) {
      best = dc;
      best_ms = ms;
    }
  }
  return best;
}

LatencyEstimator::LatencyEstimator(std::size_t dc_count,
                                   std::size_t location_count)
    : dc_count_(dc_count),
      location_count_(location_count),
      pair_samples_(dc_count * location_count) {
  require(dc_count > 0 && location_count > 0,
          "LatencyEstimator: empty dimensions");
}

void LatencyEstimator::add_sample(DcId dc, LocationId loc, double latency_ms) {
  require(dc.valid() && dc.value() < dc_count_, "add_sample: bad dc");
  require(loc.valid() && loc.value() < location_count_,
          "add_sample: bad location");
  require(latency_ms >= 0.0, "add_sample: negative latency");
  pair_samples_[static_cast<std::size_t>(dc.value()) * location_count_ +
                loc.value()]
      .push_back(latency_ms);
  ++samples_;
}

LatencyMatrix LatencyEstimator::build(const LatencyMatrix& fallback) const {
  require(fallback.dc_count() == dc_count_ &&
              fallback.location_count() == location_count_,
          "LatencyEstimator::build: fallback shape mismatch");
  LatencyMatrix m(dc_count_, location_count_);
  for (std::size_t d = 0; d < dc_count_; ++d) {
    for (std::size_t u = 0; u < location_count_; ++u) {
      const auto& samples = pair_samples_[d * location_count_ + u];
      const DcId dc(static_cast<std::uint32_t>(d));
      const LocationId loc(static_cast<std::uint32_t>(u));
      m.set_latency_ms(dc, loc,
                       samples.empty() ? fallback.latency_ms(dc, loc)
                                       : median(samples));
    }
  }
  return m;
}

}  // namespace sb
