file(REMOVE_RECURSE
  "CMakeFiles/sb_sim.dir/allocator.cpp.o"
  "CMakeFiles/sb_sim.dir/allocator.cpp.o.d"
  "CMakeFiles/sb_sim.dir/simulator.cpp.o"
  "CMakeFiles/sb_sim.dir/simulator.cpp.o.d"
  "libsb_sim.a"
  "libsb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
