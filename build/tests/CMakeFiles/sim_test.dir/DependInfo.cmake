
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/sb_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/calls/CMakeFiles/sb_calls.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
