#include "core/controller.h"

#include "common/error.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace sb {

Switchboard::Metrics::Metrics()
    : calls_started(
          obs::MetricsRegistry::global().counter("sb.realtime.calls_started")),
      configs_frozen(
          obs::MetricsRegistry::global().counter("sb.realtime.configs_frozen")),
      calls_ended(
          obs::MetricsRegistry::global().counter("sb.realtime.calls_ended")),
      migrations(
          obs::MetricsRegistry::global().counter("sb.realtime.migrations")),
      unplanned(
          obs::MetricsRegistry::global().counter("sb.realtime.unplanned")),
      start_latency_s(obs::MetricsRegistry::global().histogram(
          "sb.realtime.start_latency_s")),
      freeze_latency_s(obs::MetricsRegistry::global().histogram(
          "sb.realtime.freeze_latency_s")),
      end_latency_s(obs::MetricsRegistry::global().histogram(
          "sb.realtime.end_latency_s")),
      provision_s(obs::MetricsRegistry::global().histogram(
          "sb.provisioner.provision_s")),
      allocation_plan_s(obs::MetricsRegistry::global().histogram(
          "sb.provisioner.allocation_plan_s")),
      dc_failures(obs::MetricsRegistry::global().counter("sb.fault.dc_failures")),
      dc_recoveries(
          obs::MetricsRegistry::global().counter("sb.fault.dc_recoveries")),
      link_failures(
          obs::MetricsRegistry::global().counter("sb.fault.link_failures")),
      link_recoveries(
          obs::MetricsRegistry::global().counter("sb.fault.link_recoveries")),
      failover_migrations(obs::MetricsRegistry::global().counter(
          "sb.fault.failover_migrations")),
      dropped_calls(
          obs::MetricsRegistry::global().counter("sb.fault.dropped_calls")),
      drain_s(obs::MetricsRegistry::global().histogram("sb.fault.drain_s")),
      // Outage durations span seconds to days; the default 100 s ceiling
      // would shove every realistic outage into the overflow bucket.
      recovery_s(obs::MetricsRegistry::global().histogram(
          "sb.fault.recovery_s", {.min = 1.0, .max = 1e6, .bucket_count = 60})),
      server_failures(
          obs::MetricsRegistry::global().counter("sb.pack.server_failures")),
      server_recoveries(
          obs::MetricsRegistry::global().counter("sb.pack.server_recoveries")),
      defrag_moves(
          obs::MetricsRegistry::global().counter("sb.pack.defrag_moves")) {}

Switchboard::Switchboard(EvalContext ctx, ControllerOptions options)
    : ctx_(ctx), options_(options) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "Switchboard: incomplete context");
  health_ = std::make_unique<fault::HealthTable>(
      ctx_.world->dc_count(), ctx_.topology->link_count(),
      ctx_.world->server_count(), options_.worker_rows);
  dc_fail_time_.assign(ctx_.world->dc_count(), -1.0);
  // Realtime service is available before any plan exists: the selector then
  // runs pure closest-DC assignment.
  selector_ = std::make_unique<RealtimeSelector>(
      ctx_, nullptr, options_.realtime, 0.0, health_.get());
}

const ProvisionResult& Switchboard::provision(const DemandMatrix& demand,
                                              const ScenarioBasisHint* f0_warm,
                                              ScenarioBasisHint* f0_basis_out) {
  obs::Span span("ctl.provision", obs::Subsystem::kController);
  obs::ScopedTimer timer(metrics_.provision_s);
  SwitchboardProvisioner provisioner(ctx_, options_.provision);
  ProvisionResult result = provisioner.provision(demand, f0_warm, f0_basis_out);
  // Publish under the exclusive lock so a caller overlapping realtime
  // events never mutates state a reader could be observing.
  std::unique_lock lock(swap_mutex_);
  provision_result_ = std::move(result);
  return *provision_result_;
}

const AllocationPlan& Switchboard::build_allocation_plan(
    const DemandMatrix& demand, SimTime plan_start_s) {
  require(provision_result_.has_value(),
          "build_allocation_plan: call provision() first");
  obs::ScopedTimer timer(metrics_.allocation_plan_s);
  obs::Span span("ctl.plan_rebuild", obs::Subsystem::kController,
                 plan_start_s);
  AllocationPlanner planner(ctx_, options_.allocation);
  // Plan into a local first: the live selector dereferences &*plan_, so
  // plan_ may only be reassigned once the exclusive lock has drained every
  // in-flight event holding swap_mutex_ shared. The selector rebuild must
  // happen under the same critical section so no reader ever sees the new
  // plan paired with the old selector (or vice versa).
  AllocationPlan new_plan =
      planner.plan(demand, provision_result_->capacity, options_.slot_s);
  obs::Span publish("ctl.plan_publish", obs::Subsystem::kController,
                    plan_start_s);
  std::unique_lock lock(swap_mutex_);
  plan_ = std::move(new_plan);
  selector_ = std::make_unique<RealtimeSelector>(
      ctx_, &*plan_, options_.realtime, plan_start_s, health_.get());
  plan_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return *plan_;
}

const AllocationPlan& Switchboard::install_plan(const DemandMatrix& demand,
                                                SimTime plan_start_s,
                                                SimTime now) {
  require(provision_result_.has_value(),
          "install_plan: call provision() first");
  require(plan_.has_value(),
          "install_plan: call build_allocation_plan() first");
  obs::ScopedTimer timer(metrics_.allocation_plan_s);
  obs::Span span("ctl.plan_install", obs::Subsystem::kController, now);
  AllocationPlanner planner(ctx_, options_.allocation);
  AllocationPlan new_plan =
      planner.plan(demand, provision_result_->capacity, options_.slot_s);
  obs::Span publish("ctl.plan_publish", obs::Subsystem::kController, now);
  std::unique_lock lock(swap_mutex_);
  // Swap the plan in place: the optional's storage (and so the selector's
  // plan pointer) keeps its address, and the old plan stays alive locally
  // so rebind_plan can map old columns to configs.
  AllocationPlan old_plan = std::move(*plan_);
  *plan_ = std::move(new_plan);
  selector_->rebind_plan(old_plan, &*plan_, plan_start_s, now);
  plan_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return *plan_;
}

// Event methods hold swap_mutex_ shared for the selector call only (readers
// don't contend; the selector stripes its own locks per call shard) and
// persist to the KV store after releasing it, so ~ms store round trips
// overlap freely across threads.
DcId Switchboard::call_started(CallId call, LocationId first_joiner,
                               SimTime now) {
  obs::Span span("ctl.call_started", obs::Subsystem::kController, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  obs::ScopedTimer timer(metrics_.start_latency_s);
  DcId dc;
  {
    std::shared_lock lock(swap_mutex_);
    dc = selector_->on_call_start(call, first_joiner, now);
  }
  if (store_) {
    store_->set("call:" + std::to_string(call.value()) + ":dc",
                std::to_string(dc.value()));
  }
  metrics_.calls_started.inc();
  return dc;
}

FreezeResult Switchboard::config_frozen(CallId call, const CallConfig& config,
                                        SimTime now, ConfigId id_hint) {
  obs::Span span("ctl.config_frozen", obs::Subsystem::kController, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  obs::ScopedTimer timer(metrics_.freeze_latency_s);
  FreezeResult result;
  {
    std::shared_lock lock(swap_mutex_);
    result = selector_->on_config_frozen(call, config, now, id_hint);
  }
  if (store_) {
    store_->set("call:" + std::to_string(call.value()) + ":dc",
                std::to_string(result.dc.value()));
  }
  metrics_.configs_frozen.inc();
  if (result.migrated) metrics_.migrations.inc();
  if (!result.planned) metrics_.unplanned.inc();
  return result;
}

void Switchboard::call_ended(CallId call, SimTime now) {
  obs::Span span("ctl.call_ended", obs::Subsystem::kController, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  obs::ScopedTimer timer(metrics_.end_latency_s);
  {
    std::shared_lock lock(swap_mutex_);
    selector_->on_call_end(call, now);
  }
  if (store_) {
    store_->erase("call:" + std::to_string(call.value()) + ":dc");
  }
  metrics_.calls_ended.inc();
}

// Batched variants: the caller already holds swap_mutex_ shared (via
// lock_events_shared), so these go straight to the selector. Counters stay
// identical to the unlocked path; the per-event span + latency histogram are
// the only instrumentation skipped (batched drivers time whole batches).
DcId Switchboard::call_started_locked(CallId call, LocationId first_joiner,
                                      SimTime now) {
  const DcId dc = selector_->on_call_start(call, first_joiner, now);
  if (store_) {
    store_->set("call:" + std::to_string(call.value()) + ":dc",
                std::to_string(dc.value()));
  }
  metrics_.calls_started.inc();
  return dc;
}

FreezeResult Switchboard::config_frozen_locked(CallId call,
                                               const CallConfig& config,
                                               SimTime now, ConfigId id_hint) {
  const FreezeResult result =
      selector_->on_config_frozen(call, config, now, id_hint);
  if (store_) {
    store_->set("call:" + std::to_string(call.value()) + ":dc",
                std::to_string(result.dc.value()));
  }
  metrics_.configs_frozen.inc();
  if (result.migrated) metrics_.migrations.inc();
  if (!result.planned) metrics_.unplanned.inc();
  return result;
}

void Switchboard::call_ended_locked(CallId call, SimTime now) {
  selector_->on_call_end(call, now);
  if (store_) {
    store_->erase("call:" + std::to_string(call.value()) + ":dc");
  }
  metrics_.calls_ended.inc();
}

fault::FailoverOutcome Switchboard::dc_failed(DcId dc, SimTime now) {
  require(dc.valid() && dc.value() < ctx_.world->dc_count(),
          "dc_failed: bad dc");
  obs::Span span("ctl.dc_failed", obs::Subsystem::kController, now);
  span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(dc.value()));
  obs::ScopedTimer timer(metrics_.drain_s);
  metrics_.dc_failures.inc();
  {
    std::lock_guard flock(fault_mutex_);
    dc_fail_time_[dc.value()] = now;
  }
  // Mark down BEFORE draining: from this point the selector's lock-free
  // health check steers new calls away, so the drain converges (nothing
  // keeps landing on the failed DC behind it).
  health_->set_dc(dc, false);
  // Backup budgets are the provisioned serving+backup cores per surviving
  // DC (§5.3's failure-scenario capacities). No provision yet -> no budget
  // (the drain then never capacity-drops).
  std::vector<double> budget;
  fault::FailoverOutcome outcome;
  {
    std::shared_lock lock(swap_mutex_);
    if (provision_result_.has_value()) {
      const CapacityPlan& cap = provision_result_->capacity;
      budget.reserve(ctx_.world->dc_count());
      for (std::size_t x = 0; x < ctx_.world->dc_count(); ++x) {
        budget.push_back(
            cap.dc_total_cores(DcId(static_cast<std::uint32_t>(x))));
      }
    }
    outcome =
        selector_->drain_dc(dc, now, budget, options_.failover.drain_batch);
  }
  if (store_) {
    for (const fault::FailoverMove& m : outcome.moved) {
      store_->set("call:" + std::to_string(m.call.value()) + ":dc",
                  std::to_string(m.to.value()));
    }
    for (CallId c : outcome.dropped) {
      store_->erase("call:" + std::to_string(c.value()) + ":dc");
    }
  }
  metrics_.failover_migrations.inc(outcome.moved.size());
  metrics_.dropped_calls.inc(outcome.dropped.size());
  span.attr(obs::AttrKey::kMoved,
            static_cast<std::int64_t>(outcome.moved.size()));
  span.attr(obs::AttrKey::kDropped,
            static_cast<std::int64_t>(outcome.dropped.size()));
  return outcome;
}

void Switchboard::dc_recovered(DcId dc, SimTime now) {
  require(dc.valid() && dc.value() < ctx_.world->dc_count(),
          "dc_recovered: bad dc");
  health_->set_dc(dc, true);
  metrics_.dc_recoveries.inc();
  SimTime failed_at = -1.0;
  {
    std::lock_guard flock(fault_mutex_);
    failed_at = dc_fail_time_[dc.value()];
    dc_fail_time_[dc.value()] = -1.0;
  }
  if (failed_at >= 0.0 && now >= failed_at) {
    metrics_.recovery_s.record(now - failed_at);
  }
}

void Switchboard::link_failed(LinkId link, SimTime /*now*/) {
  require(link.valid() && link.value() < ctx_.topology->link_count(),
          "link_failed: bad link");
  health_->set_link(link, false);
  metrics_.link_failures.inc();
}

void Switchboard::link_recovered(LinkId link, SimTime /*now*/) {
  require(link.valid() && link.value() < ctx_.topology->link_count(),
          "link_recovered: bad link");
  health_->set_link(link, true);
  metrics_.link_recoveries.inc();
}

fault::FailoverOutcome Switchboard::server_failed(ServerId server,
                                                  SimTime now) {
  require(server.valid() && server.value() < ctx_.world->server_count(),
          "server_failed: bad server");
  obs::Span span("ctl.server_failed", obs::Subsystem::kController, now);
  span.attr(obs::AttrKey::kServer,
            static_cast<std::int64_t>(server.value()));
  obs::ScopedTimer timer(metrics_.drain_s);
  metrics_.server_failures.inc();
  // Down before draining, mirroring dc_failed: the packer's best-fit scan
  // consults the same health table, so no new admit lands on this server
  // behind the drain.
  health_->set_server(server, false);
  std::vector<double> budget;
  fault::FailoverOutcome outcome;
  {
    std::shared_lock lock(swap_mutex_);
    if (provision_result_.has_value()) {
      const CapacityPlan& cap = provision_result_->capacity;
      budget.reserve(ctx_.world->dc_count());
      for (std::size_t x = 0; x < ctx_.world->dc_count(); ++x) {
        budget.push_back(
            cap.dc_total_cores(DcId(static_cast<std::uint32_t>(x))));
      }
    }
    outcome = selector_->drain_server(server, now, budget,
                                      options_.failover.drain_batch);
  }
  if (store_) {
    for (const fault::FailoverMove& m : outcome.moved) {
      store_->set("call:" + std::to_string(m.call.value()) + ":dc",
                  std::to_string(m.to.value()));
    }
    for (CallId c : outcome.dropped) {
      store_->erase("call:" + std::to_string(c.value()) + ":dc");
    }
  }
  metrics_.failover_migrations.inc(outcome.moved.size());
  metrics_.dropped_calls.inc(outcome.dropped.size());
  span.attr(obs::AttrKey::kMoved,
            static_cast<std::int64_t>(outcome.moved.size()));
  span.attr(obs::AttrKey::kDropped,
            static_cast<std::int64_t>(outcome.dropped.size()));
  return outcome;
}

void Switchboard::server_recovered(ServerId server, SimTime now) {
  require(server.valid() && server.value() < ctx_.world->server_count(),
          "server_recovered: bad server");
  obs::Span span("ctl.server_recovered", obs::Subsystem::kController, now);
  span.attr(obs::AttrKey::kServer,
            static_cast<std::int64_t>(server.value()));
  health_->set_server(server, true);
  metrics_.server_recoveries.inc();
}

pack::DefragResult Switchboard::defragment_dc(DcId dc,
                                              std::size_t max_moves) {
  pack::DefragResult result;
  {
    std::shared_lock lock(swap_mutex_);
    result = selector_->defragment_dc(dc, max_moves);
  }
  if (store_) {
    // Defrag never changes a call's DC, so call:*:dc entries are already
    // correct; nothing to rewrite.
  }
  metrics_.defrag_moves.inc(result.moves.size());
  return result;
}

RealtimeSelector::Stats Switchboard::realtime_stats() const {
  std::shared_lock lock(swap_mutex_);
  return selector_->stats();
}

std::optional<RealtimeSelector::CallSnapshot> Switchboard::snapshot_call(
    CallId call) const {
  std::shared_lock lock(swap_mutex_);
  return selector_->snapshot_call(call);
}

std::size_t Switchboard::drop_shards(std::size_t shard_begin,
                                     std::size_t shard_end) {
  std::shared_lock lock(swap_mutex_);
  return selector_->drop_shards(shard_begin, shard_end);
}

void Switchboard::adopt_call(CallId call,
                             const RealtimeSelector::CallSnapshot& snap) {
  std::shared_lock lock(swap_mutex_);
  selector_->adopt_call(call, snap);
}

std::size_t Switchboard::realtime_shard_count() const {
  std::shared_lock lock(swap_mutex_);
  return selector_->shard_count();
}

std::uint64_t Switchboard::held_slots() const {
  std::shared_lock lock(swap_mutex_);
  return selector_->held_slots();
}

std::size_t Switchboard::active_calls() const {
  std::shared_lock lock(swap_mutex_);
  return selector_->active_calls();
}

}  // namespace sb
