// Call-config universe synthesis. The paper observed >10M unique configs in
// Teams with extreme popularity skew (top 1% of configs cover 93% of calls,
// Fig 7c). We reproduce that structure: a Zipf-ranked universe of configs,
// each with a home (majority) location that drives its diurnal shape, a base
// arrival rate, and an individual growth trend (Fig 7b shows heterogeneous
// per-config growth, which is why §5.2 forecasts per config).
#pragma once

#include <vector>

#include "calls/call_config.h"
#include "common/rng.h"
#include "geo/world.h"

namespace sb {

/// One synthesized config and its workload parameters.
struct ConfigUsage {
  ConfigId config;
  double base_rate_per_hour = 0.0;  ///< arrival rate at peak activity
  double weekly_growth = 1.0;       ///< multiplicative rate growth per week
  LocationId home;                  ///< majority location
};

/// The universe of configs a scenario draws calls from.
struct ConfigUniverse {
  std::vector<ConfigUsage> configs;

  [[nodiscard]] double total_base_rate() const;
};

struct UniverseParams {
  std::size_t config_count = 400;
  double zipf_exponent = 1.6;
  /// Sum of base rates across the universe (calls/hour at peak activity).
  double total_peak_rate_per_hour = 1200.0;
  /// Probability a config spans >1 country ("inter-country", §6.3).
  double multi_country_prob = 0.20;
  /// Media mix: {audio, screen-share, video}; must sum to ~1.
  double media_probs[3] = {0.35, 0.15, 0.50};
  /// Weekly growth drawn uniformly from this range; > 1 grows, < 1 shrinks.
  double growth_min = 0.995;
  double growth_max = 1.015;
  /// Geometric participant-count parameter; mean extra participants
  /// beyond 2 is roughly (1-p)/p.
  double size_geometric_p = 0.35;
  std::uint32_t max_participants = 40;
};

/// Samples a config universe over the world's locations (weighted by
/// population). Configs that collide after canonicalization are merged by
/// summing their rates. Results are interned into `registry`.
ConfigUniverse sample_universe(const World& world, CallConfigRegistry& registry,
                               const UniverseParams& params, Rng& rng);

}  // namespace sb
