file(REMOVE_RECURSE
  "libsb_predict.a"
)
