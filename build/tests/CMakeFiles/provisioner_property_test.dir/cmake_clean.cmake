file(REMOVE_RECURSE
  "CMakeFiles/provisioner_property_test.dir/provisioner_property_test.cpp.o"
  "CMakeFiles/provisioner_property_test.dir/provisioner_property_test.cpp.o.d"
  "provisioner_property_test"
  "provisioner_property_test.pdb"
  "provisioner_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioner_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
