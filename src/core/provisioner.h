// Switchboard's MP capacity provisioning (§5.3): a joint compute+network LP
// per failure scenario (Eq 3-9) whose per-resource maxima across scenarios
// (Eq 7/8) become the provisioned capacity. All three of the paper's ideas
// live here:
//  - peak-aware provisioning: one CP_x / NP_l peak variable spans all time
//    slots, so time-shifted demand shares capacity (§4.1) and each failure
//    scenario's LP can reuse another DC's off-peak slack as backup (§4.2);
//  - joint compute+network provisioning: Eq 3 prices both resources in one
//    objective (§4.3);
//  - application-specific provisioning: the input is a per-call-config
//    demand matrix, not resource usage logs (§4.4).
#pragma once

#include "calls/demand.h"
#include "core/capacity_plan.h"
#include "core/failure.h"
#include "core/placement.h"
#include "lp/solver.h"

namespace sb {

struct ProvisionOptions {
  double acl_threshold_ms = kDefaultAclThresholdMs;
  /// Provision backup capacity for failure scenarios (Table 3's "with
  /// backup" columns). When false only F0 is solved.
  bool with_backup = true;
  /// Include single-WAN-link failures in the scenario set.
  bool include_link_failures = true;
  /// §4.3 ablation: when false, the scenario LPs price only compute; network
  /// capacity is derived afterwards from the resulting placement.
  bool joint_network = true;
  /// §4.1/4.2 ablation: when false, backup is provisioned additively with
  /// the Eq 1-2 LP on top of the no-failure plan (Fig 4b's default plan)
  /// instead of reusing off-peak serving slack.
  bool peak_aware_backup = true;
  /// Eq 7/8 make capacity SHARED across failure scenarios: what one
  /// scenario provisions is free for every other. When true (default),
  /// scenarios are solved sequentially and each LP only pays for capacity
  /// above the running combined plan — the tractable decomposition of that
  /// coupling. When false, every scenario is priced from scratch
  /// (independent LPs + max), which over-provisions; kept as an ablation.
  bool capacity_reuse = true;
  /// Solve Eq 3 + 7/8 EXACTLY: one LP spanning the no-failure case and all
  /// DC-failure scenarios with shared CP_x/NP_l variables (each scenario
  /// gets its own placement). Avoids the sequential decomposition's myopia
  /// (F0 packing away the slack failures would have reused) at the price of
  /// a scenario-count-times-larger LP. Link-failure scenarios are still
  /// handled sequentially with capacity floors on top.
  bool joint_scenarios = false;
  /// Weight of the latency tie-break added to every S_tcx cost so equal-cost
  /// placements prefer lower ACL. Kept small so it never outweighs a real
  /// resource trade-off.
  double acl_epsilon = 1e-6;
  /// How failure scenarios see capacity provisioned by other scenarios
  /// (only meaningful with capacity_reuse):
  ///  - kChained: each scenario floors on the RUNNING combined plan, so
  ///    later scenarios reuse what earlier ones bought. Order-dependent;
  ///    forces sequential solves. The historical default.
  ///  - kFromBase: every failure scenario floors on the F0 (no-failure)
  ///    requirement only. Order-independent — scenario solves commute, so
  ///    they can fan out over a thread pool and still produce bit-identical
  ///    plans to a sequential run; may buy slightly more backup than
  ///    kChained when two failures need capacity in the same place.
  enum class FloorMode { kChained, kFromBase };
  FloorMode floor_mode = FloorMode::kChained;
  /// Failure-scenario solve parallelism. >1 fans the per-scenario LPs over
  /// a ThreadPool when the scenarios are independent (floor_mode ==
  /// kFromBase, or capacity_reuse off); chained floors are inherently
  /// sequential and ignore this. 0 means hardware concurrency. The cold F0
  /// solve also borrows this as its lp::SolveOptions::decompose_threads
  /// (unless one was set explicitly) — the fan-out pool is idle while F0
  /// runs, so the block decomposition can use the same budget.
  std::size_t scenario_threads = 1;
  /// Base LP engine knobs. Warm scenario re-solves additionally set
  /// dual_resolve: they start primal infeasible but nearly dual feasible,
  /// the dual simplex's preferred start.
  lp::SolveOptions lp_options;
};

/// Final basis of one scenario solve keyed by SEMANTIC identity — CP per
/// DC, NP per link, S per (slot, config, DC) — rather than LP column index,
/// so a structurally different scenario (a failed DC drops its CP column
/// and candidate placements) can still warm-start from it. Produced and
/// consumed by SwitchboardProvisioner::solve_scenario.
struct ScenarioBasisHint {
  std::vector<lp::VarStatus> cp;  ///< per DC id
  std::vector<lp::VarStatus> np;  ///< per link id
  std::vector<lp::VarStatus> s;   ///< (t * configs + c) * dc_count + dc id
  /// Row (logical) statuses, keyed like the columns so the slack/tight
  /// pattern survives between scenarios whose row sets differ. kBasic means
  /// the row was inactive. Capacity rows per (slot, DC) / (slot, link),
  /// completeness rows per (slot, config).
  std::vector<lp::VarStatus> row_dc;    ///< t * dc_count + dc id
  std::vector<lp::VarStatus> row_link;  ///< t * link_count + link id
  std::vector<lp::VarStatus> row_cfg;   ///< t * config_count + config
  [[nodiscard]] bool empty() const {
    return cp.empty() && np.empty() && s.empty();
  }
};

/// Capacity requirement determined by one failure scenario's LP.
struct ScenarioOutcome {
  FailureScenario scenario;
  CapacityPlan required;  ///< peaks needed to survive this scenario
  double lp_objective = 0.0;
  std::size_t lp_iterations = 0;
};

struct ProvisionResult {
  /// Combined plan: serving = F0 requirement, backup = increment needed to
  /// cover the worst failure scenario (zero per resource if F0 dominates).
  CapacityPlan capacity;
  /// The no-failure placement (S_tcx under F0).
  PlacementMatrix base_placement;
  /// Call-weighted mean ACL of the no-failure placement.
  double mean_acl_ms = 0.0;
  std::vector<ScenarioOutcome> scenarios;
  /// Per-media-server core budget, indexed by global ServerId: each DC's
  /// provisioned serving+backup cores split across its fleet proportional
  /// to server capacity. Empty when the World has no fleet. The intra-DC
  /// packer enforces physical capacity itself; these budgets are the
  /// offline sizing signal (benches and capacity reports consume them).
  std::vector<double> server_budget_cores;
};

/// Builds and solves the provisioning LPs. The EvalContext members must
/// outlive the provisioner.
class SwitchboardProvisioner {
 public:
  SwitchboardProvisioner(EvalContext ctx, ProvisionOptions options);

  /// Provisions capacity for the given demand. Throws SolveError if any
  /// scenario LP fails. `f0_warm` (optional) seeds the F0 solve from a
  /// previous provision's final basis — the closed-loop re-provision path,
  /// where successive demand matrices differ only in magnitude, re-solves in
  /// ~0 iterations from it. `f0_basis_out` (optional) receives this
  /// provision's F0 basis for the next warm round. Both are ignored by the
  /// joint_scenarios path (one fused LP, no per-scenario basis).
  [[nodiscard]] ProvisionResult provision(
      const DemandMatrix& demand, const ScenarioBasisHint* f0_warm = nullptr,
      ScenarioBasisHint* f0_basis_out = nullptr) const;

  /// Solves a single scenario's LP; exposed for tests and the Fig 4 bench.
  /// With `floors` set, capacity up to the floor is free and the LP prices
  /// only the increment; the returned requirement then includes the floor.
  /// `warm` (if non-empty) seeds the sparse engine's starting basis from a
  /// previous structurally-similar solve; `basis_out` (if non-null)
  /// receives this solve's final basis keyed semantically for reuse.
  [[nodiscard]] ScenarioOutcome solve_scenario(
      const DemandMatrix& demand, const FailureScenario& scenario,
      PlacementMatrix* placement_out = nullptr,
      const CapacityPlan* floors = nullptr,
      const ScenarioBasisHint* warm = nullptr,
      ScenarioBasisHint* basis_out = nullptr) const;

 private:
  /// The exact Eq 3+7/8 LP over F0 and all DC-failure scenarios (shared
  /// capacity variables), plus sequential link-failure passes.
  [[nodiscard]] ProvisionResult provision_joint(
      const DemandMatrix& demand) const;

  EvalContext ctx_;
  ProvisionOptions options_;
};

}  // namespace sb
