// The realtime MP selector (§5.4): assigns a DC the moment a call's first
// participant joins (closest DC to the first joiner), then reconciles with
// the precomputed allocation plan once the call config freezes A minutes in
// — debiting a plan slot, or migrating the call when the initial choice
// disagrees with the plan. Unplanned configs fall back to their closest DC.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/allocation_plan.h"

namespace sb {

struct RealtimeOptions {
  /// §6.4: the config freezes A = 300 s after call start (~80% of
  /// participants have joined by then, Fig 8).
  double freeze_delay_s = 300.0;
  double acl_threshold_ms = kDefaultAclThresholdMs;
};

/// Outcome of freezing one call's config.
struct FreezeResult {
  DcId dc;                ///< final hosting DC
  bool migrated = false;  ///< true if the call moved to a different DC
  bool planned = false;   ///< true if the config had plan slots
};

/// Single-threaded selector state machine; the Controller wraps it with a
/// mutex for concurrent use. Tracks per-(config, DC) active frozen calls
/// against the plan's slot quotas.
class RealtimeSelector {
 public:
  /// `plan` may be null (no-plan operation: every call sticks to the
  /// closest-DC heuristic and freezing only re-homes unplanned configs).
  RealtimeSelector(EvalContext ctx, const AllocationPlan* plan,
                   RealtimeOptions options, SimTime plan_start_s = 0.0);

  /// (a) of §5.4: a new call starts; returns the initial DC — the one
  /// closest (lowest latency) to the first joiner's location.
  DcId on_call_start(CallId call, LocationId first_joiner, SimTime now);

  /// (b)/(c) of §5.4: the call's config is now known. Debits a plan slot at
  /// the current DC if available, otherwise migrates to the planned DC with
  /// spare quota and the lowest ACL. Unplanned configs go to the min-ACL DC.
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now);

  /// Releases the call's slot (if it held one).
  void on_call_end(CallId call, SimTime now);

  struct Stats {
    std::uint64_t calls_started = 0;
    std::uint64_t calls_frozen = 0;
    std::uint64_t migrations = 0;   ///< §6.4's headline metric
    std::uint64_t unplanned = 0;    ///< configs with no plan column
    std::uint64_t overflow = 0;     ///< plan slots exhausted; call stayed put
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_calls() const { return active_.size(); }
  [[nodiscard]] double freeze_delay_s() const {
    return options_.freeze_delay_s;
  }

 private:
  struct ActiveCall {
    DcId dc;
    std::size_t plan_col = AllocationPlan::npos;
    bool holds_slot = false;
  };

  [[nodiscard]] std::uint32_t& usage(std::size_t col, DcId dc);

  EvalContext ctx_;
  const AllocationPlan* plan_;
  RealtimeOptions options_;
  SimTime plan_start_s_;
  std::vector<DcId> all_dcs_;
  std::unordered_map<CallId, ActiveCall> active_;
  std::vector<std::uint32_t> usage_;  ///< [plan col][dc] active frozen calls
  Stats stats_;
};

}  // namespace sb
