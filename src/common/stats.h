// Descriptive statistics used throughout the evaluation harness: summary
// accumulators, percentiles, forecast error metrics, and CDF construction
// for the figure benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sb {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// q-quantile (q in [0,1]) with linear interpolation; throws on empty input.
double quantile(std::span<const double> xs, double q);

/// Median == quantile(0.5).
double median(std::span<const double> xs);

/// Root-mean-square error between two equally sized series.
double rmse(std::span<const double> truth, std::span<const double> estimate);

/// Mean absolute error between two equally sized series.
double mae(std::span<const double> truth, std::span<const double> estimate);

/// One (x, F(x)) step of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  ///< fraction of samples <= value
};

/// Builds an empirical CDF sampled at `points` evenly spaced fractions
/// (plus the max). Throws on empty input.
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t points = 20);

}  // namespace sb
