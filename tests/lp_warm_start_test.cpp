// Warm-start and bounded-variable behavior of the sparse LU/eta engine:
// re-solving from a previous optimal basis must reproduce the objective in
// strictly fewer iterations, fixed (upper == lower) variables must be
// substituted and reported as kFixed, optima resting on finite upper bounds
// must be reported as kAtUpper, and a model made infeasible AFTER a warm
// basis was captured must still be detected as infeasible.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/solver.h"

namespace sb::lp {
namespace {

/// Provisioning-shaped LP (see bench/micro_lp.cpp): per-DC peaks, per-slot
/// capacity rows, completeness equalities. `demand_scale` perturbs every
/// completeness rhs, modeling a failure scenario's shifted demand.
Model make_provisioning_lp(std::size_t slots, std::size_t configs,
                           std::size_t dcs, std::uint64_t seed,
                           double demand_scale = 1.0) {
  Rng rng(seed);
  Model m;
  std::vector<int> cp(dcs);
  for (std::size_t x = 0; x < dcs; ++x) {
    cp[x] = m.add_variable(0.0, kInf, rng.uniform(0.9, 1.4));
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::vector<Term>> dc_rows(dcs);
    for (std::size_t c = 0; c < configs; ++c) {
      std::vector<Term> completeness;
      for (std::size_t x = 0; x < dcs; ++x) {
        const int s = m.add_variable(0.0, kInf, 1e-6 * rng.uniform(5, 100));
        dc_rows[x].push_back({s, rng.uniform(0.01, 0.1)});
        completeness.push_back({s, 1.0});
      }
      m.add_constraint(std::move(completeness), Sense::kEq,
                       demand_scale * rng.uniform(0.0, 50.0));
    }
    for (std::size_t x = 0; x < dcs; ++x) {
      dc_rows[x].push_back({cp[x], -1.0});
      m.add_constraint(std::move(dc_rows[x]), Sense::kLe, 0.0);
    }
  }
  return m;
}

TEST(WarmStartTest, ResolveFromOwnBasisIsIterationFree) {
  const Model m = make_provisioning_lp(8, 10, 5, 17);
  SolveOptions options;
  options.method = Method::kSparse;
  const Solution cold = solve(m, options);
  ASSERT_TRUE(cold.optimal());
  ASSERT_GT(cold.iterations, 0u);
  ASSERT_EQ(cold.basis.size(), m.variable_count());

  options.warm_start = cold.basis;
  const Solution warm = solve(m, options);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-8 * std::max(1.0, std::abs(cold.objective)));
  // An already-optimal basis needs at most a crash-repair pivot or two —
  // nothing like the cold solve's full path.
  EXPECT_LE(warm.iterations, 2u);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(WarmStartTest, FullBasisRoundTripIsIterationFree) {
  const Model m = make_provisioning_lp(8, 10, 5, 17);
  SolveOptions options;
  options.method = Method::kSparse;
  const Solution cold = solve(m, options);
  ASSERT_TRUE(cold.optimal());
  ASSERT_EQ(cold.basis.size(), m.variable_count());
  // Row statuses are exported per model constraint alongside the columns.
  ASSERT_EQ(cold.row_basis.size(), m.constraint_count());

  // With BOTH banks the slack/tight row pattern survives, so the re-solve
  // needs zero pivots (the structural-only variant above may need a couple
  // of repair pivots to rediscover which rows were tight).
  options.warm_start = cold.basis;
  options.warm_start_rows = cold.row_basis;
  const Solution warm = solve(m, options);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-8 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_EQ(warm.iterations, 0u);
}

TEST(WarmStartTest, RowBasisCoversPresolveDroppedRows) {
  // Row 0 is a singleton presolve folds into x's bounds; the exported
  // row_basis must still have one entry per ORIGINAL constraint (dropped
  // rows report kBasic, i.e. inactive) and round-trip cleanly.
  Model m = make_provisioning_lp(4, 6, 3, 23);
  const int extra = m.add_variable(0.0, kInf, 0.5, "singleton");
  m.add_constraint({{extra, 1.0}}, Sense::kGe, 2.0);

  SolveOptions options;
  options.method = Method::kSparse;
  const Solution cold = solve(m, options);
  ASSERT_TRUE(cold.optimal());
  ASSERT_EQ(cold.row_basis.size(), m.constraint_count());

  options.warm_start = cold.basis;
  options.warm_start_rows = cold.row_basis;
  const Solution warm = solve(m, options);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-8 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_LT(warm.iterations, std::max<std::size_t>(cold.iterations, 1));
}

TEST(WarmStartTest, PerturbedModelSolvesWithStrictlyFewerIterations) {
  const Model base = make_provisioning_lp(8, 10, 5, 17);
  // Same structure, every demand shifted 7% — the provisioner's
  // failure-scenario situation.
  const Model shifted = make_provisioning_lp(8, 10, 5, 17, 1.07);

  SolveOptions options;
  options.method = Method::kSparse;
  const Solution base_sol = solve(base, options);
  ASSERT_TRUE(base_sol.optimal());
  const Solution shifted_cold = solve(shifted, options);
  ASSERT_TRUE(shifted_cold.optimal());
  ASSERT_GT(shifted_cold.iterations, 0u);

  options.warm_start = base_sol.basis;
  const Solution shifted_warm = solve(shifted, options);
  ASSERT_TRUE(shifted_warm.optimal());
  EXPECT_NEAR(shifted_warm.objective, shifted_cold.objective,
              1e-7 * std::max(1.0, std::abs(shifted_cold.objective)));
  EXPECT_LT(shifted_warm.iterations, shifted_cold.iterations);
}

TEST(WarmStartTest, MismatchedHintSizeFallsBackToColdStart) {
  const Model m = make_provisioning_lp(4, 6, 3, 23);
  SolveOptions options;
  options.method = Method::kSparse;
  const Solution cold = solve(m, options);
  ASSERT_TRUE(cold.optimal());

  options.warm_start.assign(3, VarStatus::kBasic);  // wrong length
  const Solution s = solve(m, options);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, cold.objective, 1e-9);
}

/// Copy of `base` with DC 0's peak capped below its unconstrained optimum:
/// the classic bound-tightening re-solve (capacity floors, maintenance
/// derates) that dual_resolve is for. Structure and variable count are
/// unchanged, so the warm basis carries over.
Model tighten_first_peak(const Model& base, double cap) {
  Model m;
  for (std::size_t i = 0; i < base.variable_count(); ++i) {
    const Variable& v = base.variable(static_cast<int>(i));
    const double upper = i == 0 ? cap : v.upper;
    m.add_variable(v.lower, upper, v.cost, v.name);
  }
  for (std::size_t r = 0; r < base.constraint_count(); ++r) {
    const Constraint& c = base.constraint(static_cast<int>(r));
    m.add_constraint(c.terms, c.sense, c.rhs, c.name);
  }
  return m;
}

TEST(WarmStartTest, DualResolveMatchesPrimalAfterBoundTightening) {
  const Model base = make_provisioning_lp(8, 10, 5, 17);
  SolveOptions options;
  options.method = Method::kSparse;
  const Solution base_sol = solve(base, options);
  ASSERT_TRUE(base_sol.optimal());
  ASSERT_GT(base_sol.values[0], 0.0);

  // Cap DC 0's peak at 60% of its optimum. The old basis keeps its duals
  // but the capped column violates its new bound — the dual engine's
  // starting condition.
  const Model tight = tighten_first_peak(base, 0.6 * base_sol.values[0]);

  SolveOptions primal_opt = options;
  primal_opt.warm_start = base_sol.basis;
  primal_opt.warm_start_rows = base_sol.row_basis;
  const Solution primal = solve(tight, primal_opt);
  ASSERT_TRUE(primal.optimal());

  SolveOptions dual_opt = primal_opt;
  dual_opt.method = Method::kDual;
  const Solution dual = solve(tight, dual_opt);
  ASSERT_TRUE(dual.optimal());
  EXPECT_NEAR(dual.objective, primal.objective,
              1e-7 * std::max(1.0, std::abs(primal.objective)));
  const ValidationReport report = validate_solution(tight, dual.values, 1e-6);
  EXPECT_TRUE(report.feasible) << report.worst;
  // Tightening one bound must not cost anything like a cold solve.
  const Solution cold = solve(tight, options);
  ASSERT_TRUE(cold.optimal());
  EXPECT_LT(dual.iterations, cold.iterations);
}

TEST(WarmStartTest, DualResolveRoutesUnderAutoWithHint) {
  const Model base = make_provisioning_lp(8, 10, 5, 17);
  SolveOptions options;
  options.method = Method::kSparse;
  const Solution base_sol = solve(base, options);
  ASSERT_TRUE(base_sol.optimal());
  const Model tight = tighten_first_peak(base, 0.6 * base_sol.values[0]);

  // kAuto + dual_resolve + a warm hint must take the dual path and still
  // land on the primal optimum.
  SolveOptions auto_opt;
  auto_opt.method = Method::kAuto;
  auto_opt.dual_resolve = true;
  auto_opt.warm_start = base_sol.basis;
  auto_opt.warm_start_rows = base_sol.row_basis;
  const Solution via_auto = solve(tight, auto_opt);
  ASSERT_TRUE(via_auto.optimal());
  const Solution cold = solve(tight, options);
  ASSERT_TRUE(cold.optimal());
  EXPECT_NEAR(via_auto.objective, cold.objective,
              1e-7 * std::max(1.0, std::abs(cold.objective)));
}

TEST(BoundedVariableTest, FixedVariablesReportKFixedAndExactValue) {
  Model m;
  const int fixed = m.add_variable(4.5, 4.5, 3.0, "fixed");
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  m.add_constraint({{fixed, 1.0}, {x, 1.0}}, Sense::kGe, 10.0);

  SolveOptions options;
  options.method = Method::kSparse;
  const Solution s = solve(m, options);
  ASSERT_TRUE(s.optimal());
  EXPECT_DOUBLE_EQ(s.values[fixed], 4.5);
  EXPECT_NEAR(s.values[x], 5.5, 1e-9);
  ASSERT_EQ(s.basis.size(), 2u);
  EXPECT_EQ(s.basis[fixed], VarStatus::kFixed);
  // The fixed status must round-trip through warm_start unharmed.
  options.warm_start = s.basis;
  const Solution warm = solve(m, options);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, s.objective, 1e-12);
}

TEST(BoundedVariableTest, NegativeCostRestsAtUpperWithoutUpperBoundRow) {
  // min -2a - b with a in [0, 3], b in [0, 4], a + b <= 5.
  // Optimum a=3 (its own upper bound, NOT a constraint row), b=2.
  Model m;
  const int a = m.add_variable(0.0, 3.0, -2.0, "a");
  const int b = m.add_variable(0.0, 4.0, -1.0, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::kLe, 5.0);

  SolveOptions options;
  options.method = Method::kSparse;
  const Solution s = solve(m, options);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -8.0, 1e-9);
  EXPECT_NEAR(s.values[a], 3.0, 1e-9);
  EXPECT_NEAR(s.values[b], 2.0, 1e-9);
  ASSERT_EQ(s.basis.size(), 2u);
  EXPECT_EQ(s.basis[a], VarStatus::kAtUpper);
}

TEST(BoundedVariableTest, InfeasibleAfterTighteningDetectedFromWarmBasis) {
  // Feasible base model: x + y >= 8 with generous boxes.
  Model base;
  const int x = base.add_variable(0.0, 10.0, 1.0, "x");
  const int y = base.add_variable(0.0, 10.0, 2.0, "y");
  base.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 8.0);

  SolveOptions options;
  options.method = Method::kSparse;
  const Solution sol = solve(base, options);
  ASSERT_TRUE(sol.optimal());

  // Tighten both boxes so the constraint can no longer be met; warm-start
  // from the now-invalid basis. Phase 1 must discover the infeasibility
  // (and map_back must not fabricate values outside the new boxes).
  Model tight;
  tight.add_variable(0.0, 3.0, 1.0, "x");
  tight.add_variable(0.0, 4.0, 2.0, "y");
  tight.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 8.0);

  options.warm_start = sol.basis;
  const Solution infeasible = solve(tight, options);
  EXPECT_EQ(infeasible.status, SolveStatus::kInfeasible);
  EXPECT_TRUE(infeasible.basis.empty());
}

}  // namespace
}  // namespace sb::lp
