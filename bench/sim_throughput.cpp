// Simulator replay throughput: the batched/SoA engine against the
// reference heap-driven event loop, sequential and across thread counts,
// driving the plan-backed controller allocator on a busy design-day window.
// The claims under test (DESIGN.md "Batched replay engine"): batching
// amortizes the plan-swap shared-lock acquisition and the per-event
// registry/footprint lookups without changing any outcome — sequential
// replay is bit-identical to the reference (checked here on the hosting
// log; tests/sim_differential_test.cpp enforces it across fuzz seeds) —
// and the batched engine sustains >=3x the reference's replayed
// calls-per-second at 8 driver threads.
//
// Flags: --plan_configs=30 --cushion=1.3 --window_h=2 --amplify=300
//        --reps=3
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "loop/demand_schedule.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace {

bool logs_equal(const sb::HostingLog& a, const sb::HostingLog& b) {
  if (a.events.size() != b.events.size()) return false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const sb::HostingEvent& x = a.events[i];
    const sb::HostingEvent& y = b.events[i];
    if (x.record != y.record || x.time != y.time || x.kind != y.kind ||
        x.dc != y.dc || x.server != y.server) {
      return false;
    }
  }
  return true;
}

const char* engine_name(sb::Simulator::Engine e) {
  return e == sb::Simulator::Engine::kBatched ? "batched" : "reference";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  using Clock = std::chrono::steady_clock;
  const std::size_t plan_configs =
      bench::arg_size(argc, argv, "plan_configs", 30);
  const double cushion = bench::arg_double(argc, argv, "cushion", 1.3);
  const double window_s =
      bench::arg_double(argc, argv, "window_h", 2.0) * kSecondsPerHour;
  const double amplify = bench::arg_double(argc, argv, "amplify", 300.0);
  const std::size_t reps = bench::arg_size(argc, argv, "reps", 3);
  // Throughput is the subject here; span recording is per-event overhead
  // shared by both engines and is benchmarked by the obs suite.
  obs::SpanRecorder::global().set_enabled(false);

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  const double slot_s = 3600.0;
  // The scenario's base call rate is a few calls a minute — far too sparse
  // to load a replay engine. Amplify both the trace (deterministic
  // duplication via DemandSchedule::scale_trace) and the plan demand by the
  // same factor, so the plan-slot path sees production-like call volume.
  DemandMatrix demand = bench::design_day_demand(scenario, slot_s, plan_configs);
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      demand.set_demand(t, c, demand.demand(t, c) * cushion * amplify);
    }
  }
  ControllerOptions options;
  options.provision.include_link_failures = false;
  Switchboard controller(ctx, options);
  (void)controller.provision(demand);

  // A mid-morning busy window; every timed run replays exactly this trace.
  const double window_start = kSecondsPerDay + 10.0 * kSecondsPerHour;
  loop::DemandSchedule amp;
  amp.add_phase({0.0, 2.0 * kSecondsPerDay, amplify, LocationId()});
  const CallRecordDatabase db = amp.scale_trace(
      scenario.trace->generate(window_start, window_start + window_s), 1);
  const auto calls = static_cast<double>(db.size());

  Simulator sim(ctx);
  std::cout << "simulator replay throughput: " << db.size()
            << " calls over " << window_s / kSecondsPerHour
            << " h, plan-driven allocator, best of " << reps << " reps\n\n";

  // Sequential bit-identity first: the engines must agree event for event
  // before their speeds are worth comparing.
  HostingLog ref_log;
  HostingLog bat_log;
  sim.set_engine(Simulator::Engine::kReference);
  controller.build_allocation_plan(demand, kSecondsPerDay);
  {
    ControllerAllocator alloc(controller);
    (void)sim.run(db, alloc, 300.0, nullptr, 60.0, &ref_log);
  }
  sim.set_engine(Simulator::Engine::kBatched);
  controller.build_allocation_plan(demand, kSecondsPerDay);
  {
    ControllerAllocator alloc(controller);
    (void)sim.run(db, alloc, 300.0, nullptr, 60.0, &bat_log);
  }
  const bool identical = logs_equal(ref_log, bat_log);
  std::cout << "sequential hosting log: "
            << (identical ? "bit-identical" : "DIVERGED") << "\n\n";

  const Simulator::Engine engines[] = {Simulator::Engine::kReference,
                                       Simulator::Engine::kBatched};
  const std::size_t thread_counts[] = {1, 2, 4, 8};

  TextTable table({"engine", "threads", "calls/s", "run s"});
  double rate[2][4] = {};
  for (std::size_t e = 0; e < 2; ++e) {
    sim.set_engine(engines[e]);
    for (std::size_t ti = 0; ti < 4; ++ti) {
      const std::size_t threads = thread_counts[ti];
      double best = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        controller.build_allocation_plan(demand, kSecondsPerDay);
        ControllerAllocator alloc(controller);
        const auto t0 = Clock::now();
        if (threads <= 1) {
          (void)sim.run(db, alloc, 300.0);
        } else {
          (void)sim.run_concurrent(db, alloc, 300.0, threads);
        }
        const double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();
        best = std::max(best, calls / dt);
      }
      rate[e][ti] = best;
      table.row()
          .cell(engine_name(engines[e]))
          .cell(threads)
          .cell(best, 0)
          .cell(calls / best, 3);
      bench::emit_json("sim_throughput",
                       std::string(engine_name(engines[e])) + "_t" +
                           std::to_string(threads) + "_calls_per_s",
                       best);
    }
  }
  std::cout << table;

  const double speedup_seq = rate[0][0] > 0.0 ? rate[1][0] / rate[0][0] : 0.0;
  const double speedup_t8 = rate[0][3] > 0.0 ? rate[1][3] / rate[0][3] : 0.0;
  std::cout << "\nbatched vs reference: " << format_double(speedup_seq, 2)
            << "x sequential, " << format_double(speedup_t8, 2)
            << "x at 8 threads\n";
  bench::emit_json("sim_throughput", "calls", calls);
  bench::emit_json("sim_throughput", "speedup_sequential", speedup_seq);
  bench::emit_json("sim_throughput", "speedup_t8", speedup_t8);
  bench::emit_json("sim_throughput", "sequential_log_identical",
                   identical ? 1.0 : 0.0);
  return identical ? 0 : 1;
}
