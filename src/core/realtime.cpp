#include "core/realtime.h"

#include <algorithm>

#include "common/error.h"

namespace sb {

RealtimeSelector::RealtimeSelector(EvalContext ctx, const AllocationPlan* plan,
                                   RealtimeOptions options,
                                   SimTime plan_start_s)
    : ctx_(ctx), plan_(plan), options_(options), plan_start_s_(plan_start_s) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "RealtimeSelector: incomplete context");
  all_dcs_ = ctx_.world->dc_ids();
  require(!all_dcs_.empty(), "RealtimeSelector: world has no DCs");
  if (plan_) {
    usage_.assign(plan_->config_count() * plan_->dc_count(), 0);
  }
}

std::uint32_t& RealtimeSelector::usage(std::size_t col, DcId dc) {
  return usage_[col * plan_->dc_count() + dc.value()];
}

DcId RealtimeSelector::on_call_start(CallId call, LocationId first_joiner,
                                     SimTime /*now*/) {
  const DcId dc = ctx_.latency->closest_dc(first_joiner, all_dcs_);
  const auto [it, inserted] = active_.emplace(call, ActiveCall{dc});
  require(inserted, "on_call_start: duplicate call id");
  ++stats_.calls_started;
  return dc;
}

FreezeResult RealtimeSelector::on_config_frozen(CallId call,
                                                const CallConfig& config,
                                                SimTime now) {
  const auto it = active_.find(call);
  require(it != active_.end(), "on_config_frozen: unknown call");
  ActiveCall& state = it->second;
  ++stats_.calls_frozen;

  const ConfigId id = ctx_.registry->find(config);
  const std::size_t col =
      plan_ && id.valid() ? plan_->column_of(id) : AllocationPlan::npos;

  FreezeResult result{state.dc, false, col != AllocationPlan::npos};
  if (!result.planned) {
    // §5.4: unanticipated config -> its closest (min ACL) DC.
    ++stats_.unplanned;
    const DcId target = min_acl_dc(config, all_dcs_, *ctx_.latency);
    result.migrated = target != state.dc;
    if (result.migrated) ++stats_.migrations;
    state.dc = target;
    result.dc = target;
    return result;
  }

  const TimeSlot slot = plan_->slot_at(now - plan_start_s_);
  if (usage(col, state.dc) < plan_->quota(slot, col, state.dc)) {
    // Initial heuristic matched the plan: just debit (§5.4b).
    ++usage(col, state.dc);
    state.plan_col = col;
    state.holds_slot = true;
    return result;
  }
  // Migrate to the planned DC with spare quota and the lowest ACL (§5.4c).
  DcId best;
  double best_acl = 0.0;
  for (DcId dc : all_dcs_) {
    if (usage(col, dc) >= plan_->quota(slot, col, dc)) continue;
    const double a = acl_ms(config, dc, *ctx_.latency);
    if (!best.valid() || a < best_acl) {
      best = dc;
      best_acl = a;
    }
  }
  if (!best.valid()) {
    // All quotas exhausted (plan under-estimated this config's concurrency):
    // stay put rather than thrash; provisioning cushions make this rare.
    ++stats_.overflow;
    return result;
  }
  ++usage(col, best);
  state.plan_col = col;
  state.holds_slot = true;
  if (best != state.dc) {
    ++stats_.migrations;
    result.migrated = true;
    state.dc = best;
    result.dc = best;
  }
  return result;
}

void RealtimeSelector::on_call_end(CallId call, SimTime /*now*/) {
  const auto it = active_.find(call);
  require(it != active_.end(), "on_call_end: unknown call");
  const ActiveCall& state = it->second;
  if (state.holds_slot) {
    std::uint32_t& u = usage(state.plan_col, state.dc);
    if (u > 0) --u;
  }
  active_.erase(it);
}

}  // namespace sb
