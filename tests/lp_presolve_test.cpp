// Tests for the LP presolve reductions and their integration with the
// solver facade.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/presolve.h"
#include "lp/solver.h"

namespace sb::lp {
namespace {

TEST(PresolveTest, SingletonRowsBecomeBounds) {
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  const int y = m.add_variable(0.0, kInf, 1.0, "y");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 3.0);   // x >= 3
  m.add_constraint({{x, 2.0}}, Sense::kLe, 16.0);  // x <= 8
  m.add_constraint({{y, -1.0}}, Sense::kLe, -2.0); // y >= 2
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 20.0);

  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.rows_removed, 3u);
  EXPECT_EQ(r.reduced.constraint_count(), 1u);
  EXPECT_DOUBLE_EQ(r.reduced.variable(x).lower, 3.0);
  EXPECT_DOUBLE_EQ(r.reduced.variable(x).upper, 8.0);
  EXPECT_DOUBLE_EQ(r.reduced.variable(y).lower, 2.0);
}

TEST(PresolveTest, ImpliedUpperBoundsBoxFreeColumns) {
  Model m;
  const int x = m.add_variable(0.0, kInf, -1.0, "x");
  const int y = m.add_variable(1.0, kInf, -1.0, "y");
  const int z = m.add_variable(0.0, 5.0, -1.0, "z");
  // x + 2y + z <= 10 with y >= 1, z >= 0 implies x <= 8, y <= 5.
  m.add_constraint({{x, 1.0}, {y, 2.0}, {z, 1.0}}, Sense::kLe, 10.0);

  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.uppers_implied, 2u);
  EXPECT_DOUBLE_EQ(r.reduced.variable(x).upper, 8.0);
  EXPECT_DOUBLE_EQ(r.reduced.variable(y).upper, 5.0);
  // z's finite upper is left alone even though the row would imply a
  // tighter one — only +inf uppers are boxed (the goal is flippable
  // columns, not aggressive tightening).
  EXPECT_DOUBLE_EQ(r.reduced.variable(z).upper, 5.0);
}

TEST(PresolveTest, ImpliedBoundsSkipRowsWithFreeNegativeTerms) {
  Model m;
  const int x = m.add_variable(0.0, kInf, -1.0, "x");
  const int y = m.add_variable(0.0, kInf, 1.0, "y");
  // x - y <= 4 implies nothing for x (y's term has no finite minimum).
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kLe, 4.0);

  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.uppers_implied, 0u);
  EXPECT_EQ(r.reduced.variable(x).upper, kInf);
}

TEST(PresolveTest, SingletonEqualityFixesVariable) {
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  m.add_variable(0.0, kInf, 1.0, "y");
  m.add_constraint({{x, 2.0}}, Sense::kEq, 10.0);  // x == 5
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.variables_fixed, 1u);
  EXPECT_DOUBLE_EQ(r.reduced.variable(x).lower, 5.0);
  EXPECT_DOUBLE_EQ(r.reduced.variable(x).upper, 5.0);
}

TEST(PresolveTest, DetectsCrossedBounds) {
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 7.0);
  m.add_constraint({{x, 1.0}}, Sense::kLe, 3.0);
  const PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
  EXPECT_FALSE(r.infeasible_reason.empty());
}

TEST(PresolveTest, EmptyRowFeasibilityCheck) {
  Model ok;
  ok.add_variable(0.0, kInf, 1.0);
  ok.add_constraint({}, Sense::kLe, 5.0);  // 0 <= 5: fine, dropped
  const PresolveResult good = presolve(ok);
  EXPECT_FALSE(good.infeasible);
  EXPECT_EQ(good.reduced.constraint_count(), 0u);

  Model bad;
  bad.add_variable(0.0, kInf, 1.0);
  bad.add_constraint({}, Sense::kGe, 5.0);  // 0 >= 5: impossible
  EXPECT_TRUE(presolve(bad).infeasible);
}

TEST(PresolveTest, SolverUsesPresolveTransparently) {
  // min x + y s.t. x >= 3 (singleton), x + y >= 10.
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  const int y = m.add_variable(0.0, kInf, 2.0, "y");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 10.0);

  SolveOptions with;
  SolveOptions without;
  without.use_presolve = false;
  const Solution a = solve(m, with);
  const Solution b = solve(m, without);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-8);
  EXPECT_NEAR(a.objective, 10.0, 1e-8);  // x = 10, y = 0
  EXPECT_NEAR(a.values[x], 10.0, 1e-8);
  EXPECT_NEAR(a.values[y], 0.0, 1e-8);
}

TEST(PresolveTest, EarlyInfeasibilityShortCircuitsSolver) {
  Model m;
  const int x = m.add_variable(0.0, 5.0, 1.0, "x");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 9.0);  // crosses the ub
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

/// Property: presolve never changes the optimum on random feasible LPs.
class PresolveEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PresolveEquivalenceTest, SameOptimumWithAndWithoutPresolve) {
  Rng rng(GetParam());
  Model m;
  const std::size_t vars = 4 + rng.uniform_index(8);
  std::vector<double> witness(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    witness[i] = rng.uniform(0.0, 8.0);
    m.add_variable(0.0, kInf, rng.uniform(0.0, 4.0));
  }
  for (std::size_t r = 0; r < vars * 2; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    // Bias toward singleton rows so presolve has work to do.
    const std::size_t width = rng.chance(0.4) ? 1 : 1 + rng.uniform_index(vars);
    for (std::size_t k = 0; k < width; ++k) {
      const auto var = static_cast<int>(rng.uniform_index(vars));
      const double coeff = rng.uniform(-2.0, 2.0);
      terms.push_back({var, coeff});
      lhs += coeff * witness[static_cast<std::size_t>(var)];
    }
    if (rng.chance(0.5)) {
      m.add_constraint(std::move(terms), Sense::kLe, lhs + rng.uniform(0, 3));
    } else {
      m.add_constraint(std::move(terms), Sense::kGe, lhs - rng.uniform(0, 3));
    }
  }
  SolveOptions with;
  SolveOptions without;
  without.use_presolve = false;
  const Solution a = solve(m, with);
  const Solution b = solve(m, without);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  const double scale = std::max(1.0, std::abs(b.objective));
  EXPECT_NEAR(a.objective, b.objective, 1e-6 * scale);
  EXPECT_TRUE(validate_solution(m, a.values, 1e-6).feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalenceTest,
                         ::testing::Range<std::uint64_t>(300, 320));

}  // namespace
}  // namespace sb::lp
