# Empty compiler generated dependencies file for sb_calls.
# This may be replaced when dependencies are built.
