// Reproduces Fig 10: controller throughput as a function of the number of
// writer threads. Each call-signaling event (call start, participant join,
// config freeze, call end) updates controller state and writes it to the
// KV store (the paper's Redis), whose simulated per-op latency is the
// 0.3-4.2 ms range reported in §6.6. Threads overlap those waits, so
// throughput scales with the thread count; the paper sustains 1.4x the
// trace's peak load with 10 threads.
//
// Per-event-type latency percentiles come from the sb::obs registry (the
// controller times every event into sb.realtime.* histograms); each
// thread-count run is isolated with a snapshot diff. Build with
// -DSB_METRICS=OFF to measure the metrics layer's own overhead on this
// bench (EXPERIMENTS.md records the comparison).
//
// The realtime layer is lock-striped (no global event mutex), so the sweep
// doubles as the scaling check for the sharded call path: >2x the
// single-thread event rate at 8 threads is the acceptance bar.
//
// Flags: --hours=1 --threads_max=N (sweep 1..N; default covers
// hw_concurrency and at least 8) --threads=N (measure just 1 and N).
// Machine-readable results are emitted as `{"bench": ...}` JSON lines.
//
// Observability flags (the span-overhead experiment in BENCH_obs.json):
//   --tracing=on|off|flight  span recording mode — on (default ring), off
//                            (recorder disabled: one relaxed load per span
//                            site), flight (small 1024-slot ring, the
//                            black-box mode sb_fuzz arms)
//   --trace-out=FILE         Chrome trace-event dump at exit
//   --timeseries-out=FILE    TimeSeriesRecorder CSV sampled on the trace's
//                            sim clock (call start times) during the replay
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_export.h"

namespace sb {
namespace {

struct CallWork {
  const CallRecord* record;
  const CallConfig* config;
};

/// Replays one call's full event sequence against the controller + store.
/// Returns the number of store-backed events processed. `telemetry`
/// (optional) is offered the record's start time as the sim clock, so the
/// time-series cadence follows the trace rather than the wall clock.
std::size_t replay_call(Switchboard& controller, KvStore& store,
                        const CallWork& work,
                        obs::TimeSeriesRecorder* telemetry) {
  if (telemetry != nullptr) telemetry->sample(work.record->start_s);
  const CallRecord& r = *work.record;
  std::size_t events = 0;
  controller.call_started(r.id, r.legs.front().location, r.start_s);
  ++events;
  const std::string legs_key = "call:" + std::to_string(r.id.value()) + ":legs";
  for (std::size_t leg = 1; leg < r.legs.size(); ++leg) {
    // §6.6: "these threads write back to Redis the changes to the call
    // config as additional participants join".
    store.incr(legs_key, 1);
    ++events;
  }
  if (r.duration_s > controller.freeze_delay_s()) {
    controller.config_frozen(r.id, *work.config,
                             r.start_s + controller.freeze_delay_s());
    ++events;
  }
  controller.call_ended(r.id, r.start_s + r.duration_s);
  ++events;
  return events;
}

}  // namespace

int run(int argc, char** argv) {
  const double hours = bench::arg_double(argc, argv, "hours", 1.0);
  // Default sweep reaches hardware_concurrency and at least the paper's
  // interesting range (the acceptance point is 8 threads).
  const std::size_t default_max = std::max<std::size_t>(
      {std::thread::hardware_concurrency(), 8, 1});
  const std::size_t threads_max =
      bench::arg_size(argc, argv, "threads_max", default_max);
  const std::size_t threads_only = bench::arg_size(argc, argv, "threads", 0);
  const std::string tracing = bench::arg_string(argc, argv, "tracing", "on");
  const std::string trace_out = bench::arg_string(argc, argv, "trace-out", "");
  const std::string timeseries_out =
      bench::arg_string(argc, argv, "timeseries-out", "");

  if (tracing == "off") {
    obs::SpanRecorder::global().set_enabled(false);
  } else if (tracing == "flight") {
    obs::SpanRecorder::global().configure(
        {.enabled = true, .ring_capacity = 1024});
  } else if (tracing == "on") {
    obs::SpanRecorder::global().configure({.enabled = true});
  } else {
    std::cerr << "unknown --tracing mode '" << tracing
              << "' (want on|off|flight)\n";
    return 2;
  }
  obs::TimeSeriesRecorder telemetry(&obs::MetricsRegistry::global(),
                                    {.period_s = 60.0});

  std::vector<std::size_t> sweep;
  if (threads_only > 0) {
    sweep.push_back(1);
    if (threads_only > 1) sweep.push_back(threads_only);
  } else {
    for (std::size_t t = 1; t <= threads_max; t = t < 2 ? 2 : t + 2) {
      sweep.push_back(t);
    }
  }

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  const double start = kSecondsPerDay + 2.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + hours * kSecondsPerHour);
  std::vector<CallWork> work;
  work.reserve(db.size());
  std::size_t total_events = 0;
  for (const CallRecord& r : db.records()) {
    work.push_back({&r, &scenario.registry->get(r.config)});
    total_events += 1 + (r.legs.size() - 1) +
                    (r.duration_s > 300.0 ? 1 : 0) + 1;
  }

  // Peak event arrival rate of the trace (busiest 60 s window).
  std::vector<std::size_t> per_minute(
      static_cast<std::size_t>(hours * 60.0) + 1, 0);
  for (const CallRecord& r : db.records()) {
    const auto m = static_cast<std::size_t>((r.start_s - start) / 60.0);
    per_minute[std::min(m, per_minute.size() - 1)] +=
        2 + r.legs.size();  // rough events per call
  }
  double peak_rate = 0.0;
  for (std::size_t count : per_minute) {
    peak_rate = std::max(peak_rate, static_cast<double>(count) / 60.0);
  }

  std::cout << "Fig 10: controller throughput vs KV-store writer threads\n"
            << "trace: " << db.size() << " calls, " << total_events
            << " events, peak event rate "
            << format_double(peak_rate, 1) << "/s\n"
            << "KV write latency: 0.3-4.2 ms (log-uniform; the paper's "
               "observed Redis range)\n\n";

  // Latency columns are p50/p99 of the controller's per-event histograms
  // (sb.realtime.{start,freeze,end}_latency_s), in ms, isolated per run by
  // diffing registry snapshots. events/s is likewise counted by the
  // registry: every replayed event performs exactly one KV op.
  TextTable table({"threads", "events/s", "speedup", "x trace peak",
                   "start p50/p99 ms", "freeze p50/p99 ms", "end p50/p99 ms"});
  const auto latency_cell = [](const obs::MetricsSnapshot& delta,
                               const char* name) {
    const obs::HistogramSample* h = delta.find_histogram(name);
    if (h == nullptr || h->data.count == 0) return std::string("n/a");
    return format_double(h->data.p50() * 1e3, 2) + "/" +
           format_double(h->data.p99() * 1e3, 2);
  };
  double base_rate = 0.0;
  for (std::size_t threads : sweep) {
    KvStore store;
    ControllerOptions options;
    Switchboard controller(ctx, options);
    controller.attach_store(&store);

    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> events{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= work.size()) return;
          events += replay_call(controller, store, work[i],
                                timeseries_out.empty() ? nullptr : &telemetry);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const obs::MetricsSnapshot delta = obs::snapshot_diff(
        before, obs::MetricsRegistry::global().snapshot());
    // With metrics compiled in, trust the registry's event count (one KV op
    // per event); in a -DSB_METRICS=OFF build fall back to the local tally.
    const std::uint64_t counted =
        delta.counter_value("sb.kvstore.ops", events.load());
    const double rate = static_cast<double>(counted) / elapsed;
    if (base_rate == 0.0) base_rate = rate;
    table.row()
        .cell(static_cast<std::uint64_t>(threads))
        .cell(rate, 0)
        .cell(rate / base_rate)
        .cell(rate / peak_rate, 1)
        .cell(latency_cell(delta, "sb.realtime.start_latency_s"))
        .cell(latency_cell(delta, "sb.realtime.freeze_latency_s"))
        .cell(latency_cell(delta, "sb.realtime.end_latency_s"));
    const std::string suffix = ".t" + std::to_string(threads);
    bench::emit_json("fig10_controller_throughput", "events_per_s" + suffix,
                     rate);
    bench::emit_json("fig10_controller_throughput", "speedup" + suffix,
                     rate / base_rate);
  }
  std::cout << table;
  bench::emit_json("fig10_controller_throughput", "peak_event_rate_per_s",
                   peak_rate);
  std::cout << "\nthroughput scales with threads (threads overlap ~ms store "
               "writes); the paper reports 1.4x its production peak at 10 "
               "threads — our synthetic trace peak is far smaller than "
               "Teams's, hence the larger multiples\n";

  if (!timeseries_out.empty()) {
    // Last sample carries the final totals regardless of cadence alignment.
    telemetry.force_sample(start + hours * kSecondsPerHour);
    std::ofstream out(timeseries_out);
    if (out) {
      telemetry.write_csv(out);
      std::cout << "time series written to " << timeseries_out << " ("
                << telemetry.sample_count() << " samples, "
                << telemetry.column_count() << " columns)\n";
    } else {
      std::cerr << "cannot write " << timeseries_out << "\n";
    }
  }
  if (!trace_out.empty()) {
    std::uint64_t dropped = 0;
    if (obs::dump_chrome_trace(trace_out, &dropped)) {
      std::cout << "trace written to " << trace_out
                << (dropped > 0 ? " (ring wrapped; oldest spans dropped)" : "")
                << "\n";
    } else {
      std::cerr << "cannot write " << trace_out << "\n";
    }
  }
  return 0;
}

}  // namespace sb

int main(int argc, char** argv) { return sb::run(argc, argv); }
