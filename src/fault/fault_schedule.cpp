#include "fault/fault_schedule.h"

#include <algorithm>

#include "common/error.h"

namespace sb::fault {

FaultSchedule& FaultSchedule::dc_down(DcId dc, SimTime at) {
  require(dc.valid(), "FaultSchedule: invalid DC");
  events_.push_back({at, FaultEvent::Kind::kDcDown, dc, LinkId(), ServerId()});
  return *this;
}

FaultSchedule& FaultSchedule::dc_up(DcId dc, SimTime at) {
  require(dc.valid(), "FaultSchedule: invalid DC");
  events_.push_back({at, FaultEvent::Kind::kDcUp, dc, LinkId(), ServerId()});
  return *this;
}

FaultSchedule& FaultSchedule::link_down(LinkId link, SimTime at) {
  require(link.valid(), "FaultSchedule: invalid link");
  events_.push_back({at, FaultEvent::Kind::kLinkDown, DcId(), link, ServerId()});
  return *this;
}

FaultSchedule& FaultSchedule::link_up(LinkId link, SimTime at) {
  require(link.valid(), "FaultSchedule: invalid link");
  events_.push_back({at, FaultEvent::Kind::kLinkUp, DcId(), link, ServerId()});
  return *this;
}

FaultSchedule& FaultSchedule::server_down(ServerId server, SimTime at) {
  require(server.valid(), "FaultSchedule: invalid server");
  events_.push_back(
      {at, FaultEvent::Kind::kServerDown, DcId(), LinkId(), server});
  return *this;
}

FaultSchedule& FaultSchedule::server_up(ServerId server, SimTime at) {
  require(server.valid(), "FaultSchedule: invalid server");
  events_.push_back(
      {at, FaultEvent::Kind::kServerUp, DcId(), LinkId(), server});
  return *this;
}

FaultSchedule& FaultSchedule::worker_down(WorkerId worker, SimTime at) {
  require(worker.valid(), "FaultSchedule: invalid worker");
  events_.push_back({at, FaultEvent::Kind::kWorkerDown, DcId(), LinkId(),
                     ServerId(), worker});
  return *this;
}

FaultSchedule& FaultSchedule::worker_up(WorkerId worker, SimTime at) {
  require(worker.valid(), "FaultSchedule: invalid worker");
  events_.push_back({at, FaultEvent::Kind::kWorkerUp, DcId(), LinkId(),
                     ServerId(), worker});
  return *this;
}

FaultSchedule& FaultSchedule::fail_dc(DcId dc, SimTime at, double duration_s) {
  require(duration_s > 0.0, "FaultSchedule: outage duration");
  return dc_down(dc, at).dc_up(dc, at + duration_s);
}

FaultSchedule& FaultSchedule::fail_link(LinkId link, SimTime at,
                                        double duration_s) {
  require(duration_s > 0.0, "FaultSchedule: outage duration");
  return link_down(link, at).link_up(link, at + duration_s);
}

FaultSchedule& FaultSchedule::fail_server(ServerId server, SimTime at,
                                          double duration_s) {
  require(duration_s > 0.0, "FaultSchedule: outage duration");
  return server_down(server, at).server_up(server, at + duration_s);
}

FaultSchedule& FaultSchedule::fail_worker(WorkerId worker, SimTime at,
                                          double duration_s) {
  require(duration_s > 0.0, "FaultSchedule: outage duration");
  return worker_down(worker, at).worker_up(worker, at + duration_s);
}

std::vector<FaultEvent> FaultSchedule::events() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::size_t FaultSchedule::peak_slot(
    const std::vector<double>& dc_cores_by_slot) {
  require(!dc_cores_by_slot.empty(), "peak_slot: empty series");
  return static_cast<std::size_t>(
      std::max_element(dc_cores_by_slot.begin(), dc_cores_by_slot.end()) -
      dc_cores_by_slot.begin());
}

FaultSchedule FaultSchedule::each_dc_at_peak(
    const std::vector<std::vector<double>>& dc_cores, double slot_s, double t0,
    double duration_s) {
  require(slot_s > 0.0, "each_dc_at_peak: slot width");
  FaultSchedule schedule;
  for (std::size_t x = 0; x < dc_cores.size(); ++x) {
    const SimTime at =
        t0 + static_cast<double>(peak_slot(dc_cores[x])) * slot_s;
    schedule.fail_dc(DcId(static_cast<std::uint32_t>(x)), at, duration_s);
  }
  return schedule;
}

FaultSchedule FaultSchedule::random(Rng& rng, std::size_t dc_count,
                                    std::size_t link_count,
                                    std::size_t outages, double t0, double t1,
                                    double mean_outage_s,
                                    double link_fraction,
                                    std::size_t server_count,
                                    double server_fraction) {
  require(dc_count > 0, "FaultSchedule::random: no DCs");
  require(t1 > t0 && mean_outage_s > 0.0, "FaultSchedule::random: bounds");
  FaultSchedule schedule;
  for (std::size_t i = 0; i < outages; ++i) {
    const SimTime at = rng.uniform(t0, t1);
    const double duration = rng.exponential(1.0 / mean_outage_s);
    // Server draw first, but only when a fleet exists: with server_count == 0
    // the per-outage draw sequence is exactly the pre-fleet one.
    if (server_count > 0 && rng.chance(server_fraction)) {
      schedule.fail_server(
          ServerId(static_cast<std::uint32_t>(rng.uniform_index(server_count))),
          at, duration);
    } else if (link_count > 0 && rng.chance(link_fraction)) {
      schedule.fail_link(
          LinkId(static_cast<std::uint32_t>(rng.uniform_index(link_count))),
          at, duration);
    } else {
      schedule.fail_dc(
          DcId(static_cast<std::uint32_t>(rng.uniform_index(dc_count))), at,
          duration);
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::from_events(std::vector<FaultEvent> events) {
  for (const FaultEvent& e : events) {
    if (e.is_dc()) {
      require(e.dc.valid(), "FaultSchedule::from_events: invalid DC");
    } else if (e.is_server()) {
      require(e.server.valid(), "FaultSchedule::from_events: invalid server");
    } else if (e.is_worker()) {
      require(e.worker.valid(), "FaultSchedule::from_events: invalid worker");
    } else {
      require(e.link.valid(), "FaultSchedule::from_events: invalid link");
    }
  }
  FaultSchedule schedule;
  schedule.events_ = std::move(events);
  return schedule;
}

}  // namespace sb::fault
