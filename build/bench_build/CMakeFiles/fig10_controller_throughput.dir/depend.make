# Empty dependencies file for fig10_controller_throughput.
# This may be replaced when dependencies are built.
