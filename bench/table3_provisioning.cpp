// Reproduces Table 3: resources provisioned (compute cores, total WAN
// capacity), cost, and mean ACL for Round-Robin, Locality-First, and
// Switchboard, with and without backup capacity, normalized to RR.
//
// Paper's shape (values normalized to RR):
//                without backup               with backup
//          cores  WAN   cost  ACL       cores  WAN   cost  ACL
//   RR     1.00   1.00  1.00  1.00      1.00   1.00  1.00  1.00
//   LF     1.08   0.18  0.35  0.45      1.10   0.55  0.64  0.45
//   SB     1.00   0.14  0.29  0.51      1.00   0.43  0.49  0.45
//
// The absolute numbers depend on the (synthetic) workload and cost model;
// the orderings and rough factors are what this bench validates.
//
// Flags: --slot_s=7200 --configs=24 --rate_scale=1 --link_failures=1
#include <iostream>

#include "baselines/locality_first.h"
#include "baselines/round_robin.h"
#include "bench_util.h"
#include "core/allocation_plan.h"
#include "core/provisioner.h"

namespace sb {
namespace {

struct SchemeRow {
  std::string name;
  double cores = 0.0;
  double wan = 0.0;
  double compute_cost = 0.0;
  double network_cost = 0.0;
  double acl = 0.0;

  [[nodiscard]] double cost() const { return compute_cost + network_cost; }
};

void print_block(const std::string& title, const std::vector<SchemeRow>& rows) {
  print_banner(std::cout, title);
  const SchemeRow& rr = rows.front();
  TextTable table({"Scheme", "Cores", "WAN", "Cost", "Mean ACL", "Cores(raw)",
                   "WAN Gbps", "ACL ms", "cost(compute)", "cost(network)"});
  for (const SchemeRow& r : rows) {
    table.row()
        .cell(r.name)
        .cell(r.cores / rr.cores)
        .cell(r.wan / rr.wan)
        .cell(r.cost() / rr.cost())
        .cell(r.acl / rr.acl)
        .cell(r.cores, 1)
        .cell(r.wan, 3)
        .cell(r.acl, 1)
        .cell(r.compute_cost, 1)
        .cell(r.network_cost, 1);
  }
  std::cout << table;
}

}  // namespace

int run(int argc, char** argv) {
  const double slot_s = bench::arg_double(argc, argv, "slot_s", 7200.0);
  const std::size_t configs = bench::arg_size(argc, argv, "configs", 24);
  const double rate_scale = bench::arg_double(argc, argv, "rate_scale", 1.0);
  const bool link_failures =
      bench::arg_double(argc, argv, "link_failures", 1.0) != 0.0;

  std::cout << "Table 3: provisioning comparison (RR / LF / SB)\n"
            << "workload: APAC design day, slot=" << slot_s / 3600.0
            << "h, top-" << configs << " configs, rate_scale=" << rate_scale
            << ", link_failures=" << link_failures << "\n";

  Scenario scenario = make_apac_scenario({.rate_scale = rate_scale});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const DemandMatrix demand =
      bench::design_day_demand(scenario, slot_s, configs);
  std::cout << "total concurrent-call demand (slot-summed): "
            << format_double(demand.total(), 0) << "\n";

  const World& world = scenario.world();
  const Topology& topo = scenario.topology();

  for (const bool with_backup : {false, true}) {
    BaselineOptions base_options;
    base_options.with_backup = with_backup;
    base_options.include_link_failures = link_failures;
    const BaselineResult rr =
        provision_round_robin(demand, ctx, base_options);
    const BaselineResult lf =
        provision_locality_first(demand, ctx, base_options);

    ProvisionOptions sb_options;
    sb_options.with_backup = with_backup;
    sb_options.include_link_failures = link_failures;
    SwitchboardProvisioner provisioner(ctx, sb_options);
    const ProvisionResult sb = provisioner.provision(demand);

    // §6.3: with backup capacity, Switchboard's allocation stage (Eq 10)
    // serves locally and matches LF's latency; report the operated ACL.
    double sb_acl = sb.mean_acl_ms;
    if (with_backup) {
      AllocationPlanner planner(ctx, {});
      sb_acl = planner.plan(demand, sb.capacity, slot_s).mean_acl_ms;
    }

    std::vector<SchemeRow> rows;
    rows.push_back({"RR", rr.capacity.total_cores(),
                    rr.capacity.total_wan_gbps(),
                    rr.capacity.compute_cost(world),
                    rr.capacity.network_cost(topo), rr.mean_acl_ms});
    rows.push_back({"LF", lf.capacity.total_cores(),
                    lf.capacity.total_wan_gbps(),
                    lf.capacity.compute_cost(world),
                    lf.capacity.network_cost(topo), lf.mean_acl_ms});
    rows.push_back({"SB", sb.capacity.total_cores(),
                    sb.capacity.total_wan_gbps(),
                    sb.capacity.compute_cost(world),
                    sb.capacity.network_cost(topo), sb_acl});
    print_block(with_backup ? "With backup capacity (single DC or WAN link "
                              "failure survivable)"
                            : "Without backup capacity",
                rows);

    const double savings_rr = 1.0 - rows[2].cost() / rows[0].cost();
    const double savings_lf = 1.0 - rows[2].cost() / rows[1].cost();
    std::cout << "SB cost savings: " << format_double(100.0 * savings_rr, 0)
              << "% vs RR, " << format_double(100.0 * savings_lf, 0)
              << "% vs LF (paper with backup: 51% and 23%)\n";
  }
  return 0;
}

}  // namespace sb

int main(int argc, char** argv) { return sb::run(argc, argv); }
