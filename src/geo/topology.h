// WAN topology: an undirected graph over locations with per-link latency and
// per-Gbps cost. Traffic between a DC and a participant location follows the
// latency-shortest path, which fixes the paper's Path(x,u) / InPath(l,x,u)
// predicates (Table 2). Link failures do NOT reroute traffic — the
// provisioning LP instead shifts calls to DCs whose fixed path avoids the
// failed link, exactly as in §5.3's failure model.
#pragma once

#include <vector>

#include "common/types.h"
#include "geo/world.h"

namespace sb {

/// One undirected WAN link between two location nodes.
struct WanLink {
  LocationId a;
  LocationId b;
  double latency_ms = 0.0;    ///< one-way propagation + switching latency
  double cost_per_gbps = 1.0; ///< Eq 3's WAN_Cost(l)
  std::string name;           ///< e.g. "JP-HK"
};

/// The WAN graph plus precomputed all-pairs shortest paths.
///
/// Usage: add links, then call compute_paths() once; queries throw if paths
/// have not been computed or the graph is disconnected for the queried pair.
class Topology {
 public:
  explicit Topology(const World& world);

  LinkId add_link(LocationId a, LocationId b, double latency_ms,
                  double cost_per_gbps);

  /// Runs Dijkstra from every node and materializes every path. Must be
  /// called after the last add_link() and before any query below.
  void compute_paths();

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const WanLink& link(LinkId id) const;
  [[nodiscard]] const std::vector<WanLink>& links() const { return links_; }
  [[nodiscard]] std::vector<LinkId> link_ids() const;

  /// One-way latency of the shortest path between two location nodes.
  /// Zero when from == to. Throws if the pair is disconnected.
  [[nodiscard]] double distance_ms(LocationId from, LocationId to) const;

  /// Links on the shortest path between two nodes (empty when from == to).
  [[nodiscard]] const std::vector<LinkId>& path(LocationId from,
                                                LocationId to) const;

  /// Table 2's InPath(l, x, u) with x expressed as its location node.
  [[nodiscard]] bool in_path(LinkId link, LocationId from, LocationId to) const;

  /// True if every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// Links with exactly one endpoint equal to `node`.
  [[nodiscard]] std::vector<LinkId> incident_links(LocationId node) const;

  [[nodiscard]] std::size_t node_count() const { return node_count_; }

 private:
  [[nodiscard]] std::size_t pair_index(LocationId from, LocationId to) const;
  void check_ready() const;

  std::size_t node_count_;
  std::vector<WanLink> links_;
  std::vector<std::vector<std::pair<std::uint32_t, LinkId>>> adjacency_;
  // Flattened [from][to] tables, valid after compute_paths().
  std::vector<double> dist_ms_;
  std::vector<std::vector<LinkId>> paths_;
  bool ready_ = false;
};

/// Parameters for synthesizing plausible link costs: submarine/cross-region
/// links are disproportionately expensive, which is what gives the joint
/// compute+network optimization (§4.3) something to trade off.
struct LinkCostParams {
  double base = 4.0;                   ///< fixed cost per Gbps per link
  double per_km = 0.015;               ///< distance-proportional component
  double cross_region_multiplier = 1.6;
};

/// Builds a connected topology by linking every location to its `k` nearest
/// neighbors (by great-circle distance) and then bridging any remaining
/// components via their closest location pair. Latency per link is
/// distance / 200 km/ms + 1 ms switching.
Topology build_knn_topology(const World& world, std::size_t k,
                            const LinkCostParams& costs = {});

}  // namespace sb
