// Call configurations (§5.1): the unit of forecasting and provisioning.
// A config is the multiset of participant locations plus the call's media
// type, e.g. ((India-2, Japan-1), audio). Calls with the same config are
// fungible for resource purposes, and there are orders of magnitude fewer
// configs than calls, which is what keeps the LP tractable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "calls/media.h"
#include "common/types.h"

namespace sb {

class World;

/// One (location, participant count) component of a call config.
struct ConfigEntry {
  LocationId location;
  std::uint32_t count = 0;

  friend bool operator==(const ConfigEntry&, const ConfigEntry&) = default;
};

/// A canonicalized call configuration. Construct via make(); entries are
/// sorted by location and duplicate locations are merged, so equal configs
/// compare equal structurally.
class CallConfig {
 public:
  /// Builds a canonical config. Throws if entries is empty, any count is 0,
  /// or any location id is invalid.
  static CallConfig make(std::vector<ConfigEntry> entries, MediaType media);

  [[nodiscard]] const std::vector<ConfigEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] MediaType media() const { return media_; }

  [[nodiscard]] std::uint32_t total_participants() const;

  /// Location contributing the most participants (ties: lowest id). §5.4
  /// uses this: ~95% of calls have the first joiner in the majority country.
  [[nodiscard]] LocationId majority_location() const;

  /// True if all participants share one location ("intra-country" in §6.3).
  [[nodiscard]] bool single_location() const { return entries_.size() == 1; }

  /// Human-readable form, e.g. "((IN-2,JP-1),audio)".
  [[nodiscard]] std::string describe(const World& world) const;

  [[nodiscard]] std::size_t hash() const;

  friend bool operator==(const CallConfig&, const CallConfig&) = default;

 private:
  CallConfig(std::vector<ConfigEntry> entries, MediaType media)
      : entries_(std::move(entries)), media_(media) {}

  std::vector<ConfigEntry> entries_;
  MediaType media_ = MediaType::kAudio;
};

/// Interns CallConfigs into dense ConfigIds so downstream modules can use
/// vectors keyed by config. Not thread-safe; populate before fan-out.
class CallConfigRegistry {
 public:
  /// Returns the existing id for an equal config, or registers a new one.
  ConfigId intern(const CallConfig& config);

  /// Lookup without inserting; invalid ConfigId if absent.
  [[nodiscard]] ConfigId find(const CallConfig& config) const;

  [[nodiscard]] const CallConfig& get(ConfigId id) const;
  [[nodiscard]] std::size_t size() const { return configs_.size(); }
  [[nodiscard]] std::vector<ConfigId> ids() const;

 private:
  struct Hash {
    std::size_t operator()(const CallConfig& c) const { return c.hash(); }
  };
  std::vector<CallConfig> configs_;
  std::unordered_map<CallConfig, ConfigId, Hash> index_;
};

}  // namespace sb
