// Reproduces Fig 9: CDF of peak-normalized RMSE and MAE of the per-config
// Holt-Winters forecasts over the most popular configs. The paper fits 9
// months of history, forecasts 3 months ahead, and reports median RMSE 13%
// and median MAE 8% over the top-1000 configs.
//
// Laptop-scale defaults fit 8 weeks and forecast 2 weeks over the top 150
// configs; override with --history_weeks, --horizon_weeks, --configs.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "forecast/forecaster.h"

int main(int argc, char** argv) {
  using namespace sb;
  const std::size_t history_weeks =
      bench::arg_size(argc, argv, "history_weeks", 8);
  const std::size_t horizon_weeks =
      bench::arg_size(argc, argv, "horizon_weeks", 2);
  const std::size_t config_count = bench::arg_size(argc, argv, "configs", 150);

  Scenario scenario = make_apac_scenario({.config_count = 1500});
  const TraceGenerator& trace = *scenario.trace;
  const double bucket_s = trace.params().bucket_s;
  const auto season = static_cast<std::size_t>(kSecondsPerWeek / bucket_s);
  const double history_end = history_weeks * kSecondsPerWeek;
  const double horizon_end = history_end + horizon_weeks * kSecondsPerWeek;

  const std::size_t n =
      std::min(config_count, trace.universe().configs.size());
  std::vector<double> rmses;
  std::vector<double> maes;
  rmses.reserve(n);
  maes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto history = trace.arrival_count_series(i, 0.0, history_end);
    const auto truth =
        trace.arrival_count_series(i, history_end, horizon_end);
    const auto forecast = forecast_calls(history, season, truth.size());
    const NormalizedErrors e = normalized_errors(truth, forecast);
    rmses.push_back(e.rmse);
    maes.push_back(e.mae);
  }

  std::cout << "Fig 9: CDF of peak-normalized forecast errors over the top "
            << n << " configs (" << history_weeks << "w history, "
            << horizon_weeks << "w horizon)\n\n";
  TextTable table({"CDF", "RMSE", "MAE"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    table.row()
        .cell(format_double(q, 2))
        .cell(quantile(rmses, q), 3)
        .cell(quantile(maes, q), 3);
  }
  std::cout << table;
  std::cout << "\nmedians: RMSE " << format_double(100.0 * median(rmses), 1)
            << "%, MAE " << format_double(100.0 * median(maes), 1)
            << "%  (paper: 13% and 8%)\n";
  return 0;
}
