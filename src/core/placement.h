// Placement matrices: the S_tcx decision of Table 2 — how many calls of
// config column c in slot t are hosted at DC x — plus the usage accounting
// derived from a placement (per-DC core usage, per-link traffic, mean ACL).
// Both baselines and Switchboard produce PlacementMatrix values, so every
// scheme is evaluated by the exact same accounting code.
#pragma once

#include <vector>

#include "calls/acl.h"
#include "calls/demand.h"
#include "core/capacity_plan.h"

namespace sb {

/// Dense slots x config-columns x DCs tensor of (fractional) call counts.
/// Column order matches the DemandMatrix the placement was built against.
class PlacementMatrix {
 public:
  PlacementMatrix(std::size_t slot_count, std::size_t config_count,
                  std::size_t dc_count);

  [[nodiscard]] double calls(TimeSlot t, std::size_t config_col,
                             DcId dc) const;
  void set_calls(TimeSlot t, std::size_t config_col, DcId dc, double calls);
  void add_calls(TimeSlot t, std::size_t config_col, DcId dc, double calls);

  [[nodiscard]] std::size_t slot_count() const { return slots_; }
  [[nodiscard]] std::size_t config_count() const { return configs_; }
  [[nodiscard]] std::size_t dc_count() const { return dcs_; }

  /// Sum over DCs of calls(t, c, x).
  [[nodiscard]] double total_calls(TimeSlot t, std::size_t config_col) const;

 private:
  [[nodiscard]] std::size_t index(TimeSlot t, std::size_t c, DcId dc) const;
  std::size_t slots_;
  std::size_t configs_;
  std::size_t dcs_;
  std::vector<double> cells_;
};

/// Resource usage implied by a placement.
struct UsageProfile {
  /// dc_cores[x][t]: cores used at DC x in slot t.
  std::vector<std::vector<double>> dc_cores;
  /// link_gbps[l][t]: traffic on link l in slot t (Gbps).
  std::vector<std::vector<double>> link_gbps;

  [[nodiscard]] std::vector<double> dc_peaks() const;
  [[nodiscard]] std::vector<double> link_peaks() const;
};

/// Inputs common to every usage/ACL computation.
struct EvalContext {
  const World* world = nullptr;
  const Topology* topology = nullptr;
  const LatencyMatrix* latency = nullptr;
  const CallConfigRegistry* registry = nullptr;
  const LoadModel* loads = nullptr;
};

/// Computes per-slot core and link usage of a placement. A call of config c
/// at DC x consumes CL(media) cores per participant and NL(media) Mbps per
/// participant across every link of the WAN path from x to that
/// participant's location (Eq 5/6).
UsageProfile compute_usage(const PlacementMatrix& placement,
                           const DemandMatrix& demand, const EvalContext& ctx);

/// Call-weighted mean ACL of a placement (the Table 3 "Mean ACL" metric).
double mean_acl_ms(const PlacementMatrix& placement, const DemandMatrix& demand,
                   const EvalContext& ctx);

/// A capacity plan covering exactly this placement's peaks: serving cores =
/// per-DC peak usage, links = per-link peak usage, no backup.
CapacityPlan plan_from_usage(const UsageProfile& usage);

/// Mbps -> Gbps conversion used by the accounting.
inline constexpr double kMbpsPerGbps = 1000.0;

/// Resource footprint of hosting one call of a config at one DC: the
/// per-call coefficients the LP builder and the usage accounting share.
struct HostingProfile {
  double cores_per_call = 0.0;
  /// Gbps per call on each WAN link its legs traverse (aggregated across
  /// participants; a link appears once).
  std::vector<std::pair<LinkId, double>> link_gbps_per_call;
  double acl_ms = 0.0;
};

HostingProfile make_hosting_profile(const CallConfig& config, DcId dc,
                                    const EvalContext& ctx);

}  // namespace sb
