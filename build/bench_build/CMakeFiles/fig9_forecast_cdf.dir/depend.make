# Empty dependencies file for fig9_forecast_cdf.
# This may be replaced when dependencies are built.
