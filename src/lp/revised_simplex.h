// Production LP solver: two-phase revised simplex with sparse columns and a
// dense, periodically refactorized basis inverse. The provisioning LP's
// columns are very sparse (a call-share variable touches one compute row,
// one completeness row, and the few WAN rows on its path), which makes
// pricing and FTRAN cheap; the dense basis-inverse update is the O(m^2)
// cost per pivot.
#pragma once

#include "lp/dense_simplex.h"
#include "lp/standard_form.h"

namespace sb::lp {

/// Solves a standard-form LP with the revised simplex method.
SfSolution solve_revised(const StandardForm& sf, const SimplexOptions& options);

}  // namespace sb::lp
