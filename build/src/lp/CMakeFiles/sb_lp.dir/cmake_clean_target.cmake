file(REMOVE_RECURSE
  "libsb_lp.a"
)
