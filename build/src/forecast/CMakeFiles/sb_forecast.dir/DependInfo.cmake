
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/forecaster.cpp" "src/forecast/CMakeFiles/sb_forecast.dir/forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/sb_forecast.dir/forecaster.cpp.o.d"
  "/root/repo/src/forecast/holt_winters.cpp" "src/forecast/CMakeFiles/sb_forecast.dir/holt_winters.cpp.o" "gcc" "src/forecast/CMakeFiles/sb_forecast.dir/holt_winters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/calls/CMakeFiles/sb_calls.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sb_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
