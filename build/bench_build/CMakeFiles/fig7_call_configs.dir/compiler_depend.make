# Empty compiler generated dependencies file for fig7_call_configs.
# This may be replaced when dependencies are built.
