#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sb {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return count_ == 0 ? 0.0 : min_; }

double Summary::max() const { return count_ == 0 ? 0.0 : max_; }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  require(!xs.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double rmse(std::span<const double> truth, std::span<const double> estimate) {
  require(truth.size() == estimate.size(), "rmse: size mismatch");
  require(!truth.empty(), "rmse: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - estimate[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mae(std::span<const double> truth, std::span<const double> estimate) {
  require(truth.size() == estimate.size(), "mae: size mismatch");
  require(!truth.empty(), "mae: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - estimate[i]);
  }
  return acc / static_cast<double>(truth.size());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t points) {
  require(!samples.empty(), "empirical_cdf: empty input");
  require(points >= 2, "empirical_cdf: need at least 2 points");
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(points);
  const auto n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < points; ++i) {
    const double frac =
        static_cast<double>(i + 1) / static_cast<double>(points);
    const auto idx = static_cast<std::size_t>(
        std::min(n - 1.0, std::ceil(frac * n) - 1.0));
    cdf.push_back({samples[idx], frac});
  }
  return cdf;
}

}  // namespace sb
