file(REMOVE_RECURSE
  "libsb_calls.a"
)
