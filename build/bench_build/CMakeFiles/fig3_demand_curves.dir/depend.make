# Empty dependencies file for fig3_demand_curves.
# This may be replaced when dependencies are built.
