#include "cluster/wal.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace sb::cluster {

std::string wal_shard_prefix(std::size_t shard) {
  return "wal:" + std::to_string(shard) + ":";
}

std::string wal_key(std::size_t shard, CallId call) {
  return wal_shard_prefix(shard) + std::to_string(call.value());
}

CallId call_from_wal_key(const std::string& key) {
  const std::size_t colon = key.rfind(':');
  require(colon != std::string::npos && colon + 1 < key.size(),
          "call_from_wal_key: malformed key");
  return CallId(
      static_cast<std::uint32_t>(std::strtoul(key.c_str() + colon + 1,
                                              nullptr, 10)));
}

std::string encode_wal_record(const RealtimeSelector::CallSnapshot& snap) {
  // %a keeps `cores` exact across the round trip; ids are stored raw so the
  // kInvalid sentinel survives too.
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "dc=%" PRIu32 " fj=%" PRIu32 " col=%zu slot=%d sdc=%" PRIu32
                " cores=%a srv=%" PRIu32,
                snap.dc.value(), snap.first_joiner.value(), snap.plan_col,
                snap.holds_slot ? 1 : 0, snap.slot_dc.value(), snap.cores,
                snap.server.value());
  return buf;
}

RealtimeSelector::CallSnapshot decode_wal_record(const std::string& record) {
  std::uint32_t dc = 0;
  std::uint32_t fj = 0;
  std::size_t col = 0;
  int slot = 0;
  std::uint32_t sdc = 0;
  double cores = 0.0;
  std::uint32_t srv = 0;
  const int fields = std::sscanf(
      record.c_str(),
      "dc=%" SCNu32 " fj=%" SCNu32 " col=%zu slot=%d sdc=%" SCNu32
      " cores=%la srv=%" SCNu32,
      &dc, &fj, &col, &slot, &sdc, &cores, &srv);
  require(fields == 7, "decode_wal_record: malformed record");
  return RealtimeSelector::CallSnapshot{
      DcId(dc),   LocationId(fj), col,         slot != 0,
      DcId(sdc),  cores,          ServerId(srv)};
}

}  // namespace sb::cluster
