# Empty compiler generated dependencies file for calls_test.
# This may be replaced when dependencies are built.
