#include "fault/failover.h"

#include <algorithm>

#include "common/error.h"

namespace sb::fault {

double over_capacity_core_s(
    const std::vector<std::vector<double>>& dc_cores_buckets,
    const std::vector<double>& capacity_cores, double bucket_s) {
  require(bucket_s > 0.0, "over_capacity_core_s: bucket width");
  require(dc_cores_buckets.size() == capacity_cores.size(),
          "over_capacity_core_s: shape mismatch");
  double total = 0.0;
  for (std::size_t x = 0; x < dc_cores_buckets.size(); ++x) {
    for (double used : dc_cores_buckets[x]) {
      total += std::max(0.0, used - capacity_cores[x]) * bucket_s;
    }
  }
  return total;
}

}  // namespace sb::fault
