// In-memory sharded key-value store standing in for the Azure Redis
// instance the paper's controller writes call state to (§6.6). Each
// operation optionally injects a simulated network round-trip in the
// 0.3-4.2 ms range the paper reports for writes, which is what makes the
// Fig 10 throughput experiment scale with writer threads: threads overlap
// their waits on the (remote) store.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sb {

struct KvStoreOptions {
  std::size_t shard_count = 16;
  bool inject_latency = true;
  /// Injected per-op latency is log-uniform over [min, max] ms, matching
  /// the paper's observed 0.3-4.2 ms write latencies.
  double min_latency_ms = 0.3;
  double max_latency_ms = 4.2;
  std::uint64_t seed = 0x5b0a;
};

/// Thread-safe string store with per-shard locking. Latency injection
/// happens outside the shard lock (it models the network, not the server),
/// so concurrent clients overlap their waits.
class KvStore {
 public:
  explicit KvStore(KvStoreOptions options = {});

  void set(const std::string& key, std::string value);
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  /// Atomically adds `delta` to an integer value (missing keys start at 0);
  /// returns the new value.
  std::int64_t incr(const std::string& key, std::int64_t delta);
  /// Removes a key; returns whether it existed.
  bool erase(const std::string& key);

  [[nodiscard]] std::size_t size() const;

  // --- Versioned CAS (the cluster coordinator's fencing primitive) ---

  /// A value plus its monotone per-key version. Every plain `set` bumps the
  /// version too, so CAS users and blind writers can share a key.
  struct Versioned {
    std::string value;
    std::uint64_t version = 0;
  };
  [[nodiscard]] std::optional<Versioned> get_versioned(
      const std::string& key) const;
  /// Compare-and-swap on the key's version. `expected_version == 0` means
  /// "create only if absent". On success stores `value` and returns the new
  /// version; on version mismatch (or create-on-existing) returns nullopt
  /// and leaves the entry untouched.
  std::optional<std::uint64_t> put_if(const std::string& key,
                                      std::string value,
                                      std::uint64_t expected_version);

  /// All keys starting with `prefix`, sorted by key for deterministic
  /// replay. Snapshot semantics per shard (not cross-shard atomic), which
  /// is fine for the cluster WAL: replay only runs on quiesced shards.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& prefix) const;

  // --- TTL leases (cluster worker liveness) ---
  //
  // Leases live in their own table keyed by name; expiry is driven by a
  // caller-supplied clock (sim time in tests and in the cluster layer) so
  // behaviour stays deterministic. `version` bumps on every acquire/renew,
  // giving lease holders a fencing token.

  struct LeaseInfo {
    std::string owner;
    double expires_at = 0.0;
    std::uint64_t version = 0;
  };
  /// Grants (or re-grants to the same owner) when the lease is absent,
  /// expired at `now`, or already held by `owner`; refuses otherwise.
  bool acquire_lease(const std::string& key, const std::string& owner,
                     double ttl_s, double now);
  /// Extends only an unexpired lease held by `owner`.
  bool renew_lease(const std::string& key, const std::string& owner,
                   double ttl_s, double now);
  /// Drops the lease if held by `owner`; returns whether it was.
  bool release_lease(const std::string& key, const std::string& owner);
  [[nodiscard]] std::optional<LeaseInfo> lease(const std::string& key) const;
  /// Sweeps out every lease expired at `now`; returns the expired keys
  /// (sorted) so the caller can react to each lapse.
  std::vector<std::string> expire_leases(double now);

  /// Snapshot view over the per-instance latency histogram (kept for
  /// backward compatibility with the pre-sb::obs API). With SB_METRICS=OFF
  /// all fields are zero.
  struct OpStats {
    std::uint64_t ops = 0;
    double total_latency_ms = 0.0;
    double min_latency_ms = 0.0;
    double max_latency_ms = 0.0;

    [[nodiscard]] double mean_latency_ms() const {
      return ops == 0 ? 0.0 : total_latency_ms / static_cast<double>(ops);
    }
  };
  [[nodiscard]] OpStats stats() const;
  void reset_stats();

  /// Per-instance op latency distribution (seconds). The same samples also
  /// feed the process-wide `sb.kvstore.op_latency_s` registry histogram.
  [[nodiscard]] obs::HistogramData latency_histogram() const {
    return latency_.collect();
  }

 private:
  struct Entry {
    std::string value;
    std::uint64_t version = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key) const;
  /// Sleeps for a sampled latency and records it; no-op when injection is
  /// disabled.
  void simulate_network() const;

  KvStoreOptions options_;
  mutable std::vector<Shard> shards_;
  mutable std::mutex lease_mutex_;
  std::unordered_map<std::string, LeaseInfo> leases_;
  /// Sharded-atomic latency histogram: the realtime write path records one
  /// sample with no lock (the old OpStats took a mutex per op for min/max).
  mutable obs::Histogram latency_;
  obs::Counter& ops_metric_;            ///< sb.kvstore.ops
  obs::Histogram& latency_metric_;      ///< sb.kvstore.op_latency_s
};

}  // namespace sb
