// Tests for the §8 call-config prediction stack: MOMC, logistic regression,
// and the end-to-end model-vs-previous-instance comparison.
#include <gtest/gtest.h>

#include "geo/world_presets.h"
#include "predict/config_predictor.h"

namespace sb {
namespace {

TEST(MomcTest, LearnsAlwaysAttendPattern) {
  MarkovAttendanceModel model(3, 2);
  const std::vector<std::uint8_t> always(20, 1);
  model.observe(always);
  const std::vector<std::uint8_t> history{1, 1, 1};
  EXPECT_GT(model.predict(history), 0.85);
}

TEST(MomcTest, LearnsAlternatingPattern) {
  MarkovAttendanceModel model(3, 2);
  std::vector<std::uint8_t> alternating;
  for (int i = 0; i < 40; ++i) alternating.push_back(i % 2);
  model.observe(alternating);
  const std::vector<std::uint8_t> after_attend{0, 1};
  const std::vector<std::uint8_t> after_miss{1, 0};
  EXPECT_LT(model.predict(after_attend), 0.25);
  EXPECT_GT(model.predict(after_miss), 0.75);
}

TEST(MomcTest, BacksOffToGlobalRateWithoutSupport) {
  MarkovAttendanceModel model(3, 100);  // huge support requirement
  std::vector<std::uint8_t> bits{1, 1, 0, 1, 1, 0, 1, 1};
  model.observe(bits);
  const std::vector<std::uint8_t> history{1, 0};
  EXPECT_NEAR(model.predict(history), model.global_rate(), 1e-9);
  EXPECT_GT(model.global_rate(), 0.5);
}

TEST(MomcTest, ContextsOfDifferentLengthsDoNotCollide) {
  MarkovAttendanceModel model(2, 1);
  // "0" contexts behave differently from "00" contexts.
  std::vector<std::uint8_t> seq{0, 1, 0, 0, 0, 1, 0, 0, 0, 1};
  model.observe(seq);
  const auto probs =
      model.order_probs(std::vector<std::uint8_t>{0, 0});
  EXPECT_EQ(probs.size(), 2u);
}

TEST(LogisticTest, LearnsLinearlySeparableData) {
  Rng rng(5);
  std::vector<std::vector<double>> xs;
  std::vector<std::uint8_t> ys;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    xs.push_back({a, b});
    ys.push_back(a + b > 0.0 ? 1 : 0);
  }
  LogisticRegression model(2);
  LogisticOptions options;
  options.epochs = 80;
  model.fit(xs, ys, options);
  int correct = 0;
  for (int i = 0; i < 400; ++i) {
    const bool predicted = model.predict_prob(xs[i]) > 0.5;
    if (predicted == (ys[i] != 0)) ++correct;
  }
  EXPECT_GT(correct, 360);  // > 90% on training data
}

TEST(LogisticTest, ValidatesShapes) {
  LogisticRegression model(3);
  EXPECT_THROW(model.fit({{1.0, 2.0}}, {1}), InvalidArgument);
  EXPECT_THROW(model.fit({}, {}), InvalidArgument);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(model.predict_prob(wrong), InvalidArgument);
}

TEST(MeetingSeriesTest, GeneratorShapesAreSane) {
  const GeoModel apac = make_apac_world();
  Rng rng(17);
  SeriesGenParams params;
  params.series_count = 60;
  const auto series = generate_meeting_series(apac.world, params, rng);
  ASSERT_EQ(series.size(), 60u);
  bool saw_large = false;
  for (const MeetingSeries& s : series) {
    EXPECT_GE(s.roster.size(), params.min_roster);
    EXPECT_LE(s.roster.size(), params.large_roster);
    EXPECT_GE(s.instances(), params.min_instances);
    EXPECT_LE(s.instances(), params.max_instances);
    if (s.roster.size() > params.max_roster) saw_large = true;
    for (const auto& inst : s.attendance) {
      EXPECT_EQ(inst.size(), s.roster.size());
    }
  }
  EXPECT_TRUE(saw_large);  // §8's "dozens or even hundreds" tail
}

TEST(ConfigPredictorTest, BeatsPreviousInstanceBaseline) {
  // §8's headline: the MOMC+logistic model has far lower RMSE/MAE than
  // predicting "same as last instance".
  const GeoModel apac = make_apac_world();
  Rng rng(23);
  SeriesGenParams params;
  params.series_count = 250;
  auto series = generate_meeting_series(apac.world, params, rng);
  const std::size_t split = series.size() * 3 / 4;
  std::vector<MeetingSeries> train(series.begin(),
                                   series.begin() + static_cast<long>(split));
  std::vector<MeetingSeries> test(series.begin() + static_cast<long>(split),
                                  series.end());

  ConfigPredictor model;
  model.train(train);
  const PredictionEval ours =
      evaluate_model(model, test, apac.world.location_count());
  const PredictionEval baseline =
      evaluate_previous_instance(test, apac.world.location_count());

  EXPECT_GT(ours.instances, 20u);
  EXPECT_LT(ours.rmse, baseline.rmse * 0.75);
  EXPECT_LT(ours.mae, baseline.mae * 0.75);
}

TEST(ConfigPredictorTest, ProbabilitiesAreCalibratedForStickyAttendees) {
  const GeoModel apac = make_apac_world();
  Rng rng(29);
  SeriesGenParams params;
  params.series_count = 120;
  auto series = generate_meeting_series(apac.world, params, rng);
  ConfigPredictor model;
  model.train(series);
  // A participant who attended everything should be predicted to attend.
  MeetingSeries synthetic;
  synthetic.roster = {LocationId(0)};
  synthetic.attendance.assign(10, {1});
  EXPECT_GT(model.attendance_prob(synthetic, 0, 10), 0.6);
  MeetingSeries absent;
  absent.roster = {LocationId(0)};
  absent.attendance.assign(10, {0});
  EXPECT_LT(model.attendance_prob(absent, 0, 10), 0.4);
}

TEST(MeetingSeriesTest, LocationCounts) {
  MeetingSeries s;
  s.roster = {LocationId(0), LocationId(1), LocationId(0)};
  s.attendance = {{1, 1, 0}, {1, 0, 1}};
  const auto counts = s.location_counts(1, 3);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 0.0);
}

}  // namespace
}  // namespace sb
