// Failure scenarios of §5.3's failure model: no failure, any single DC, or
// any single WAN link. Provisioning solves one LP per scenario and combines
// capacities with a per-resource max (Eq 7/8).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "geo/topology.h"
#include "geo/world.h"

namespace sb {

struct FailureScenario {
  enum class Type { kNone, kDc, kLink };

  Type type = Type::kNone;
  DcId dc;      ///< valid iff type == kDc
  LinkId link;  ///< valid iff type == kLink
  std::string name;

  [[nodiscard]] static FailureScenario none();
  [[nodiscard]] static FailureScenario dc_failure(DcId dc, const World& world);
  [[nodiscard]] static FailureScenario link_failure(LinkId link,
                                                    const Topology& topo);
};

/// All scenarios: F0, one per DC, and (optionally) one per WAN link.
std::vector<FailureScenario> enumerate_failures(const World& world,
                                                const Topology& topo,
                                                bool include_link_failures);

/// True if DC `dc` can host config legs in this scenario: the DC itself has
/// not failed. Link feasibility is per (config, dc) — see uses_failed_link.
bool dc_available(const FailureScenario& scenario, DcId dc);

/// True if hosting a call at `dc_location` with a participant at
/// `participant` would traverse the scenario's failed link. Paths are fixed
/// (no rerouting, §5.3): such placements are simply forbidden.
bool uses_failed_link(const FailureScenario& scenario, const Topology& topo,
                      LocationId dc_location, LocationId participant);

}  // namespace sb
