file(REMOVE_RECURSE
  "CMakeFiles/core_provision_test.dir/core_provision_test.cpp.o"
  "CMakeFiles/core_provision_test.dir/core_provision_test.cpp.o.d"
  "core_provision_test"
  "core_provision_test.pdb"
  "core_provision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_provision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
