// Quickstart: the smallest end-to-end use of the Switchboard library.
//
//   1. Describe a world (countries, datacenters, WAN links).
//   2. Describe the expected workload as a demand matrix over call configs.
//   3. Provision capacity (the Eq 3-9 LP, surviving any single DC failure).
//   4. Build a daily allocation plan (Eq 10) and serve calls in real time.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "common/table.h"
#include "core/controller.h"

int main() {
  using namespace sb;

  // --- 1. A tiny world: two countries, a DC in each, one WAN link. ---
  World world;
  const LocationId us = world.add_location(
      {"US", 40.7, -74.0, -5.0, /*population_weight=*/10.0, "NA"});
  const LocationId uk = world.add_location(
      {"UK", 51.5, -0.1, 0.0, /*population_weight=*/6.0, "NA"});
  world.add_datacenter({"DC-US", us, /*core_cost=*/1.0});
  world.add_datacenter({"DC-UK", uk, /*core_cost=*/1.1});

  Topology topology(world);
  topology.add_link(us, uk, /*latency_ms=*/35.0, /*cost_per_gbps=*/60.0);
  topology.compute_paths();
  const LatencyMatrix latency = LatencyMatrix::from_topology(world, topology);

  // --- 2. Workload: two call configs over a 4-slot "day". ---
  CallConfigRegistry registry;
  const ConfigId us_meeting =
      registry.intern(CallConfig::make({{us, 4}}, MediaType::kVideo));
  const ConfigId transatlantic = registry.intern(
      CallConfig::make({{us, 2}, {uk, 3}}, MediaType::kAudio));

  DemandMatrix demand = make_demand_matrix({us_meeting, transatlantic}, 4);
  const double us_calls[4] = {20, 45, 30, 5};  // concurrent calls per slot
  const double tx_calls[4] = {5, 12, 18, 8};
  for (TimeSlot t = 0; t < 4; ++t) {
    demand.set_demand(t, 0, us_calls[t]);
    demand.set_demand(t, 1, tx_calls[t]);
  }

  // --- 3 + 4. The controller runs the whole pipeline. ---
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&world, &topology, &latency, &registry, &loads};
  Switchboard controller(ctx, ControllerOptions{});

  const ProvisionResult& provision = controller.provision(demand);
  std::cout << "Provisioned capacity (survives any single DC/link failure):\n";
  for (DcId dc : world.dc_ids()) {
    std::cout << "  " << world.datacenter(dc).name << ": "
              << format_double(provision.capacity.dc_total_cores(dc), 1)
              << " cores (serving "
              << format_double(
                     provision.capacity.dc_serving_cores[dc.value()], 1)
              << " + backup "
              << format_double(
                     provision.capacity.dc_backup_cores[dc.value()], 1)
              << ")\n";
  }
  for (LinkId l : topology.link_ids()) {
    std::cout << "  link " << topology.link(l).name << ": "
              << format_double(provision.capacity.link_gbps[l.value()], 3)
              << " Gbps\n";
  }
  std::cout << "  total cost: "
            << format_double(provision.capacity.total_cost(world, topology), 1)
            << "\n  mean ACL: " << format_double(provision.mean_acl_ms, 1)
            << " ms\n\n";

  controller.build_allocation_plan(demand, /*plan_start_s=*/0.0);

  // Realtime: a call arrives; its first joiner is in the UK.
  const CallId call(1);
  const DcId initial = controller.call_started(call, uk, /*now=*/100.0);
  std::cout << "call 1 first joiner in UK -> initially hosted at "
            << world.datacenter(initial).name << "\n";

  // 300 s later the config freezes: it turned out to be a mostly-US call.
  const CallConfig config =
      CallConfig::make({{us, 5}, {uk, 1}}, MediaType::kVideo);
  const FreezeResult frozen = controller.config_frozen(call, config, 400.0);
  std::cout << "config froze as ((US-5,UK-1),video) -> "
            << (frozen.migrated ? "migrated to " : "stayed at ")
            << world.datacenter(frozen.dc).name << "\n";
  controller.call_ended(call, 2000.0);

  const RealtimeSelector::Stats stats = controller.realtime_stats();
  std::cout << "selector stats: " << stats.calls_started << " calls, "
            << stats.migrations << " migrations\n";
  return 0;
}
