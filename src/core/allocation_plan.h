// The daily MP allocation plan (§5.3 "Allocation plan"): with capacities
// fixed at the provisioned values, a second LP minimizes total ACL (Eq 10)
// and emits, per time slot and call config, how many calls each DC should
// host. The fractional optimum is rounded to integral per-DC "slots" that
// the realtime selector debits as calls arrive (§5.4b).
#pragma once

#include <cstdint>

#include "calls/demand.h"
#include "core/capacity_plan.h"
#include "core/placement.h"
#include "lp/solver.h"

namespace sb {

struct AllocationOptions {
  double acl_threshold_ms = kDefaultAclThresholdMs;
  lp::SolveOptions lp_options;
};

/// The plan consumed by the realtime selector. Slot quotas are integral:
/// quota(t, c, x) concurrent calls of config column c may sit at DC x
/// during slot t.
class AllocationPlan {
 public:
  AllocationPlan(std::size_t slot_count, std::size_t config_count,
                 std::size_t dc_count, double slot_s);

  [[nodiscard]] std::uint32_t quota(TimeSlot t, std::size_t config_col,
                                    DcId dc) const;
  void set_quota(TimeSlot t, std::size_t config_col, DcId dc,
                 std::uint32_t calls);

  /// Maps a simulation time (seconds from the plan's start) to a slot,
  /// clamping beyond-horizon times to the last slot.
  [[nodiscard]] TimeSlot slot_at(SimTime offset_s) const;

  [[nodiscard]] std::size_t slot_count() const { return slots_; }
  [[nodiscard]] std::size_t config_count() const { return configs_; }
  [[nodiscard]] std::size_t dc_count() const { return dcs_; }
  [[nodiscard]] double slot_seconds() const { return slot_s_; }

  /// The config interned at each column (copied from the demand matrix the
  /// plan was built against).
  std::vector<ConfigId> config_columns;
  /// Call-weighted mean ACL of the fractional optimum.
  double mean_acl_ms = 0.0;
  /// The fractional LP optimum (kept for evaluation/benches).
  PlacementMatrix fractional;

  /// Column index of `config` in this plan, or npos if unplanned.
  [[nodiscard]] std::size_t column_of(ConfigId config) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Builds the dense ConfigId -> column index behind column_of(). Call
  /// after filling config_columns; column_of falls back to a linear scan
  /// when the index was never built (hand-assembled plans in tests).
  void build_column_index();

 private:
  std::size_t slots_;
  std::size_t configs_;
  std::size_t dcs_;
  double slot_s_;
  std::vector<std::uint32_t> quotas_;
  /// Dense ConfigId.value() -> column, npos-filled; empty until
  /// build_column_index() runs.
  std::vector<std::size_t> col_index_;
};

/// Builds allocation plans. Context members must outlive the planner.
class AllocationPlanner {
 public:
  AllocationPlanner(EvalContext ctx, AllocationOptions options);

  /// Solves Eq 10 under the given capacities and rounds to integral slots.
  /// Throws SolveError if demand does not fit the capacities (which cannot
  /// happen when `capacity` came from provisioning the same demand).
  [[nodiscard]] AllocationPlan plan(const DemandMatrix& demand,
                                    const CapacityPlan& capacity,
                                    double slot_s) const;

 private:
  EvalContext ctx_;
  AllocationOptions options_;
};

}  // namespace sb
