#include "obs/span.h"

#include <algorithm>
#include <chrono>

namespace sb::obs {

const char* to_string(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kController:
      return "controller";
    case Subsystem::kRealtime:
      return "realtime";
    case Subsystem::kDrain:
      return "drain";
    case Subsystem::kLp:
      return "lp";
    case Subsystem::kProvisioner:
      return "provisioner";
    case Subsystem::kSim:
      return "sim";
    case Subsystem::kCheck:
      return "check";
    case Subsystem::kPack:
      return "pack";
    case Subsystem::kCluster:
      return "cluster";
    case Subsystem::kOther:
      break;
  }
  return "other";
}

const char* to_string(AttrKey key) {
  switch (key) {
    case AttrKey::kCallId:
      return "call";
    case AttrKey::kDc:
      return "dc";
    case AttrKey::kFromDc:
      return "from_dc";
    case AttrKey::kConfigId:
      return "config";
    case AttrKey::kDrainTier:
      return "drain_tier";
    case AttrKey::kShard:
      return "shard";
    case AttrKey::kCasRetries:
      return "cas_retries";
    case AttrKey::kIterations:
      return "iterations";
    case AttrKey::kFactorizations:
      return "factorizations";
    case AttrKey::kPricingPasses:
      return "pricing_passes";
    case AttrKey::kWarmStart:
      return "warm";
    case AttrKey::kScenario:
      return "scenario";
    case AttrKey::kMoved:
      return "moved";
    case AttrKey::kDropped:
      return "dropped";
    case AttrKey::kPartition:
      return "partition";
    case AttrKey::kEvents:
      return "events";
    case AttrKey::kRows:
      return "rows";
    case AttrKey::kCols:
      return "cols";
    case AttrKey::kStatus:
      return "status";
    case AttrKey::kServer:
      return "server";
    case AttrKey::kFromServer:
      return "from_server";
    case AttrKey::kWorker:
      return "worker";
    case AttrKey::kEpoch:
      return "epoch";
    case AttrKey::kReplayed:
      return "replayed";
    case AttrKey::kNone:
      break;
  }
  return "none";
}

#ifdef SB_TRACING_ENABLED

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return std::max<std::size_t>(p, 2);
}

}  // namespace

/// Single-producer ring of completed spans. Only the owning thread writes
/// (plain relaxed stores into the slot, then a release bump of `head`);
/// collect() copies racing-reader style and discards slots the writer
/// overtook — every field is an atomic, so the race is benign AND clean
/// under TSan.
struct SpanRecorder::ThreadBuffer {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> end_ns{0};
    std::atomic<double> sim_time{kNoSimTime};
    /// subsystem | attr_count << 8, packed so one store publishes both.
    std::atomic<std::uint32_t> meta{0};
    std::atomic<std::uint8_t> attr_key[kSpanAttrMax];
    std::atomic<std::int64_t> attr_val[kSpanAttrMax];
  };

  ThreadBuffer(std::uint32_t tid_in, std::size_t capacity_in)
      : tid(tid_in), capacity(capacity_in) {
    // make_unique for arrays value-initializes: every atomic starts zeroed.
    slots = std::make_unique<Slot[]>(capacity);
  }

  void push(const char* name, Subsystem subsystem, std::uint64_t id,
            std::uint64_t parent, std::int64_t start_ns, std::int64_t end_ns,
            double sim_time, const std::array<SpanAttr, kSpanAttrMax>& attrs,
            std::uint32_t attr_count) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h & (capacity - 1)];
    slot.name.store(name, std::memory_order_relaxed);
    slot.id.store(id, std::memory_order_relaxed);
    slot.parent.store(parent, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.end_ns.store(end_ns, std::memory_order_relaxed);
    slot.sim_time.store(sim_time, std::memory_order_relaxed);
    slot.meta.store(static_cast<std::uint32_t>(subsystem) | (attr_count << 8),
                    std::memory_order_relaxed);
    for (std::uint32_t a = 0; a < attr_count; ++a) {
      slot.attr_key[a].store(static_cast<std::uint8_t>(attrs[a].key),
                             std::memory_order_relaxed);
      slot.attr_val[a].store(attrs[a].value, std::memory_order_relaxed);
    }
    head.store(h + 1, std::memory_order_release);
  }

  std::uint32_t tid;
  std::size_t capacity;  ///< power of two
  std::unique_ptr<Slot[]> slots;
  /// Count of spans ever completed on this buffer; slot = head & (cap - 1).
  std::atomic<std::uint64_t> head{0};
};

/// Thread-local recorder state: the thread's buffer (returned to the free
/// list at thread exit, data retained) and the innermost open span id.
struct SpanRecorder::Tls {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t current = 0;

  ~Tls() {
    if (buffer != nullptr) SpanRecorder::global().release_buffer(buffer);
  }
};

SpanRecorder::Tls& SpanRecorder::tls_slot() {
  thread_local Tls tls;
  return tls;
}

SpanRecorder::SpanRecorder()
    : epoch_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

SpanRecorder& SpanRecorder::global() {
  // Leaked: thread_local destructors (release_buffer) and static-destruction
  //-time spans must never observe a destroyed recorder.
  static SpanRecorder* recorder = new SpanRecorder();
  return *recorder;
}

std::int64_t SpanRecorder::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns_;
}

void SpanRecorder::configure(const SpanRecorderOptions& options) {
  {
    std::lock_guard lock(mutex_);
    capacity_ = round_up_pow2(std::max<std::size_t>(options.ring_capacity, 2));
  }
  enabled_.store(options.enabled, std::memory_order_relaxed);
}

std::size_t SpanRecorder::ring_capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

SpanRecorder::ThreadBuffer* SpanRecorder::local_buffer() {
  Tls& tls = tls_slot();
  if (tls.buffer == nullptr) {
    std::lock_guard lock(mutex_);
    if (!free_buffers_.empty()) {
      tls.buffer = free_buffers_.back();
      free_buffers_.pop_back();
    } else {
      buffers_.push_back(std::make_unique<ThreadBuffer>(
          static_cast<std::uint32_t>(buffers_.size()), capacity_));
      tls.buffer = buffers_.back().get();
    }
  }
  return tls.buffer;
}

void SpanRecorder::release_buffer(ThreadBuffer* buffer) {
  std::lock_guard lock(mutex_);
  free_buffers_.push_back(buffer);
}

std::uint64_t SpanRecorder::current_span() { return tls_slot().current; }

std::vector<SpanData> SpanRecorder::collect() const {
  std::vector<SpanData> out;
  std::lock_guard lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::uint64_t h = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, buffer->capacity);
    for (std::uint64_t i = h - n; i < h; ++i) {
      const ThreadBuffer::Slot& slot = buffer->slots[i & (buffer->capacity - 1)];
      SpanData d;
      d.name = slot.name.load(std::memory_order_relaxed);
      d.id = slot.id.load(std::memory_order_relaxed);
      d.parent = slot.parent.load(std::memory_order_relaxed);
      d.wall_start_ns = slot.start_ns.load(std::memory_order_relaxed);
      d.wall_end_ns = slot.end_ns.load(std::memory_order_relaxed);
      d.sim_time = slot.sim_time.load(std::memory_order_relaxed);
      const std::uint32_t meta = slot.meta.load(std::memory_order_relaxed);
      d.subsystem = static_cast<Subsystem>(meta & 0xff);
      d.attr_count = std::min<std::uint32_t>(meta >> 8, kSpanAttrMax);
      for (std::uint32_t a = 0; a < d.attr_count; ++a) {
        d.attrs[a].key = static_cast<AttrKey>(
            slot.attr_key[a].load(std::memory_order_relaxed));
        d.attrs[a].value = slot.attr_val[a].load(std::memory_order_relaxed);
      }
      d.thread = buffer->tid;
      // Validate AFTER the copy: the writer may have lapped slot i while we
      // read it. Span number h2 is in flight once head reads h2, writing
      // slot h2 & mask — which aliases i exactly when h2 - i == capacity.
      const std::uint64_t h2 = buffer->head.load(std::memory_order_acquire);
      if (h2 - i >= buffer->capacity) continue;  // torn; wrap overtook us
      if (d.name == nullptr) continue;
      out.push_back(d);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanData& a, const SpanData& b) {
    return a.wall_start_ns != b.wall_start_ns
               ? a.wall_start_ns < b.wall_start_ns
               : a.id < b.id;
  });
  return out;
}

void SpanRecorder::reset() {
  std::lock_guard lock(mutex_);
  // Buffers are never re-allocated (live threads hold raw pointers into
  // them); a capacity change via configure() applies to buffers created
  // afterwards, so size the recorder before the first span when it matters.
  for (auto& buffer : buffers_) {
    buffer->head.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t SpanRecorder::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::uint64_t h = buffer->head.load(std::memory_order_relaxed);
    if (h > buffer->capacity) total += h - buffer->capacity;
  }
  return total;
}

Span::Span(const char* name, Subsystem subsystem, double sim_time,
           std::uint64_t parent)
    : name_(name), sim_time_(sim_time), subsystem_(subsystem) {
  SpanRecorder& recorder = SpanRecorder::global();
  if (!recorder.enabled()) return;
  id_ = recorder.next_id();
  SpanRecorder::Tls& tls = SpanRecorder::tls_slot();
  parent_ = parent == kInheritParent ? tls.current : parent;
  tls.current = id_;
  start_ns_ = recorder.now_ns();
}

void Span::finish() {
  if (id_ == 0) return;
  SpanRecorder& recorder = SpanRecorder::global();
  SpanRecorder::Tls& tls = SpanRecorder::tls_slot();
  // Restore the inherited scope even when spans end out of LIFO order
  // (finish() called early): only pop if we are still the innermost.
  if (tls.current == id_) tls.current = parent_;
  recorder.local_buffer()->push(name_, subsystem_, id_, parent_, start_ns_,
                                recorder.now_ns(), sim_time_, attrs_,
                                attr_count_);
  id_ = 0;
}

#endif  // SB_TRACING_ENABLED

}  // namespace sb::obs
