// Holt-Winters triple exponential smoothing (additive), the forecasting
// method §5.2 uses per call config. fit() grid-searches the smoothing
// coefficients against one-step-ahead squared error, mirroring common
// statsmodels usage (the paper cites statsmodels' ExponentialSmoothing).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sb {

struct HoltWintersParams {
  double alpha = 0.2;  ///< level smoothing, in (0, 1)
  double beta = 0.05;  ///< trend smoothing, in [0, 1)
  double gamma = 0.1;  ///< seasonal smoothing, in [0, 1)
  std::size_t season_length = 1;  ///< periods per season (1 = no seasonality)
};

/// Additive Holt-Winters model. Construct (or fit()), then train() on a
/// history, then forecast() future steps.
class HoltWinters {
 public:
  explicit HoltWinters(HoltWintersParams params);

  /// Grid-searches (alpha, beta, gamma) minimizing in-sample one-step SSE
  /// and returns the trained best model. `series` must cover at least two
  /// full seasons.
  static HoltWinters fit(std::span<const double> series,
                         std::size_t season_length);

  /// Runs the smoothing recurrences over `series`, leaving the model ready
  /// to forecast from the end of the series.
  void train(std::span<const double> series);

  /// h-step-ahead forecasts from the trained state.
  [[nodiscard]] std::vector<double> forecast(std::size_t horizon) const;

  /// One-step-ahead in-sample predictions (same length as the training
  /// series); prediction[i] is made before observing series[i].
  [[nodiscard]] const std::vector<double>& fitted() const { return fitted_; }

  /// Sum of squared one-step errors over the training series.
  [[nodiscard]] double sse() const { return sse_; }

  [[nodiscard]] const HoltWintersParams& params() const { return params_; }

 private:
  HoltWintersParams params_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;   ///< circular buffer of length season
  std::size_t season_pos_ = 0;     ///< next seasonal slot to use/update
  std::vector<double> fitted_;
  double sse_ = 0.0;
  bool trained_ = false;
};

}  // namespace sb
