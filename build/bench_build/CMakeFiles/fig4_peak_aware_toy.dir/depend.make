# Empty dependencies file for fig4_peak_aware_toy.
# This may be replaced when dependencies are built.
