// Tests for the sb_cluster control plane (DESIGN.md "Distributed control
// plane"): shard partitioning, the workers==1 bit-identity guarantee,
// expedited and TTL-driven re-adoption with WAL replay, sticky restarts,
// degraded direct mode, epoch fencing via admit(), and whole-simulation
// invisibility of worker kills to the media plane (label: cluster).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "calls/call_config.h"
#include "calls/media.h"
#include "cluster/allocator.h"
#include "cluster/controller.h"
#include "cluster/shard_map.h"
#include "cluster/wal.h"
#include "common/error.h"
#include "core/controller.h"
#include "fault/fault_schedule.h"
#include "sim/allocator.h"
#include "sim/simulator.h"
#include "trace/diurnal.h"
#include "trace/scenario.h"

namespace sb {
namespace {

using cluster::ClusterController;
using cluster::ClusterOptions;
using cluster::ClusterStats;
using cluster::ShardMap;
using cluster::WorkerStatus;

TEST(ShardMapTest, ContiguousBalancedPartition) {
  const ShardMap map(8, 3, 1);
  EXPECT_EQ(map.shard_count(), 8u);
  EXPECT_EQ(map.worker_count(), 3u);
  // 8 = 3+3+2: the first 8 % 3 = 2 workers get the extra shard.
  EXPECT_EQ(map.initial_range(WorkerId(0)), (std::pair<std::size_t,
                                             std::size_t>{0, 3}));
  EXPECT_EQ(map.initial_range(WorkerId(1)), (std::pair<std::size_t,
                                             std::size_t>{3, 6}));
  EXPECT_EQ(map.initial_range(WorkerId(2)), (std::pair<std::size_t,
                                             std::size_t>{6, 8}));
  for (std::uint32_t w = 0; w < 3; ++w) {
    const auto [begin, end] = map.initial_range(WorkerId(w));
    EXPECT_EQ(map.shards_owned(WorkerId(w)), end - begin);
    for (std::size_t s = begin; s < end; ++s) {
      EXPECT_EQ(map.shard(s).owner, WorkerId(w));
      EXPECT_EQ(map.shard(s).epoch, 1u);
      EXPECT_FALSE(map.shard(s).dirty);
    }
  }
  EXPECT_EQ(map.orphaned_shards(), 0u);
  EXPECT_FALSE(map.any_dirty());
}

TEST(ShardMapTest, RejectsDegenerateShapes) {
  EXPECT_THROW(ShardMap(8, 0, 1), InvalidArgument);
  EXPECT_THROW(ShardMap(4, 5, 1), InvalidArgument);
  // One worker owning everything is the degenerate-but-legal shape.
  const ShardMap solo(4, 1, 1);
  EXPECT_EQ(solo.shards_owned(WorkerId(0)), 4u);
}

TEST(WalCodecTest, RoundTripsSnapshotsExactly) {
  RealtimeSelector::CallSnapshot snap;
  snap.dc = DcId(3);
  snap.first_joiner = LocationId(7);
  snap.plan_col = 12;
  snap.holds_slot = true;
  snap.slot_dc = DcId(1);
  snap.cores = 0.30000000000000004;  // denormal-ish double: %a must survive
  snap.server = ServerId(9);
  const RealtimeSelector::CallSnapshot back =
      cluster::decode_wal_record(cluster::encode_wal_record(snap));
  EXPECT_EQ(back.dc, snap.dc);
  EXPECT_EQ(back.first_joiner, snap.first_joiner);
  EXPECT_EQ(back.plan_col, snap.plan_col);
  EXPECT_EQ(back.holds_slot, snap.holds_slot);
  EXPECT_EQ(back.slot_dc, snap.slot_dc);
  EXPECT_EQ(back.cores, snap.cores);  // bit-exact via hexfloat
  EXPECT_EQ(back.server, snap.server);

  // Invalid ids (kInvalid sentinels) must survive the round trip too: an
  // unfrozen call has no slot DC and no server.
  RealtimeSelector::CallSnapshot unfrozen;
  unfrozen.dc = DcId(0);
  unfrozen.first_joiner = LocationId(2);
  const RealtimeSelector::CallSnapshot u =
      cluster::decode_wal_record(cluster::encode_wal_record(unfrozen));
  EXPECT_FALSE(u.holds_slot);
  EXPECT_FALSE(u.slot_dc.valid());
  EXPECT_FALSE(u.server.valid());
  EXPECT_EQ(u.plan_col, AllocationPlan::npos);

  EXPECT_EQ(cluster::call_from_wal_key(cluster::wal_key(5, CallId(42))),
            CallId(42));
}

/// Two locations, two DCs, everything latency-feasible (mirrors the
/// failover test worlds).
struct TwoDcWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  TwoDcWorld() : world(make_world()), topology(world), latency(2, 2) {
    topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world() {
    World w;
    w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
    w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
    w.add_datacenter({"DC-A", LocationId(0), 1.0});
    w.add_datacenter({"DC-B", LocationId(1), 1.0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

ControllerOptions small_controller_options(std::size_t workers) {
  ControllerOptions copts;
  copts.realtime.shard_count = 8;
  copts.worker_rows = workers;
  return copts;
}

class ClusterFacadeTest : public ::testing::Test {
 protected:
  ClusterFacadeTest()
      : config_(CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio)) {}

  /// First `n` call ids whose shard falls inside `w`'s INITIAL range.
  static std::vector<CallId> calls_of(const ClusterController& cl, WorkerId w,
                                      std::size_t n) {
    const auto [begin, end] = cl.shard_map().initial_range(w);
    std::vector<CallId> out;
    for (std::uint32_t id = 1; out.size() < n && id < 1000; ++id) {
      const std::size_t s = cl.shard_of(CallId(id));
      if (s >= begin && s < end) out.emplace_back(id);
    }
    return out;
  }

  TwoDcWorld world_;
  CallConfig config_;
};

TEST_F(ClusterFacadeTest, WorkersOneNoKillMatchesPlainSwitchboard) {
  // The workers==1 contract: every event's RESULT and the controller's
  // final accounting are bit-identical to the unwrapped Switchboard.
  Switchboard plain(world_.ctx(), small_controller_options(0));
  Switchboard wrapped(world_.ctx(), small_controller_options(1));
  ClusterController cl(wrapped, {.workers = 1});
  for (std::uint32_t c = 1; c <= 12; ++c) {
    EXPECT_EQ(plain.call_started(CallId(c), LocationId(c % 2), 10.0 * c),
              cl.call_started(CallId(c), LocationId(c % 2), 10.0 * c));
    const FreezeResult a = plain.config_frozen(CallId(c), config_,
                                               10.0 * c + 300.0);
    const FreezeResult b = cl.config_frozen(CallId(c), config_,
                                            10.0 * c + 300.0);
    EXPECT_EQ(a.dc, b.dc);
    EXPECT_EQ(a.migrated, b.migrated);
  }
  EXPECT_EQ(cl.wal_size(), 12u);  // every live call has exactly one record
  for (std::uint32_t c = 1; c <= 12; ++c) {
    plain.call_ended(CallId(c), 2000.0);
    cl.call_ended(CallId(c), 2000.0);
  }
  const RealtimeSelector::Stats sp = plain.realtime_stats();
  const RealtimeSelector::Stats sc = wrapped.realtime_stats();
  EXPECT_EQ(sp.calls_started, sc.calls_started);
  EXPECT_EQ(sp.calls_frozen, sc.calls_frozen);
  EXPECT_EQ(sp.migrations, sc.migrations);
  EXPECT_EQ(sp.slot_debits, sc.slot_debits);
  EXPECT_EQ(sp.slot_credits, sc.slot_credits);
  EXPECT_EQ(cl.wal_size(), 0u);
  EXPECT_EQ(cl.epoch(), 1u);  // no ownership change ever happened
  const ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.events_applied, 36u);
  EXPECT_EQ(stats.takeovers_expedited + stats.takeovers_ttl, 0u);
  EXPECT_EQ(stats.degraded_applies, 0u);
}

TEST_F(ClusterFacadeTest, ExpeditedReadoptionReplaysAndConserves) {
  Switchboard sb(world_.ctx(), small_controller_options(2));
  // A huge TTL isolates the expedited path: the health row (in-process
  // alive flag), not lease expiry, must drive the takeover.
  ClusterController cl(sb, {.workers = 2, .lease_ttl_s = 1e6});
  const std::vector<CallId> mine = calls_of(cl, WorkerId(0), 4);
  const std::vector<CallId> theirs = calls_of(cl, WorkerId(1), 4);
  ASSERT_EQ(mine.size(), 4u);
  ASSERT_EQ(theirs.size(), 4u);
  for (const CallId c : mine) {
    cl.call_started(c, LocationId(0), 0.0);
    cl.config_frozen(c, config_, 300.0);
  }
  for (const CallId c : theirs) {
    cl.call_started(c, LocationId(1), 0.0);
    cl.config_frozen(c, config_, 300.0);
  }
  EXPECT_EQ(sb.active_calls(), 8u);

  // Kill worker 0: its shards' controller rows vanish with no credits, the
  // media plane keeps hosting, and the sim-visible outcome is empty.
  const fault::FailoverOutcome outcome = cl.worker_failed(WorkerId(0), 400.0);
  EXPECT_TRUE(outcome.empty());
  EXPECT_EQ(sb.active_calls(), 8u - mine.size());
  EXPECT_EQ(cl.wal_size(), 8u);  // the WAL survives the crash

  // The next event touching an orphaned shard expedites adoption of the
  // whole orphaned range and replays it from the WAL.
  cl.call_ended(mine[0], 500.0);
  const ClusterStats mid = cl.stats();
  EXPECT_EQ(mid.takeovers_expedited, 1u);
  EXPECT_EQ(mid.takeovers_ttl, 0u);
  EXPECT_EQ(mid.replayed_records, mine.size());
  EXPECT_GT(cl.epoch(), 1u);
  EXPECT_EQ(cl.shard_map().orphaned_shards(), 0u);
  EXPECT_FALSE(cl.shard_map().any_dirty());
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(1)), 8u);
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(0)), 0u);

  for (std::size_t i = 1; i < mine.size(); ++i) cl.call_ended(mine[i], 600.0);
  for (const CallId c : theirs) cl.call_ended(c, 600.0);
  // Exactly-once across the crash: every start matched by one end, nothing
  // stranded, nothing double-credited.
  EXPECT_EQ(sb.active_calls(), 0u);
  EXPECT_EQ(cl.wal_size(), 0u);
  const RealtimeSelector::Stats s = sb.realtime_stats();
  EXPECT_EQ(s.calls_started, 8u);
  EXPECT_EQ(s.calls_frozen, 8u);
  EXPECT_EQ(s.slot_debits, s.slot_credits);
  const std::vector<WorkerStatus> table = cl.worker_table();
  EXPECT_FALSE(table[0].alive);
  EXPECT_EQ(table[1].takeovers, 4u);
}

TEST_F(ClusterFacadeTest, LeaseExpiryAdoptsIdleOrphanedShards) {
  Switchboard sb(world_.ctx(), small_controller_options(2));
  ClusterController cl(sb, {.workers = 2, .lease_ttl_s = 50.0});
  const std::vector<CallId> mine = calls_of(cl, WorkerId(0), 2);
  const std::vector<CallId> theirs = calls_of(cl, WorkerId(1), 2);
  for (const CallId c : mine) {
    cl.call_started(c, LocationId(0), 0.0);
    cl.config_frozen(c, config_, 10.0);
  }
  for (const CallId c : theirs) cl.call_started(c, LocationId(1), 0.0);
  cl.worker_failed(WorkerId(0), 20.0);

  // Dispatch ONLY to the live worker's range, past the dead worker's TTL:
  // the per-event tick must sweep the lapsed lease and adopt the orphans
  // even though nothing touched them directly.
  cl.call_ended(theirs[0], 200.0);
  const ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.takeovers_ttl, 1u);
  EXPECT_EQ(stats.takeovers_expedited, 0u);
  EXPECT_GE(stats.lease_expiries, 1u);
  EXPECT_EQ(stats.replayed_records, mine.size());
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(1)), 8u);

  cl.call_ended(theirs[1], 300.0);
  for (const CallId c : mine) cl.call_ended(c, 300.0);
  EXPECT_EQ(sb.active_calls(), 0u);
  EXPECT_EQ(cl.wal_size(), 0u);
  const RealtimeSelector::Stats s = sb.realtime_stats();
  EXPECT_EQ(s.slot_debits, s.slot_credits);
}

TEST_F(ClusterFacadeTest, RestartBeforeAdoptionReplaysOwnShards) {
  Switchboard sb(world_.ctx(), small_controller_options(2));
  ClusterController cl(sb, {.workers = 2, .lease_ttl_s = 1e6});
  const std::vector<CallId> mine = calls_of(cl, WorkerId(0), 3);
  for (const CallId c : mine) {
    cl.call_started(c, LocationId(0), 0.0);
    cl.config_frozen(c, config_, 300.0);
  }
  cl.worker_failed(WorkerId(0), 400.0);
  EXPECT_EQ(sb.active_calls(), 0u);

  // Nobody touched the orphaned range; the restarted worker replays its own
  // dirty shards at a fresh epoch and keeps its ownership.
  cl.worker_restarted(WorkerId(0), 450.0);
  const ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.worker_restarts, 1u);
  EXPECT_EQ(stats.replayed_records, mine.size());
  EXPECT_EQ(stats.takeovers_expedited + stats.takeovers_ttl, 0u);
  EXPECT_EQ(sb.active_calls(), mine.size());
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(0)), 4u);
  EXPECT_FALSE(cl.shard_map().any_dirty());

  for (const CallId c : mine) cl.call_ended(c, 500.0);
  EXPECT_EQ(sb.active_calls(), 0u);
  EXPECT_EQ(cl.wal_size(), 0u);
  EXPECT_EQ(sb.realtime_stats().slot_debits, sb.realtime_stats().slot_credits);
}

TEST_F(ClusterFacadeTest, RestartAfterAdoptionIsSticky) {
  Switchboard sb(world_.ctx(), small_controller_options(2));
  ClusterController cl(sb, {.workers = 2, .lease_ttl_s = 1e6});
  const std::vector<CallId> mine = calls_of(cl, WorkerId(0), 2);
  for (const CallId c : mine) cl.call_started(c, LocationId(0), 0.0);
  cl.worker_failed(WorkerId(0), 100.0);
  cl.call_ended(mine[0], 200.0);  // worker 1 expedites adoption
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(1)), 8u);

  // Shards already adopted stay adopted: the restarted worker comes back
  // alive but empty-handed.
  cl.worker_restarted(WorkerId(0), 300.0);
  EXPECT_TRUE(cl.worker_table()[0].alive);
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(0)), 0u);

  // It is the least-loaded adopter for the NEXT crash, though.
  cl.worker_failed(WorkerId(1), 400.0);
  cl.call_ended(mine[1], 500.0);
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(0)), 8u);
  EXPECT_EQ(sb.active_calls(), 0u);
  EXPECT_EQ(cl.wal_size(), 0u);
}

TEST_F(ClusterFacadeTest, DegradedDirectModeSurvivesTotalWorkerLoss) {
  Switchboard sb(world_.ctx(), small_controller_options(1));
  ClusterController cl(sb, {.workers = 1, .lease_ttl_s = 1e6});
  cl.call_started(CallId(1), LocationId(0), 0.0);
  cl.config_frozen(CallId(1), config_, 300.0);
  cl.worker_failed(WorkerId(0), 400.0);

  // Every worker dead: the coordinator applies events directly, replaying
  // the touched shard first, and parks ownership as invalid.
  cl.call_ended(CallId(1), 500.0);
  cl.call_started(CallId(2), LocationId(1), 600.0);
  cl.call_ended(CallId(2), 700.0);
  const ClusterStats stats = cl.stats();
  EXPECT_GE(stats.degraded_applies, 3u);
  EXPECT_EQ(stats.replayed_records, 1u);
  EXPECT_GT(cl.shard_map().orphaned_shards(), 0u);
  EXPECT_EQ(sb.active_calls(), 0u);
  EXPECT_EQ(cl.wal_size(), 0u);
  EXPECT_EQ(sb.realtime_stats().slot_debits, sb.realtime_stats().slot_credits);

  // Restart semantics after degraded mode: the worker re-adopts the shards
  // still parked under its (dead) name, while the shards the coordinator
  // touched — now owned by nobody — stay orphaned until routed to again.
  const std::size_t touched =
      cl.shard_of(CallId(1)) == cl.shard_of(CallId(2)) ? 1 : 2;
  cl.worker_restarted(WorkerId(0), 800.0);
  EXPECT_EQ(cl.shard_map().orphaned_shards(), touched);
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(0)), 8u - touched);

  // The next event routed to an orphaned shard wins ALL orphans back.
  const std::size_t orphan = cl.shard_of(CallId(1));
  CallId poke;
  for (std::uint32_t id = 3; id < 1000; ++id) {
    if (cl.shard_of(CallId(id)) == orphan) {
      poke = CallId(id);
      break;
    }
  }
  cl.call_started(poke, LocationId(0), 900.0);
  cl.call_ended(poke, 950.0);
  EXPECT_EQ(cl.shard_map().orphaned_shards(), 0u);
  EXPECT_EQ(cl.shard_map().shards_owned(WorkerId(0)), 8u);
}

TEST_F(ClusterFacadeTest, AdmitFencesZombiesAndStaleEpochs) {
  Switchboard sb(world_.ctx(), small_controller_options(2));
  ClusterController cl(sb, {.workers = 2, .lease_ttl_s = 1e6});
  const std::size_t shard = cl.shard_map().initial_range(WorkerId(0)).first;

  // Current owner at the current epoch with a live lease: admitted.
  EXPECT_TRUE(cl.admit(shard, WorkerId(0), 1, 10.0));
  // Wrong epoch, wrong owner: fenced.
  EXPECT_FALSE(cl.admit(shard, WorkerId(0), 0, 10.0));
  EXPECT_FALSE(cl.admit(shard, WorkerId(1), 1, 10.0));

  // Kill + adoption: the zombie's stamps are fenced at BOTH the old epoch
  // (epoch mismatch) and the new one (dead worker), while the adopter's
  // current stamp is admitted.
  const CallId victim = calls_of(cl, WorkerId(0), 1).front();
  cl.call_started(victim, LocationId(0), 20.0);
  cl.worker_failed(WorkerId(0), 30.0);
  cl.call_ended(victim, 40.0);  // expedited adoption by worker 1
  const std::uint64_t e = cl.epoch();
  EXPECT_GT(e, 1u);
  EXPECT_FALSE(cl.admit(shard, WorkerId(0), 1, 50.0));
  EXPECT_FALSE(cl.admit(shard, WorkerId(0), e, 50.0));
  EXPECT_TRUE(cl.admit(shard, WorkerId(1), e, 50.0));
  EXPECT_EQ(cl.stats().stale_events_fenced, 4u);
}

TEST_F(ClusterFacadeTest, EpochMirrorsKvStoreUnderCas) {
  Switchboard sb(world_.ctx(), small_controller_options(2));
  ClusterController cl(sb, {.workers = 2, .lease_ttl_s = 1e6});
  EXPECT_EQ(cl.store().get("cluster:epoch").value_or(""), "1");
  const CallId c = calls_of(cl, WorkerId(0), 1).front();
  cl.call_started(c, LocationId(0), 0.0);
  cl.worker_failed(WorkerId(0), 10.0);
  cl.call_ended(c, 20.0);
  EXPECT_GT(cl.epoch(), 1u);
  EXPECT_EQ(cl.store().get("cluster:epoch").value_or(""),
            std::to_string(cl.epoch()));
  // The epoch key is create-only at birth: a pre-seeded key means another
  // coordinator already owns this store, and construction must fail loudly
  // rather than split-brain.
  KvStore seeded({.shard_count = 4, .inject_latency = false});
  EXPECT_TRUE(seeded.put_if("cluster:epoch", "7", 0).has_value());
  EXPECT_FALSE(seeded.put_if("cluster:epoch", "8", 0).has_value());
}

// ---------------------------------------------------------------------------
// Whole-simulation properties on a realistic trace.
// ---------------------------------------------------------------------------

bool logs_equal(const HostingLog& a, const HostingLog& b) {
  if (a.events.size() != b.events.size()) return false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const HostingEvent& x = a.events[i];
    const HostingEvent& y = b.events[i];
    if (x.record != y.record || x.time != y.time || x.kind != y.kind ||
        x.dc != y.dc || x.server != y.server) {
      return false;
    }
  }
  return true;
}

void expect_reports_equal(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.frozen, b.frozen);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.dropped_calls, b.dropped_calls);
  EXPECT_EQ(a.failover_migrations, b.failover_migrations);
  EXPECT_EQ(a.mean_acl_ms, b.mean_acl_ms);
  EXPECT_EQ(a.dc_cores_buckets, b.dc_cores_buckets);
}

TEST(ClusterSimTest, WorkersOneSimulationIsBitIdenticalToPreClusterPath) {
  Scenario scenario = make_apac_scenario({.config_count = 60});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const double start = kSecondsPerDay + 10.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + 0.5 * kSecondsPerHour);
  ASSERT_GT(db.size(), 0u);
  fault::FaultSchedule faults;
  faults.fail_dc(DcId(0), start + 600.0, 300.0);  // drains flow through too

  const Simulator sim(ctx);
  ControllerOptions copts;
  Switchboard plain(ctx, copts);
  ControllerAllocator plain_alloc(plain);
  HostingLog plain_log;
  const SimReport plain_rep =
      sim.run(db, plain_alloc, 300.0, &faults, 60.0, &plain_log);

  ControllerOptions wopts;
  wopts.worker_rows = 1;
  Switchboard wrapped(ctx, wopts);
  ClusterController cl(wrapped, {.workers = 1});
  cluster::ClusterAllocator cl_alloc(cl);
  HostingLog cl_log;
  const SimReport cl_rep =
      sim.run(db, cl_alloc, 300.0, &faults, 60.0, &cl_log);

  expect_reports_equal(plain_rep, cl_rep);
  EXPECT_TRUE(logs_equal(plain_log, cl_log));
  EXPECT_EQ(cl.wal_size(), 0u);
  EXPECT_EQ(cl.epoch(), 1u);
}

TEST(ClusterSimTest, WorkerKillStormIsInvisibleToTheMediaPlane) {
  // A worker crash re-homes controller state, never calls: the report of a
  // kill-storm run must be bit-identical to the same run without kills, and
  // every lifecycle record must clear through the WAL exactly once.
  Scenario scenario = make_apac_scenario({.config_count = 60});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const double start = kSecondsPerDay + 10.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + 0.5 * kSecondsPerHour);
  ASSERT_GT(db.size(), 0u);

  const auto run_with = [&](const fault::FaultSchedule* faults,
                            ClusterController** out_cl,
                            std::unique_ptr<Switchboard>& sb_slot,
                            std::unique_ptr<ClusterController>& cl_slot,
                            HostingLog& log) {
    ControllerOptions copts;
    copts.worker_rows = 4;
    sb_slot = std::make_unique<Switchboard>(ctx, copts);
    cl_slot = std::make_unique<ClusterController>(
        *sb_slot, ClusterOptions{.workers = 4, .lease_ttl_s = 120.0});
    *out_cl = cl_slot.get();
    cluster::ClusterAllocator alloc(*cl_slot);
    const Simulator sim(ctx);
    return sim.run(db, alloc, 300.0, faults, 60.0, &log);
  };

  std::unique_ptr<Switchboard> sb_a;
  std::unique_ptr<ClusterController> cl_a;
  ClusterController* quiet = nullptr;
  HostingLog quiet_log;
  const SimReport quiet_rep =
      run_with(nullptr, &quiet, sb_a, cl_a, quiet_log);

  // Recovery times stay inside the trace window: fault events are sim
  // events, so a recovery past the last call would stretch the bucket grid
  // and (vacuously) break the bit-identity comparison below.
  fault::FaultSchedule kills;
  kills.fail_worker(WorkerId(0), start + 300.0, 400.0);
  kills.fail_worker(WorkerId(2), start + 700.0, 600.0);
  kills.fail_worker(WorkerId(1), start + 900.0, 200.0);
  std::unique_ptr<Switchboard> sb_b;
  std::unique_ptr<ClusterController> cl_b;
  ClusterController* stormy = nullptr;
  HostingLog storm_log;
  const SimReport storm_rep =
      run_with(&kills, &stormy, sb_b, cl_b, storm_log);

  expect_reports_equal(quiet_rep, storm_rep);
  EXPECT_TRUE(logs_equal(quiet_log, storm_log));
  EXPECT_EQ(storm_rep.dropped_calls, quiet_rep.dropped_calls);

  // Zero duplicate or lost lifecycle transitions across the crashes: the
  // WAL drained, nothing is dirty, the epoch moved, takeovers happened.
  EXPECT_EQ(stormy->wal_size(), 0u);
  EXPECT_FALSE(stormy->shard_map().any_dirty());
  const ClusterStats s = stormy->stats();
  EXPECT_EQ(s.worker_kills, 3u);
  EXPECT_EQ(s.worker_restarts, 3u);
  EXPECT_GT(s.takeovers_expedited + s.takeovers_ttl, 0u);
  EXPECT_GT(stormy->epoch(), 1u);
  const RealtimeSelector::Stats rs = sb_b->realtime_stats();
  EXPECT_EQ(rs.slot_debits, rs.slot_credits);
  EXPECT_EQ(sb_b->active_calls(), 0u);

  const ClusterStats q = quiet->stats();
  EXPECT_EQ(q.worker_kills, 0u);
  EXPECT_EQ(q.takeovers_expedited + q.takeovers_ttl, 0u);
}

}  // namespace
}  // namespace sb
