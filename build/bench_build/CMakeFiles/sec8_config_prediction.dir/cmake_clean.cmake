file(REMOVE_RECURSE
  "../bench/sec8_config_prediction"
  "../bench/sec8_config_prediction.pdb"
  "CMakeFiles/sec8_config_prediction.dir/sec8_config_prediction.cpp.o"
  "CMakeFiles/sec8_config_prediction.dir/sec8_config_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_config_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
