// §5.3 failover at runtime: fail every DC, one at a time, at the moment its
// own planned core usage peaks — the worst single-DC failure the backup
// capacity was provisioned for — and replay the surrounding window through
// the live controller. The claim under test: Switchboard's drain re-homes
// every call onto surviving plan slots plus provisioned backup, dropping
// nothing, and the realized post-failure usage stays within each surviving
// DC's serving+backup capacity. Locality-First (no provisioned backup pool)
// also never drops, but freely overruns the surviving DCs' capacity — the
// contrast that justifies paying for backup cores up front.
//
// Flags: --plan_configs=40 --cushion=1.3 --outage_h=1.0 --pad_h=0.5
//        --trace-out=trace.json (Chrome trace-event span dump: every drain
//        walks nested under its ctl.dc_failed span — load in Perfetto to see
//        the per-call re-homing tiers during the outage)
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "fault/fault_schedule.h"
#include "fault/failover.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace sb;
  const std::size_t plan_configs =
      bench::arg_size(argc, argv, "plan_configs", 40);
  const double cushion = bench::arg_double(argc, argv, "cushion", 1.3);
  const double outage_s =
      bench::arg_double(argc, argv, "outage_h", 1.0) * kSecondsPerHour;
  const double pad_s =
      bench::arg_double(argc, argv, "pad_h", 0.5) * kSecondsPerHour;
  const std::string trace_out = bench::arg_string(argc, argv, "trace-out", "");
  // No trace requested -> don't pay for span recording at all.
  obs::SpanRecorder::global().set_enabled(!trace_out.empty());

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const std::size_t dc_count = scenario.world().dc_count();

  // Provision once (with backup, §5.3) on the cushioned design day; every
  // per-DC run rebuilds the plan, which also resets the selector state.
  const double slot_s = 3600.0;
  DemandMatrix demand = bench::design_day_demand(scenario, slot_s, plan_configs);
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      demand.set_demand(t, c, demand.demand(t, c) * cushion);
    }
  }
  ControllerOptions options;
  options.provision.include_link_failures = false;
  Switchboard controller(ctx, options);
  const ProvisionResult& provision = controller.provision(demand);

  std::vector<double> capacity(dc_count);
  for (std::size_t x = 0; x < dc_count; ++x) {
    capacity[x] = provision.capacity.dc_total_cores(
        DcId(static_cast<std::uint32_t>(x)));
  }
  const UsageProfile planned =
      compute_usage(provision.base_placement, demand, ctx);

  std::cout << "§5.3 failover: each DC failed at its planned peak, "
            << outage_s / kSecondsPerHour << " h outage\n\n";
  // "net overcap" subtracts a no-fault replay of the same window: realized
  // load from configs outside the plan's top-k can sit slightly above
  // capacity with no failure at all, and that background excess is not the
  // failover's doing. The §5.3 claim is about the increment the outage adds.
  TextTable table({"Failed DC", "scheme", "calls", "moved", "dropped",
                   "overcap core-s", "net overcap core-s"});

  double sb_dropped = 0.0, sb_moved = 0.0, sb_overcap = 0.0;
  double lf_dropped = 0.0, lf_moved = 0.0, lf_overcap = 0.0;
  Simulator sim(ctx);
  for (std::size_t x = 0; x < dc_count; ++x) {
    const DcId victim(static_cast<std::uint32_t>(x));
    // The plan's demand day starts at kSecondsPerDay; fail mid-slot so the
    // outage brackets the planned peak rather than starting exactly on its
    // boundary.
    const std::size_t peak = fault::FaultSchedule::peak_slot(
        planned.dc_cores[x]);
    const double fail_at = kSecondsPerDay + peak * slot_s + 0.5 * slot_s;
    const double window_start = fail_at - pad_s;
    const double window_end = fail_at + outage_s + pad_s;
    const CallRecordDatabase db =
        scenario.trace->generate(window_start, window_end);
    fault::FaultSchedule faults;
    faults.fail_dc(victim, fail_at, outage_s);

    controller.build_allocation_plan(demand, kSecondsPerDay);
    ControllerAllocator sb_alloc(controller);
    const SimReport sb_report = sim.run(db, sb_alloc, 300.0, &faults);
    const double sb_over = fault::over_capacity_core_s(
        sb_report.dc_cores_buckets, capacity, sb_report.bucket_s);
    controller.build_allocation_plan(demand, kSecondsPerDay);
    ControllerAllocator sb_base_alloc(controller);
    const SimReport sb_base = sim.run(db, sb_base_alloc, 300.0);
    const double sb_net =
        std::max(0.0, sb_over - fault::over_capacity_core_s(
                                    sb_base.dc_cores_buckets, capacity,
                                    sb_base.bucket_s));
    sb_dropped += static_cast<double>(sb_report.dropped_calls);
    sb_moved += static_cast<double>(sb_report.failover_migrations);
    sb_overcap += sb_net;
    table.row()
        .cell(scenario.world().datacenter(victim).name)
        .cell("switchboard")
        .cell(sb_report.calls)
        .cell(sb_report.failover_migrations)
        .cell(sb_report.dropped_calls)
        .cell(sb_over, 1)
        .cell(sb_net, 1);

    LocalityFirstAllocator lf(ctx);
    const SimReport lf_report = sim.run(db, lf, 300.0, &faults);
    const double lf_over = fault::over_capacity_core_s(
        lf_report.dc_cores_buckets, capacity, lf_report.bucket_s);
    LocalityFirstAllocator lf_base(ctx);
    const SimReport lf_base_report = sim.run(db, lf_base, 300.0);
    const double lf_net =
        std::max(0.0, lf_over - fault::over_capacity_core_s(
                                    lf_base_report.dc_cores_buckets, capacity,
                                    lf_base_report.bucket_s));
    lf_dropped += static_cast<double>(lf_report.dropped_calls);
    lf_moved += static_cast<double>(lf_report.failover_migrations);
    lf_overcap += lf_net;
    table.row()
        .cell("")
        .cell("locality-first")
        .cell(lf_report.calls)
        .cell(lf_report.failover_migrations)
        .cell(lf_report.dropped_calls)
        .cell(lf_over, 1)
        .cell(lf_net, 1);
  }
  std::cout << table;
  std::cout << "\nSwitchboard drops " << sb_dropped
            << " calls and adds " << format_double(sb_overcap, 1)
            << " core-s above serving+backup; Locality-First adds "
            << format_double(lf_overcap, 1) << " core-s.\n";

  bench::emit_json("sec53_failover", "sb_dropped_calls", sb_dropped);
  bench::emit_json("sec53_failover", "sb_failover_migrations", sb_moved);
  bench::emit_json("sec53_failover", "sb_net_over_capacity_core_s",
                   sb_overcap);
  bench::emit_json("sec53_failover", "lf_dropped_calls", lf_dropped);
  bench::emit_json("sec53_failover", "lf_failover_migrations", lf_moved);
  bench::emit_json("sec53_failover", "lf_net_over_capacity_core_s",
                   lf_overcap);

  if (!trace_out.empty()) {
    std::uint64_t dropped = 0;
    if (obs::dump_chrome_trace(trace_out, &dropped)) {
      std::cout << "\ntrace written to " << trace_out
                << (dropped > 0 ? " (ring wrapped; oldest spans dropped)" : "")
                << "\n";
    } else {
      std::cerr << "cannot write " << trace_out << "\n";
    }
  }
  return 0;
}
