# Empty dependencies file for sec8_config_prediction.
# This may be replaced when dependencies are built.
