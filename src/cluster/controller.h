// sb_cluster: the Switchboard realtime path split across N controller
// workers with epoch/lease HA (DESIGN.md "Distributed control plane").
//
// Deployment model. One shared Switchboard is the media plane plus system
// of truth for quota/core/packer accounting (those tables stand in for the
// actual media servers hosting calls — they survive any controller crash).
// Each worker owns a contiguous range of the selector's call shards and is
// the only party allowed to apply events for calls in that range. Every
// applied event is mirrored into the sharded KvStore as a write-ahead
// call-lifecycle record (see wal.h), and liveness is advertised through
// per-worker TTL leases in the same store.
//
// Crash/recovery. Killing a worker erases the controller-side call rows of
// its shards (RealtimeSelector::drop_shards) — the media plane keeps
// serving, so a kill drops and moves nothing. Its shards are re-adopted by
// survivors through two paths: expedited (the next event routed to an
// orphaned shard adopts immediately — the health table's worker row is the
// crash notification that short-circuits the TTL) or lease expiry (the
// per-dispatch tick sweeps expired leases). Adoption bumps the cluster
// epoch via `put_if` CAS on `cluster:epoch`, replays the range's WAL into
// the selector verbatim (no re-debit), and re-points ownership to the
// adopter with the fewest shards (ties: lowest id) — shards move, calls
// don't. A restarted worker re-acquires only shards still orphaned under
// its name; anything already adopted stays where it is (sticky). With every
// worker dead the coordinator applies events directly ("degraded direct
// mode"), still WAL-logged, so conservation survives total control-plane
// loss. Events stamped with a stale epoch are fenced (admit()).
//
// With workers == 1 and no kills, the apply path is byte-for-byte the
// single-process Switchboard path: plans, simulator metrics, and the
// HostingLog are bit-identical (asserted by cluster_test).
//
// Known semantic (documented, oracle-clean): a DC/server drain that runs
// while a shard is orphaned cannot see that shard's calls; they keep their
// pre-drain placement after replay instead of being re-homed. Lifecycle
// accounting still balances exactly — the end event credits once.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "core/controller.h"
#include "kvstore/kvstore.h"
#include "obs/metrics.h"

namespace sb::cluster {

struct ClusterOptions {
  /// Controller workers; must be >= 1 and <= the selector's shard count.
  std::size_t workers = 4;
  /// Worker lease TTL in sim seconds. Lease expiry is the slow crash
  /// detector; the health table's worker row is the fast one.
  double lease_ttl_s = 30.0;
  /// Options for the cluster's own KV system of record. Latency injection
  /// defaults off so the control plane never perturbs sim timing.
  KvStoreOptions kv = {.shard_count = 16, .inject_latency = false};
  /// TEST-ONLY mutation knob (tools/sb_fuzz --chaos skip-wal-freeze): the
  /// WAL record is NOT rewritten at config freeze, so a crash + replay
  /// resurrects the pre-freeze row and the end event credits nothing —
  /// planted drift the conservation oracle must catch. Nothing in
  /// production code sets it.
  bool chaos_skip_wal_freeze = false;
};

/// Weakly-consistent cluster counters (exact when quiescent).
struct ClusterStats {
  std::uint64_t events_applied = 0;
  std::uint64_t wal_writes = 0;
  std::uint64_t takeovers_expedited = 0;
  std::uint64_t takeovers_ttl = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t stale_events_fenced = 0;
  std::uint64_t degraded_applies = 0;
  std::uint64_t lease_acquires = 0;
  std::uint64_t lease_renewals = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t worker_kills = 0;
  std::uint64_t worker_restarts = 0;
};

/// One row of the per-worker status table (examples/live_controller).
struct WorkerStatus {
  WorkerId id;
  bool alive = true;
  std::size_t shards_owned = 0;
  std::size_t initial_begin = 0;  ///< initial contiguous range [begin, end)
  std::size_t initial_end = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t takeovers = 0;  ///< orphaned shards this worker adopted
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
};

/// Facade with the Switchboard realtime event signature, routing every
/// event through shard ownership, lease fencing, and the WAL. Thread-safe:
/// cluster bookkeeping is guarded by one mutex (taken per event, cold by
/// selector standards); the Switchboard apply itself runs outside it and
/// keeps its own lock striping.
class ClusterController {
 public:
  /// Borrows `controller` (must outlive this object). The controller should
  /// be constructed with ControllerOptions::worker_rows == options.workers
  /// so kills/restarts can flip health rows; a controller without worker
  /// rows still works (health integration is skipped).
  ClusterController(Switchboard& controller, ClusterOptions options);

  // --- Realtime events (Switchboard signature) ---
  DcId call_started(CallId call, LocationId first_joiner, SimTime now);
  FreezeResult config_frozen(CallId call, const CallConfig& config,
                             SimTime now);
  void call_ended(CallId call, SimTime now);

  // --- Media-plane faults: passthrough + WAL rewrite for affected calls ---
  fault::FailoverOutcome dc_failed(DcId dc, SimTime now);
  void dc_recovered(DcId dc, SimTime now);
  void link_failed(LinkId link, SimTime now);
  void link_recovered(LinkId link, SimTime now);
  fault::FailoverOutcome server_failed(ServerId server, SimTime now);
  void server_recovered(ServerId server, SimTime now);

  // --- Control-plane faults ---
  /// Kills the worker: drops its shards' controller rows, stops its lease
  /// renewals, flips its health row. Returns an EMPTY outcome by design —
  /// the media plane is untouched, so the simulator's usage accounting
  /// must not move.
  fault::FailoverOutcome worker_failed(WorkerId worker, SimTime now);
  /// Restarts the worker: fresh lease, and re-adoption (with WAL replay) of
  /// only those shards still orphaned under its name.
  void worker_restarted(WorkerId worker, SimTime now);

  // --- Fencing probe ---
  /// True iff an event stamped (worker, epoch) for `shard` would be
  /// accepted right now: the worker must own the shard at exactly that
  /// epoch and be alive with a live lease. A rejected probe counts one
  /// sb.cluster.stale_events_fenced — this is the zombie-worker test hook
  /// (the in-process dispatch path stamps under the same mutex it applies
  /// under, so its own stamps never go stale).
  bool admit(std::size_t shard, WorkerId as_worker, std::uint64_t epoch,
             SimTime now);

  // --- Introspection ---
  [[nodiscard]] std::size_t shard_of(CallId call) const;
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }
  /// Monotone cluster epoch (CAS-maintained in the KV at `cluster:epoch`).
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] ClusterStats stats() const;
  [[nodiscard]] std::vector<WorkerStatus> worker_table() const;
  /// Live WAL records across all shards (0 at quiescence).
  [[nodiscard]] std::size_t wal_size() const;
  [[nodiscard]] KvStore& store() { return kv_; }
  [[nodiscard]] Switchboard& controller() { return sb_; }
  [[nodiscard]] const ClusterOptions& options() const { return options_; }

 private:
  struct Worker {
    bool alive = true;
    SimTime killed_at = 0.0;
    std::uint64_t events_applied = 0;
    std::uint64_t takeovers = 0;
    std::uint64_t kills = 0;
    std::uint64_t restarts = 0;
  };

  /// sb.cluster.* metric handles, resolved once.
  struct Metrics {
    obs::Counter& lease_acquires;
    obs::Counter& lease_renewals;
    obs::Counter& lease_expiries;
    obs::Counter& takeovers_expedited;
    obs::Counter& takeovers_ttl;
    obs::Counter& replayed_records;
    obs::Counter& stale_events_fenced;
    obs::Counter& degraded_applies;
    obs::Counter& worker_kills;
    obs::Counter& worker_restarts;
    obs::Histogram& readoption_latency_s;
    obs::Histogram& replay_depth;
    Metrics();
  };

  [[nodiscard]] static std::string lease_key(WorkerId w) {
    return "lease:w" + std::to_string(w.value());
  }
  [[nodiscard]] std::string worker_name(WorkerId w) const {
    return "worker-" + std::to_string(w.value());
  }

  /// Pre-apply routing (mutex_ held by caller): lease upkeep, TTL sweep,
  /// expedited adoption of a touched orphan shard. Returns the worker that
  /// will apply (invalid = degraded direct mode).
  WorkerId route_locked(std::size_t shard, SimTime now);
  void tick_locked(SimTime now);
  /// Adopts every shard whose owner is dead or invalid onto `adopter` at a
  /// fresh epoch, replaying dirty shards' WAL. `expedited` picks the metric.
  void take_over_orphans_locked(WorkerId adopter, SimTime now, bool expedited);
  /// Replays one dirty shard's WAL into the selector; clears dirty.
  std::size_t replay_shard_locked(std::size_t shard);
  /// Alive worker with the fewest shards (ties: lowest id); invalid if none.
  [[nodiscard]] WorkerId choose_adopter_locked() const;
  std::uint64_t bump_epoch_locked();
  void write_wal(CallId call, std::size_t shard);
  /// Re-images (moved) or erases (dropped) the WAL rows a drain touched.
  void rewrite_wal_locked(const fault::FailoverOutcome& outcome);
  void note_apply(WorkerId worker);

  Switchboard& sb_;
  ClusterOptions options_;
  KvStore kv_;
  Metrics metrics_;
  mutable std::mutex mutex_;
  ShardMap map_;
  std::vector<Worker> workers_;
  std::uint64_t epoch_ = 1;          ///< cached mirror of cluster:epoch
  std::uint64_t epoch_version_ = 0;  ///< KV version of cluster:epoch
  ClusterStats stats_;
};

}  // namespace sb::cluster
