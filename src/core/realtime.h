// The realtime MP selector (§5.4): assigns a DC the moment a call's first
// participant joins (closest DC to the first joiner), then reconciles with
// the precomputed allocation plan once the call config freezes A minutes in
// — debiting a plan slot, or migrating the call when the initial choice
// disagrees with the plan. Unplanned configs fall back to their closest DC.
//
// Concurrency (DESIGN.md "Threading model"): call state is lock-striped
// across N shards keyed by CallId % N, so events for different calls on
// different shards never contend. Plan-slot quotas live outside the shards
// in one shared table of atomic counters debited/credited with CAS, which
// keeps freeze/migrate/overflow accounting exact without any global lock.
// Stats are per-shard atomics folded on read. Driven single-threaded, the
// selector makes bit-identical decisions to the pre-sharded implementation.
//
// Fault awareness (DESIGN.md "Failure model & runtime failover"): when a
// fault::HealthTable is attached, call start and config freeze consult it
// lock-free — the no-fault fast path is one relaxed load (all_up()) and
// then identical to a selector with no fault domain. drain_dc() evacuates a
// failed DC's live calls in bounded batches, re-homing through the same
// atomic quota table (slot accounting stays exact across the drain) and
// falling back to provisioned backup capacity; calls are dropped only when
// no surviving DC has headroom left.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>

#include "common/flat_map.h"
#include "core/allocation_plan.h"
#include "fault/failover.h"
#include "fault/health_table.h"
#include "pack/packer.h"

namespace sb {

struct RealtimeOptions {
  /// §6.4: the config freezes A = 300 s after call start (~80% of
  /// participants have joined by then, Fig 8).
  double freeze_delay_s = 300.0;
  double acl_threshold_ms = kDefaultAclThresholdMs;
  /// Lock stripes over the call table (shard = CallId % shard_count).
  /// Events for calls on different shards proceed concurrently.
  std::size_t shard_count = 16;
  /// TEST-ONLY mutation knob for the sb_check oracle suite: when set, a
  /// drain-time tier-1 re-home does NOT credit the vacated quota cell,
  /// deliberately leaking a slot debit per failover move. This exists to
  /// prove the fuzzer's conservation oracles actually detect the class of
  /// bug they claim to (quota accounting drift); nothing in production code
  /// sets it. See tools/sb_fuzz --chaos.
  bool chaos_skip_drain_credit = false;
  /// TEST-ONLY mutation knob, the server-level twin of
  /// chaos_skip_drain_credit: when set, a drain-time re-pack/re-home does
  /// NOT release the vacated server's cores, deliberately leaking
  /// per-server occupancy. Proves the per-server conservation oracle
  /// detects core-accounting drift; nothing in production code sets it.
  /// See tools/sb_fuzz --chaos skip-server-credit.
  bool chaos_skip_server_credit = false;
  /// Packing knobs; consulted only when the world registers a server fleet.
  pack::PackOptions pack = {};
};

/// Outcome of freezing one call's config.
struct FreezeResult {
  DcId dc;                ///< final hosting DC
  bool migrated = false;  ///< true if the call moved to a different DC
  bool planned = false;   ///< true if the config had plan slots
  ServerId server;        ///< hosting media server (invalid without a fleet)
};

/// Thread-safe selector state machine: any number of call-signaling threads
/// may invoke the three event methods concurrently. Tracks per-(config, DC)
/// active frozen calls against the plan's slot quotas.
class RealtimeSelector {
 public:
  /// `plan` may be null (no-plan operation: every call sticks to the
  /// closest-DC heuristic and freezing only re-homes unplanned configs).
  /// `health` may be null (no fault domain: availability checks compile to
  /// nothing on the event path); when set it must outlive the selector.
  RealtimeSelector(EvalContext ctx, const AllocationPlan* plan,
                   RealtimeOptions options, SimTime plan_start_s = 0.0,
                   const fault::HealthTable* health = nullptr);

  /// (a) of §5.4: a new call starts; returns the initial DC — the one
  /// closest (lowest latency) to the first joiner's location.
  DcId on_call_start(CallId call, LocationId first_joiner, SimTime now);

  /// (b)/(c) of §5.4: the call's config is now known. Debits a plan slot at
  /// the current DC if available, otherwise migrates to the planned DC with
  /// spare quota and the lowest ACL. Unplanned configs go to the min-ACL DC.
  /// `id_hint`, when valid, must be the registry's id for `config`; it
  /// spares the hot path a full-config hash lookup (the simulator already
  /// holds the interned id for every replayed record).
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now, ConfigId id_hint = ConfigId());

  /// Releases the call's slot (if it held one).
  void on_call_end(CallId call, SimTime now);

  /// Drains every live call hosted at `failed` (which should already be
  /// marked down in the health table so no new call lands there), shard by
  /// shard in batches of `batch_size` per lock acquisition so signaling
  /// events on other calls of the same shard are only ever blocked for one
  /// bounded batch. Re-homing policy per call:
  ///   1. a call holding a plan slot moves to the surviving DC with spare
  ///      quota for its config and the lowest ACL (slot credited at the old
  ///      cell and CAS-debited at the new one — accounting stays exact);
  ///   2. with every surviving quota exhausted, the call keeps its original
  ///      slot accounting and is hosted on provisioned backup capacity: the
  ///      min-ACL surviving DC whose tracked core load stays within
  ///      `budget_cores` (per-DC provisioned serving+backup; empty = no
  ///      capacity limit);
  ///   3. only when no surviving DC has headroom (backup truly exhausted)
  ///      is the call dropped: its slot is credited, its state erased.
  /// Unfrozen calls re-run the closest-DC heuristic over surviving DCs and
  /// are never capacity-dropped (their config — and so their load — is not
  /// yet known). Thread-safe against concurrent events.
  fault::FailoverOutcome drain_dc(DcId failed, SimTime now,
                                  const std::vector<double>& budget_cores,
                                  std::size_t batch_size = 64);

  /// The server-level drain (fleet worlds only): evacuates every packed
  /// call hosted on `failed` (already marked down in the health table), in
  /// the same bounded shard batches as drain_dc. Re-homing policy per call:
  ///   S1. bounded re-pack onto an up sibling server of the same DC (quota
  ///       accounting untouched — the DC itself is healthy; the move is
  ///       recorded with from == to and the new to_server);
  ///   S2/S3. with the fleet full, spill cross-DC through drain_dc's
  ///       quota-then-backup tiers (the call leaves the DC);
  ///   S4. before dropping in an otherwise healthy DC, overflow onto the
  ///       least-loaded up sibling (overcommit admit, counted);
  ///   S5. only with no up sibling and every cross-DC tier exhausted is the
  ///       call dropped.
  /// Calls not yet frozen have no server and are never touched.
  fault::FailoverOutcome drain_server(ServerId failed, SimTime now,
                                      const std::vector<double>& budget_cores,
                                      std::size_t batch_size = 64);

  /// Intra-DC defragmentation pass (fleet worlds only): snapshots the DC's
  /// packed calls, computes a best-fit-decreasing target assignment offline,
  /// and applies up to `max_moves` migrations — each re-verified against the
  /// live call state under its shard lock, so the pass is safe (if not
  /// optimal) under concurrent events. Never invoked by the simulator
  /// drivers; benches and operators call it at known-quiescent points.
  pack::DefragResult defragment_dc(
      DcId dc, std::size_t max_moves = std::numeric_limits<std::size_t>::max());

  /// The fleet packer; null when the world registers no servers.
  [[nodiscard]] const pack::ServerPacker* packer() const {
    return packer_.get();
  }

  /// Re-binds every live call's slot accounting to `new_plan` WITHOUT
  /// moving any call — the closed-loop plan-install path (see
  /// Switchboard::install_plan). Caller contract: exclusive access (the
  /// controller holds its swap lock; no event may be in flight). For each
  /// frozen call of a planned config, the old plan column is mapped through
  /// `old_plan.config_columns` to its ConfigId and then to the new plan's
  /// column; a call that held a slot re-debits the new cell at its
  /// accounting DC (falling back to overflow accounting — credit recorded,
  /// no cell held — when the new quota is already full), and an overflow
  /// call may acquire a slot the old plan denied it (debit recorded). The
  /// quota-conservation invariant `held_slots() == slot_debits -
  /// slot_credits` survives exactly. dc_cores_, the packer, and every
  /// hosting decision are untouched.
  void rebind_plan(const AllocationPlan& old_plan,
                   const AllocationPlan* new_plan, SimTime plan_start_s,
                   SimTime now);

  struct Stats {
    std::uint64_t calls_started = 0;
    std::uint64_t calls_frozen = 0;
    std::uint64_t migrations = 0;    ///< §6.4's headline metric
    std::uint64_t unplanned = 0;     ///< configs with no plan column
    std::uint64_t overflow = 0;      ///< plan slots exhausted; call stayed put
    std::uint64_t slot_debits = 0;   ///< plan slots acquired at freeze
    std::uint64_t slot_credits = 0;  ///< plan slots released at call end
    std::uint64_t failover_moves = 0;  ///< calls re-homed by drain_dc
    std::uint64_t failover_drops = 0;  ///< calls dropped by drain_dc
  };
  /// Folds the per-shard stat atomics; weakly consistent under concurrent
  /// events, exact when the selector is quiescent.
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t active_calls() const;
  /// Plan slots currently held (sum over the atomic usage table); always
  /// equals slot_debits - slot_credits when quiescent.
  [[nodiscard]] std::uint64_t held_slots() const;
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  /// The stripe a call's state lives on; the simulator's concurrent driver
  /// uses the same function to give each call thread affinity.
  [[nodiscard]] static std::size_t shard_of(CallId call, std::size_t shards) {
    return call.value() % shards;
  }
  [[nodiscard]] double freeze_delay_s() const {
    return options_.freeze_delay_s;
  }

  // --- Crash-recovery hooks (sb_cluster) ---
  //
  // These three methods move call-table rows without touching the quota
  // table, dc_cores, the packer, or any stats counter. They model a
  // controller worker losing (and later reconstructing, from the KV
  // write-ahead log) its in-memory view of calls that keep running on the
  // media plane — lifecycle accounting must happen exactly once regardless
  // of how many crash/replay cycles the row survives.

  /// Verbatim image of one call's controller-side row, as persisted in the
  /// cluster WAL and replayed by adopt_call().
  struct CallSnapshot {
    DcId dc;
    LocationId first_joiner;
    std::size_t plan_col = AllocationPlan::npos;
    bool holds_slot = false;
    DcId slot_dc;
    double cores = 0.0;
    ServerId server;
  };
  /// The call's current row, or nullopt when unknown (never throws — the
  /// cluster layer probes liberally).
  [[nodiscard]] std::optional<CallSnapshot> snapshot_call(CallId call) const;
  /// Erases every row whose shard index is in [shard_begin, shard_end)
  /// WITHOUT crediting quota, cores, or packer occupancy (the media plane
  /// still hosts those calls). Returns the number of rows erased.
  std::size_t drop_shards(std::size_t shard_begin, std::size_t shard_end);
  /// Re-inserts a row dropped by drop_shards() exactly as snapshotted,
  /// WITHOUT re-debiting anything. Throws on a duplicate call id — replay
  /// must be exactly-once.
  void adopt_call(CallId call, const CallSnapshot& snap);
  /// Tracked core load of frozen calls hosted at `dc` (weakly consistent
  /// under concurrent events). This is what drain_dc checks provisioned
  /// backup budgets against.
  [[nodiscard]] double dc_cores_used(DcId dc) const;

 private:
  struct ActiveCall {
    DcId dc;
    LocationId first_joiner;  ///< for re-running the start heuristic on drain
    /// The config's plan column, recorded for every frozen planned call —
    /// including overflow calls that hold no slot — so a later
    /// rebind_plan() can re-attach them to the new plan's quotas.
    std::size_t plan_col = AllocationPlan::npos;
    bool holds_slot = false;
    DcId slot_dc;        ///< the DC of the debited quota cell (== dc except
                         ///< for calls hosted on backup capacity)
    double cores = 0.0;  ///< core footprint once frozen (0 before freeze)
    ServerId server;     ///< packed media server (invalid without a fleet,
                         ///< or before freeze)
  };

  /// One lock stripe: its own mutex and call table, padded so neighbouring
  /// shards' locks never share a cache line.
  struct alignas(64) CallShard {
    mutable std::mutex mutex;
    FlatIdMap<CallId, ActiveCall> calls;
  };

  /// Per-shard event counters; incremented with relaxed atomics from inside
  /// that shard's critical section, folded on read.
  struct alignas(64) ShardStats {
    std::atomic<std::uint64_t> calls_started{0};
    std::atomic<std::uint64_t> calls_frozen{0};
    std::atomic<std::uint64_t> migrations{0};
    std::atomic<std::uint64_t> unplanned{0};
    std::atomic<std::uint64_t> overflow{0};
    std::atomic<std::uint64_t> slot_debits{0};
    std::atomic<std::uint64_t> slot_credits{0};
    std::atomic<std::uint64_t> failover_moves{0};
    std::atomic<std::uint64_t> failover_drops{0};
  };

  [[nodiscard]] CallShard& shard(CallId call) {
    return shards_[shard_of(call, shard_count_)];
  }
  [[nodiscard]] ShardStats& shard_stats(CallId call) {
    return stats_[shard_of(call, shard_count_)];
  }
  [[nodiscard]] std::atomic<std::uint32_t>& usage(std::size_t col, DcId dc) {
    return usage_[col * plan_->dc_count() + dc.value()];
  }
  /// CAS loop: acquires one slot of (col, dc) iff usage < quota. Exact under
  /// contention — never debits past the quota, never loses a debit. When
  /// `retries` is set it accumulates the failed CAS attempts (contention
  /// telemetry on the freeze/drain spans).
  bool try_debit(std::size_t col, DcId dc, std::uint32_t quota,
                 std::uint32_t* retries = nullptr);

  [[nodiscard]] bool degraded() const {
    return health_ != nullptr && !health_->all_up();
  }
  [[nodiscard]] bool dc_ok(DcId dc) const {
    return health_ == nullptr || health_->dc_up(dc);
  }
  /// Closest DC whose health (and, when possible, WAN path from the joiner)
  /// is intact; falls back to ignoring links, then to every DC (fail open —
  /// a degraded placement beats refusing service).
  [[nodiscard]] DcId closest_available_dc(LocationId joiner) const;
  /// True when `dc` can absorb `cores` more within `budget_cores` (empty
  /// budget = unlimited).
  [[nodiscard]] bool within_budget(DcId dc, double cores,
                                   const std::vector<double>& budget) const;
  void add_cores(DcId dc, double cores);
  /// Tiers 0-2 of a drain (shard lock held): tries to move the call off
  /// `failed` without dropping it, re-packing at the destination when a
  /// fleet exists. Returns false when no surviving DC has room; the caller
  /// decides between server-overflow (drain_server) and drop_call.
  bool rehome_move(CallId call, ActiveCall& state, DcId failed, SimTime now,
                   const std::vector<double>& budget,
                   fault::FailoverOutcome& out);
  /// Tier 3 (shard lock held): credits the slot, returns the cores and the
  /// packed server, records the drop. The caller erases the call state.
  void drop_call(CallId call, ActiveCall& state, fault::FailoverOutcome& out);
  /// Packs a freshly frozen call; invalid when no fleet exists.
  ServerId pack_admit(DcId dc, double cores, std::uint32_t* retries);

  EvalContext ctx_;
  const AllocationPlan* plan_;
  RealtimeOptions options_;
  SimTime plan_start_s_;
  std::size_t shard_count_;
  const fault::HealthTable* health_;
  std::vector<DcId> all_dcs_;
  /// LocationId -> closest DC over the immutable latency matrix, resolved
  /// once at construction; call starts index it instead of re-scanning the
  /// matrix (the degraded path still scans, health filters the candidates).
  std::vector<DcId> closest_dc_;
  std::unique_ptr<CallShard[]> shards_;
  std::unique_ptr<ShardStats[]> stats_;
  /// [plan col][dc] active frozen calls, shared across shards.
  std::unique_ptr<std::atomic<std::uint32_t>[]> usage_;
  /// Per-DC tracked core load of frozen calls (relaxed fetch_add; consulted
  /// only by drain_dc's backup-budget check, never by planning decisions).
  std::unique_ptr<std::atomic<double>[]> dc_cores_;
  /// Intra-DC fleet packer; null when the world registers no servers, which
  /// keeps every no-fleet code path (and its decisions) bit-identical to the
  /// pre-packing selector. Owned per selector so a plan rebuild resets
  /// packing state exactly like the quota table.
  std::unique_ptr<pack::ServerPacker> packer_;
};

}  // namespace sb
