#include "kvstore/kvstore.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.h"
#include "common/rng.h"

namespace sb {

namespace {

/// Latency samples are seconds; the paper's write range is 0.3-4.2 ms, so
/// [10 us, 1 s) with ~13 buckets/decade resolves it comfortably.
obs::HistogramOptions latency_histogram_options() {
  return {.min = 1e-5, .max = 1.0, .bucket_count = 64};
}

}  // namespace

KvStore::KvStore(KvStoreOptions options)
    : options_(options),
      shards_(options.shard_count),
      latency_(latency_histogram_options()),
      ops_metric_(obs::MetricsRegistry::global().counter("sb.kvstore.ops")),
      latency_metric_(obs::MetricsRegistry::global().histogram(
          "sb.kvstore.op_latency_s", latency_histogram_options())) {
  require(options_.shard_count > 0, "KvStore: need at least one shard");
  require(options_.min_latency_ms > 0.0 &&
              options_.max_latency_ms >= options_.min_latency_ms,
          "KvStore: bad latency range");
}

KvStore::Shard& KvStore::shard_for(const std::string& key) const {
  const std::size_t h = std::hash<std::string>{}(key);
  return shards_[h % shards_.size()];
}

void KvStore::simulate_network() const {
  if (!options_.inject_latency) return;
  // Per-thread generator so concurrent clients draw independent latencies.
  thread_local Rng rng(options_.seed ^
                       std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const double ratio = options_.max_latency_ms / options_.min_latency_ms;
  const double latency_ms =
      options_.min_latency_ms * std::pow(ratio, rng.uniform());
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      latency_ms));
  const double latency_s = latency_ms / 1e3;
  latency_.record(latency_s);
  latency_metric_.record(latency_s);
  ops_metric_.inc();
}

void KvStore::set(const std::string& key, std::string value) {
  simulate_network();
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  Entry& entry = shard.map[key];
  entry.value = std::move(value);
  ++entry.version;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  simulate_network();
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return it->second.value;
}

std::int64_t KvStore::incr(const std::string& key, std::int64_t delta) {
  simulate_network();
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  std::int64_t current = 0;
  Entry& entry = shard.map[key];
  if (!entry.value.empty()) current = std::stoll(entry.value);
  current += delta;
  entry.value = std::to_string(current);
  ++entry.version;
  return current;
}

std::optional<KvStore::Versioned> KvStore::get_versioned(
    const std::string& key) const {
  simulate_network();
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return Versioned{it->second.value, it->second.version};
}

std::optional<std::uint64_t> KvStore::put_if(const std::string& key,
                                             std::string value,
                                             std::uint64_t expected_version) {
  simulate_network();
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  const std::uint64_t current = it == shard.map.end() ? 0 : it->second.version;
  if (current != expected_version) return std::nullopt;
  Entry& entry = it == shard.map.end() ? shard.map[key] : it->second;
  entry.value = std::move(value);
  ++entry.version;
  return entry.version;
}

std::vector<std::pair<std::string, std::string>> KvStore::scan_prefix(
    const std::string& prefix) const {
  simulate_network();
  std::vector<std::pair<std::string, std::string>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, entry] : shard.map) {
      if (key.rfind(prefix, 0) == 0) out.emplace_back(key, entry.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool KvStore::acquire_lease(const std::string& key, const std::string& owner,
                            double ttl_s, double now) {
  simulate_network();
  std::lock_guard lock(lease_mutex_);
  auto it = leases_.find(key);
  if (it != leases_.end() && it->second.owner != owner &&
      it->second.expires_at > now) {
    return false;  // live and held by someone else
  }
  LeaseInfo& info = leases_[key];
  const std::uint64_t version = info.version;
  info = LeaseInfo{owner, now + ttl_s, version + 1};
  return true;
}

bool KvStore::renew_lease(const std::string& key, const std::string& owner,
                          double ttl_s, double now) {
  simulate_network();
  std::lock_guard lock(lease_mutex_);
  const auto it = leases_.find(key);
  if (it == leases_.end() || it->second.owner != owner ||
      it->second.expires_at <= now) {
    return false;
  }
  it->second.expires_at = now + ttl_s;
  ++it->second.version;
  return true;
}

bool KvStore::release_lease(const std::string& key, const std::string& owner) {
  simulate_network();
  std::lock_guard lock(lease_mutex_);
  const auto it = leases_.find(key);
  if (it == leases_.end() || it->second.owner != owner) return false;
  leases_.erase(it);
  return true;
}

std::optional<KvStore::LeaseInfo> KvStore::lease(
    const std::string& key) const {
  std::lock_guard lock(lease_mutex_);
  const auto it = leases_.find(key);
  if (it == leases_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> KvStore::expire_leases(double now) {
  simulate_network();
  std::lock_guard lock(lease_mutex_);
  std::vector<std::string> expired;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires_at <= now) {
      expired.push_back(it->first);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(expired.begin(), expired.end());
  return expired;
}

bool KvStore::erase(const std::string& key) {
  simulate_network();
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  return shard.map.erase(key) > 0;
}

std::size_t KvStore::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

KvStore::OpStats KvStore::stats() const {
  const obs::HistogramData data = latency_.collect();
  OpStats stats;
  stats.ops = data.count;
  stats.total_latency_ms = data.sum * 1e3;
  stats.min_latency_ms = data.min * 1e3;
  stats.max_latency_ms = data.max * 1e3;
  return stats;
}

void KvStore::reset_stats() { latency_.reset(); }

}  // namespace sb
