#include "lp/solver.h"

#include "lp/presolve.h"
#include "lp/revised_simplex.h"
#include "lp/standard_form.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace sb::lp {

namespace {

/// Handles resolved once; lp::solve is on the provisioning critical path
/// and must not pay a registry lookup per call.
struct SolveMetrics {
  obs::Counter& solves;
  obs::Counter& infeasible;
  obs::Counter& iterations;
  obs::Counter& presolve_rows_removed;
  obs::Counter& presolve_bounds_tightened;
  obs::Counter& presolve_variables_fixed;
  obs::Histogram& solve_s;
  obs::Histogram& solve_dense_s;
  obs::Histogram& solve_revised_s;

  static SolveMetrics& get() {
    static SolveMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return SolveMetrics{
          r.counter("sb.lp.solves"),
          r.counter("sb.lp.infeasible"),
          r.counter("sb.lp.simplex_iterations"),
          r.counter("sb.lp.presolve_rows_removed"),
          r.counter("sb.lp.presolve_bounds_tightened"),
          r.counter("sb.lp.presolve_variables_fixed"),
          r.histogram("sb.lp.solve_s"),
          r.histogram("sb.lp.solve_dense_s"),
          r.histogram("sb.lp.solve_revised_s"),
      };
    }();
    return metrics;
  }
};

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  SolveMetrics& metrics = SolveMetrics::get();
  metrics.solves.inc();
  obs::ScopedTimer total_timer(metrics.solve_s);

  const Model* target = &model;
  PresolveResult pre;
  if (options.use_presolve) {
    pre = presolve(model);
    metrics.presolve_rows_removed.inc(pre.rows_removed);
    metrics.presolve_bounds_tightened.inc(pre.bounds_tightened);
    metrics.presolve_variables_fixed.inc(pre.variables_fixed);
    if (pre.infeasible) {
      metrics.infeasible.inc();
      Solution solution;
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    target = &pre.reduced;
  }
  const StandardForm sf = to_standard_form(*target);

  Method method = options.method;
  if (method == Method::kAuto) {
    method = sf.rows.size() >= 100 ? Method::kRevised : Method::kDense;
  }
  SfSolution raw;
  {
    obs::ScopedTimer method_timer(method == Method::kDense
                                      ? metrics.solve_dense_s
                                      : metrics.solve_revised_s);
    raw = method == Method::kDense ? solve_dense(sf, options)
                                   : solve_revised(sf, options);
  }
  metrics.iterations.inc(raw.iterations);
  if (raw.status == SolveStatus::kInfeasible) metrics.infeasible.inc();

  Solution solution;
  solution.status = raw.status;
  solution.iterations = raw.iterations;
  if (raw.status == SolveStatus::kOptimal) {
    // Presolve preserves variable indices, so mapping back through the
    // reduced model's standard form lands in the original variable space.
    solution.values = map_back(sf, raw.values, model.variable_count());
    solution.objective = model.objective_value(solution.values);
  }
  return solution;
}

}  // namespace sb::lp
