file(REMOVE_RECURSE
  "../bench/fig4_peak_aware_toy"
  "../bench/fig4_peak_aware_toy.pdb"
  "CMakeFiles/fig4_peak_aware_toy.dir/fig4_peak_aware_toy.cpp.o"
  "CMakeFiles/fig4_peak_aware_toy.dir/fig4_peak_aware_toy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_peak_aware_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
