// Property tests for the provisioning pipeline on randomized worlds and
// workloads: whatever the geography, the provisioned capacity must cover
// the no-failure placement, every failure scenario must remain coverable,
// and the allocation plan built on the capacity must be feasible.
#include <gtest/gtest.h>

#include "core/allocation_plan.h"
#include "core/provisioner.h"
#include "geo/world_presets.h"
#include "trace/config_sampler.h"
#include "trace/trace_gen.h"

namespace sb {
namespace {

struct RandomCase {
  std::uint64_t seed;
  std::size_t locations;
  std::size_t dcs;
};

class RandomWorldProvisioningTest
    : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomWorldProvisioningTest, CapacityCoversAllScenariosAndAllocates) {
  const RandomCase param = GetParam();
  Rng rng(param.seed);
  RandomWorldParams world_params;
  world_params.location_count = param.locations;
  world_params.dc_count = param.dcs;
  GeoModel geo = make_random_world(rng, world_params);

  CallConfigRegistry registry;
  UniverseParams universe_params;
  universe_params.config_count = 60;
  universe_params.total_peak_rate_per_hour = 400.0;
  ConfigUniverse universe =
      sample_universe(geo.world, registry, universe_params, rng);
  const LoadModel loads = LoadModel::paper_default();
  TraceGenerator trace(geo.world, registry, std::move(universe),
                       DiurnalShape{}, TraceParams{}, param.seed);
  const EvalContext ctx{&geo.world, &geo.topology, &geo.latency, &registry,
                        &loads};

  // Top-10 configs over a short design window to keep the LPs tiny.
  DemandMatrix full =
      trace.expected_demand(7200.0, kSecondsPerDay, 2 * kSecondsPerDay);
  std::vector<ConfigId> top;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, full.config_count());
       ++i) {
    top.push_back(full.config_at(i));
  }
  DemandMatrix demand = make_demand_matrix(top, full.slot_count());
  for (TimeSlot t = 0; t < full.slot_count(); ++t) {
    for (std::size_t c = 0; c < top.size(); ++c) {
      demand.set_demand(t, c, full.demand(t, c));
    }
  }

  ProvisionOptions options;
  options.include_link_failures = param.dcs >= 2;
  if (param.dcs < 2) options.with_backup = false;  // no failover possible
  SwitchboardProvisioner provisioner(ctx, options);
  const ProvisionResult result = provisioner.provision(demand);

  // 1. The no-failure placement hosts all demand within the capacity.
  const UsageProfile usage =
      compute_usage(result.base_placement, demand, ctx);
  const auto dc_peaks = usage.dc_peaks();
  for (std::size_t x = 0; x < geo.world.dc_count(); ++x) {
    EXPECT_LE(dc_peaks[x],
              result.capacity.dc_total_cores(
                  DcId(static_cast<std::uint32_t>(x))) +
                  1e-5)
        << "seed " << param.seed;
  }
  const auto link_peaks = usage.link_peaks();
  for (std::size_t l = 0; l < geo.topology.link_count(); ++l) {
    EXPECT_LE(link_peaks[l], result.capacity.link_gbps[l] + 1e-7);
  }
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      EXPECT_NEAR(result.base_placement.total_calls(t, c),
                  demand.demand(t, c), 1e-4);
    }
  }

  // 2. Every scenario's requirement is within the combined plan.
  for (const ScenarioOutcome& outcome : result.scenarios) {
    for (std::size_t x = 0; x < geo.world.dc_count(); ++x) {
      EXPECT_LE(outcome.required.dc_serving_cores[x],
                result.capacity.dc_total_cores(
                    DcId(static_cast<std::uint32_t>(x))) +
                    1e-5)
          << outcome.scenario.name;
    }
  }

  // 3. The allocation plan is feasible under the capacity and at least as
  // latency-good as the provisioning placement.
  AllocationPlanner planner(ctx, {});
  const AllocationPlan plan = planner.plan(demand, result.capacity, 7200.0);
  EXPECT_LE(plan.mean_acl_ms, result.mean_acl_ms + 1e-6);
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      std::uint32_t quota_total = 0;
      for (DcId dc : geo.world.dc_ids()) {
        quota_total += plan.quota(t, c, dc);
      }
      EXPECT_GE(quota_total + 1e-9, demand.demand(t, c));
    }
  }
}

std::vector<RandomCase> make_cases() {
  std::vector<RandomCase> cases;
  std::uint64_t seed = 9000;
  for (std::size_t dcs : {2u, 3u, 5u}) {
    for (std::size_t locations : {6u, 12u}) {
      for (int rep = 0; rep < 2; ++rep) {
        cases.push_back({seed++, locations, dcs});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomWorldProvisioningTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_loc" + std::to_string(info.param.locations) +
                                  "_dc" + std::to_string(info.param.dcs);
                         });

}  // namespace
}  // namespace sb
