#include "obs/timeseries.h"

#include <limits>
#include <ostream>
#include <sstream>

#include "common/csv.h"
#include "obs/snapshot.h"

namespace sb::obs {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

std::string format_number(double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry* registry,
                                       TimeSeriesOptions options)
    : registry_(registry),
      options_(options),
      next_due_(-std::numeric_limits<double>::infinity()) {}

std::size_t TimeSeriesRecorder::column_index(std::string_view column,
                                             bool create) {
  const auto it = column_of_.find(column);
  if (it != column_of_.end()) return it->second;
  if (!create) return kNpos;
  const std::size_t index = columns_.size();
  columns_.emplace_back(column);
  column_of_.emplace(columns_.back(), index);
  return index;
}

void TimeSeriesRecorder::append_locked(double sim_time_s) {
  const MetricsSnapshot snap = registry_->snapshot();
  Sample sample;
  sample.t = sim_time_s;
  // Sized up-front to the current column count; new metrics extend it below
  // (earlier samples implicitly read 0 for those columns).
  sample.values.assign(columns_.size(), 0.0);
  const auto set = [&](std::string_view column, double value) {
    const std::size_t index = column_index(column, /*create=*/true);
    if (index >= sample.values.size()) sample.values.resize(index + 1, 0.0);
    sample.values[index] = value;
  };
  for (const CounterSample& c : snap.counters) {
    set("counter:" + c.name, static_cast<double>(c.value));
  }
  for (const GaugeSample& g : snap.gauges) {
    set("gauge:" + g.name, g.value);
  }
  for (const HistogramSample& h : snap.histograms) {
    set("histogram:" + h.name + ":count",
        static_cast<double>(h.data.count));
    set("histogram:" + h.name + ":sum", h.data.sum);
    set("histogram:" + h.name + ":p50", h.data.p50());
    set("histogram:" + h.name + ":p99", h.data.p99());
  }
  samples_.push_back(std::move(sample));
}

void TimeSeriesRecorder::sample(double sim_time_s) {
  if (sim_time_s < next_due_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mutex_);
  // Recheck under the lock: another thread may have taken this cadence
  // point between the relaxed load and here.
  if (sim_time_s < next_due_.load(std::memory_order_relaxed)) return;
  append_locked(sim_time_s);
  next_due_.store(sim_time_s + options_.period_s, std::memory_order_relaxed);
}

void TimeSeriesRecorder::force_sample(double sim_time_s) {
  std::lock_guard lock(mutex_);
  append_locked(sim_time_s);
  next_due_.store(sim_time_s + options_.period_s, std::memory_order_relaxed);
}

std::size_t TimeSeriesRecorder::sample_count() const {
  std::lock_guard lock(mutex_);
  return samples_.size();
}

std::size_t TimeSeriesRecorder::column_count() const {
  std::lock_guard lock(mutex_);
  return columns_.size();
}

std::uint64_t TimeSeriesRecorder::counter_delta_total(
    std::string_view name) const {
  const std::vector<double> s = series(std::string("counter:") + std::string(name));
  if (s.empty()) return 0;
  // Counters are monotone, so the sum of per-interval deltas telescopes to
  // last - first; first is 0 unless recording began mid-run.
  return static_cast<std::uint64_t>(s.back() - s.front());
}

double TimeSeriesRecorder::last(std::string_view column) const {
  std::lock_guard lock(mutex_);
  const auto it = column_of_.find(column);
  if (it == column_of_.end() || samples_.empty()) return 0.0;
  const Sample& s = samples_.back();
  return it->second < s.values.size() ? s.values[it->second] : 0.0;
}

std::vector<double> TimeSeriesRecorder::series(std::string_view column) const {
  std::lock_guard lock(mutex_);
  const auto it = column_of_.find(column);
  if (it == column_of_.end()) return {};
  const std::size_t index = it->second;
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) {
    out.push_back(index < s.values.size() ? s.values[index] : 0.0);
  }
  return out;
}

void TimeSeriesRecorder::write_csv(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  CsvWriter writer(out);
  std::vector<std::string> row;
  row.reserve(columns_.size() + 1);
  row.emplace_back("t_s");
  for (const std::string& c : columns_) row.push_back(c);
  writer.write_row(row);
  for (const Sample& s : samples_) {
    row.clear();
    row.push_back(format_number(s.t));
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      row.push_back(
          format_number(i < s.values.size() ? s.values[i] : 0.0));
    }
    writer.write_row(row);
  }
}

void TimeSeriesRecorder::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\n  \"period_s\": " << format_number(options_.period_s)
      << ",\n  \"t\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << format_number(samples_[i].t);
  }
  out << "],\n  \"series\": {";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c == 0 ? "\n" : ",\n") << "    \"" << json_escape(columns_[c])
        << "\": [";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      out << (i == 0 ? "" : ", ")
          << format_number(c < samples_[i].values.size()
                               ? samples_[i].values[c]
                               : 0.0);
    }
    out << "]";
  }
  out << "\n  }\n}\n";
}

}  // namespace sb::obs
