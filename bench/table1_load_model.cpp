// Reproduces Table 1: relative compute load (CL), network load (NL), and
// the NL/CL ratio per media type, normalized to audio. The paper reports
// ranges (screen-share CL 1-2x / NL 10-20x, video CL 2-4x / NL 30-40x); the
// library's default load model sits at the midpoints. The NL/CL ratio is
// what orders Switchboard's offload preference (§6.3): audio first,
// screen-share next, video last.
#include <iostream>

#include "calls/media.h"
#include "common/table.h"

int main() {
  using namespace sb;
  const LoadModel model = LoadModel::paper_default();
  std::cout << "Table 1: relative compute (CL) and network (NL) loads per "
               "media type\n";
  const double cl_audio = model.cores_per_participant(MediaType::kAudio);
  const double nl_audio = model.mbps_per_participant(MediaType::kAudio);

  TextTable table({"Media", "CL", "NL", "NL/CL", "paper CL", "paper NL",
                   "paper NL/CL"});
  struct Row {
    MediaType media;
    const char* cl_range;
    const char* nl_range;
    const char* ratio_range;
  };
  const Row rows[] = {
      {MediaType::kAudio, "1x", "1x", "1x"},
      {MediaType::kScreenShare, "1-2x", "10-20x", "10-15x"},
      {MediaType::kVideo, "2-4x", "30-40x", "15-20x"},
  };
  for (const Row& r : rows) {
    const double cl = model.cores_per_participant(r.media) / cl_audio;
    const double nl = model.mbps_per_participant(r.media) / nl_audio;
    table.row()
        .cell(to_string(r.media))
        .cell(cl, 1)
        .cell(nl, 1)
        .cell(model.offload_ratio(r.media), 1)
        .cell(r.cl_range)
        .cell(r.nl_range)
        .cell(r.ratio_range);
  }
  std::cout << table;
  std::cout << "\nOffload preference (lowest NL/CL first): audio -> "
               "screen-share -> video (matches §6.3)\n";
  std::cout << "Absolute bases: audio "
            << format_double(cl_audio, 3) << " cores and "
            << format_double(nl_audio, 2) << " Mbps per participant\n";
  return 0;
}
