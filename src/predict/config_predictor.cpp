#include "predict/config_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sb {

std::vector<double> MeetingSeries::location_counts(
    std::size_t instance, std::size_t location_count) const {
  require(instance < attendance.size(),
          "MeetingSeries::location_counts: bad instance");
  std::vector<double> counts(location_count, 0.0);
  for (std::size_t p = 0; p < roster.size(); ++p) {
    if (attendance[instance][p]) counts[roster[p].value()] += 1.0;
  }
  return counts;
}

std::vector<MeetingSeries> generate_meeting_series(
    const World& world, const SeriesGenParams& params, Rng& rng) {
  require(params.series_count > 0, "generate_meeting_series: empty");
  require(world.location_count() > 0, "generate_meeting_series: no locations");

  std::vector<double> weights;
  for (const Location& loc : world.locations()) {
    weights.push_back(loc.population_weight);
  }

  std::vector<MeetingSeries> all;
  all.reserve(params.series_count);
  for (std::size_t s = 0; s < params.series_count; ++s) {
    MeetingSeries series;
    std::size_t roster_size = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(params.min_roster),
        static_cast<std::int64_t>(params.max_roster)));
    if (rng.chance(params.large_roster_prob)) {
      roster_size = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(params.max_roster),
          static_cast<std::int64_t>(params.large_roster)));
    }
    // Most of the roster shares the organizer's country; some join remote.
    const auto home = LocationId(
        static_cast<std::uint32_t>(rng.weighted_index(weights)));
    series.roster.reserve(roster_size);
    for (std::size_t p = 0; p < roster_size; ++p) {
      series.roster.push_back(
          rng.chance(0.8) ? home
                          : LocationId(static_cast<std::uint32_t>(
                                rng.weighted_index(weights))));
    }

    // Behaviour per participant: sticky Markov (attend begets attend) or a
    // strict alternator with noise.
    struct Behaviour {
      bool alternator;
      double p_attend_given_attend;
      double p_attend_given_miss;
      double noise;
    };
    std::vector<Behaviour> behaviour(roster_size);
    std::vector<std::uint8_t> state(roster_size);
    for (std::size_t p = 0; p < roster_size; ++p) {
      behaviour[p] = Behaviour{rng.chance(0.15), rng.uniform(0.65, 0.97),
                               rng.uniform(0.05, 0.45), rng.uniform(0.0, 0.1)};
      state[p] = rng.chance(0.7) ? 1 : 0;
    }

    const std::size_t instances = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(params.min_instances),
        static_cast<std::int64_t>(params.max_instances)));
    series.attendance.assign(instances,
                             std::vector<std::uint8_t>(roster_size, 0));
    for (std::size_t t = 0; t < instances; ++t) {
      for (std::size_t p = 0; p < roster_size; ++p) {
        bool attends;
        if (behaviour[p].alternator) {
          attends = (t % 2 == 0) != (state[p] == 0);
          if (rng.chance(behaviour[p].noise)) attends = !attends;
        } else {
          const double prob = state[p] ? behaviour[p].p_attend_given_attend
                                       : behaviour[p].p_attend_given_miss;
          attends = rng.chance(prob);
        }
        series.attendance[t][p] = attends ? 1 : 0;
        if (!behaviour[p].alternator) state[p] = attends ? 1 : 0;
      }
    }
    all.push_back(std::move(series));
  }
  return all;
}

ConfigPredictor::ConfigPredictor(std::size_t max_order)
    : momc_(max_order),
      // Features: per-order MOMC probabilities + overall attendance rate +
      // attended-last-instance indicator.
      logistic_(max_order + 2) {}

std::vector<double> ConfigPredictor::features(
    std::span<const std::uint8_t> history) const {
  std::vector<double> f = momc_.order_probs(history);
  double rate = 0.0;
  for (std::uint8_t b : history) rate += b;
  f.push_back(history.empty() ? 0.5
                              : rate / static_cast<double>(history.size()));
  f.push_back(!history.empty() && history.back() ? 1.0 : 0.0);
  return f;
}

void ConfigPredictor::train(const std::vector<MeetingSeries>& training) {
  require(!training.empty(), "ConfigPredictor::train: no series");
  for (const MeetingSeries& series : training) {
    for (std::size_t p = 0; p < series.roster.size(); ++p) {
      std::vector<std::uint8_t> history(series.instances());
      for (std::size_t t = 0; t < series.instances(); ++t) {
        history[t] = series.attendance[t][p];
      }
      momc_.observe(history);
    }
  }
  std::vector<std::vector<double>> xs;
  std::vector<std::uint8_t> ys;
  for (const MeetingSeries& series : training) {
    for (std::size_t p = 0; p < series.roster.size(); ++p) {
      std::vector<std::uint8_t> history;
      for (std::size_t t = 0; t < series.instances(); ++t) {
        if (t >= 1) {
          xs.push_back(features(history));
          ys.push_back(series.attendance[t][p]);
        }
        history.push_back(series.attendance[t][p]);
      }
    }
  }
  logistic_.fit(xs, ys);
}

double ConfigPredictor::attendance_prob(const MeetingSeries& series,
                                        std::size_t participant,
                                        std::size_t instance) const {
  require(participant < series.roster.size() &&
              instance <= series.instances(),
          "attendance_prob: out of range");
  std::vector<std::uint8_t> history(instance);
  for (std::size_t t = 0; t < instance; ++t) {
    history[t] = series.attendance[t][participant];
  }
  return logistic_.predict_prob(features(history));
}

std::vector<double> ConfigPredictor::predict_counts(
    const MeetingSeries& series, std::size_t instance,
    std::size_t location_count) const {
  std::vector<double> counts(location_count, 0.0);
  for (std::size_t p = 0; p < series.roster.size(); ++p) {
    counts[series.roster[p].value()] +=
        attendance_prob(series, p, instance);
  }
  return counts;
}

namespace {

/// Accumulates RMSE/MAE over the locations each series' roster touches,
/// instance-averaged as in §8.
void accumulate(const std::vector<double>& truth,
                const std::vector<double>& predicted, double& se_sum,
                double& ae_sum, std::size_t& terms) {
  for (std::size_t u = 0; u < truth.size(); ++u) {
    if (truth[u] == 0.0 && predicted[u] == 0.0) continue;
    const double d = truth[u] - predicted[u];
    se_sum += d * d;
    ae_sum += std::abs(d);
    ++terms;
  }
}

PredictionEval finish(double se_sum, double ae_sum, std::size_t terms,
                      std::size_t instances) {
  PredictionEval eval;
  eval.instances = instances;
  if (terms > 0) {
    eval.rmse = std::sqrt(se_sum / static_cast<double>(terms));
    eval.mae = ae_sum / static_cast<double>(terms);
  }
  return eval;
}

}  // namespace

PredictionEval evaluate_model(const ConfigPredictor& model,
                              const std::vector<MeetingSeries>& test,
                              std::size_t location_count) {
  double se = 0.0;
  double ae = 0.0;
  std::size_t terms = 0;
  std::size_t instances = 0;
  for (const MeetingSeries& series : test) {
    if (series.instances() < 4) continue;  // paper: >= 3 past occurrences
    const std::size_t last = series.instances() - 1;
    accumulate(series.location_counts(last, location_count),
               model.predict_counts(series, last, location_count), se, ae,
               terms);
    ++instances;
  }
  return finish(se, ae, terms, instances);
}

PredictionEval evaluate_previous_instance(
    const std::vector<MeetingSeries>& test, std::size_t location_count) {
  double se = 0.0;
  double ae = 0.0;
  std::size_t terms = 0;
  std::size_t instances = 0;
  for (const MeetingSeries& series : test) {
    if (series.instances() < 4) continue;
    const std::size_t last = series.instances() - 1;
    accumulate(series.location_counts(last, location_count),
               series.location_counts(last - 1, location_count), se, ae,
               terms);
    ++instances;
  }
  return finish(se, ae, terms, instances);
}

}  // namespace sb
