// The allocator interface the discrete-event simulator drives, with
// adapters for Switchboard's realtime selector and the RR/LF baselines.
// All three see the same event stream (call start -> config freeze -> call
// end), which is how §6.4's migration comparison is measured.
#pragma once

#include <memory>

#include "core/realtime.h"

namespace sb {

/// Per-call allocation decisions a scheme makes during simulation.
///
/// Thread safety: Simulator::run drives an allocator from one thread;
/// Simulator::run_concurrent issues events for *different* calls from many
/// threads at once (same-call events keep single-thread affinity via shard
/// partitioning). Only internally synchronized implementations — the
/// lock-striped RealtimeSelector and the Switchboard controller — may be
/// driven concurrently; the RR/LF baselines are single-threaded only.
class CallAllocator {
 public:
  virtual ~CallAllocator() = default;

  /// A call starts with its first joiner; returns the initial DC.
  virtual DcId on_call_start(CallId call, LocationId first_joiner,
                             SimTime now) = 0;

  /// The config freezes A seconds in; may migrate the call.
  virtual FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                        SimTime now) = 0;

  virtual void on_call_end(CallId call, SimTime now) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapter over Switchboard's RealtimeSelector (plan-driven behaviour).
class SwitchboardAllocator : public CallAllocator {
 public:
  /// Borrows the selector; it must outlive the allocator.
  explicit SwitchboardAllocator(RealtimeSelector& selector)
      : selector_(&selector) {}

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override {
    return selector_->on_call_start(call, first_joiner, now);
  }
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override {
    return selector_->on_config_frozen(call, config, now);
  }
  void on_call_end(CallId call, SimTime now) override {
    selector_->on_call_end(call, now);
  }
  [[nodiscard]] std::string name() const override { return "switchboard"; }

 private:
  RealtimeSelector* selector_;
};

/// §3.1 Round-Robin: cycles a per-region counter over the region's DCs at
/// call start; never migrates (the spread, not the config, drives RR).
class RoundRobinAllocator : public CallAllocator {
 public:
  explicit RoundRobinAllocator(EvalContext ctx);

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override;
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override;
  void on_call_end(CallId call, SimTime now) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  EvalContext ctx_;
  /// Region membership and DC lists resolved once at construction: call
  /// start is two vector indexes, not a string hash + map lookup per call.
  std::vector<std::size_t> location_region_;   ///< LocationId -> region index
  std::vector<std::vector<DcId>> region_dcs_;  ///< region index -> its DCs
  std::vector<std::size_t> region_cursor_;     ///< region index -> RR cursor
  std::unordered_map<CallId, DcId> active_;
};

/// §3.2 Locality-First: closest DC to the first joiner, then migrates to
/// the config's min-ACL DC at freeze time ("requires knowing the exact
/// spread of all participants", §6.4).
class LocalityFirstAllocator : public CallAllocator {
 public:
  explicit LocalityFirstAllocator(EvalContext ctx);

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override;
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override;
  void on_call_end(CallId call, SimTime now) override;
  [[nodiscard]] std::string name() const override { return "locality-first"; }

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

 private:
  EvalContext ctx_;
  std::vector<DcId> all_dcs_;
  std::unordered_map<CallId, DcId> active_;
  std::uint64_t migrations_ = 0;
};

}  // namespace sb
