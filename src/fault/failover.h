// Failover outcome types shared by the realtime selector's drain path, the
// Switchboard controller, and the simulator, plus the over-capacity
// accounting the §5.3 failover bench reports. Kept free of core/sim
// dependencies so sb_core can link sb_fault without a cycle.
#pragma once

#include <vector>

#include "common/types.h"

namespace sb::fault {

/// One live call re-homed by a DC or server drain. `to_server` is the media
/// server the call was packed onto at its destination — invalid when the
/// world has no fleet (or the call was never packed). A server drain that
/// re-packs onto a sibling keeps from == to with a new to_server.
struct FailoverMove {
  CallId call;
  DcId from;
  DcId to;
  ServerId to_server;
};

/// Result of draining a failed DC: every live call it hosted was either
/// migrated to a surviving DC or — only when backup capacity was truly
/// exhausted — dropped.
struct FailoverOutcome {
  std::vector<FailoverMove> moved;
  std::vector<CallId> dropped;

  [[nodiscard]] bool empty() const { return moved.empty() && dropped.empty(); }

  void merge(FailoverOutcome other) {
    moved.insert(moved.end(), other.moved.begin(), other.moved.end());
    dropped.insert(dropped.end(), other.dropped.begin(), other.dropped.end());
  }
};

/// Core-seconds of realized usage above provisioned capacity, integrated
/// over a bucketed usage series: sum_b sum_x max(0, usage[x][b] - cap[x]) *
/// bucket_s. Zero means the provisioned serving+backup absorbed the whole
/// series (the §5.3 claim the failover bench checks at runtime).
double over_capacity_core_s(
    const std::vector<std::vector<double>>& dc_cores_buckets,
    const std::vector<double>& capacity_cores, double bucket_s);

}  // namespace sb::fault
