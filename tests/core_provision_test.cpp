// Tests for capacity plans, the backup LP, failure scenarios, and the
// Switchboard provisioning LP — including an exact reproduction of the
// paper's Fig 4 toy example (peak-aware backup needs 320 cores where the
// additive Eq 1-2 plan needs 480).
#include <gtest/gtest.h>

#include "core/backup_lp.h"
#include "core/provisioner.h"

namespace sb {
namespace {

/// Fig 4's setting: three co-equal DCs (think Japan, Hong Kong, India),
/// every country within latency range of every DC, expensive WAN so serving
/// stays local in the no-failure case.
struct Fig4World {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};  // 1 core per leg

  static World make_world() {
    World w;
    w.add_location({"JP", 0.0, 0.0, 9.0, 1.0, "R"});
    w.add_location({"HK", 0.0, 8.0, 8.0, 1.0, "R"});
    w.add_location({"IN", 8.0, 0.0, 5.5, 1.0, "R"});
    w.add_datacenter({"DC-JP", LocationId(0), 1.0});
    w.add_datacenter({"DC-HK", LocationId(1), 1.0});
    w.add_datacenter({"DC-IN", LocationId(2), 1.0});
    return w;
  }

  Fig4World() : world(make_world()), topology(world), latency(3, 3) {
    // Triangle of very expensive links: offloading a call costs far more in
    // WAN than it can save in compute, so F0 serves locally.
    topology.add_link(LocationId(0), LocationId(1), 20.0, 1e5);
    topology.add_link(LocationId(1), LocationId(2), 20.0, 1e5);
    topology.add_link(LocationId(0), LocationId(2), 20.0, 1e5);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }

  /// One single-participant audio config per country; demand in "cores" is
  /// then numerically equal to calls.
  [[nodiscard]] DemandMatrix fig4_demand() {
    std::vector<ConfigId> configs;
    for (std::uint32_t u = 0; u < 3; ++u) {
      configs.push_back(registry.intern(
          CallConfig::make({{LocationId(u), 1}}, MediaType::kAudio)));
    }
    DemandMatrix demand = make_demand_matrix(configs, 3);
    // Fig 4(a): JP peaks 100 at T1; HK peaks 110 at T2; IN peaks 110 at T3.
    const double jp[3] = {100, 50, 40};
    const double hk[3] = {60, 110, 50};
    const double in[3] = {20, 40, 110};
    for (TimeSlot t = 0; t < 3; ++t) {
      demand.set_demand(t, 0, jp[t]);
      demand.set_demand(t, 1, hk[t]);
      demand.set_demand(t, 2, in[t]);
    }
    return demand;
  }
};

TEST(BackupLpTest, Fig4AdditiveBackupIs160Total) {
  // Serving 100/110/110 -> unique optimum B = (60, 50, 50).
  const auto backup = solve_backup_lp({100.0, 110.0, 110.0});
  ASSERT_EQ(backup.size(), 3u);
  EXPECT_NEAR(backup[0], 60.0, 1e-6);
  EXPECT_NEAR(backup[1], 50.0, 1e-6);
  EXPECT_NEAR(backup[2], 50.0, 1e-6);
}

TEST(BackupLpTest, EqualServingSpreadsEvenly) {
  const auto backup = solve_backup_lp({90.0, 90.0, 90.0, 90.0});
  double total = 0.0;
  for (double b : backup) total += b;
  // n DCs with equal serving S: total backup = n*S/ (2(n-1))... the LP
  // bound is total >= max_x S_x ... with 4 DCs each must be covered by the
  // other three: B_total - B_x >= 90 for all x -> B_total >= 90 + max B_x,
  // minimized at B_total = 120 (each 30).
  EXPECT_NEAR(total, 120.0, 1e-6);
}

TEST(BackupLpTest, SingleDcThrows) {
  EXPECT_THROW(solve_backup_lp({10.0}), SolveError);
  EXPECT_NO_THROW(solve_backup_lp({0.0}));
}

TEST(FailureTest, EnumerationCoversAll) {
  Fig4World w;
  const auto all = enumerate_failures(w.world, w.topology, true);
  EXPECT_EQ(all.size(), 1 + 3 + 3u);  // F0 + 3 DCs + 3 links
  const auto no_links = enumerate_failures(w.world, w.topology, false);
  EXPECT_EQ(no_links.size(), 4u);
  EXPECT_FALSE(dc_available(all[1], DcId(0)));
  EXPECT_TRUE(dc_available(all[1], DcId(1)));
}

TEST(Fig4Test, PeakAwareProvisioningNeeds320Cores) {
  Fig4World w;
  DemandMatrix demand = w.fig4_demand();
  ProvisionOptions options;
  options.include_link_failures = false;  // Fig 4 considers DC failures
  SwitchboardProvisioner provisioner(w.ctx(), options);
  const ProvisionResult result = provisioner.provision(demand);

  // Fig 4(c): 100 cores in JP, 110 in HK, 110 in IN — failures are served
  // from other DCs' off-peak slack, no extra capacity.
  EXPECT_NEAR(result.capacity.dc_total_cores(DcId(0)), 100.0, 1e-4);
  EXPECT_NEAR(result.capacity.dc_total_cores(DcId(1)), 110.0, 1e-4);
  EXPECT_NEAR(result.capacity.dc_total_cores(DcId(2)), 110.0, 1e-4);
  EXPECT_NEAR(result.capacity.total_cores(), 320.0, 1e-3);

  // No-failure placement serves everything locally (WAN is expensive).
  for (TimeSlot t = 0; t < 3; ++t) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(result.base_placement.calls(t, c, DcId(c)),
                  demand.demand(t, c), 1e-5);
    }
  }
}

TEST(Fig4Test, AdditiveBackupNeeds480Cores) {
  Fig4World w;
  DemandMatrix demand = w.fig4_demand();
  ProvisionOptions options;
  options.include_link_failures = false;
  options.peak_aware_backup = false;  // Fig 4(b)'s default plan
  SwitchboardProvisioner provisioner(w.ctx(), options);
  const ProvisionResult result = provisioner.provision(demand);

  // Fig 4(b): every DC ends up at 160 cores (serving + additive backup).
  for (std::uint32_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(result.capacity.dc_total_cores(DcId(x)), 160.0, 1e-3);
  }
  EXPECT_NEAR(result.capacity.total_cores(), 480.0, 1e-3);
}

TEST(Fig4Test, JointScenarioLpNeverCostsMoreThanSequential) {
  // The exact Eq 3+7/8 joint LP can beat the sequential decomposition even
  // on the toy: once failure scenarios force WAN capacity, the joint LP
  // reuses it during normal serving to pack cores below 320 (the paper's
  // §4.2 network-reuse idea). It must never cost more than sequential.
  Fig4World w;
  DemandMatrix demand = w.fig4_demand();
  ProvisionOptions sequential;
  sequential.include_link_failures = false;
  ProvisionOptions joint = sequential;
  joint.joint_scenarios = true;
  const ProvisionResult seq =
      SwitchboardProvisioner(w.ctx(), sequential).provision(demand);
  const ProvisionResult jnt =
      SwitchboardProvisioner(w.ctx(), joint).provision(demand);
  // 290 is the LP lower bound from summing the failure covering
  // constraints; joint must land in [290, 320].
  EXPECT_LE(jnt.capacity.total_cores(), 320.0 + 1e-3);
  EXPECT_GE(jnt.capacity.total_cores(), 290.0 - 1e-3);
  const double seq_cost = seq.capacity.total_cost(w.world, w.topology);
  const double jnt_cost = jnt.capacity.total_cost(w.world, w.topology);
  EXPECT_LE(jnt_cost, seq_cost * 1.0001);
}

TEST(Fig4Test, WithoutBackupMatchesLocalPeaks) {
  Fig4World w;
  DemandMatrix demand = w.fig4_demand();
  ProvisionOptions options;
  options.with_backup = false;
  SwitchboardProvisioner provisioner(w.ctx(), options);
  const ProvisionResult result = provisioner.provision(demand);
  EXPECT_NEAR(result.capacity.total_cores(), 320.0, 1e-3);
  for (double b : result.capacity.dc_backup_cores) {
    EXPECT_DOUBLE_EQ(b, 0.0);
  }
  EXPECT_EQ(result.scenarios.size(), 1u);
}

TEST(Fig4Test, ScenarioCapacityCoversShiftedDemand) {
  Fig4World w;
  DemandMatrix demand = w.fig4_demand();
  ProvisionOptions options;
  options.include_link_failures = false;
  SwitchboardProvisioner provisioner(w.ctx(), options);

  // Under F_JP, every placement row must still place all demand, at alive
  // DCs only, within the scenario's own capacity.
  PlacementMatrix placement(3, 3, 3);
  const ScenarioOutcome outcome = provisioner.solve_scenario(
      demand, FailureScenario::dc_failure(DcId(0), w.world), &placement);
  for (TimeSlot t = 0; t < 3; ++t) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(placement.total_calls(t, c), demand.demand(t, c), 1e-5);
      EXPECT_NEAR(placement.calls(t, c, DcId(0)), 0.0, 1e-9);
    }
  }
  const EvalContext ctx = w.ctx();
  const UsageProfile usage = compute_usage(placement, demand, ctx);
  const auto peaks = usage.dc_peaks();
  for (std::uint32_t x = 0; x < 3; ++x) {
    EXPECT_LE(peaks[x], outcome.required.dc_serving_cores[x] + 1e-5);
  }
}

TEST(CapacityPlanTest, CostsAndMax) {
  Fig4World w;
  CapacityPlan a = CapacityPlan::zeros(w.world, w.topology);
  a.dc_serving_cores = {10, 20, 30};
  a.dc_backup_cores = {1, 2, 3};
  a.link_gbps = {5, 0, 0};
  EXPECT_DOUBLE_EQ(a.total_cores(), 66.0);
  EXPECT_DOUBLE_EQ(a.total_wan_gbps(), 5.0);
  EXPECT_DOUBLE_EQ(a.compute_cost(w.world), 66.0);  // unit core costs
  EXPECT_DOUBLE_EQ(a.network_cost(w.topology), 5.0 * 1e5);

  CapacityPlan b = CapacityPlan::zeros(w.world, w.topology);
  b.dc_serving_cores = {50, 0, 0};
  b.link_gbps = {0, 7, 0};
  const CapacityPlan m = max_capacity(a, b);
  EXPECT_DOUBLE_EQ(m.dc_total_cores(DcId(0)), 50.0);
  EXPECT_DOUBLE_EQ(m.dc_total_cores(DcId(1)), 22.0);
  EXPECT_DOUBLE_EQ(m.link_gbps[0], 5.0);
  EXPECT_DOUBLE_EQ(m.link_gbps[1], 7.0);
}

TEST(HostingProfileTest, AggregatesLegsAndLinks) {
  Fig4World w;
  const CallConfig config = CallConfig::make(
      {{LocationId(0), 2}, {LocationId(1), 1}}, MediaType::kVideo);
  const EvalContext ctx = w.ctx();
  const HostingProfile profile =
      make_hosting_profile(config, DcId(0), ctx);
  EXPECT_DOUBLE_EQ(profile.cores_per_call, 3.0 * 3);  // 3 legs x CL_video
  // Only the HK leg crosses the WAN: one link, 35 Mbps -> 0.035 Gbps.
  ASSERT_EQ(profile.link_gbps_per_call.size(), 1u);
  EXPECT_NEAR(profile.link_gbps_per_call[0].second, 0.035, 1e-9);
  EXPECT_GT(profile.acl_ms, 0.0);
}

}  // namespace
}  // namespace sb
