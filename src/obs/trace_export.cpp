#include "obs/trace_export.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace sb::obs {

namespace {

/// Span names are literals and attr names come from to_string(), so the only
/// escaping JSON needs is defensive quoting of quotes/backslashes.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

std::string format_us(std::int64_t ns) {
  // Microseconds with ns precision; Chrome's "ts" field is fractional-us.
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(ns) / 1000.0;
  return os.str();
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanData>& spans) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanData& s : spans) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
        << to_string(s.subsystem) << "\",\"ph\":\"X\",\"ts\":"
        << format_us(s.wall_start_ns)
        << ",\"dur\":" << format_us(s.wall_end_ns - s.wall_start_ns)
        << ",\"pid\":1,\"tid\":" << s.thread << ",\"args\":{\"span\":" << s.id
        << ",\"parent\":" << s.parent;
    if (s.sim_time != kNoSimTime) {
      out << ",\"sim_time\":" << s.sim_time;
    }
    for (std::uint32_t a = 0; a < s.attr_count; ++a) {
      out << ",\"" << to_string(s.attrs[a].key)
          << "\":" << s.attrs[a].value;
    }
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool dump_chrome_trace(const std::string& path, std::uint64_t* dropped_out) {
  SpanRecorder& recorder = SpanRecorder::global();
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, recorder.collect());
  if (dropped_out != nullptr) *dropped_out = recorder.dropped();
  return out.good();
}

std::vector<SpanStats> span_stats(const std::vector<SpanData>& spans) {
  std::map<std::string_view, SpanStats> by_name;
  for (const SpanData& s : spans) {
    SpanStats& stat = by_name[s.name];
    const double d = s.duration_s();
    if (stat.count == 0) {
      stat.name = s.name;
      stat.subsystem = s.subsystem;
      stat.min_s = d;
      stat.max_s = d;
    } else {
      stat.min_s = std::min(stat.min_s, d);
      stat.max_s = std::max(stat.max_s, d);
    }
    ++stat.count;
    stat.total_s += d;
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (const auto& [name, stat] : by_name) out.push_back(stat);
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_s > b.total_s;
  });
  return out;
}

void write_span_stats(std::ostream& out,
                      const std::vector<SpanStats>& stats) {
  if (stats.empty()) return;
  std::size_t width = 4;
  for (const SpanStats& s : stats) {
    width = std::max(width, std::string_view(s.name).size());
  }
  out << std::left << std::setw(static_cast<int>(width)) << "span"
      << std::right << std::setw(12) << "count" << std::setw(14) << "total_s"
      << std::setw(14) << "mean_s" << std::setw(14) << "min_s"
      << std::setw(14) << "max_s" << "\n";
  for (const SpanStats& s : stats) {
    out << std::left << std::setw(static_cast<int>(width)) << s.name
        << std::right << std::setw(12) << s.count << std::fixed
        << std::setprecision(6) << std::setw(14) << s.total_s << std::setw(14)
        << s.mean_s() << std::setw(14) << s.min_s << std::setw(14) << s.max_s
        << "\n";
  }
  out.unsetf(std::ios::fixed);
}

}  // namespace sb::obs
