// Performance smoke tests for the cold-solve path (ctest label lp_perf,
// run in both compiler CI jobs and under TSan). These are regression
// tripwires, not benchmarks: they solve a small decomposed provisioning
// shape and assert (a) the iteration count stays under a threshold far
// below the pre-decomposition cost, (b) parallel subproblem solves produce
// bit-identical output to the sequential run (the TSan job makes this a
// data-race check on the decomposition fan-out), and (c) the Devex
// framework and decomposition counters actually tick, so the metrics CI
// dashboards key on cannot silently go dead.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/block_decompose.h"
#include "lp/solver.h"
#include "lp/standard_form.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace sb::lp {
namespace {

/// The provisioning shape shared with bench/micro_lp.cpp and the other lp
/// tests: per-DC peaks (coupling), per-(slot, config) completeness
/// equalities and per-slot capacity rows (block-local).
Model make_provisioning_lp(std::size_t slots, std::size_t configs,
                           std::size_t dcs, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<int> cp(dcs);
  for (std::size_t x = 0; x < dcs; ++x) {
    cp[x] = m.add_variable(0.0, kInf, rng.uniform(0.9, 1.4));
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::vector<Term>> dc_rows(dcs);
    for (std::size_t c = 0; c < configs; ++c) {
      std::vector<Term> completeness;
      for (std::size_t x = 0; x < dcs; ++x) {
        const int s = m.add_variable(0.0, kInf, 1e-6 * rng.uniform(5, 100));
        dc_rows[x].push_back({s, rng.uniform(0.01, 0.1)});
        completeness.push_back({s, 1.0});
      }
      m.add_constraint(std::move(completeness), Sense::kEq,
                       rng.uniform(0.0, 50.0));
    }
    for (std::size_t x = 0; x < dcs; ++x) {
      dc_rows[x].push_back({cp[x], -1.0});
      m.add_constraint(std::move(dc_rows[x]), Sense::kLe, 0.0);
    }
  }
  return m;
}

TEST(LpPerfSmoke, DetectionFindsOneBlockPerSlot) {
  const std::size_t slots = 16;
  const Model m = make_provisioning_lp(slots, 6, 4, 91);
  const StandardForm sf = to_standard_form(m, BoundPolicy::kInline);
  const BlockPlan plan = detect_blocks(sf);
  EXPECT_EQ(plan.block_count, slots);
  EXPECT_EQ(plan.coupling_cols, 4u);  // the per-DC peaks
  // Every row lands in a block: completeness and capacity rows all touch
  // slot-local columns.
  for (int b : plan.row_block) EXPECT_GE(b, 0);
}

TEST(LpPerfSmoke, DecomposedIterationCountStaysBounded) {
  const Model m = make_provisioning_lp(16, 6, 4, 91);
  SolveOptions opt;
  opt.method = Method::kSparse;
  opt.decompose = DecomposePolicy::kForce;
  const Solution decomposed = solve(m, opt);
  ASSERT_TRUE(decomposed.optimal());

  SolveOptions plain;
  plain.method = Method::kSparse;
  plain.decompose = DecomposePolicy::kOff;
  const Solution monolithic = solve(m, plain);
  ASSERT_TRUE(monolithic.optimal());
  EXPECT_NEAR(decomposed.objective, monolithic.objective,
              1e-6 * std::max(1.0, std::abs(monolithic.objective)));

  // Regression tripwires. Total decomposed iterations (sub-solves +
  // clean-up) can exceed the monolithic count on a shape this small — the
  // point is that each sub-iteration runs on a ~25-row basis instead of the
  // monolithic 160-row one — but both counts must stay far below the
  // one-iteration-per-variable regime (~390 variables here; ~330 and ~175
  // iterations respectively when this was written).
  EXPECT_LT(decomposed.iterations, 1000u);
  EXPECT_LT(monolithic.iterations, 500u);
}

TEST(LpPerfSmoke, ParallelAndSequentialDecompositionBitIdentical) {
  const Model m = make_provisioning_lp(12, 5, 4, 17);
  SolveOptions opt;
  opt.method = Method::kSparse;
  opt.decompose = DecomposePolicy::kForce;
  opt.decompose_threads = 1;
  const Solution sequential = solve(m, opt);
  ASSERT_TRUE(sequential.optimal());
  opt.decompose_threads = 4;
  const Solution parallel = solve(m, opt);
  ASSERT_TRUE(parallel.optimal());

  ASSERT_EQ(sequential.values.size(), parallel.values.size());
  for (std::size_t i = 0; i < sequential.values.size(); ++i) {
    EXPECT_EQ(sequential.values[i], parallel.values[i]) << "var=" << i;
  }
  EXPECT_EQ(sequential.iterations, parallel.iterations);
  EXPECT_EQ(sequential.basis, parallel.basis);
  EXPECT_EQ(sequential.row_basis, parallel.row_basis);
}

#ifdef SB_METRICS_ENABLED
TEST(LpPerfSmoke, EngineCountersTick) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = reg.snapshot();
  const Model m = make_provisioning_lp(16, 6, 4, 91);
  SolveOptions opt;
  opt.method = Method::kSparse;
  opt.decompose = DecomposePolicy::kForce;
  ASSERT_TRUE(solve(m, opt).optimal());
  const obs::MetricsSnapshot delta = obs::snapshot_diff(before, reg.snapshot());
  EXPECT_GT(delta.counter_value("sb.lp.decompose_solves"), 0u);
  EXPECT_GT(delta.counter_value("sb.lp.decompose_blocks"), 0u);
  EXPECT_GT(delta.counter_value("sb.lp.decompose_sub_iterations"), 0u);
}
#endif

}  // namespace
}  // namespace sb::lp
