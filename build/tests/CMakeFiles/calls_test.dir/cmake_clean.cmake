file(REMOVE_RECURSE
  "CMakeFiles/calls_test.dir/calls_test.cpp.o"
  "CMakeFiles/calls_test.dir/calls_test.cpp.o.d"
  "calls_test"
  "calls_test.pdb"
  "calls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
