file(REMOVE_RECURSE
  "../bench/table4_forecast_gap"
  "../bench/table4_forecast_gap.pdb"
  "CMakeFiles/table4_forecast_gap.dir/table4_forecast_gap.cpp.o"
  "CMakeFiles/table4_forecast_gap.dir/table4_forecast_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_forecast_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
