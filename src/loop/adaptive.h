// Closed-loop autoscaling (ROADMAP "closed-loop control"): an
// AdaptiveController wraps the Switchboard facade as a CallAllocator,
// tracks observed per-config concurrency as the trace replays, and on a
// sim-time cadence compares it against the forecast the plan was built
// from. Re-provisioning is ERROR-TRIGGERED: only when the aggregate
// relative deviation leaves the configured band does the loop build a
// corrected demand matrix (forecast rescaled toward the observation,
// floored at what is live right now), re-run capacity provisioning with a
// warm-started F0 LP, and install the new plan into the live selector
// through Switchboard::install_plan — calls never move, their slot
// accounting re-binds. When observation matches forecast, the loop is
// silent: zero triggers, zero replans (the property tests pin this).
//
// The loop reads its signal through the obs::TimeSeriesRecorder feed (the
// same telemetry offline consumers see), falling back to its own shadow
// counters when metrics are compiled out or no recorder is attached.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "calls/demand.h"
#include "core/controller.h"
#include "sim/allocator.h"

namespace sb::obs {
class TimeSeriesRecorder;
}  // namespace sb::obs

namespace sb::loop {

struct LoopOptions {
  /// Sim-time spacing between control ticks.
  double cadence_s = 300.0;
  /// Relative deviation |observed - forecast| / max(forecast, 1) that must
  /// be exceeded before the loop re-provisions. Inside the band the tick is
  /// a no-op (no plan-thrash on steady traces).
  double deviation_band = 0.25;
  /// Clamp on the per-config correction ratio observed/forecast, bounding
  /// how hard one tick can rescale the demand matrix.
  double ratio_floor = 0.25;
  double ratio_cap = 8.0;
  /// TEST-ONLY chaos knob (sb_fuzz --chaos skip-replan): the tick counts
  /// the out-of-band trigger but silently drops the re-provision — the
  /// planted bug the loop-replan oracle must catch. Never set in
  /// production configurations.
  bool chaos_skip_replan = false;
};

struct LoopStats {
  std::uint64_t ticks = 0;      ///< cadence points evaluated
  std::uint64_t triggers = 0;   ///< ticks whose deviation left the band
  std::uint64_t replans = 0;    ///< provisions + installs actually executed
  std::uint64_t solve_errors = 0;  ///< triggers whose re-provision LP failed
};

/// CallAllocator decorator over a Switchboard: delegates every event (and
/// the batch brackets) to a ControllerAllocator, maintains observed
/// per-config concurrency, and runs the control tick at cadence points.
/// The tick never runs while the ticking thread holds the batch shared
/// lock: in batched replay it fires from batch_end() after the inner
/// allocator released the lock, in unbatched replay directly after the
/// delegated event returns — so install_plan's exclusive acquisition can
/// always drain the readers. Thread-safe under the same contract as the
/// Switchboard realtime API.
class AdaptiveController : public CallAllocator {
 public:
  /// `sb` must have provision() + build_allocation_plan() already run from
  /// `forecast` (the open-loop plan the trace starts under); `plan_start_s`
  /// is that plan's anchor and `slot_s` its slot width. All borrowed
  /// references must outlive the controller.
  AdaptiveController(Switchboard& sb, EvalContext ctx, DemandMatrix forecast,
                     SimTime plan_start_s, double slot_s, LoopOptions options,
                     obs::TimeSeriesRecorder* recorder = nullptr);

  void batch_begin() override;
  void batch_end(SimTime now) override;
  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override;
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override;
  FreezeResult on_config_frozen(CallId call, ConfigId id,
                                const CallConfig& config,
                                SimTime now) override;
  void on_call_end(CallId call, SimTime now) override;
  fault::FailoverOutcome on_dc_failed(DcId dc, SimTime now) override;
  void on_dc_recovered(DcId dc, SimTime now) override;
  void on_link_failed(LinkId link, SimTime now) override;
  void on_link_recovered(LinkId link, SimTime now) override;
  fault::FailoverOutcome on_server_failed(ServerId server,
                                          SimTime now) override;
  void on_server_recovered(ServerId server, SimTime now) override;
  [[nodiscard]] std::string name() const override {
    return "switchboard-loop";
  }

  [[nodiscard]] LoopStats stats() const;
  /// The demand matrix the loop currently believes (the initial forecast
  /// until the first replan, the last corrected matrix after).
  [[nodiscard]] DemandMatrix current_forecast() const;
  /// Sum of live observed per-config concurrency (frozen calls only — the
  /// config is unknown before the freeze).
  [[nodiscard]] double observed_total() const;

 private:
  static constexpr std::size_t kTrackShards = 16;
  struct TrackShard {
    std::mutex mutex;
    std::unordered_map<CallId, std::uint32_t> col_of_call;
  };

  /// Per-thread batch nesting depth (same pattern as ControllerAllocator).
  static int& batch_depth();

  void maybe_tick(SimTime now);
  void tick(SimTime now);
  [[nodiscard]] TimeSlot slot_of(SimTime now) const;
  [[nodiscard]] DemandMatrix corrected_demand(TimeSlot slot) const;
  void track_freeze(CallId call, ConfigId id);
  void untrack(CallId call);
  void untrack_outcome(const fault::FailoverOutcome& outcome);

  Switchboard* sb_;
  ControllerAllocator inner_;
  EvalContext ctx_;
  SimTime plan_start_s_;
  double slot_s_;
  LoopOptions options_;
  obs::TimeSeriesRecorder* recorder_;

  /// Loop-believed demand; replaced by the corrected matrix on every
  /// replan so deviation is always measured against the installed plan's
  /// demand (guarded by tick_mutex_).
  DemandMatrix forecast_;
  std::unordered_map<ConfigId, std::uint32_t> col_of_;
  std::unique_ptr<std::atomic<std::int64_t>[]> observed_;
  TrackShard track_[kTrackShards];

  mutable std::mutex tick_mutex_;
  std::atomic<double> next_due_;
  /// Warm-start basis chained across replans (guarded by tick_mutex_).
  ScenarioBasisHint warm_basis_;
  bool have_warm_ = false;

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> triggers_{0};
  std::atomic<std::uint64_t> replans_{0};
  std::atomic<std::uint64_t> solve_errors_{0};

  obs::Gauge& observed_gauge_;
  obs::Counter& tick_counter_;
  obs::Counter& trigger_counter_;
  obs::Counter& replan_counter_;
  obs::Histogram& tick_s_;
};

}  // namespace sb::loop
