// Tests for the allocation-plan LP (Eq 10), quota rounding, and the
// realtime MP selector's assign/debit/migrate behaviour (§5.4).
#include <gtest/gtest.h>

#include "core/allocation_plan.h"
#include "core/provisioner.h"
#include "core/realtime.h"

namespace sb {
namespace {

/// Two locations, two DCs, cheap world where everything is latency-feasible.
struct TwoDcWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  TwoDcWorld() : world(make_world()), topology(world), latency(2, 2) {
    topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world() {
    World w;
    w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
    w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
    w.add_datacenter({"DC-A", LocationId(0), 1.0});
    w.add_datacenter({"DC-B", LocationId(1), 1.0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

TEST(AllocationPlanTest, SlotMappingClampsAtHorizon) {
  AllocationPlan plan(4, 1, 1, 1800.0);
  EXPECT_EQ(plan.slot_at(-5.0), 0u);
  EXPECT_EQ(plan.slot_at(0.0), 0u);
  EXPECT_EQ(plan.slot_at(1799.0), 0u);
  EXPECT_EQ(plan.slot_at(1800.0), 1u);
  EXPECT_EQ(plan.slot_at(1e9), 3u);
}

TEST(AllocationPlannerTest, PrefersLocalDcWithAmpleCapacity) {
  TwoDcWorld w;
  const ConfigId ca = w.registry.intern(
      CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio));
  const ConfigId cb = w.registry.intern(
      CallConfig::make({{LocationId(1), 2}}, MediaType::kAudio));
  DemandMatrix demand = make_demand_matrix({ca, cb}, 2);
  demand.set_demand(0, 0, 10.0);
  demand.set_demand(0, 1, 4.0);
  demand.set_demand(1, 0, 6.0);
  demand.set_demand(1, 1, 8.0);

  CapacityPlan capacity = CapacityPlan::zeros(w.world, w.topology);
  capacity.dc_serving_cores = {100.0, 100.0};
  capacity.link_gbps = {10.0};

  AllocationPlanner planner(w.ctx(), {});
  const AllocationPlan plan = planner.plan(demand, capacity, 1800.0);
  // With slack everywhere, Eq 10 places each config at its local DC.
  EXPECT_EQ(plan.quota(0, 0, DcId(0)), 10u);
  EXPECT_EQ(plan.quota(0, 0, DcId(1)), 0u);
  EXPECT_EQ(plan.quota(0, 1, DcId(1)), 4u);
  EXPECT_EQ(plan.quota(1, 1, DcId(1)), 8u);
  EXPECT_GT(plan.mean_acl_ms, 0.0);
}

TEST(AllocationPlannerTest, SpillsWhenLocalCapacityBinds) {
  TwoDcWorld w;
  const ConfigId ca = w.registry.intern(
      CallConfig::make({{LocationId(0), 1}}, MediaType::kAudio));
  DemandMatrix demand = make_demand_matrix({ca}, 1);
  demand.set_demand(0, 0, 10.0);  // 10 cores needed, DC-A has 6

  CapacityPlan capacity = CapacityPlan::zeros(w.world, w.topology);
  capacity.dc_serving_cores = {6.0, 100.0};
  capacity.link_gbps = {10.0};

  AllocationPlanner planner(w.ctx(), {});
  const AllocationPlan plan = planner.plan(demand, capacity, 1800.0);
  EXPECT_NEAR(plan.fractional.calls(0, 0, DcId(0)), 6.0, 1e-6);
  EXPECT_NEAR(plan.fractional.calls(0, 0, DcId(1)), 4.0, 1e-6);
  EXPECT_EQ(plan.quota(0, 0, DcId(0)) + plan.quota(0, 0, DcId(1)), 10u);
}

TEST(AllocationPlannerTest, InfeasibleCapacityThrows) {
  TwoDcWorld w;
  const ConfigId ca = w.registry.intern(
      CallConfig::make({{LocationId(0), 1}}, MediaType::kAudio));
  DemandMatrix demand = make_demand_matrix({ca}, 1);
  demand.set_demand(0, 0, 10.0);
  CapacityPlan capacity = CapacityPlan::zeros(w.world, w.topology);
  capacity.dc_serving_cores = {1.0, 1.0};
  AllocationPlanner planner(w.ctx(), {});
  EXPECT_THROW(planner.plan(demand, capacity, 1800.0), SolveError);
}

TEST(AllocationPlanTest, QuotaRoundingConservesTotals) {
  TwoDcWorld w;
  const ConfigId ca = w.registry.intern(
      CallConfig::make({{LocationId(0), 1}}, MediaType::kAudio));
  DemandMatrix demand = make_demand_matrix({ca}, 1);
  demand.set_demand(0, 0, 7.3);  // fractional demand
  CapacityPlan capacity = CapacityPlan::zeros(w.world, w.topology);
  capacity.dc_serving_cores = {4.0, 100.0};
  capacity.link_gbps = {10.0};
  AllocationPlanner planner(w.ctx(), {});
  const AllocationPlan plan = planner.plan(demand, capacity, 1800.0);
  // ceil(7.3) = 8 integral slots, split across the DCs.
  EXPECT_EQ(plan.quota(0, 0, DcId(0)) + plan.quota(0, 0, DcId(1)), 8u);
}

class RealtimeSelectorTest : public ::testing::Test {
 protected:
  RealtimeSelectorTest() : plan_(1, 1, 2, 1800.0) {
    config_ = CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
    config_id_ = world_.registry.intern(config_);
    plan_.config_columns = {config_id_};
    plan_.set_quota(0, 0, DcId(0), 1);  // one slot at the local DC
    plan_.set_quota(0, 0, DcId(1), 1);  // one overflow slot remote
  }

  TwoDcWorld world_;
  AllocationPlan plan_;
  CallConfig config_ = CallConfig::make({{LocationId(0), 1}},
                                        MediaType::kAudio);
  ConfigId config_id_;
};

TEST_F(RealtimeSelectorTest, AssignsClosestDcToFirstJoiner) {
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  EXPECT_EQ(selector.on_call_start(CallId(1), LocationId(0), 0.0), DcId(0));
  EXPECT_EQ(selector.on_call_start(CallId(2), LocationId(1), 0.0), DcId(1));
  EXPECT_EQ(selector.stats().calls_started, 2u);
  EXPECT_THROW(selector.on_call_start(CallId(1), LocationId(0), 1.0),
               InvalidArgument);
}

TEST_F(RealtimeSelectorTest, DebitsSlotWithoutMigrationWhenPlanAgrees) {
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  const FreezeResult r = selector.on_config_frozen(CallId(1), config_, 300.0);
  EXPECT_FALSE(r.migrated);
  EXPECT_TRUE(r.planned);
  EXPECT_EQ(r.dc, DcId(0));
  EXPECT_EQ(selector.stats().migrations, 0u);
}

TEST_F(RealtimeSelectorTest, MigratesWhenLocalQuotaExhausted) {
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  selector.on_config_frozen(CallId(1), config_, 300.0);  // takes DC-A slot
  selector.on_call_start(CallId(2), LocationId(0), 10.0);
  const FreezeResult r = selector.on_config_frozen(CallId(2), config_, 310.0);
  EXPECT_TRUE(r.migrated);
  EXPECT_EQ(r.dc, DcId(1));  // the remaining quota
  EXPECT_EQ(selector.stats().migrations, 1u);

  // Third concurrent call: all quotas gone -> overflow, stays put.
  selector.on_call_start(CallId(3), LocationId(0), 20.0);
  const FreezeResult r3 = selector.on_config_frozen(CallId(3), config_, 320.0);
  EXPECT_FALSE(r3.migrated);
  EXPECT_EQ(selector.stats().overflow, 1u);
}

TEST_F(RealtimeSelectorTest, SlotFreedOnCallEnd) {
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  selector.on_config_frozen(CallId(1), config_, 300.0);
  selector.on_call_end(CallId(1), 400.0);
  // The DC-A slot is free again for the next call.
  selector.on_call_start(CallId(2), LocationId(0), 500.0);
  const FreezeResult r = selector.on_config_frozen(CallId(2), config_, 800.0);
  EXPECT_FALSE(r.migrated);
  EXPECT_EQ(selector.active_calls(), 1u);
}

TEST_F(RealtimeSelectorTest, UnplannedConfigFallsBackToClosestDc) {
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  // A config the plan has never seen, majority at B.
  const CallConfig unknown =
      CallConfig::make({{LocationId(1), 3}}, MediaType::kVideo);
  const FreezeResult r = selector.on_config_frozen(CallId(1), unknown, 300.0);
  EXPECT_FALSE(r.planned);
  EXPECT_TRUE(r.migrated);
  EXPECT_EQ(r.dc, DcId(1));
  EXPECT_EQ(selector.stats().unplanned, 1u);
}

TEST_F(RealtimeSelectorTest, NoPlanOperationNeverTracksQuotas) {
  RealtimeSelector selector(world_.ctx(), nullptr, {});
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  const FreezeResult r = selector.on_config_frozen(CallId(1), config_, 300.0);
  EXPECT_FALSE(r.planned);
  EXPECT_EQ(r.dc, DcId(0));  // min-ACL for an A-majority config
  selector.on_call_end(CallId(1), 400.0);
}

}  // namespace
}  // namespace sb
