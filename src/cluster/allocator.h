// Simulator adapter over the sb_cluster controller: the Switchboard event
// surface plus the worker crash/restart hooks the fault runtime invokes for
// kWorkerDown/kWorkerUp schedule events. Lives here (not in sim/) because
// sb_sim must not depend on sb_cluster.
#pragma once

#include "cluster/controller.h"
#include "sim/allocator.h"

namespace sb::cluster {

/// Borrows the cluster controller; it must outlive the allocator. Keeps
/// name() == "switchboard" so SimReports compare field-for-field with the
/// single-process ControllerAllocator path.
class ClusterAllocator final : public CallAllocator {
 public:
  explicit ClusterAllocator(ClusterController& cluster) : cluster_(&cluster) {}

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override {
    return cluster_->call_started(call, first_joiner, now);
  }
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override {
    return cluster_->config_frozen(call, config, now);
  }
  void on_call_end(CallId call, SimTime now) override {
    cluster_->call_ended(call, now);
  }
  fault::FailoverOutcome on_dc_failed(DcId dc, SimTime now) override {
    return cluster_->dc_failed(dc, now);
  }
  void on_dc_recovered(DcId dc, SimTime now) override {
    cluster_->dc_recovered(dc, now);
  }
  void on_link_failed(LinkId link, SimTime now) override {
    cluster_->link_failed(link, now);
  }
  void on_link_recovered(LinkId link, SimTime now) override {
    cluster_->link_recovered(link, now);
  }
  fault::FailoverOutcome on_server_failed(ServerId server,
                                          SimTime now) override {
    return cluster_->server_failed(server, now);
  }
  void on_server_recovered(ServerId server, SimTime now) override {
    cluster_->server_recovered(server, now);
  }
  fault::FailoverOutcome on_worker_failed(WorkerId worker,
                                          SimTime now) override {
    return cluster_->worker_failed(worker, now);
  }
  void on_worker_recovered(WorkerId worker, SimTime now) override {
    cluster_->worker_restarted(worker, now);
  }
  [[nodiscard]] std::string name() const override { return "switchboard"; }

 private:
  ClusterController* cluster_;
};

}  // namespace sb::cluster
