// Differential suite for the batched/SoA simulator engine: across fuzzed
// scenarios the batched engine must be BIT-IDENTICAL to the reference
// per-event engine on sequential replay — same SimReport (every field,
// floating point included: the batched engine preserves per-event
// accumulation order), same HostingLog, same dc_cores_buckets, and the
// same sb.sim.* metric deltas. Concurrent replay mirrors the fuzz oracle
// policy: call conservation always, full outcome equality for plan-less
// cases (where decisions are pure functions of health state).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "check/fuzzer.h"
#include "common/error.h"
#include "core/controller.h"
#include "fault/health_table.h"
#include "lp/solver.h"
#include "obs/metrics.h"
#include "sim/allocator.h"
#include "sim/simulator.h"

namespace sb {
namespace {

using check::FuzzCase;
using check::Materialized;
using check::ScenarioFuzzer;

constexpr std::size_t kSeeds = 32;

/// Same horizon rule as the fuzz executor: window start through the last
/// call end, rounded up to whole provisioning slots.
DemandMatrix build_demand(const Materialized& m, const FuzzCase& c) {
  double end = c.window_end_s;
  for (const CallRecord& rec : m.db.records()) {
    end = std::max(end, rec.start_s + rec.duration_s);
  }
  const double slot_s = c.options.slot_s;
  const double span = std::max(end - c.window_start_s, slot_s);
  const auto slots = static_cast<std::size_t>(std::ceil(span / slot_s - 1e-9));
  const double horizon = c.window_start_s + static_cast<double>(slots) * slot_s;
  return DemandMatrix::from_records(m.db, m.registry.ids(), slot_s,
                                    c.window_start_s, horizon);
}

/// One allocator stack per run (fresh state, like the fuzz executor): the
/// plan-driven controller path when the case carries a plan, the plan-less
/// closest-DC selector otherwise.
struct Harness {
  std::unique_ptr<Switchboard> sb;
  std::unique_ptr<ControllerAllocator> ctrl;
  std::unique_ptr<fault::HealthTable> health;
  std::unique_ptr<RealtimeSelector> selector;
  std::unique_ptr<SwitchboardAllocator> plain;

  Harness(const Materialized& m, const FuzzCase& c,
          const DemandMatrix* demand) {
    if (c.options.use_plan) {
      ControllerOptions copts;
      copts.slot_s = c.options.slot_s;
      copts.provision.with_backup = c.options.with_backup;
      copts.provision.include_link_failures = c.options.include_link_failures;
      copts.provision.floor_mode =
          c.options.floor_mode == 1 ? ProvisionOptions::FloorMode::kFromBase
                                    : ProvisionOptions::FloorMode::kChained;
      copts.provision.scenario_threads = c.options.scenario_threads;
      copts.provision.lp_options.method =
          static_cast<lp::Method>(c.options.lp_method);
      copts.allocation.lp_options.method =
          static_cast<lp::Method>(c.options.lp_method);
      copts.realtime.freeze_delay_s = c.options.freeze_delay_s;
      copts.realtime.shard_count = c.options.shard_count;
      sb = std::make_unique<Switchboard>(m.ctx(), copts);
      sb->provision(*demand);
      sb->build_allocation_plan(*demand, c.window_start_s);
      ctrl = std::make_unique<ControllerAllocator>(*sb);
    } else {
      RealtimeOptions ropts;
      ropts.freeze_delay_s = c.options.freeze_delay_s;
      ropts.shard_count = c.options.shard_count;
      health = std::make_unique<fault::HealthTable>(m.world.dc_count(),
                                                    m.topology.link_count(),
                                                    m.world.server_count());
      selector = std::make_unique<RealtimeSelector>(m.ctx(), nullptr, ropts,
                                                    0.0, health.get());
      plain = std::make_unique<SwitchboardAllocator>(*selector, health.get());
    }
  }

  [[nodiscard]] CallAllocator& allocator() {
    return ctrl ? static_cast<CallAllocator&>(*ctrl)
                : static_cast<CallAllocator&>(*plain);
  }
};

/// Snapshot of the sb.sim.* metric state surrounding one run; deltas are
/// what the run itself contributed.
struct MetricState {
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;
  std::uint64_t migrations = 0;
  obs::HistogramData acl;
  double peak_concurrent = 0.0;
  std::vector<double> dc_peaks;

  static MetricState read(std::size_t dc_count) {
    auto& reg = obs::MetricsRegistry::global();
    MetricState s;
    s.calls = reg.counter("sb.sim.calls").value();
    s.frozen = reg.counter("sb.sim.frozen").value();
    s.migrations = reg.counter("sb.sim.migrations").value();
    s.acl = reg.histogram("sb.sim.acl_ms").collect();
    s.peak_concurrent = reg.gauge("sb.sim.peak_concurrent_calls").value();
    for (std::size_t x = 0; x < dc_count; ++x) {
      s.dc_peaks.push_back(
          reg.gauge("sb.sim.dc_peak_cores." + std::to_string(x)).value());
    }
    return s;
  }
};

/// Peak gauges accumulate via max_of across runs and the ACL histogram sum
/// is floating point — subtracting a shared baseline would compare
/// differently-rounded partial sums. Reset both so every run's metrics
/// accumulate from zero and the deltas are exact.
void reset_run_metrics(std::size_t dc_count) {
  auto& reg = obs::MetricsRegistry::global();
  reg.histogram("sb.sim.acl_ms").reset();
  reg.gauge("sb.sim.peak_concurrent_calls").reset();
  for (std::size_t x = 0; x < dc_count; ++x) {
    reg.gauge("sb.sim.dc_peak_cores." + std::to_string(x)).reset();
  }
}

struct RunResult {
  SimReport rep;
  HostingLog log;
  std::uint64_t d_calls = 0;
  std::uint64_t d_frozen = 0;
  std::uint64_t d_migrations = 0;
  std::uint64_t d_acl_count = 0;
  double d_acl_sum = 0.0;
  double peak_concurrent = 0.0;
  std::vector<double> dc_peak_gauges;
};

RunResult run_engine(const Materialized& m, const FuzzCase& c,
                     const DemandMatrix* demand, Simulator::Engine engine,
                     std::size_t batch_events, std::size_t threads) {
  Harness h(m, c, demand);
  Simulator sim(m.ctx());
  sim.set_engine(engine);
  sim.set_batch_events(batch_events);
  const fault::FaultSchedule* faults = m.faults.empty() ? nullptr : &m.faults;
  const std::size_t dc_count = m.world.dc_count();
  reset_run_metrics(dc_count);
  const MetricState before = MetricState::read(dc_count);
  RunResult r;
  if (threads <= 1) {
    r.rep = sim.run(m.db, h.allocator(), c.options.freeze_delay_s, faults,
                    c.options.bucket_s, &r.log);
  } else {
    r.rep = sim.run_concurrent(m.db, h.allocator(), c.options.freeze_delay_s,
                               threads, faults, c.options.bucket_s, &r.log);
  }
  const MetricState after = MetricState::read(dc_count);
  r.d_calls = after.calls - before.calls;
  r.d_frozen = after.frozen - before.frozen;
  r.d_migrations = after.migrations - before.migrations;
  r.d_acl_count = after.acl.count - before.acl.count;
  r.d_acl_sum = after.acl.sum - before.acl.sum;
  r.peak_concurrent = after.peak_concurrent;
  r.dc_peak_gauges = after.dc_peaks;
  return r;
}

void expect_reports_identical(const SimReport& a, const SimReport& b,
                              const std::string& what) {
  EXPECT_EQ(a.calls, b.calls) << what;
  EXPECT_EQ(a.frozen, b.frozen) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.migration_fraction, b.migration_fraction) << what;
  EXPECT_EQ(a.mean_acl_ms, b.mean_acl_ms) << what;
  EXPECT_EQ(a.first_joiner_majority_fraction,
            b.first_joiner_majority_fraction)
      << what;
  EXPECT_EQ(a.dc_peak_cores, b.dc_peak_cores) << what;
  EXPECT_EQ(a.link_peak_gbps, b.link_peak_gbps) << what;
  EXPECT_EQ(a.server_peak_cores, b.server_peak_cores) << what;
  EXPECT_EQ(a.peak_concurrent_calls, b.peak_concurrent_calls) << what;
  EXPECT_EQ(a.failover_migrations, b.failover_migrations) << what;
  EXPECT_EQ(a.dropped_calls, b.dropped_calls) << what;
  EXPECT_EQ(a.dc_cores_buckets, b.dc_cores_buckets) << what;
}

void expect_logs_identical(const HostingLog& a, const HostingLog& b,
                           const std::string& what) {
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const HostingEvent& x = a.events[i];
    const HostingEvent& y = b.events[i];
    ASSERT_TRUE(x.record == y.record && x.time == y.time &&
                x.kind == y.kind && x.dc == y.dc && x.server == y.server)
        << what << ": hosting event " << i << " diverged";
  }
}

bool close(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Engine-pure fuzz cases: the cluster / closed-loop wrappers are stripped
/// so the differential isolates the replay engines themselves (both
/// wrappers are differentially tested by their own suites).
FuzzCase engine_case(std::uint64_t seed) {
  FuzzCase c = ScenarioFuzzer().generate(seed);
  c.options.workers = 0;
  c.options.use_loop = false;
  c.options.chaos_skip_replan = false;
  c.options.rebuild_storm = false;
  // Dropping the cluster leaves its worker-kill schedule dangling.
  std::erase_if(c.faults, [](const fault::FaultEvent& e) {
    return e.kind == fault::FaultEvent::Kind::kWorkerDown ||
           e.kind == fault::FaultEvent::Kind::kWorkerUp;
  });
  return c;
}

TEST(SimDifferential, SequentialBatchedBitIdenticalToReference) {
  std::size_t checked = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const FuzzCase c = engine_case(seed);
    const std::unique_ptr<Materialized> mp = c.materialize();
    const Materialized& m = *mp;
    std::optional<DemandMatrix> demand;
    if (c.options.use_plan) demand.emplace(build_demand(m, c));
    const DemandMatrix* dp = demand ? &*demand : nullptr;

    // Vary the batch size across seeds so batch boundaries land everywhere
    // (1 = a batch per event, 7 = odd small batches, 256 = default).
    const std::size_t batches[] = {1, 7, 256};
    const std::size_t batch = batches[seed % 3];

    RunResult ref;
    try {
      ref = run_engine(m, c, dp, Simulator::Engine::kReference, batch, 1);
    } catch (const SolveError&) {
      continue;  // provisioning infeasible: nothing to differentiate
    }
    const RunResult bat =
        run_engine(m, c, dp, Simulator::Engine::kBatched, batch, 1);
    const std::string what = "seed " + std::to_string(seed) + " batch " +
                             std::to_string(batch);
    expect_reports_identical(ref.rep, bat.rep, what);
    expect_logs_identical(ref.log, bat.log, what);
    EXPECT_EQ(ref.d_calls, bat.d_calls) << what;
    EXPECT_EQ(ref.d_frozen, bat.d_frozen) << what;
    EXPECT_EQ(ref.d_migrations, bat.d_migrations) << what;
    EXPECT_EQ(ref.d_acl_count, bat.d_acl_count) << what;
    EXPECT_EQ(ref.d_acl_sum, bat.d_acl_sum) << what;
    EXPECT_EQ(ref.peak_concurrent, bat.peak_concurrent) << what;
    EXPECT_EQ(ref.dc_peak_gauges, bat.dc_peak_gauges) << what;
    ++checked;
    if (::testing::Test::HasFailure()) break;
  }
  // The fuzzer rarely generates an infeasible world; the sweep must not
  // silently degenerate into skipping everything.
  EXPECT_GE(checked, kSeeds - 4);
}

TEST(SimDifferential, ConcurrentBatchedMatchesReferencePolicy) {
  std::size_t checked = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const FuzzCase c = engine_case(seed);
    const std::unique_ptr<Materialized> mp = c.materialize();
    const Materialized& m = *mp;
    std::optional<DemandMatrix> demand;
    if (c.options.use_plan) demand.emplace(build_demand(m, c));
    const DemandMatrix* dp = demand ? &*demand : nullptr;

    RunResult ref;
    try {
      ref = run_engine(m, c, dp, Simulator::Engine::kReference, 256,
                       c.options.sim_threads);
    } catch (const SolveError&) {
      continue;
    }
    const RunResult bat = run_engine(m, c, dp, Simulator::Engine::kBatched,
                                     256, c.options.sim_threads);
    const std::string what = "seed " + std::to_string(seed);

    // Call conservation always holds across engines and drivers.
    EXPECT_EQ(ref.rep.calls, bat.rep.calls) << what;

    // Plan-less decisions are pure functions of health state, so the two
    // engines must agree on every outcome (bucket series up to summation
    // order). A server outage breaks this — packer CAS interleavings pick
    // different hosts — mirroring the fuzz oracle's comparison policy.
    bool server_outage = false;
    for (const fault::FaultEvent& e : c.faults) {
      server_outage |= e.kind == fault::FaultEvent::Kind::kServerDown;
    }
    if (!c.options.use_plan &&
        !(server_outage && m.world.server_count() > 0)) {
      EXPECT_EQ(ref.rep.frozen, bat.rep.frozen) << what;
      EXPECT_EQ(ref.rep.migrations, bat.rep.migrations) << what;
      EXPECT_EQ(ref.rep.dropped_calls, bat.rep.dropped_calls) << what;
      EXPECT_EQ(ref.rep.failover_migrations, bat.rep.failover_migrations)
          << what;
      ASSERT_EQ(ref.rep.dc_cores_buckets.size(),
                bat.rep.dc_cores_buckets.size())
          << what;
      for (std::size_t x = 0; x < ref.rep.dc_cores_buckets.size(); ++x) {
        const auto& a = ref.rep.dc_cores_buckets[x];
        const auto& b = bat.rep.dc_cores_buckets[x];
        const std::size_t n = std::max(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
          const double av = i < a.size() ? a[i] : 0.0;
          const double bv = i < b.size() ? b[i] : 0.0;
          ASSERT_TRUE(close(av, bv))
              << what << ": dc " << x << " bucket " << i << " " << av
              << " vs " << bv;
        }
      }
    }
    ++checked;
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_GE(checked, kSeeds - 4);
}

}  // namespace
}  // namespace sb
