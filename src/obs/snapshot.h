// Point-in-time read of the whole MetricsRegistry, with CSV/JSON export and
// a subtraction helper for benches (diff two snapshots taken around a run to
// get that run's counts and latency distribution in isolation).
//
// These types are always compiled — with SB_METRICS=OFF a snapshot is simply
// empty — so export paths don't need to be conditionally compiled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sb::obs {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  HistogramData data;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Lookup helpers; return nullptr when the metric is absent.
  [[nodiscard]] const CounterSample* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeSample* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSample* find_histogram(
      std::string_view name) const;

  /// Counter value with a fallback for absent metrics (no-op builds).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            std::uint64_t fallback = 0) const;

  /// One row per metric: kind,name,value,count,sum,mean,min,max,p50,p90,p99.
  /// Counters fill `value`; gauges fill `value`; histograms fill the rest.
  void write_csv(std::ostream& out) const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  ///  mean, min, max, p50, p90, p99}}}
  void write_json(std::ostream& out) const;
};

/// Per-metric `after - before`: counters subtract, histograms subtract at
/// the bucket level (see histogram_diff), gauges keep their `after` value.
/// Metrics present only in `after` pass through unchanged.
MetricsSnapshot snapshot_diff(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

}  // namespace sb::obs
