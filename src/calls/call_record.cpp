#include "calls/call_record.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.h"

namespace sb {

void CallRecordDatabase::add(CallRecord record) {
  require(record.config.valid(), "CallRecordDatabase::add: invalid config");
  require(!record.legs.empty(), "CallRecordDatabase::add: no legs");
  require(record.duration_s > 0.0,
          "CallRecordDatabase::add: non-positive duration");
  require(std::is_sorted(record.legs.begin(), record.legs.end(),
                         [](const CallLeg& a, const CallLeg& b) {
                           return a.join_offset_s < b.join_offset_s;
                         }),
          "CallRecordDatabase::add: legs must be sorted by join offset");
  records_.push_back(std::move(record));
}

std::vector<std::pair<ConfigId, std::uint64_t>>
CallRecordDatabase::config_counts() const {
  std::unordered_map<ConfigId, std::uint64_t> counts;
  for (const CallRecord& r : records_) ++counts[r.config];
  std::vector<std::pair<ConfigId, std::uint64_t>> out(counts.begin(),
                                                      counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<ConfigId> CallRecordDatabase::top_configs(std::size_t k) const {
  auto counts = config_counts();
  if (counts.size() > k) counts.resize(k);
  std::vector<ConfigId> out;
  out.reserve(counts.size());
  for (const auto& [config, _] : counts) out.push_back(config);
  return out;
}

std::vector<double> CallRecordDatabase::arrival_series(ConfigId config,
                                                       double bucket_s,
                                                       SimTime start_s,
                                                       SimTime end_s) const {
  require(bucket_s > 0.0, "arrival_series: bucket width must be positive");
  require(end_s > start_s, "arrival_series: empty window");
  const auto buckets =
      static_cast<std::size_t>(std::ceil((end_s - start_s) / bucket_s));
  std::vector<double> series(buckets, 0.0);
  for (const CallRecord& r : records_) {
    if (r.config != config || r.start_s < start_s || r.start_s >= end_s) {
      continue;
    }
    const auto b = static_cast<std::size_t>((r.start_s - start_s) / bucket_s);
    series[std::min(b, buckets - 1)] += 1.0;
  }
  return series;
}

std::vector<double> CallRecordDatabase::join_offsets() const {
  std::vector<double> offsets;
  for (const CallRecord& r : records_) {
    if (r.legs.size() < 2) continue;
    for (const CallLeg& leg : r.legs) offsets.push_back(leg.join_offset_s);
  }
  return offsets;
}

}  // namespace sb
