#include "lp/presolve.h"

#include <cmath>

namespace sb::lp {

namespace {

struct Bounds {
  double lower;
  double upper;
};

}  // namespace

PresolveResult presolve(const Model& model, double tolerance) {
  PresolveResult result;

  std::vector<Bounds> bounds;
  bounds.reserve(model.variable_count());
  for (const Variable& v : model.variables()) {
    bounds.push_back({v.lower, v.upper});
  }
  std::vector<bool> row_alive(model.constraint_count(), true);

  auto tighten = [&](int var, Sense sense, double value) -> bool {
    Bounds& b = bounds[var];
    bool changed = false;
    switch (sense) {
      case Sense::kLe:
        if (value < b.upper - tolerance) {
          b.upper = value;
          changed = true;
        }
        break;
      case Sense::kGe:
        if (value > b.lower + tolerance) {
          b.lower = value;
          changed = true;
        }
        break;
      case Sense::kEq:
        if (value > b.lower + tolerance) {
          b.lower = value;
          changed = true;
        }
        if (value < b.upper - tolerance) {
          b.upper = value;
          changed = true;
        }
        break;
    }
    if (changed) ++result.bounds_tightened;
    return b.lower <= b.upper + tolerance;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t r = 0; r < model.constraint_count(); ++r) {
      if (!row_alive[r]) continue;
      const Constraint& row = model.constraint(static_cast<int>(r));

      // Count live terms (terms on variables fixed by matching bounds stay
      // live — the standard form handles them; only structurally empty and
      // singleton rows are reduced here).
      if (row.terms.empty()) {
        const bool satisfied =
            (row.sense == Sense::kLe && 0.0 <= row.rhs + tolerance) ||
            (row.sense == Sense::kGe && 0.0 >= row.rhs - tolerance) ||
            (row.sense == Sense::kEq && std::abs(row.rhs) <= tolerance);
        if (!satisfied) {
          result.infeasible = true;
          result.infeasible_reason =
              "empty row " + std::to_string(r) + " (" + row.name +
              ") cannot be satisfied";
          return result;
        }
        row_alive[r] = false;
        ++result.rows_removed;
        progressed = true;
        continue;
      }
      if (row.terms.size() == 1 && row.terms[0].coeff != 0.0) {
        const Term& term = row.terms[0];
        const double value = row.rhs / term.coeff;
        // Dividing by a negative coefficient flips the inequality.
        Sense sense = row.sense;
        if (term.coeff < 0.0) {
          if (sense == Sense::kLe) {
            sense = Sense::kGe;
          } else if (sense == Sense::kGe) {
            sense = Sense::kLe;
          }
        }
        if (!tighten(term.var, sense, value)) {
          result.infeasible = true;
          result.infeasible_reason =
              "bounds of variable " + std::to_string(term.var) +
              " crossed via row " + std::to_string(r);
          return result;
        }
        row_alive[r] = false;
        ++result.rows_removed;
        progressed = true;
      }
    }
  }

  // Implied upper bounds: for a kLe row Σ a_k x_k <= b with a_j > 0, every
  // solution has x_j <= (b - Σ_{k≠j} min(a_k x_k)) / a_j. When that value
  // is finite and x_j's upper is +inf, install it. The feasible set over
  // the row's variables is unchanged (the bound is implied), but the column
  // becomes BOXED, which the simplex engines exploit: boxed nonbasic
  // columns can bound-FLIP in the long-step ratio tests (primal and dual)
  // instead of paying a basis change each. One pass, not to fixpoint —
  // implied bounds feed the ratio test, not further reductions.
  for (std::size_t r = 0; r < model.constraint_count(); ++r) {
    if (!row_alive[r]) continue;
    const Constraint& row = model.constraint(static_cast<int>(r));
    if (row.sense != Sense::kLe || row.terms.size() < 2) continue;
    double min_activity = 0.0;
    bool bounded = true;
    for (const Term& t : row.terms) {
      const Bounds& b = bounds[static_cast<std::size_t>(t.var)];
      const double lo = t.coeff > 0.0 ? t.coeff * b.lower : t.coeff * b.upper;
      if (!std::isfinite(lo)) {
        bounded = false;
        break;
      }
      min_activity += lo;
    }
    if (!bounded) continue;
    for (const Term& t : row.terms) {
      if (t.coeff <= 0.0) continue;
      Bounds& b = bounds[static_cast<std::size_t>(t.var)];
      if (std::isfinite(b.upper)) continue;
      const double without = min_activity - t.coeff * b.lower;
      const double implied = (row.rhs - without) / t.coeff;
      if (std::isfinite(implied)) {
        b.upper = std::max(implied, b.lower);
        ++result.uppers_implied;
      }
    }
  }

  // Rebuild the reduced model with the tightened bounds and surviving rows.
  for (std::size_t i = 0; i < model.variable_count(); ++i) {
    const Variable& v = model.variable(static_cast<int>(i));
    double lower = bounds[i].lower;
    double upper = bounds[i].upper;
    if (upper < lower) upper = lower;  // within tolerance; snap
    if (lower == upper && v.lower != v.upper) ++result.variables_fixed;
    result.reduced.add_variable(lower, upper, v.cost, v.name);
  }
  result.row_map.assign(model.constraint_count(), -1);
  for (std::size_t r = 0; r < model.constraint_count(); ++r) {
    if (!row_alive[r]) continue;
    const Constraint& row = model.constraint(static_cast<int>(r));
    result.row_map[r] = static_cast<int>(result.reduced.constraint_count());
    result.reduced.add_constraint(row.terms, row.sense, row.rhs, row.name);
  }
  return result;
}

}  // namespace sb::lp
