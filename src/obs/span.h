// sb_span: lock-free per-thread ring-buffer span recorder — the causal
// complement to the aggregate metrics in obs/metrics.h. A span is one timed
// region of the controller stack (an event handled, a drain tier walked, an
// LP phase run) carrying its subsystem, wall-clock start/end, the sim-time
// it executed at, its parent span, and up to kSpanAttrMax small typed
// attributes (call id, DC, drain tier, iteration counts, ...).
//
// Design constraints, mirroring metrics.h:
//  - recording is allocation-free and lock-free: each thread appends
//    completed spans to its own fixed-capacity ring through relaxed atomics
//    (single producer); collect() snapshots all rings without stopping
//    writers, discarding any slot a wrap overtook mid-copy;
//  - the ring IS the flight recorder: it retains the last `ring_capacity`
//    spans per thread, so after an oracle failure or a crash the causal tail
//    is still there to dump (see check/oracles.h and tools/sb_fuzz);
//  - the whole layer compiles away: configure with -DSB_TRACING=OFF and
//    Span/SpanRecorder become inline no-op stubs (same API, zero state, no
//    span symbols on the hot path).
//
// Span names must be string literals (static storage): slots store the
// pointer, never a copy. Export to Chrome trace-event JSON (Perfetto) and
// per-name stats live in obs/trace_export.h.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sb::obs {

/// Sentinel sim-time for spans recorded outside any simulated clock (LP
/// solves during provisioning, bench setup, ...).
inline constexpr double kNoSimTime = -1.0;

/// Max typed attributes per span; extra attr() calls are dropped silently.
inline constexpr std::size_t kSpanAttrMax = 6;

/// Coarse origin of a span; becomes the Chrome trace event category.
enum class Subsystem : std::uint8_t {
  kController = 0,
  kRealtime,
  kDrain,
  kLp,
  kProvisioner,
  kSim,
  kCheck,
  kPack,
  kCluster,
  kOther,
};
[[nodiscard]] const char* to_string(Subsystem subsystem);

/// Typed attribute keys. Values are int64 (ids, counts, tiers, 0/1 flags).
enum class AttrKey : std::uint8_t {
  kNone = 0,
  kCallId,
  kDc,
  kFromDc,
  kConfigId,
  kDrainTier,  ///< 1 = slot re-home, 2 = provisioned backup, 3 = dropped
  kShard,
  kCasRetries,
  kIterations,
  kFactorizations,
  kPricingPasses,
  kWarmStart,  ///< 1 = warm basis applied, 0 = cold
  kScenario,
  kMoved,
  kDropped,
  kPartition,
  kEvents,
  kRows,
  kCols,
  kStatus,
  kServer,
  kFromServer,
  kWorker,
  kEpoch,
  kReplayed,
};
[[nodiscard]] const char* to_string(AttrKey key);

struct SpanAttr {
  AttrKey key = AttrKey::kNone;
  std::int64_t value = 0;
};

/// One completed span as copied out of a ring. Plain data — always compiled
/// (export and tests handle it even in -DSB_TRACING=OFF builds, where
/// collect() simply returns none).
struct SpanData {
  const char* name = "";  ///< static-lifetime literal
  Subsystem subsystem = Subsystem::kOther;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t thread = 0;  ///< recorder thread-buffer index
  std::int64_t wall_start_ns = 0;  ///< steady-clock ns since recorder epoch
  std::int64_t wall_end_ns = 0;
  double sim_time = kNoSimTime;  ///< sim-time at span start; kNoSimTime = none

  std::array<SpanAttr, kSpanAttrMax> attrs{};
  std::uint32_t attr_count = 0;

  [[nodiscard]] double duration_s() const {
    return static_cast<double>(wall_end_ns - wall_start_ns) * 1e-9;
  }
  /// nullptr when the span does not carry `key`.
  [[nodiscard]] const SpanAttr* find_attr(AttrKey key) const {
    for (std::uint32_t i = 0; i < attr_count && i < attrs.size(); ++i) {
      if (attrs[i].key == key) return &attrs[i];
    }
    return nullptr;
  }
};

struct SpanRecorderOptions {
  /// Runtime master switch; a disabled recorder makes Span construction a
  /// single relaxed load.
  bool enabled = true;
  /// Ring slots per thread buffer (rounded up to a power of two). The ring
  /// retains the most recent `ring_capacity` spans — small values give the
  /// bounded "flight recorder" mode, large values retain whole runs for
  /// trace export. Applies only to buffers created after configure() (live
  /// threads keep raw pointers into theirs), so size the recorder before
  /// the first span is recorded.
  std::size_t ring_capacity = 1u << 15;
};

#ifdef SB_TRACING_ENABLED

/// Process-wide span sink. Threads acquire a ring buffer on first use and
/// return it to a free list at thread exit (data retained), so short-lived
/// pool threads reuse buffers instead of growing the registry unboundedly.
class SpanRecorder {
 public:
  static SpanRecorder& global();

  /// See SpanRecorderOptions for which fields apply when.
  void configure(const SpanRecorderOptions& options);
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t ring_capacity() const;

  /// Weakly consistent snapshot of every ring, sorted by wall start. Safe
  /// concurrent with writers: slots a wrap overtook mid-copy are discarded.
  [[nodiscard]] std::vector<SpanData> collect() const;

  /// Empties every ring (and re-sizes them if configure() changed the
  /// capacity). Call only while no thread is recording.
  void reset();

  /// Spans overwritten by ring wrap since the last reset — collect() output
  /// is complete iff this is 0 (sb_report surfaces the truncation).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Innermost open span id on the calling thread (0 = none). Capture this
  /// before handing work to another thread and pass it as the explicit
  /// parent to keep cross-thread spans (scenario fan-out, sim partitions)
  /// nested under their initiator.
  [[nodiscard]] static std::uint64_t current_span();

 private:
  friend class Span;
  struct ThreadBuffer;
  struct Tls;

  SpanRecorder();
  [[nodiscard]] static Tls& tls_slot();
  [[nodiscard]] ThreadBuffer* local_buffer();
  void release_buffer(ThreadBuffer* buffer);
  [[nodiscard]] std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t now_ns() const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_id_{1};
  std::int64_t epoch_ns_ = 0;  ///< steady-clock origin of wall_*_ns

  mutable std::mutex mutex_;  ///< guards the buffer registry + options
  std::size_t capacity_ = SpanRecorderOptions{}.ring_capacity;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<ThreadBuffer*> free_buffers_;
};

/// RAII span: records into the calling thread's ring when destroyed (or
/// finish()ed). When the recorder is disabled the constructor is one relaxed
/// load and everything else is dead.
class Span {
 public:
  /// `parent` defaults to the innermost open span on this thread; pass
  /// SpanRecorder::current_span() captured on another thread to parent
  /// across a fan-out, or 0 to force a root span.
  static constexpr std::uint64_t kInheritParent = ~std::uint64_t{0};

  explicit Span(const char* name, Subsystem subsystem,
                double sim_time = kNoSimTime,
                std::uint64_t parent = kInheritParent);
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a typed attribute; silently dropped past kSpanAttrMax or when
  /// the span is not recording.
  void attr(AttrKey key, std::int64_t value) {
    if (id_ != 0 && attr_count_ < kSpanAttrMax) {
      attrs_[attr_count_++] = {key, value};
    }
  }

  /// 0 when the recorder was disabled at construction.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void finish();

 private:
  const char* name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  double sim_time_;
  Subsystem subsystem_;
  std::uint32_t attr_count_ = 0;
  std::array<SpanAttr, kSpanAttrMax> attrs_{};
};

#else  // !SB_TRACING_ENABLED — same API, zero state, zero cost.

class SpanRecorder {
 public:
  static SpanRecorder& global() {
    static SpanRecorder recorder;
    return recorder;
  }
  void configure(const SpanRecorderOptions&) {}
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  [[nodiscard]] std::size_t ring_capacity() const { return 0; }
  [[nodiscard]] std::vector<SpanData> collect() const { return {}; }
  void reset() {}
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  [[nodiscard]] static std::uint64_t current_span() { return 0; }
};

class Span {
 public:
  static constexpr std::uint64_t kInheritParent = ~std::uint64_t{0};
  explicit Span(const char*, Subsystem, double = kNoSimTime,
                std::uint64_t = kInheritParent) {}
  void attr(AttrKey, std::int64_t) {}
  [[nodiscard]] std::uint64_t id() const { return 0; }
  void finish() {}
};

#endif  // SB_TRACING_ENABLED

}  // namespace sb::obs
