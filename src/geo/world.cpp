#include "geo/world.h"

#include <cmath>
#include <numbers>

namespace sb {

LocationId World::add_location(Location loc) {
  require(!loc.name.empty(), "add_location: name required");
  require(!find_location(loc.name), "add_location: duplicate name " + loc.name);
  require(loc.population_weight >= 0.0,
          "add_location: population weight must be non-negative");
  locations_.push_back(std::move(loc));
  return LocationId(static_cast<std::uint32_t>(locations_.size() - 1));
}

DcId World::add_datacenter(Datacenter dc) {
  require(!dc.name.empty(), "add_datacenter: name required");
  require(!find_datacenter(dc.name),
          "add_datacenter: duplicate name " + dc.name);
  require(dc.location.valid() && dc.location.value() < locations_.size(),
          "add_datacenter: unknown location");
  require(dc.core_cost > 0.0, "add_datacenter: core cost must be positive");
  dcs_.push_back(std::move(dc));
  return DcId(static_cast<std::uint32_t>(dcs_.size() - 1));
}

ServerId World::add_server(MediaServer server) {
  require(!server.name.empty(), "add_server: name required");
  require(!find_server(server.name),
          "add_server: duplicate name " + server.name);
  require(server.dc.valid() && server.dc.value() < dcs_.size(),
          "add_server: unknown datacenter");
  require(server.cores > 0.0, "add_server: cores must be positive");
  if (servers_by_dc_.size() < dcs_.size()) servers_by_dc_.resize(dcs_.size());
  const ServerId id(static_cast<std::uint32_t>(servers_.size()));
  servers_by_dc_[server.dc.value()].push_back(id);
  servers_.push_back(std::move(server));
  return id;
}

const Location& World::location(LocationId id) const {
  require(id.valid() && id.value() < locations_.size(),
          "location: id out of range");
  return locations_[id.value()];
}

const Datacenter& World::datacenter(DcId id) const {
  require(id.valid() && id.value() < dcs_.size(), "datacenter: id out of range");
  return dcs_[id.value()];
}

const MediaServer& World::server(ServerId id) const {
  require(id.valid() && id.value() < servers_.size(),
          "server: id out of range");
  return servers_[id.value()];
}

const std::vector<ServerId>& World::servers_in_dc(DcId dc) const {
  require(dc.valid() && dc.value() < dcs_.size(),
          "servers_in_dc: id out of range");
  static const std::vector<ServerId> kEmpty;
  if (dc.value() >= servers_by_dc_.size()) return kEmpty;
  return servers_by_dc_[dc.value()];
}

std::optional<LocationId> World::find_location(const std::string& name) const {
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].name == name) {
      return LocationId(static_cast<std::uint32_t>(i));
    }
  }
  return std::nullopt;
}

std::optional<DcId> World::find_datacenter(const std::string& name) const {
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    if (dcs_[i].name == name) return DcId(static_cast<std::uint32_t>(i));
  }
  return std::nullopt;
}

std::optional<ServerId> World::find_server(const std::string& name) const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i].name == name) {
      return ServerId(static_cast<std::uint32_t>(i));
    }
  }
  return std::nullopt;
}

std::vector<DcId> World::dcs_in_region(const std::string& region) const {
  std::vector<DcId> result;
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    if (locations_[dcs_[i].location.value()].region == region) {
      result.push_back(DcId(static_cast<std::uint32_t>(i)));
    }
  }
  return result;
}

const std::string& World::dc_region(DcId id) const {
  return location(datacenter(id).location).region;
}

std::vector<LocationId> World::location_ids() const {
  std::vector<LocationId> ids;
  ids.reserve(locations_.size());
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    ids.push_back(LocationId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

std::vector<DcId> World::dc_ids() const {
  std::vector<DcId> ids;
  ids.reserve(dcs_.size());
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    ids.push_back(DcId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

std::vector<ServerId> World::server_ids() const {
  std::vector<ServerId> ids;
  ids.reserve(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    ids.push_back(ServerId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

double geo_distance_km(double lat1_deg, double lon1_deg, double lat2_deg,
                       double lon2_deg) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double lat1 = lat1_deg * kDegToRad;
  const double lat2 = lat2_deg * kDegToRad;
  const double dlat = (lat2_deg - lat1_deg) * kDegToRad;
  const double dlon = (lon2_deg - lon1_deg) * kDegToRad;
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

}  // namespace sb
