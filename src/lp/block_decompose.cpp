#include "lp/block_decompose.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "lp/dual_simplex.h"
#include "lp/revised_simplex.h"
#include "obs/span.h"

namespace sb::lp {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Phase-by-phase stderr trace for tuning planet-scale solves, enabled by
/// setting SB_LP_DECOMPOSE_TRACE in the environment. Deliberately not part
/// of the obs registry: it prints DURING the solve, which is exactly when a
/// multi-minute regression needs diagnosing.
[[nodiscard]] bool trace_enabled() {
  static const bool enabled = std::getenv("SB_LP_DECOMPOSE_TRACE") != nullptr;
  return enabled;
}

/// Initial master size: the few busiest blocks pin the coupling columns in
/// the provisioning shapes, so a handful is usually enough and keeps the
/// master LP small. Blocks the relaxation missed join via the
/// constraint-generation loop, capped at kMaxMasterRounds before the pass
/// degrades to a cold clean-up.
constexpr std::size_t kMasterSeedBlocks = 4;
constexpr std::size_t kMaxMasterRounds = 6;

/// Union-find over row ids, path-halving.
class RowSets {
 public:
  explicit RowSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      auto& p = parent_[static_cast<std::size_t>(x)];
      p = parent_[static_cast<std::size_t>(p)];
      x = p;
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<int> parent_;
};

struct SubResult {
  SfSolution solution;
  SparseSolveStats stats;
};

/// Cached block sub-form: the matrix never changes between rounds — only
/// the rhs does (the master's coupling values move) — so the form is built
/// once and later rounds rewrite rhs[i] = base_rhs[i] - coupling_terms[i]
/// dotted with the current coupling values.
struct SubForm {
  StandardForm form;
  std::vector<double> base_rhs;               ///< parent rhs per sub row
  std::vector<std::vector<Term>> coupling_terms;  ///< parent var ids
};

}  // namespace

BlockPlan detect_blocks(const StandardForm& sf) {
  BlockPlan plan;
  const std::size_t n = sf.var_count();
  const std::size_t m = sf.rows.size();
  plan.row_block.assign(m, -1);
  plan.col_block.assign(n, -1);
  if (n == 0 || m == 0) return plan;

  // Column degrees, then the degree threshold separating coupling columns
  // from block-local ones. Block-local columns cluster tightly around the
  // median degree (2 in the provisioning shapes: one completeness and one
  // capacity row), while a coupling column touches a row per block.
  std::vector<std::size_t> degree(n, 0);
  for (const StandardRow& row : sf.rows) {
    for (const Term& t : row.terms) ++degree[static_cast<std::size_t>(t.var)];
  }
  std::vector<std::size_t> sorted = degree;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t median = sorted[sorted.size() / 2];
  const std::size_t cutoff = std::max<std::size_t>(3 * median, 4);
  std::vector<unsigned char> coupling(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (degree[j] > cutoff) {
      coupling[j] = 1;
      ++plan.coupling_cols;
    }
  }
  if (plan.coupling_cols == n) return plan;  // degenerate: nothing local

  // Rows connected through a shared local column belong to one block.
  RowSets sets(m);
  std::vector<int> first_row(n, -1);
  for (std::size_t r = 0; r < m; ++r) {
    for (const Term& t : sf.rows[r].terms) {
      const auto v = static_cast<std::size_t>(t.var);
      if (coupling[v]) continue;
      if (first_row[v] < 0) {
        first_row[v] = static_cast<int>(r);
      } else {
        sets.unite(first_row[v], static_cast<int>(r));
      }
    }
  }

  // Number the components in first-row order (deterministic), skipping rows
  // with no local column — those stay out of every subproblem and are
  // enforced only by the clean-up solve.
  std::vector<int> block_of_root(m, -1);
  for (std::size_t r = 0; r < m; ++r) {
    const bool has_local = std::any_of(
        sf.rows[r].terms.begin(), sf.rows[r].terms.end(), [&](const Term& t) {
          return !coupling[static_cast<std::size_t>(t.var)];
        });
    if (!has_local) continue;
    const int root = sets.find(static_cast<int>(r));
    auto& id = block_of_root[static_cast<std::size_t>(root)];
    if (id < 0) id = static_cast<int>(plan.block_count++);
    plan.row_block[r] = id;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (coupling[j] || first_row[j] < 0) continue;
    plan.col_block[j] =
        plan.row_block[static_cast<std::size_t>(first_row[j])];
  }
  return plan;
}

SfSolution solve_decomposed(const StandardForm& sf,
                            const SimplexOptions& options,
                            const BlockPlan& plan, std::size_t threads,
                            DecomposeStats* stats) {
  obs::Span span("lp.decompose", obs::Subsystem::kLp);
  const std::size_t n = sf.var_count();
  const std::size_t m = sf.rows.size();
  DecomposeStats local_stats;
  DecomposeStats& st = stats != nullptr ? *stats : local_stats;
  st.blocks = plan.block_count;
  st.coupling_cols = plan.coupling_cols;

  // Group rows (and columns) by block. Row ids stay ascending within each
  // block, so the sub-forms — and therefore the sub-solves and the stitch —
  // are independent of thread count.
  const auto detect_start = Clock::now();
  std::vector<std::vector<int>> block_rows(plan.block_count);
  for (std::size_t r = 0; r < m; ++r) {
    if (plan.row_block[r] >= 0) {
      block_rows[static_cast<std::size_t>(plan.row_block[r])].push_back(
          static_cast<int>(r));
    }
  }
  std::vector<std::vector<int>> block_cols(plan.block_count);
  // Position of each block-local column within its block's column list —
  // ONE shared parent→sub map for every block sub-LP, instead of an n-sized
  // map per block (at planet scale n is millions and there are hundreds of
  // blocks; per-block dense maps would cost gigabytes).
  std::vector<int> col_local(n, -1);
  for (std::size_t j = 0; j < n; ++j) {
    if (plan.col_block[j] >= 0) {
      auto& cols = block_cols[static_cast<std::size_t>(plan.col_block[j])];
      col_local[j] = static_cast<int>(cols.size());
      cols.push_back(static_cast<int>(j));
    }
  }

  // Seed the master with the blocks carrying the most demand (largest total
  // |rhs|): in the provisioning shapes those are the busy slots whose peaks
  // pin the coupling columns, i.e. the constraints the relaxation must not
  // drop. Ties break toward the lower block id, keeping the choice
  // deterministic.
  std::vector<double> score(plan.block_count, 0.0);
  for (std::size_t b = 0; b < plan.block_count; ++b) {
    for (int r : block_rows[b]) {
      score[b] += std::abs(sf.rows[static_cast<std::size_t>(r)].rhs);
    }
  }
  std::vector<std::size_t> order(plan.block_count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score[a] != score[b] ? score[a] > score[b] : a < b;
  });
  std::vector<unsigned char> in_master(plan.block_count, 0);
  for (std::size_t i = 0;
       i < std::min<std::size_t>(plan.block_count, kMasterSeedBlocks); ++i) {
    in_master[order[i]] = 1;
  }
  st.detect_seconds = seconds_since(detect_start);

  // Constraint generation over blocks. Each round solves the master — the
  // parent restricted to the master blocks' rows, coupling columns included
  // at their real costs — then re-solves every other block with the
  // coupling columns fixed at the master's values. Blocks that are
  // infeasible at those values are binding constraints the relaxation
  // missed; they join the master and the loop repeats. On success the
  // master's coupling choice is optimal for a relaxation AND feasible for
  // every block, so the stitched point is optimal up to the non-master
  // blocks' (tiny) placement-cost influence on the coupling columns.
  const auto sub_start = Clock::now();
  std::vector<double> coupling_value(n, 0.0);
  std::vector<SubResult> refined(plan.block_count);
  SfSolution master_sol;
  std::vector<int> master_map;
  std::vector<int> master_rows;
  bool stitch_ok = false;

  // Block sub-LP with the coupling columns substituted into the rhs. Sub
  // column ids come from the shared col_local map; every one of the
  // block's columns appears in some block row (that is what put it in the
  // block), so the sub form has no dead columns. The form is cached across
  // rounds (only the rhs moves — see SubForm).
  //
  // After the first round only the substituted rhs moves (the master's
  // coupling values shifted) — a bound perturbation on the block's optimal
  // basis, so the re-refine warm-starts the dual simplex from the previous
  // round's statuses instead of paying a cold two-phase primal per block
  // per round.
  std::vector<SubForm> sub_forms(plan.block_count);
  const auto refine_block = [&](std::size_t b) {
    SubForm& cached = sub_forms[b];
    if (cached.form.rows.empty()) {
      StandardForm& sub = cached.form;
      sub.cost.reserve(block_cols[b].size());
      sub.upper.reserve(block_cols[b].size());
      for (int j : block_cols[b]) {
        sub.cost.push_back(sf.cost[static_cast<std::size_t>(j)]);
        sub.upper.push_back(sf.upper[static_cast<std::size_t>(j)]);
      }
      sub.rows.reserve(block_rows[b].size());
      cached.base_rhs.reserve(block_rows[b].size());
      cached.coupling_terms.resize(block_rows[b].size());
      for (std::size_t i = 0; i < block_rows[b].size(); ++i) {
        const StandardRow& row =
            sf.rows[static_cast<std::size_t>(block_rows[b][i])];
        StandardRow sr;
        sr.sense = row.sense;
        sr.rhs = row.rhs;
        cached.base_rhs.push_back(row.rhs);
        for (const Term& t : row.terms) {
          const auto v = static_cast<std::size_t>(t.var);
          if (plan.col_block[v] < 0) {
            cached.coupling_terms[i].push_back(t);
            continue;
          }
          sr.terms.push_back(Term{col_local[v], t.coeff});
        }
        sub.rows.push_back(std::move(sr));
      }
    }
    StandardForm& sub = cached.form;
    for (std::size_t i = 0; i < sub.rows.size(); ++i) {
      double rhs = cached.base_rhs[i];
      for (const Term& t : cached.coupling_terms[i]) {
        rhs -= t.coeff * coupling_value[static_cast<std::size_t>(t.var)];
      }
      sub.rows[i].rhs = rhs;
    }
    SubResult out;
    const SubResult& prev = refined[b];
    if (prev.solution.status == SolveStatus::kOptimal &&
        prev.solution.statuses.size() ==
            sub.var_count() + sub.rows.size()) {
      DualSolveStats dual_stats;
      out.solution =
          solve_dual(sub, options, &prev.solution.statuses, &dual_stats);
      if (out.solution.status == SolveStatus::kOptimal ||
          out.solution.status == SolveStatus::kInfeasible) {
        return out;
      }
      // Fallback contract: the dual's statuses are a valid basis for the
      // primal engine; keep both engines' iterations on the block's tab.
      const std::size_t dual_iters = out.solution.iterations;
      const std::vector<VarStatus> dual_warm = out.solution.statuses;
      out.solution = solve_sparse(sub, options, &dual_warm, &out.stats);
      out.solution.iterations += dual_iters;
      return out;
    }
    out.solution = solve_sparse(sub, options, nullptr, &out.stats);
    return out;
  };

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && plan.block_count > 1) {
    pool = std::make_unique<ThreadPool>(threads);
  }
  // Previous round's master basis, for warm-starting the next round's
  // master after it grows: surviving columns and rows keep their statuses,
  // new blocks' columns start at their lower bound, and new rows' logicals
  // start basic (keeping the extended basis square). The old block part of
  // the basis is already optimal, so the warm solve only has to price the
  // newly joined blocks instead of re-crawling the whole master cold.
  std::vector<int> prev_master_map;
  std::vector<int> prev_row_pos(m, -1);
  std::vector<VarStatus> prev_statuses;
  std::size_t prev_n = 0;
  for (std::size_t round = 0; round < kMaxMasterRounds; ++round) {
    ++st.master_rounds;
    master_rows.clear();
    for (std::size_t r = 0; r < m; ++r) {
      const int b = plan.row_block[r];
      if (b >= 0 && in_master[static_cast<std::size_t>(b)]) {
        master_rows.push_back(static_cast<int>(r));
      }
    }
    const StandardForm master_sub =
        extract_row_subform(sf, master_rows, master_map);
    std::vector<VarStatus> master_warm;
    const std::vector<VarStatus>* master_warm_ptr = nullptr;
    if (!prev_statuses.empty()) {
      master_warm.assign(master_sub.var_count() + master_rows.size(),
                         VarStatus::kAtLower);
      for (std::size_t j = 0; j < n; ++j) {
        if (master_map[j] < 0 || prev_master_map[j] < 0) continue;
        master_warm[static_cast<std::size_t>(master_map[j])] =
            prev_statuses[static_cast<std::size_t>(prev_master_map[j])];
      }
      for (std::size_t i = 0; i < master_rows.size(); ++i) {
        const int pr = prev_row_pos[static_cast<std::size_t>(master_rows[i])];
        master_warm[master_sub.var_count() + i] =
            pr >= 0 ? prev_statuses[prev_n + static_cast<std::size_t>(pr)]
                    : VarStatus::kBasic;
      }
      // A block that joined THIS round seeds its slice from its own
      // phase-1 end basis (the infeasible refine's statuses) instead of
      // the all-logical default above: the master then only has to repair
      // the block's coupling shortfall, not re-solve it from scratch
      // inside the much bigger LP.
      std::vector<int> cur_row_pos(m, -1);
      for (std::size_t i = 0; i < master_rows.size(); ++i) {
        cur_row_pos[static_cast<std::size_t>(master_rows[i])] =
            static_cast<int>(i);
      }
      for (std::size_t b = 0; b < plan.block_count; ++b) {
        if (!in_master[b] || block_rows[b].empty()) continue;
        if (prev_row_pos[static_cast<std::size_t>(block_rows[b][0])] >= 0) {
          continue;  // already in the previous master; prev_statuses covers it
        }
        const std::vector<VarStatus>& sub_status =
            refined[b].solution.statuses;
        const std::size_t sub_nb = block_cols[b].size();
        if (sub_status.size() != sub_nb + block_rows[b].size()) continue;
        for (std::size_t k = 0; k < sub_nb; ++k) {
          const int j = block_cols[b][k];
          if (master_map[static_cast<std::size_t>(j)] >= 0) {
            master_warm[static_cast<std::size_t>(
                master_map[static_cast<std::size_t>(j)])] = sub_status[k];
          }
        }
        for (std::size_t k = 0; k < block_rows[b].size(); ++k) {
          const int pos =
              cur_row_pos[static_cast<std::size_t>(block_rows[b][k])];
          master_warm[master_sub.var_count() + static_cast<std::size_t>(pos)] =
              sub_status[sub_nb + k];
        }
      }
      master_warm_ptr = &master_warm;
    }
    const auto master_start = Clock::now();
    master_sol = solve_sparse(master_sub, options, master_warm_ptr, nullptr);
    if (trace_enabled()) {
      std::fprintf(stderr,
                   "[decompose] round %zu master rows=%zu cols=%zu iters=%zu "
                   "%.2fs\n",
                   round, master_rows.size(), master_sub.var_count(),
                   master_sol.iterations, seconds_since(master_start));
    }
    st.sub_iterations += master_sol.iterations;
    if (master_sol.status == SolveStatus::kInfeasible) {
      // The master is the parent restricted to a row subset: no completion
      // of ANY assignment can satisfy these rows, so the parent is
      // infeasible too.
      SfSolution out;
      out.status = SolveStatus::kInfeasible;
      span.attr(obs::AttrKey::kStatus, -1);
      st.sub_seconds = seconds_since(sub_start);
      return out;
    }
    if (master_sol.status != SolveStatus::kOptimal) break;  // cold clean-up
    prev_statuses = master_sol.statuses;
    prev_master_map = master_map;
    prev_n = master_sub.var_count();
    std::fill(prev_row_pos.begin(), prev_row_pos.end(), -1);
    for (std::size_t i = 0; i < master_rows.size(); ++i) {
      prev_row_pos[static_cast<std::size_t>(master_rows[i])] =
          static_cast<int>(i);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (plan.col_block[j] < 0) {
        coupling_value[j] =
            master_map[j] >= 0
                ? master_sol.values[static_cast<std::size_t>(master_map[j])]
                : 0.0;
      }
    }

    std::vector<std::size_t> work;
    for (std::size_t b = 0; b < plan.block_count; ++b) {
      if (!in_master[b]) work.push_back(b);
    }
    const auto refine_start = Clock::now();
    if (pool != nullptr && work.size() > 1) {
      std::vector<std::future<SubResult>> futures;
      futures.reserve(work.size());
      for (std::size_t b : work) futures.push_back(pool->submit(refine_block, b));
      for (std::size_t i = 0; i < work.size(); ++i) {
        refined[work[i]] = futures[i].get();
      }
    } else {
      for (std::size_t b : work) refined[b] = refine_block(b);
    }

    bool grew = false;
    bool failed = false;
    std::size_t infeasible_blocks = 0;
    std::size_t round_iters = 0;
    for (std::size_t b : work) {
      st.sub_iterations += refined[b].solution.iterations;
      round_iters += refined[b].solution.iterations;
      const SolveStatus s = refined[b].solution.status;
      if (s == SolveStatus::kInfeasible) {
        // Infeasible at the master's coupling values — a binding block, NOT
        // proof of parent infeasibility (the substitution added bounds).
        in_master[b] = 1;
        grew = true;
        ++infeasible_blocks;
      } else if (s != SolveStatus::kOptimal) {
        failed = true;
      }
    }
    if (trace_enabled()) {
      std::fprintf(stderr,
                   "[decompose] round %zu refined %zu blocks iters=%zu "
                   "infeasible=%zu %.2fs\n",
                   round, work.size(), round_iters, infeasible_blocks,
                   seconds_since(refine_start));
    }
    if (failed) break;  // degrade to a cold clean-up
    if (!grew) {
      stitch_ok = true;
      break;
    }
  }
  st.sub_seconds = seconds_since(sub_start);

  // Stitch a crash basis. The master contributes its own square basis
  // (locals, coupling columns, and its rows' logicals); every other block
  // contributes EXACTLY its square sub-basis — basic locals plus basic
  // logicals, one proposed basic per parent row in total, so the crash
  // factorization accepts the stitch as-is instead of demoting an
  // oversubscribed tail. Coupling columns outside the master stay at their
  // (zero) lower bound.
  const auto cleanup_start = Clock::now();
  std::vector<VarStatus> warm;
  const std::vector<VarStatus>* warm_ptr = nullptr;
  if (stitch_ok) {
    warm.assign(n + m, VarStatus::kAtLower);
    const std::size_t master_n = master_sol.values.size();
    for (std::size_t j = 0; j < n; ++j) {
      if (master_map[j] >= 0) {
        warm[j] = master_sol.statuses[static_cast<std::size_t>(master_map[j])];
      }
    }
    for (std::size_t i = 0; i < master_rows.size(); ++i) {
      warm[n + static_cast<std::size_t>(master_rows[i])] =
          master_sol.statuses[master_n + i];
    }
    for (std::size_t b = 0; b < plan.block_count; ++b) {
      if (in_master[b]) continue;
      const std::vector<VarStatus>& sub_status = refined[b].solution.statuses;
      const std::size_t sub_n = refined[b].solution.values.size();
      for (int j : block_cols[b]) {
        const auto ju = static_cast<std::size_t>(j);
        warm[ju] = sub_status[static_cast<std::size_t>(col_local[ju])];
      }
      for (std::size_t i = 0; i < block_rows[b].size(); ++i) {
        warm[n + static_cast<std::size_t>(block_rows[b][i])] =
            sub_status[sub_n + i];
      }
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (plan.row_block[r] < 0) warm[n + r] = VarStatus::kBasic;
    }
    warm_ptr = &warm;
  } else {
    st.sub_solve_failed = true;  // degrade to a cold clean-up (plain sparse)
  }

  // Clean-up: the stitched basis is primal feasible and optimal per block;
  // only the coupling columns' fine placement (the non-master blocks' tiny
  // placement costs pulling on the relaxation's choice) remains, which
  // shows up as a handful of mispriced columns — the dual simplex's home
  // turf. It hands any start it cannot finish to the primal engine
  // (fallback contract in lp/dual_simplex.h).
  SfSolution out;
  bool need_primal = true;
  if (warm_ptr != nullptr) {
    DualSolveStats dual_stats;
    out = solve_dual(sf, options, warm_ptr, &dual_stats);
    st.cleanup_iterations += out.iterations;
    if (out.status == SolveStatus::kOptimal ||
        out.status == SolveStatus::kInfeasible) {
      need_primal = false;
      st.dual_cleanup_finished = !dual_stats.needs_primal_cleanup;
    } else if (!out.statuses.empty()) {
      warm = out.statuses;  // dual progress becomes the primal warm start
      warm_ptr = &warm;
    }
  }
  if (need_primal) {
    out = solve_sparse(sf, options, warm_ptr, nullptr);
    st.cleanup_iterations += out.iterations;
  }
  st.cleanup_seconds = seconds_since(cleanup_start);
  if (trace_enabled()) {
    std::fprintf(stderr,
                 "[decompose] cleanup iters=%zu dual_finished=%d %.2fs\n",
                 st.cleanup_iterations,
                 static_cast<int>(st.dual_cleanup_finished),
                 st.cleanup_seconds);
  }
  out.iterations = st.sub_iterations + st.cleanup_iterations;

  span.attr(obs::AttrKey::kIterations,
            static_cast<std::int64_t>(out.iterations));
  span.attr(obs::AttrKey::kRows, static_cast<std::int64_t>(m));
  span.attr(obs::AttrKey::kStatus,
            out.status == SolveStatus::kOptimal ? 0 : -1);
  return out;
}

}  // namespace sb::lp
