// Call records: the per-call metadata the service stores (§5's Call Records
// Database) and that Switchboard consumes for forecasting, latency
// estimation, and trace replay. In the paper these come from 15 months of
// Teams history; here the trace generator synthesizes them (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "calls/call_config.h"
#include "common/types.h"

namespace sb {

/// One participant's leg of a call.
struct CallLeg {
  LocationId location;
  double join_offset_s = 0.0;  ///< seconds after call start this leg joined
};

/// One call. Legs are ordered by join offset, so legs.front() is the first
/// joiner — the participant whose location drives the §5.4 initial
/// assignment heuristic.
struct CallRecord {
  CallId id;
  ConfigId config;            ///< final (frozen) call configuration
  SimTime start_s = 0.0;      ///< seconds since trace epoch
  double duration_s = 0.0;
  std::vector<CallLeg> legs;
  /// Seconds after start when the call's media escalated to its final type
  /// (0 = started there). Audio-to-video upgrades mid-call are common.
  double media_change_offset_s = 0.0;
};

/// In-memory store of call records with the groupings the paper's pipeline
/// needs: per-config counts (Fig 7c), per-config time series (Fig 7a/b, §5.2
/// forecasting input), and join-offset pooling (Fig 8).
class CallRecordDatabase {
 public:
  void add(CallRecord record);
  void reserve(std::size_t n) { records_.reserve(n); }

  [[nodiscard]] const std::vector<CallRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Total calls per config, sorted descending by count.
  [[nodiscard]] std::vector<std::pair<ConfigId, std::uint64_t>> config_counts()
      const;

  /// The `k` most populous configs (ties broken by id).
  [[nodiscard]] std::vector<ConfigId> top_configs(std::size_t k) const;

  /// Arrival counts of `config` per bucket over [start_s, end_s), bucket
  /// width `bucket_s`. This is the §5.2 forecasting time series.
  [[nodiscard]] std::vector<double> arrival_series(ConfigId config,
                                                   double bucket_s,
                                                   SimTime start_s,
                                                   SimTime end_s) const;

  /// Pooled join offsets (seconds) across all calls with >= 2 legs; Fig 8's
  /// raw data.
  [[nodiscard]] std::vector<double> join_offsets() const;

 private:
  std::vector<CallRecord> records_;
};

}  // namespace sb
