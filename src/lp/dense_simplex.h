// Reference LP solver: two-phase primal simplex on a dense tableau.
// Simple enough to be verifiably correct; the test suite cross-checks the
// revised simplex against it on randomized instances. Suitable for problems
// up to a few hundred rows; larger Switchboard instances use
// revised_simplex.h.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/standard_form.h"

namespace sb::lp {

/// Tuning knobs shared by both simplex implementations.
struct SimplexOptions {
  std::size_t max_iterations = 200000;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-9;
  /// Feasibility / pivot magnitude tolerance.
  double feasibility_tol = 1e-7;
  /// Consecutive non-improving iterations before switching to Bland's rule.
  std::size_t stall_limit = 500;
  /// Revised engines only: refactorize the basis every N pivots. The sparse
  /// engine's product-form etas carry near-dense FTRAN images, so every
  /// btran pays O(interval * m) — while a fresh LU costs well under a
  /// millisecond on Switchboard-shaped bases. Short intervals win by a wide
  /// margin (bench/micro_lp.cpp: 32 is ~3x faster than 300 at the
  /// 42x24x8 provisioning shape).
  std::size_t refactor_interval = 32;
  /// Sparse engine only: size of the partial-pricing candidate list. The
  /// pricer re-scores only this many nonbasic columns per iteration and
  /// refills the list from a rotating cursor when it runs dry.
  std::size_t pricing_candidates = 256;
};

/// Solver-internal result in standard-form variable space.
struct SfSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  std::vector<double> values;
  std::size_t iterations = 0;
  /// Final status per standard-form column — var_count() structurals
  /// followed by one logical per row (sparse engine only; empty for the
  /// dense engines). Feed back via solve_sparse(..., warm) to warm-start;
  /// the engine also accepts a structurals-only prefix.
  std::vector<VarStatus> statuses;
};

/// Solves a standard-form LP with the dense tableau method.
SfSolution solve_dense(const StandardForm& sf, const SimplexOptions& options);

}  // namespace sb::lp
