#include "trace/diurnal.h"

#include <cmath>

#include "common/error.h"

namespace sb {

namespace {

double wrap_hours(double hours) {
  double h = std::fmod(hours, 24.0);
  if (h < 0.0) h += 24.0;
  return h;
}

/// Distance between two hours on the 24h circle.
double circular_hour_gap(double a, double b) {
  const double d = std::abs(wrap_hours(a) - wrap_hours(b));
  return std::min(d, 24.0 - d);
}

}  // namespace

DiurnalShape::DiurnalShape(DiurnalParams params) : params_(params) {
  require(params_.peak_width_hours > 0.0,
          "DiurnalShape: peak width must be positive");
  require(params_.evening_level >= 0.0 && params_.evening_level <= 1.0,
          "DiurnalShape: evening level must be in [0,1]");
  require(params_.weekend_factor >= 0.0 && params_.weekend_factor <= 1.0,
          "DiurnalShape: weekend factor must be in [0,1]");
}

double DiurnalShape::activity_local(double local_hour_of_day,
                                    bool weekend) const {
  auto bump = [&](double peak_hour) {
    const double gap = circular_hour_gap(local_hour_of_day, peak_hour);
    const double z = gap / params_.peak_width_hours;
    return std::exp(-0.5 * z * z);
  };
  const double business =
      std::max(bump(params_.morning_peak_hour),
               params_.afternoon_weight * bump(params_.afternoon_peak_hour));
  double level = params_.evening_level +
                 (1.0 - params_.evening_level) * business;
  if (weekend) level *= params_.weekend_factor;
  return level;
}

double DiurnalShape::activity(const Location& location, SimTime utc_s) const {
  return activity_local(local_hour_of_day(location, utc_s),
                        is_local_weekend(location, utc_s));
}

double local_hour_of_day(const Location& location, SimTime utc_s) {
  const double local_s = utc_s + location.utc_offset_hours * kSecondsPerHour;
  double day_s = std::fmod(local_s, kSecondsPerDay);
  if (day_s < 0.0) day_s += kSecondsPerDay;
  return day_s / kSecondsPerHour;
}

bool is_local_weekend(const Location& location, SimTime utc_s) {
  const double local_s = utc_s + location.utc_offset_hours * kSecondsPerHour;
  double week_s = std::fmod(local_s, kSecondsPerWeek);
  if (week_s < 0.0) week_s += kSecondsPerWeek;
  const int day = static_cast<int>(week_s / kSecondsPerDay);  // 0 = Monday
  return day >= 5;
}

}  // namespace sb
