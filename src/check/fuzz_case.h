// A self-contained, serializable fuzz scenario: the world (locations, DCs,
// WAN links), the call trace, the fault schedule, and every provisioning /
// realtime / simulator option the executor randomizes. A FuzzCase is the
// unit the shrinker minimizes and the unit sb_fuzz --replay consumes — a
// repro file is just `{seed, case}` as JSON, so a failure found on one
// machine deterministically replays on another with no generator state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "calls/call_record.h"
#include "calls/media.h"
#include "check/json.h"
#include "core/placement.h"
#include "fault/fault_schedule.h"
#include "geo/latency.h"
#include "geo/topology.h"
#include "geo/world.h"

namespace sb::check {

/// One media server in a DC's fleet (name is regenerated, not serialized).
struct FuzzServer {
  std::uint32_t dc = 0;  ///< index into FuzzWorld::dcs
  double cores = 0.0;
};

/// Serialized world: enough to rebuild World + Topology + LatencyMatrix.
/// `servers` is optional (absent key in pre-fleet repro files); when
/// non-empty it must cover every DC (the packed selector requires a fleet
/// beneath each DC it can place on).
struct FuzzWorld {
  std::vector<Location> locations;
  std::vector<Datacenter> dcs;
  std::vector<WanLink> links;  ///< name is regenerated, not serialized
  std::vector<FuzzServer> servers;
};

/// One call, media carried inline so the config registry can be rebuilt
/// from the calls alone (the config is the grouped multiset of leg
/// locations plus this media type).
struct FuzzCall {
  std::uint64_t id = 0;
  MediaType media = MediaType::kAudio;
  double start_s = 0.0;
  double duration_s = 0.0;
  double media_change_offset_s = 0.0;
  std::vector<CallLeg> legs;  ///< sorted by join offset; front = first joiner
};

/// Everything the executor randomizes besides the scenario data itself.
struct FuzzOptions {
  double freeze_delay_s = 300.0;
  double bucket_s = 60.0;  ///< keep integral: the recount oracle's bucket
                           ///< grid must match the tracker's additive grid
  double slot_s = 900.0;
  std::size_t shard_count = 16;
  std::size_t sim_threads = 3;   ///< run_concurrent partition count
  bool use_plan = true;          ///< provision + plan + controller path
  bool with_backup = true;
  bool include_link_failures = true;
  int floor_mode = 0;            ///< ProvisionOptions::FloorMode value
  std::size_t scenario_threads = 1;
  int lp_method = 0;             ///< lp::Method value
  bool rebuild_storm = false;    ///< post-sim plan-rebuild churn phase
  bool chaos_skip_drain_credit = false;  ///< mutation knob (oracle self-test)
  /// Mutation knob: drain/re-home moves skip the packer release on the old
  /// server, leaking per-server occupancy the per-server conservation
  /// oracle must catch. Requires a fleet.
  bool chaos_skip_server_credit = false;
  /// Cluster mode (sb_cluster): controller-worker count over the selector
  /// shards; 0 runs the plain single-process path. Requires use_plan; the
  /// fuzzer clamps it to shard_count.
  std::size_t workers = 0;
  double lease_ttl_s = 30.0;  ///< worker lease TTL (cluster mode only)
  /// Mutation knob: the WAL record is not rewritten at config freeze, so a
  /// worker kill + replay resurrects the pre-freeze row and the end event
  /// credits no slot — planted drift the conservation oracle must catch.
  /// Requires cluster mode and at least one worker kill.
  bool chaos_skip_wal_freeze = false;
  /// Closed-loop mode (sb_loop): wrap the controller in an
  /// AdaptiveController that re-forecasts from observed demand and installs
  /// corrected plans mid-run. Requires use_plan and workers == 0 (the
  /// cluster path owns its own allocator wiring).
  bool use_loop = false;
  double loop_cadence_s = 300.0;    ///< control-tick spacing (sim time)
  double loop_band = 0.25;          ///< deviation band before a replan
  /// The forecast the loop provisions/plans from is the true demand scaled
  /// by this factor; < 1 under-forecasts so the replayed trace drives the
  /// observation out of the band and the loop must correct.
  double loop_forecast_scale = 1.0;
  /// Flash-crowd shape stamped onto the trace at generation time:
  /// 0 = none, 1 = viral spike (global stair-step ramp), 2 = regional
  /// rebound after the first DC recovery in the fault schedule.
  int loop_flash = 0;
  /// Mutation knob: the control tick counts the out-of-band trigger but
  /// silently drops the re-provision — the loop-replan oracle must catch
  /// the stats imbalance. Requires use_loop.
  bool chaos_skip_replan = false;
};

/// A materialized case: the live objects a case deserializes into. Owned
/// behind unique_ptr so the EvalContext pointers stay stable.
struct Materialized {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads;
  CallRecordDatabase db;
  fault::FaultSchedule faults;

  explicit Materialized(const struct FuzzCase& c);

  [[nodiscard]] EvalContext ctx() const {
    return {&world, &topology, &latency, &registry, &loads};
  }
};

struct FuzzCase {
  std::uint64_t seed = 0;
  SimTime window_start_s = 0.0;
  SimTime window_end_s = 0.0;
  FuzzWorld world;
  std::vector<FuzzCall> calls;
  std::vector<fault::FaultEvent> faults;
  FuzzOptions options;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static FuzzCase from_json(const Json& j);

  /// One-line human description ("seed=7 3 dcs 42 calls 2 faults plan").
  [[nodiscard]] std::string describe() const;

  /// Rebuilds the live objects. Throws InvalidArgument on an inconsistent
  /// case (bad location ids, disconnected topology, ...).
  [[nodiscard]] std::unique_ptr<Materialized> materialize() const;
};

/// Repro file I/O: pretty-printed canonical JSON so repros diff cleanly.
void write_repro(const FuzzCase& c, const std::string& path);
[[nodiscard]] FuzzCase load_repro(const std::string& path);

}  // namespace sb::check
