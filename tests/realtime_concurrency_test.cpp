// Concurrency tests for the lock-striped realtime selector (DESIGN.md
// "Threading model"): edge paths of the slot accounting (overflow, unplanned
// configs, end-before-freeze) and a multi-threaded stress test asserting the
// atomic quota table stays exactly conserved (debits == credits + active
// held slots) under contention. Runs under TSan in CI (label: realtime).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "calls/demand.h"
#include "common/error.h"
#include "core/controller.h"
#include "core/realtime.h"

namespace sb {
namespace {

/// Two locations, two DCs, cheap world where everything is latency-feasible.
struct TwoDcWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  TwoDcWorld() : world(make_world()), topology(world), latency(2, 2) {
    topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world() {
    World w;
    w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
    w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
    w.add_datacenter({"DC-A", LocationId(0), 1.0});
    w.add_datacenter({"DC-B", LocationId(1), 1.0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

class RealtimeConcurrencyTest : public ::testing::Test {
 protected:
  RealtimeConcurrencyTest() : plan_(1, 1, 2, 1800.0) {
    config_ = CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
    config_id_ = world_.registry.intern(config_);
    plan_.config_columns = {config_id_};
  }

  TwoDcWorld world_;
  AllocationPlan plan_;
  CallConfig config_ = CallConfig::make({{LocationId(0), 1}},
                                        MediaType::kAudio);
  ConfigId config_id_;
};

TEST_F(RealtimeConcurrencyTest, EndBeforeFreezeReleasesNothing) {
  plan_.set_quota(0, 0, DcId(0), 4);
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  selector.on_call_end(CallId(1), 100.0);  // never froze, holds no slot
  const RealtimeSelector::Stats stats = selector.stats();
  EXPECT_EQ(stats.slot_debits, 0u);
  EXPECT_EQ(stats.slot_credits, 0u);
  EXPECT_EQ(selector.held_slots(), 0u);
  EXPECT_EQ(selector.active_calls(), 0u);
}

TEST_F(RealtimeConcurrencyTest, OverflowKeepsCallPutAndQuotaSaturated) {
  plan_.set_quota(0, 0, DcId(0), 1);
  plan_.set_quota(0, 0, DcId(1), 1);
  RealtimeSelector selector(world_.ctx(), &plan_, {});
  for (std::uint32_t c = 1; c <= 3; ++c) {
    selector.on_call_start(CallId(c), LocationId(0), 0.0);
  }
  EXPECT_FALSE(selector.on_config_frozen(CallId(1), config_, 300.0).migrated);
  EXPECT_TRUE(selector.on_config_frozen(CallId(2), config_, 301.0).migrated);
  // Both quotas taken: the third call overflows and stays at its initial DC.
  const FreezeResult r3 = selector.on_config_frozen(CallId(3), config_, 302.0);
  EXPECT_FALSE(r3.migrated);
  EXPECT_EQ(r3.dc, DcId(0));
  const RealtimeSelector::Stats stats = selector.stats();
  EXPECT_EQ(stats.overflow, 1u);
  EXPECT_EQ(stats.slot_debits, 2u);
  EXPECT_EQ(selector.held_slots(), 2u);  // never exceeds total quota
}

TEST_F(RealtimeConcurrencyTest, UnplannedConfigTakesNoSlot) {
  plan_.set_quota(0, 0, DcId(0), 4);
  RealtimeSelector selector(world_.ctx(), &plan_, {.shard_count = 4});
  selector.on_call_start(CallId(7), LocationId(0), 0.0);
  const CallConfig unknown =
      CallConfig::make({{LocationId(1), 3}}, MediaType::kVideo);
  const FreezeResult r = selector.on_config_frozen(CallId(7), unknown, 300.0);
  EXPECT_FALSE(r.planned);
  EXPECT_EQ(r.dc, DcId(1));  // min-ACL fallback
  EXPECT_EQ(selector.stats().unplanned, 1u);
  EXPECT_EQ(selector.held_slots(), 0u);
  selector.on_call_end(CallId(7), 400.0);
  EXPECT_EQ(selector.stats().slot_credits, 0u);
}

TEST_F(RealtimeConcurrencyTest, StressConservesQuotaAccounting) {
  // 8 threads hammer one scarce config: every freeze either debits a slot
  // (possibly migrating) or overflows; a third of calls end before freezing.
  // The atomic quota table must stay exact: no lost debits, no double
  // credits, never above quota.
  constexpr std::size_t kThreads = 8;
  constexpr std::uint32_t kCallsPerThread = 500;
  constexpr std::uint32_t kQuotaPerDc = 40;
  plan_.set_quota(0, 0, DcId(0), kQuotaPerDc);
  plan_.set_quota(0, 0, DcId(1), kQuotaPerDc);
  RealtimeSelector selector(world_.ctx(), &plan_, {});

  std::vector<std::thread> workers;
  std::vector<std::vector<CallId>> leftover(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kCallsPerThread; ++i) {
        const CallId call(static_cast<std::uint32_t>(t) * kCallsPerThread + i);
        const LocationId joiner(i % 2);
        selector.on_call_start(call, joiner, 0.0);
        if (i % 3 == 0) {
          selector.on_call_end(call, 100.0);  // gone before the freeze
          continue;
        }
        selector.on_config_frozen(call, config_, 300.0);
        if (i % 3 == 1) {
          selector.on_call_end(call, 400.0);
        } else {
          leftover[t].push_back(call);  // stays active past the stress loop
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const RealtimeSelector::Stats mid = selector.stats();
  EXPECT_EQ(mid.calls_started, kThreads * kCallsPerThread);
  EXPECT_EQ(mid.unplanned, 0u);
  // Every frozen call either took a slot or overflowed.
  EXPECT_EQ(mid.calls_frozen, mid.slot_debits + mid.overflow);
  // Conservation: debits == credits + slots still held, and the table never
  // exceeds the plan's total quota.
  EXPECT_EQ(mid.slot_debits, mid.slot_credits + selector.held_slots());
  EXPECT_LE(selector.held_slots(), 2u * kQuotaPerDc);
  EXPECT_GT(mid.overflow, 0u);  // quota is scarce by construction

  for (const auto& calls : leftover) {
    for (CallId call : calls) selector.on_call_end(call, 1000.0);
  }
  const RealtimeSelector::Stats done = selector.stats();
  EXPECT_EQ(selector.active_calls(), 0u);
  EXPECT_EQ(selector.held_slots(), 0u);
  EXPECT_EQ(done.slot_debits, done.slot_credits);
}

TEST_F(RealtimeConcurrencyTest, ControllerEventsRunConcurrently) {
  // Events through the Switchboard facade (no plan, no store) from several
  // threads: the facade has no global event lock, so this exercises the
  // shared swap guard + striped selector under TSan.
  ControllerOptions options;
  Switchboard controller(world_.ctx(), options);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint32_t kCallsPerThread = 400;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kCallsPerThread; ++i) {
        const CallId call(static_cast<std::uint32_t>(t) * kCallsPerThread + i);
        controller.call_started(call, LocationId(i % 2), 0.0);
        controller.config_frozen(call, config_, 300.0);
        controller.call_ended(call, 400.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const RealtimeSelector::Stats stats = controller.realtime_stats();
  EXPECT_EQ(stats.calls_started, kThreads * kCallsPerThread);
  EXPECT_EQ(stats.calls_frozen, kThreads * kCallsPerThread);
  EXPECT_EQ(stats.unplanned, kThreads * kCallsPerThread);  // no plan attached
}

TEST_F(RealtimeConcurrencyTest, PlanRebuildDuringEventsIsRaceFree) {
  // Regression test: build_allocation_plan once reassigned plan_ before
  // taking swap_mutex_ exclusively, mutating the AllocationPlan storage that
  // in-flight events were still reading through the old selector (a data
  // race / use-after-free TSan catches). Here one thread rebuilds the plan
  // continuously while event threads hammer the facade. A rebuild resets the
  // selector, so a call started under the previous plan may throw "unknown
  // call" on its later events — that is documented behaviour and tolerated;
  // the assertion is that TSan stays silent and the facade stays usable.
  ControllerOptions options;
  options.provision.include_link_failures = false;
  options.provision.with_backup = false;
  DemandMatrix demand = make_demand_matrix({config_id_}, 1);
  demand.set_demand(0, 0, 8.0);
  Switchboard controller(world_.ctx(), options);
  controller.provision(demand);
  controller.build_allocation_plan(demand, 0.0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> next_call{0};
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const CallId call(next_call.fetch_add(1, std::memory_order_relaxed));
        try {
          controller.call_started(call, LocationId(call.value() % 2), 0.0);
          controller.config_frozen(call, config_, 300.0);
          controller.call_ended(call, 400.0);
        } catch (const Error&) {
          // A plan swap landed mid-cycle; this call's remaining events are
          // orphaned by the selector reset.
        }
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    controller.provision(demand);
    controller.build_allocation_plan(demand, 0.0);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  // The facade is fully functional after the churn.
  const CallId last(next_call.fetch_add(1, std::memory_order_relaxed));
  controller.call_started(last, LocationId(0), 0.0);
  EXPECT_TRUE(controller.config_frozen(last, config_, 300.0).planned);
  controller.call_ended(last, 400.0);
  // Only events since the last rebuild are counted on the fresh selector.
  EXPECT_GE(controller.realtime_stats().calls_started, 1u);
}

}  // namespace
}  // namespace sb
