// Minimal JSON value type for sb_check's self-contained repro files. The
// repo deliberately has no third-party JSON dependency, so this implements
// exactly the subset the fuzzer needs: null/bool/number/string/array/object,
// recursive-descent parsing, and deterministic serialization (objects keep
// keys sorted — std::map — so equal values always dump to equal strings,
// which is what makes repro files diffable and fuzzer determinism testable
// by string comparison).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace sb::check {

class Json {
 public:
  using Array = std::vector<Json>;
  /// Ordered map: serialization order is key order, so dumps are canonical.
  using Object = std::map<std::string, Json>;

  Json() = default;
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Integral conveniences (number cast with range truncation).
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;

  /// Object member access; `get` throws InvalidArgument when the key is
  /// absent, `get_or` returns the fallback.
  [[nodiscard]] const Json& get(const std::string& key) const;
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_or(const std::string& key, bool fallback) const;
  /// Null when the key is absent (for optional structures like the fleet
  /// block — pre-fleet repro files simply lack the key).
  [[nodiscard]] const Json* find(const std::string& key) const;
  Json& operator[](const std::string& key);

  /// Serializes this value. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing non-whitespace is an error).
  /// Throws InvalidArgument with a byte offset on malformed input.
  static Json parse(const std::string& text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_ = nullptr;
};

}  // namespace sb::check
