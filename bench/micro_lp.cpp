// google-benchmark microbenchmarks for the LP solvers: dense tableau vs
// legacy dense-inverse revised simplex vs the sparse LU/eta engine vs the
// block-angular decomposition, across random instances and
// provisioning-LP-shaped instances (sparse columns, capacity peaks) from
// the real Switchboard scale of 168 half-hour slots x 40 configs x 12 DCs
// up to the planet-scale 720 x 100 x 50 cold solve. Decomposed variants
// additionally report per-phase timings (detect / subproblems / clean-up)
// from the sb.lp.decompose_*_s registry histograms.
//
// Besides google-benchmark's own wall-time mean, each benchmark reports
// p50/p99 solve latency and iterations-per-solve sourced from the sb::obs
// registry (lp::solve times itself into sb.lp.solve_s), by diffing registry
// snapshots around the timed loop. Provisioning benches additionally emit
// `{"bench": ...}` JSON lines (see bench_util.h) so BENCH_lp.json can track
// the dense-vs-revised-vs-sparse trajectory across sessions:
//
//   ./bench/micro_lp --benchmark_min_time=1x | grep '^{"bench"'
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "lp/solver.h"
#include "obs/snapshot.h"

namespace sb::lp {
namespace {

/// Attaches registry-sourced percentile counters for the samples recorded
/// between `before` and now to the benchmark's output row.
void report_registry_latencies(benchmark::State& state,
                               const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot delta = obs::snapshot_diff(
      before, obs::MetricsRegistry::global().snapshot());
  const obs::HistogramSample* solve = delta.find_histogram("sb.lp.solve_s");
  if (solve == nullptr || solve->data.count == 0) return;  // SB_METRICS=OFF
  state.counters["p50_us"] = solve->data.p50() * 1e6;
  state.counters["p99_us"] = solve->data.p99() * 1e6;
  state.counters["iters/solve"] =
      static_cast<double>(delta.counter_value("sb.lp.simplex_iterations")) /
      static_cast<double>(solve->data.count);
}

Model make_random_lp(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<double> witness(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    witness[i] = rng.uniform(0.0, 10.0);
    m.add_variable(0.0, kInf, rng.uniform(0.1, 5.0));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < vars; ++i) {
      if (!rng.chance(0.3)) continue;
      const double coeff = rng.uniform(-2.0, 3.0);
      terms.push_back({static_cast<int>(i), coeff});
      lhs += coeff * witness[i];
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms),
                     rng.chance(0.5) ? Sense::kLe : Sense::kGe,
                     lhs + (rng.chance(0.5) ? 1.0 : -1.0) * rng.uniform(0, 2));
  }
  return m;
}

/// A provisioning-shaped LP: T slots x C configs x X DCs share variables
/// with per-slot capacity-peak rows and completeness equalities.
Model make_provisioning_lp(std::size_t slots, std::size_t configs,
                           std::size_t dcs, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<int> cp(dcs);
  for (std::size_t x = 0; x < dcs; ++x) {
    cp[x] = m.add_variable(0.0, kInf, rng.uniform(0.9, 1.4));
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::vector<Term>> dc_rows(dcs);
    for (std::size_t c = 0; c < configs; ++c) {
      std::vector<Term> completeness;
      for (std::size_t x = 0; x < dcs; ++x) {
        const int s = m.add_variable(0.0, kInf, 1e-6 * rng.uniform(5, 100));
        dc_rows[x].push_back({s, rng.uniform(0.01, 0.1)});
        completeness.push_back({s, 1.0});
      }
      m.add_constraint(std::move(completeness), Sense::kEq,
                       rng.uniform(0.0, 50.0));
    }
    for (std::size_t x = 0; x < dcs; ++x) {
      dc_rows[x].push_back({cp[x], -1.0});
      m.add_constraint(std::move(dc_rows[x]), Sense::kLe, 0.0);
    }
  }
  return m;
}

/// Provisioning-bench variant ids (4th Args element).
enum ProvVariant : int {
  kVarDense = 0,
  kVarRevised = 1,
  kVarSparse = 2,     ///< monolithic sparse engine (decomposition off)
  kVarDecompose = 3,  ///< sparse engine, DecomposePolicy::kForce
};

const char* variant_name(int variant) {
  switch (variant) {
    case kVarDense:
      return "dense";
    case kVarRevised:
      return "revised";
    case kVarDecompose:
      return "decomposed";
    default:
      return "sparse";
  }
}

std::string prov_bench_name(benchmark::State& state, const char* variant) {
  return "lp_prov_t" + std::to_string(state.range(0)) + "_c" +
         std::to_string(state.range(1)) + "_d" +
         std::to_string(state.range(2)) + "_" + variant;
}

void BM_DenseSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kDense;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
  report_registry_latencies(state, before);
}
BENCHMARK(BM_DenseSimplexRandom)->Args({20, 15})->Args({60, 40})->Args({120, 80});

void BM_RevisedSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kRevised;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
  report_registry_latencies(state, before);
}
BENCHMARK(BM_RevisedSimplexRandom)
    ->Args({20, 15})
    ->Args({60, 40})
    ->Args({120, 80});

void BM_SparseSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kSparse;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
  report_registry_latencies(state, before);
}
BENCHMARK(BM_SparseSimplexRandom)
    ->Args({20, 15})
    ->Args({60, 40})
    ->Args({120, 80});

/// Args: {slots, configs, dcs, ProvVariant}. The dense engines are
/// registered only at the shapes their quadratic memory can stomach; the
/// monolithic sparse engine goes up to the paper-scale 168x40x12 and the
/// decomposed variant to the planet-scale 720x100x50.
void BM_ProvisioningShapedLp(benchmark::State& state) {
  const Model m = make_provisioning_lp(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)),
      static_cast<std::size_t>(state.range(2)), 11);
  const int variant = static_cast<int>(state.range(3));
  SolveOptions options;
  switch (variant) {
    case kVarDense:
      options.method = Method::kDense;
      break;
    case kVarRevised:
      options.method = Method::kRevised;
      break;
    case kVarDecompose:
      options.method = Method::kSparse;
      options.decompose = DecomposePolicy::kForce;
      break;
    default:
      options.method = Method::kSparse;
      // Keep the monolithic rows monolithic even at shapes kAuto would
      // decompose, so the before/after trajectory stays comparable.
      options.decompose = DecomposePolicy::kOff;
      break;
  }
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  double objective = 0.0;
  double total_s = 0.0;
  std::size_t solves = 0;
  std::size_t iters = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const Solution s = solve(m, options);
    total_s += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    ++solves;
    if (!s.optimal()) state.SkipWithError("not optimal");
    objective = s.objective;
    iters += s.iterations;
    benchmark::DoNotOptimize(s.objective);
  }
  report_registry_latencies(state, before);
  state.counters["objective"] = objective;
  if (solves > 0) {
    const std::string name = prov_bench_name(state, variant_name(variant));
    const auto per_solve = [&](std::uint64_t total) {
      return static_cast<double>(total) / static_cast<double>(solves);
    };
    bench::emit_json(name, "mean_ms", total_s / solves * 1e3);
    bench::emit_json(name, "objective", objective);
    bench::emit_json(name, "iters_per_solve",
                     static_cast<double>(iters) / solves);
    const obs::MetricsSnapshot delta = obs::snapshot_diff(
        before, obs::MetricsRegistry::global().snapshot());
    bench::emit_json(name, "factorizations_per_solve",
                     per_solve(delta.counter_value("sb.lp.factorizations")));
    bench::emit_json(name, "pricing_passes_per_solve",
                     per_solve(delta.counter_value("sb.lp.pricing_passes")));
    bench::emit_json(name, "bound_flips_per_solve",
                     per_solve(delta.counter_value("sb.lp.bound_flips")));
    bench::emit_json(name, "devex_resets_per_solve",
                     per_solve(delta.counter_value("sb.lp.devex_resets")));
    if (variant == kVarDecompose) {
      // Per-phase wall time and iteration split for the decomposition.
      const auto phase_ms = [&](const char* histogram) {
        const obs::HistogramSample* h = delta.find_histogram(histogram);
        return h == nullptr
                   ? 0.0
                   : h->data.sum / static_cast<double>(solves) * 1e3;
      };
      bench::emit_json(name, "detect_ms_per_solve",
                       phase_ms("sb.lp.decompose_detect_s"));
      bench::emit_json(name, "subproblems_ms_per_solve",
                       phase_ms("sb.lp.decompose_sub_s"));
      bench::emit_json(name, "cleanup_ms_per_solve",
                       phase_ms("sb.lp.decompose_cleanup_s"));
      bench::emit_json(
          name, "sub_iters_per_solve",
          per_solve(delta.counter_value("sb.lp.decompose_sub_iterations")));
      bench::emit_json(
          name, "cleanup_iters_per_solve",
          per_solve(
              delta.counter_value("sb.lp.decompose_cleanup_iterations")));
    }
  }
}
BENCHMARK(BM_ProvisioningShapedLp)
    ->Args({6, 10, 5, kVarDense})
    ->Args({12, 16, 5, kVarDense})
    ->Args({6, 10, 5, kVarRevised})
    ->Args({12, 16, 5, kVarRevised})
    ->Args({42, 24, 8, kVarRevised})
    ->Args({6, 10, 5, kVarSparse})
    ->Args({12, 16, 5, kVarSparse})
    ->Args({42, 24, 8, kVarSparse})
    ->Args({84, 32, 10, kVarSparse})
    ->Args({168, 40, 12, kVarSparse})
    ->Args({42, 24, 8, kVarDecompose})
    ->Args({84, 32, 10, kVarDecompose})
    ->Args({168, 40, 12, kVarDecompose})
    ->Args({720, 100, 50, kVarDecompose})
    ->Unit(benchmark::kMillisecond);

/// Warm-started re-solve of a provisioning shape: the cold solve's column
/// AND row basis is fed back via SolveOptions::warm_start / warm_start_rows,
/// mimicking the provisioner's failure-scenario loop (same structure,
/// perturbed data).
void BM_ProvisioningWarmStart(benchmark::State& state) {
  const Model m = make_provisioning_lp(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)),
      static_cast<std::size_t>(state.range(2)), 11);
  SolveOptions options;
  options.method = Method::kSparse;
  const Solution cold = solve(m, options);
  if (!cold.optimal()) {
    state.SkipWithError("cold solve not optimal");
    return;
  }
  options.warm_start = cold.basis;
  options.warm_start_rows = cold.row_basis;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  double total_s = 0.0;
  std::size_t solves = 0;
  std::size_t iters = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const Solution s = solve(m, options);
    total_s += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    ++solves;
    if (!s.optimal()) state.SkipWithError("not optimal");
    iters += s.iterations;
    benchmark::DoNotOptimize(s.objective);
  }
  report_registry_latencies(state, before);
  state.counters["cold_iters"] = static_cast<double>(cold.iterations);
  if (solves > 0) {
    const std::string name = prov_bench_name(state, "sparse_warm");
    bench::emit_json(name, "mean_ms", total_s / solves * 1e3);
    bench::emit_json(name, "iters_per_solve",
                     static_cast<double>(iters) / solves);
    bench::emit_json(name, "cold_iters",
                     static_cast<double>(cold.iterations));
  }
}
BENCHMARK(BM_ProvisioningWarmStart)
    ->Args({42, 24, 8})
    ->Args({84, 32, 10})
    ->Args({168, 40, 12})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sb::lp

BENCHMARK_MAIN();
