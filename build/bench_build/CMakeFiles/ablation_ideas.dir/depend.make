# Empty dependencies file for ablation_ideas.
# This may be replaced when dependencies are built.
