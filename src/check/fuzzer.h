// The seeded scenario fuzzer: one seed -> one fully randomized FuzzCase
// (world, trace, fault storm, provisioning/realtime/simulator options).
// Generation is pure — the same (params, seed) always yields a byte-
// identical case (canonical JSON equality is asserted by check_test), which
// is what makes `sb_fuzz --seeds N` reproducible across machines.
#pragma once

#include <cstdint>

#include "check/fuzz_case.h"

namespace sb::check {

struct FuzzerParams {
  std::size_t min_dcs = 2;
  std::size_t max_dcs = 5;
  std::size_t max_locations = 10;
  std::size_t min_configs = 4;
  std::size_t max_configs = 24;
  /// Arrival-rate range (calls/hour at peak) for the whole universe.
  double min_peak_rate_per_hour = 60.0;
  double max_peak_rate_per_hour = 240.0;
  /// Trace window length range (seconds).
  double min_window_s = 1800.0;
  double max_window_s = 7200.0;
  /// Fault-storm outage count range (down/up pairs).
  std::size_t min_outages = 0;
  std::size_t max_outages = 3;
  /// Probability the case runs the full plan-driven controller path (vs the
  /// plan-less closest-DC selector).
  double plan_prob = 0.85;
  /// Probability the case appends the post-sim plan-rebuild churn phase.
  double rebuild_storm_prob = 0.3;
  /// Hard cap on materialized calls (keeps one case sub-second).
  std::size_t max_calls = 2000;
  /// Forces the drain-credit chaos knob on every generated case — used to
  /// prove the conservation oracle catches the bug class (sb_fuzz --chaos).
  bool chaos_skip_drain_credit = false;
  /// Forces the server-credit chaos knob (and therefore a fleet plus at
  /// least one server outage) on every generated case — proves the
  /// per-server conservation oracle catches leaked packer occupancy.
  bool chaos_skip_server_credit = false;
  /// Probability a case splits each DC into a media-server fleet (uniform /
  /// heterogeneous / single-straggler shapes). The rest keep the fungible
  /// core-pool world so the no-fleet paths stay fuzzed too.
  double fleet_prob = 0.5;
  /// Of the fault-storm outages, the fraction drawn as single-server
  /// failures instead of DC/link outages (fleet cases only).
  double server_outage_fraction = 0.35;
  /// Probability a plan case runs the sb_cluster path: N controller workers
  /// over the selector shards with epoch/lease HA and WAL replay on kill.
  double cluster_prob = 0.35;
  /// Forces every generated case into cluster mode with a 3..6-kill worker
  /// storm (sb_fuzz --storm worker-kill) — the failover soak shape.
  bool worker_kill_storm = false;
  /// Forces the WAL-freeze chaos knob (plus cluster mode and at least one
  /// worker kill) on every generated case — proves the conservation oracle
  /// catches a lost freeze across crash-recovery (sb_fuzz --chaos).
  bool chaos_skip_wal_freeze = false;
  /// Probability a single-process plan case runs closed-loop (sb_loop): the
  /// controller is wrapped in an AdaptiveController ticking on a sim-time
  /// cadence with an under-scaled forecast and an optional flash-crowd
  /// shape stamped onto the trace.
  double loop_prob = 0.35;
  /// Forces the skip-replan chaos knob (plus closed-loop mode with an
  /// aggressive under-forecast so a trigger is certain) on every generated
  /// case — proves the loop-replan oracle catches a dropped re-provision
  /// (sb_fuzz --chaos skip-replan).
  bool chaos_skip_replan = false;
};

class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(FuzzerParams params = {}) : params_(params) {}

  [[nodiscard]] const FuzzerParams& params() const { return params_; }

  /// Generates the deterministic case for `seed`.
  [[nodiscard]] FuzzCase generate(std::uint64_t seed) const;

 private:
  FuzzerParams params_;
};

}  // namespace sb::check
