// Locality-First baseline (§3.2): host every call at the DC with the lowest
// ACL. Best latency and modest WAN use, but each DC must be provisioned for
// its local demand peak — and the sum of time-shifted local peaks exceeds
// the global peak — plus skew-driven backup from the Eq 1-2 LP.
#pragma once

#include "baselines/baseline.h"

namespace sb {

/// The LF no-failure placement: all of D_tc at the config's min-ACL DC.
PlacementMatrix locality_first_placement(const DemandMatrix& demand,
                                         const EvalContext& ctx);

/// Full LF provisioning: serving cores = per-DC local peaks, backup cores
/// via the Eq 1-2 LP, WAN capacity as the per-link max across failure
/// scenarios (a failed DC's calls redistribute over the survivors in
/// proportion to their planned backup; calls dodging a failed link move to
/// the best alive DC whose paths avoid it).
BaselineResult provision_locality_first(const DemandMatrix& demand,
                                        const EvalContext& ctx,
                                        const BaselineOptions& options = {});

}  // namespace sb
