// Reproduces Fig 3: per-country compute demand (cores) over one day,
// normalized to the maximum peak observed, showing the time-shifted peaks
// that peak-aware provisioning exploits. The paper plots Japan, Hong Kong,
// and India peaking at roughly 00:00, 02:00, and 05:30 UTC.
//
// Flags: --slot_s=1800
#include <algorithm>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sb;
  const double slot_s = bench::arg_double(argc, argv, "slot_s", 1800.0);

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  // Expected demand over all universe configs for a Tuesday.
  const DemandMatrix demand = scenario.trace->expected_demand(
      slot_s, kSecondsPerDay, 2 * kSecondsPerDay);

  const char* countries[] = {"JP", "HK", "IN"};
  std::vector<std::vector<double>> series;
  double peak = 0.0;
  for (const char* name : countries) {
    const LocationId loc = *scenario.world().find_location(name);
    series.push_back(
        location_core_demand(demand, *scenario.registry, loads, loc));
    for (double v : series.back()) peak = std::max(peak, v);
  }

  std::cout << "Fig 3: per-country core demand over one day, normalized to "
               "the max peak\n\n";
  TextTable table({"UTC", "JP", "HK", "IN"});
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    const double hour = t * slot_s / 3600.0;
    table.row().cell(format_double(hour, 1));
    for (const auto& s : series) table.cell(s[t] / peak);
  }
  std::cout << table;

  std::cout << "\npeak times (UTC):";
  for (std::size_t i = 0; i < 3; ++i) {
    const auto it = std::max_element(series[i].begin(), series[i].end());
    const double hour =
        static_cast<double>(std::distance(series[i].begin(), it)) * slot_s /
        3600.0;
    std::cout << "  " << countries[i] << "=" << format_double(hour, 1) << "h";
  }
  std::cout << "  (paper: JP 00:00, HK 02:00, IN 05:30)\n";
  return 0;
}
