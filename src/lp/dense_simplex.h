// Reference LP solver: two-phase primal simplex on a dense tableau.
// Simple enough to be verifiably correct; the test suite cross-checks the
// revised simplex against it on randomized instances. Suitable for problems
// up to a few hundred rows; larger Switchboard instances use
// revised_simplex.h.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/standard_form.h"

namespace sb::lp {

/// Tuning knobs shared by both simplex implementations.
struct SimplexOptions {
  std::size_t max_iterations = 200000;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-9;
  /// Feasibility / pivot magnitude tolerance.
  double feasibility_tol = 1e-7;
  /// Consecutive non-improving iterations before switching to Bland's rule.
  std::size_t stall_limit = 500;
  /// Revised simplex only: refactorize the basis inverse every N pivots.
  std::size_t refactor_interval = 300;
};

/// Solver-internal result in standard-form variable space.
struct SfSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  std::vector<double> values;
  std::size_t iterations = 0;
};

/// Solves a standard-form LP with the dense tableau method.
SfSolution solve_dense(const StandardForm& sf, const SimplexOptions& options);

}  // namespace sb::lp
