// Linear-program model builder. Switchboard's provisioning (Eq 3-9),
// allocation (Eq 10), and the Locality-First backup plan (Eq 1-2) are all
// expressed against this interface and solved by the from-scratch simplex
// implementations in this module (the paper treats its LP solver as a black
// box; see DESIGN.md substitutions).
//
// Conventions: minimization only; every variable must have a finite lower
// bound (all of Switchboard's variables are non-negative); upper bounds are
// optional.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/error.h"

namespace sb::lp {

/// +infinity for "no upper bound".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One coefficient of a constraint row.
struct Term {
  int var = -1;
  double coeff = 0.0;
};

enum class Sense { kLe, kGe, kEq };

struct Variable {
  double lower = 0.0;
  double upper = kInf;
  double cost = 0.0;
  std::string name;
};

struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// A minimization LP under construction.
class Model {
 public:
  /// Adds a variable; returns its index. `lower` must be finite.
  int add_variable(double lower, double upper, double cost,
                   std::string name = "");

  /// Adds a constraint row; duplicate variable terms are merged. Terms with
  /// out-of-range variable indices throw.
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                     std::string name = "");

  [[nodiscard]] std::size_t variable_count() const { return vars_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return rows_.size(); }
  [[nodiscard]] const Variable& variable(int v) const;
  [[nodiscard]] const Constraint& constraint(int c) const;
  [[nodiscard]] const std::vector<Variable>& variables() const { return vars_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return rows_;
  }

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> rows_;
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string to_string(SolveStatus s);

/// Simplex status of one variable in an optimal basis. The sparse engine
/// reports these per model variable after a solve (Solution::basis) and can
/// start from them (SolveOptions::warm_start): a warm start re-installs the
/// nonbasic variables at their bounds, crash-factorizes the proposed basic
/// set (repairing rank deficiencies with logicals), and lets phase 1 clean
/// up whatever residual infeasibility the new model introduces.
enum class VarStatus : unsigned char {
  kAtLower,  ///< nonbasic at its lower bound
  kAtUpper,  ///< nonbasic at its (finite) upper bound
  kBasic,    ///< in the basis
  kFixed,    ///< lower == upper; substituted out before the simplex
};

/// Result of a solve. `values` are in the original model's variable space
/// (including fixed/shifted variables mapped back).
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t iterations = 0;
  /// Final basis, one status per model variable. Filled only by the sparse
  /// engine (Method::kSparse / kAuto dispatching to it) on optimal solves;
  /// empty otherwise. Feed it to SolveOptions::warm_start of a related
  /// model to skip most of phase 1/2.
  std::vector<VarStatus> basis;
  /// Final status of each constraint row's logical (slack/surplus) variable,
  /// one per model constraint; kBasic means the row was inactive (slack
  /// basic) at the optimum. Filled alongside `basis` by the sparse engine;
  /// rows removed by presolve report kBasic. Feed it to
  /// SolveOptions::warm_start_rows together with `basis` — without the row
  /// pattern the engine must guess which rows were tight, which costs
  /// phase-1 repair pivots.
  std::vector<VarStatus> row_basis;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Feasibility report from validate_solution().
struct ValidationReport {
  bool feasible = true;
  double max_violation = 0.0;
  std::string worst;  ///< name/description of the most violated row or bound
};

/// Independently checks `values` against all bounds and constraints of
/// `model` — the test suite runs every solver answer through this.
ValidationReport validate_solution(const Model& model,
                                   const std::vector<double>& values,
                                   double tolerance = 1e-6);

/// Full-solution variant, the sb_check feasibility-oracle entry point: on
/// top of the bounds/constraints check it verifies that the reported
/// objective matches `model.objective_value(solution.values)` (relative
/// tolerance on large objectives), so a solver that mis-reports its own
/// answer is caught too. Only meaningful for optimal solutions; any other
/// status reports infeasible with `worst` naming the status.
ValidationReport validate_solution(const Model& model, const Solution& solution,
                                   double tolerance = 1e-6);

}  // namespace sb::lp
