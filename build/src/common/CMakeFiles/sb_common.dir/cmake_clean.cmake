file(REMOVE_RECURSE
  "CMakeFiles/sb_common.dir/csv.cpp.o"
  "CMakeFiles/sb_common.dir/csv.cpp.o.d"
  "CMakeFiles/sb_common.dir/rng.cpp.o"
  "CMakeFiles/sb_common.dir/rng.cpp.o.d"
  "CMakeFiles/sb_common.dir/stats.cpp.o"
  "CMakeFiles/sb_common.dir/stats.cpp.o.d"
  "CMakeFiles/sb_common.dir/table.cpp.o"
  "CMakeFiles/sb_common.dir/table.cpp.o.d"
  "CMakeFiles/sb_common.dir/thread_pool.cpp.o"
  "CMakeFiles/sb_common.dir/thread_pool.cpp.o.d"
  "libsb_common.a"
  "libsb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
