#include "lp/solver.h"

#include <string>

#include "common/error.h"
#include "lp/block_decompose.h"
#include "lp/dense_inverse_simplex.h"
#include "lp/dual_simplex.h"
#include "lp/presolve.h"
#include "lp/revised_simplex.h"
#include "lp/standard_form.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace sb::lp {

namespace {

/// Handles resolved once; lp::solve is on the provisioning critical path
/// and must not pay a registry lookup per call.
struct SolveMetrics {
  obs::Counter& solves;
  obs::Counter& infeasible;
  obs::Counter& iterations;
  obs::Counter& iterations_warm;
  obs::Counter& iterations_cold;
  obs::Counter& warm_starts;
  obs::Counter& factorizations;
  obs::Counter& pricing_passes;
  obs::Counter& bound_flips;
  obs::Counter& devex_resets;
  obs::Counter& dual_fallbacks;
  obs::Counter& decompose_solves;
  obs::Counter& decompose_blocks;
  obs::Counter& decompose_sub_iterations;
  obs::Counter& decompose_cleanup_iterations;
  obs::Counter& presolve_rows_removed;
  obs::Counter& presolve_bounds_tightened;
  obs::Counter& presolve_variables_fixed;
  obs::Counter& presolve_uppers_implied;
  obs::Histogram& eta_nnz;
  obs::Histogram& solve_s;
  obs::Histogram& solve_dense_s;
  obs::Histogram& solve_revised_s;
  obs::Histogram& solve_sparse_s;
  obs::Histogram& solve_dual_s;
  obs::Histogram& decompose_detect_s;
  obs::Histogram& decompose_sub_s;
  obs::Histogram& decompose_cleanup_s;

  static SolveMetrics& get() {
    static SolveMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return SolveMetrics{
          r.counter("sb.lp.solves"),
          r.counter("sb.lp.infeasible"),
          r.counter("sb.lp.simplex_iterations"),
          r.counter("sb.lp.iterations_warm"),
          r.counter("sb.lp.iterations_cold"),
          r.counter("sb.lp.warm_starts"),
          r.counter("sb.lp.factorizations"),
          r.counter("sb.lp.pricing_passes"),
          r.counter("sb.lp.bound_flips"),
          r.counter("sb.lp.devex_resets"),
          r.counter("sb.lp.dual_fallbacks"),
          r.counter("sb.lp.decompose_solves"),
          r.counter("sb.lp.decompose_blocks"),
          r.counter("sb.lp.decompose_sub_iterations"),
          r.counter("sb.lp.decompose_cleanup_iterations"),
          r.counter("sb.lp.presolve_rows_removed"),
          r.counter("sb.lp.presolve_bounds_tightened"),
          r.counter("sb.lp.presolve_variables_fixed"),
          r.counter("sb.lp.presolve_uppers_implied"),
          r.histogram("sb.lp.eta_nnz"),
          r.histogram("sb.lp.solve_s"),
          r.histogram("sb.lp.solve_dense_s"),
          r.histogram("sb.lp.solve_revised_s"),
          r.histogram("sb.lp.solve_sparse_s"),
          r.histogram("sb.lp.solve_dual_s"),
          r.histogram("sb.lp.decompose_detect_s"),
          r.histogram("sb.lp.decompose_sub_s"),
          r.histogram("sb.lp.decompose_cleanup_s"),
      };
    }();
    return metrics;
  }
};

obs::Histogram& method_timer_for(SolveMetrics& metrics, Method method) {
  switch (method) {
    case Method::kDense:
      return metrics.solve_dense_s;
    case Method::kRevised:
      return metrics.solve_revised_s;
    case Method::kDual:
      return metrics.solve_dual_s;
    default:
      return metrics.solve_sparse_s;
  }
}

/// The dual / sparse / decomposed engines share the bounded-variable
/// standard form (BoundPolicy::kInline), the warm-start contract, and the
/// status-vector layout.
[[nodiscard]] bool sparse_family(Method method) {
  return method == Method::kSparse || method == Method::kDual;
}

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  SolveMetrics& metrics = SolveMetrics::get();
  metrics.solves.inc();
  obs::ScopedTimer total_timer(metrics.solve_s);
  obs::Span span("lp.solve", obs::Subsystem::kLp);
  span.attr(obs::AttrKey::kRows,
            static_cast<std::int64_t>(model.constraint_count()));
  span.attr(obs::AttrKey::kCols,
            static_cast<std::int64_t>(model.variable_count()));

  const Model* target = &model;
  PresolveResult pre;
  if (options.use_presolve) {
    obs::Span presolve_span("lp.presolve", obs::Subsystem::kLp);
    pre = presolve(model);
    metrics.presolve_rows_removed.inc(pre.rows_removed);
    metrics.presolve_bounds_tightened.inc(pre.bounds_tightened);
    metrics.presolve_variables_fixed.inc(pre.variables_fixed);
    metrics.presolve_uppers_implied.inc(pre.uppers_implied);
    presolve_span.attr(obs::AttrKey::kRows,
                       static_cast<std::int64_t>(pre.rows_removed));
    if (pre.infeasible) {
      metrics.infeasible.inc();
      Solution solution;
      solution.status = SolveStatus::kInfeasible;
      span.attr(obs::AttrKey::kStatus,
                static_cast<std::int64_t>(SolveStatus::kInfeasible));
      return solution;
    }
    target = &pre.reduced;
  }

  // kAuto routing table (documented in DESIGN.md): tiny models take the
  // dense tableau; warm re-solves flagged as bound/rhs perturbations take
  // the dual simplex; everything else takes the primal sparse engine, with
  // large cold solves additionally eligible for block decomposition below.
  const bool has_warm_hint = !options.warm_start.empty() &&
                             options.warm_start.size() ==
                                 model.variable_count();
  Method method = options.method;
  if (method == Method::kAuto) {
    if (target->constraint_count() < kAutoSparseRowCutoff) {
      method = Method::kDense;
    } else if (options.dual_resolve && has_warm_hint) {
      method = Method::kDual;
    } else {
      method = Method::kSparse;
    }
  }
  const StandardForm sf = to_standard_form(
      *target, sparse_family(method) ? BoundPolicy::kInline
                                     : BoundPolicy::kUpperRows);
  if (method == Method::kDense && sf.rows.size() > kDenseRowLimit) {
    throw InvalidArgument(
        "lp: dense tableau is limited to " + std::to_string(kDenseRowLimit) +
        " standard-form rows (got " + std::to_string(sf.rows.size()) +
        "); use Method::kSparse or kAuto");
  }
  if (method == Method::kRevised && sf.rows.size() > kDenseInverseRowLimit) {
    throw InvalidArgument(
        "lp: dense-inverse revised simplex is limited to " +
        std::to_string(kDenseInverseRowLimit) + " standard-form rows (got " +
        std::to_string(sf.rows.size()) + "); use Method::kSparse or kAuto");
  }

  // Map the warm-start statuses (model variable space) onto the reduced
  // model's structural variables. Variables presolve fixed simply drop out.
  std::vector<VarStatus> sf_warm;
  const std::vector<VarStatus>* warm_ptr = nullptr;
  if (sparse_family(method) && has_warm_hint) {
    sf_warm.assign(sf.var_count(), VarStatus::kAtLower);
    for (std::size_t i = 0; i < options.warm_start.size(); ++i) {
      const int sv = sf.var_map[i];
      if (sv < 0) continue;
      const VarStatus s = options.warm_start[i];
      sf_warm[static_cast<std::size_t>(sv)] =
          s == VarStatus::kFixed ? VarStatus::kAtLower : s;
    }
    // Row statuses ride along when supplied: the standard form emits one row
    // per reduced-model constraint in order (BoundPolicy::kInline adds no
    // extra rows), so reduced row r is standard-form logical var_count()+r.
    // Rows presolve removed keep the engine's resting default.
    if (options.warm_start_rows.size() == model.constraint_count()) {
      sf_warm.resize(sf.var_count() + sf.rows.size(), VarStatus::kAtLower);
      for (std::size_t r = 0; r < options.warm_start_rows.size(); ++r) {
        const int rr = options.use_presolve ? pre.row_map[r]
                                            : static_cast<int>(r);
        if (rr < 0) continue;
        sf_warm[sf.var_count() + static_cast<std::size_t>(rr)] =
            options.warm_start_rows[r];
      }
    }
    warm_ptr = &sf_warm;
    metrics.warm_starts.inc();
  }

  // Cold large sparse solves can go through the block-angular
  // decomposition. A warm hint always wins — the decomposition's stitched
  // crash basis would throw the caller's (better) basis away.
  bool decomposed = false;
  BlockPlan plan;
  if (method == Method::kSparse && warm_ptr == nullptr &&
      options.decompose != DecomposePolicy::kOff &&
      (options.decompose == DecomposePolicy::kForce ||
       sf.rows.size() >= options.decompose_min_rows)) {
    plan = detect_blocks(sf);
    const std::size_t min_blocks =
        options.decompose == DecomposePolicy::kForce
            ? 2
            : options.decompose_min_blocks;
    decomposed = plan.usable(min_blocks);
  }

  SfSolution raw;
  SparseSolveStats stats;
  bool have_sparse_stats = false;
  {
    obs::ScopedTimer method_timer(method_timer_for(metrics, method));
    switch (method) {
      case Method::kDense:
        raw = solve_dense(sf, options);
        break;
      case Method::kRevised:
        raw = solve_dense_inverse(sf, options);
        break;
      case Method::kDual: {
        DualSolveStats dual_stats;
        raw = solve_dual(sf, options, warm_ptr, &dual_stats);
        metrics.factorizations.inc(dual_stats.factorizations);
        metrics.bound_flips.inc(dual_stats.bound_flips);
        metrics.eta_nnz.record(static_cast<double>(dual_stats.eta_nnz));
        if (dual_stats.needs_primal_cleanup ||
            (raw.status != SolveStatus::kOptimal &&
             raw.status != SolveStatus::kInfeasible)) {
          // Fallback contract: the dual's statuses are a valid basis; let
          // the primal engine finish from there.
          metrics.dual_fallbacks.inc();
          const std::size_t dual_iterations = raw.iterations;
          const std::vector<VarStatus> resume = raw.statuses;
          raw = solve_sparse(sf, options,
                             resume.empty() ? warm_ptr : &resume, &stats);
          raw.iterations += dual_iterations;
          have_sparse_stats = true;
        }
        break;
      }
      default: {
        if (decomposed) {
          DecomposeStats dstats;
          raw = solve_decomposed(sf, options, plan,
                                 options.decompose_threads, &dstats);
          metrics.decompose_solves.inc();
          metrics.decompose_blocks.inc(dstats.blocks);
          metrics.decompose_sub_iterations.inc(dstats.sub_iterations);
          metrics.decompose_cleanup_iterations.inc(
              dstats.cleanup_iterations);
          metrics.decompose_detect_s.record(dstats.detect_seconds);
          metrics.decompose_sub_s.record(dstats.sub_seconds);
          metrics.decompose_cleanup_s.record(dstats.cleanup_seconds);
        } else {
          raw = solve_sparse(sf, options, warm_ptr, &stats);
          have_sparse_stats = true;
        }
        break;
      }
    }
  }
  metrics.iterations.inc(raw.iterations);
  (warm_ptr != nullptr ? metrics.iterations_warm : metrics.iterations_cold)
      .inc(raw.iterations);
  if (have_sparse_stats) {
    metrics.factorizations.inc(stats.factorizations);
    metrics.pricing_passes.inc(stats.pricing_passes);
    metrics.bound_flips.inc(stats.bound_flips);
    metrics.devex_resets.inc(stats.devex_resets);
    metrics.eta_nnz.record(static_cast<double>(stats.eta_nnz));
  }
  if (raw.status == SolveStatus::kInfeasible) metrics.infeasible.inc();
  span.attr(obs::AttrKey::kIterations,
            static_cast<std::int64_t>(raw.iterations));
  span.attr(obs::AttrKey::kWarmStart, warm_ptr != nullptr ? 1 : 0);
  span.attr(obs::AttrKey::kStatus, static_cast<std::int64_t>(raw.status));

  Solution solution;
  solution.status = raw.status;
  solution.iterations = raw.iterations;
  if (raw.status == SolveStatus::kOptimal) {
    // Presolve preserves variable indices, so mapping back through the
    // reduced model's standard form lands in the original variable space.
    solution.values = map_back(sf, raw.values, model.variable_count());
    solution.objective = model.objective_value(solution.values);
    if (sparse_family(method)) {
      // Variables presolve (or upper == lower) substituted out have no
      // standard-form column; they report kFixed. When presolve fixes
      // EVERYTHING the engine sees an empty model and returns no statuses —
      // the all-kFixed basis is still a valid warm start.
      solution.basis.assign(model.variable_count(), VarStatus::kFixed);
      for (std::size_t i = 0; i < sf.var_map.size(); ++i) {
        const int sv = sf.var_map[i];
        if (sv >= 0 && static_cast<std::size_t>(sv) < raw.statuses.size()) {
          solution.basis[i] = raw.statuses[static_cast<std::size_t>(sv)];
        }
      }
      // Logical (row) statuses follow the structural block in the engine's
      // status vector. Rows presolve dropped were redundant — report kBasic
      // (slack basic / row inactive) so re-feeding the basis stays exact.
      solution.row_basis.assign(model.constraint_count(), VarStatus::kBasic);
      for (std::size_t r = 0; r < model.constraint_count(); ++r) {
        const int rr = options.use_presolve ? pre.row_map[r]
                                            : static_cast<int>(r);
        if (rr < 0) continue;
        const std::size_t idx = sf.var_count() + static_cast<std::size_t>(rr);
        if (idx < raw.statuses.size()) {
          solution.row_basis[r] = raw.statuses[idx];
        }
      }
    }
  }
  return solution;
}

}  // namespace sb::lp
