// Process-wide metrics: named counters, gauges, and histograms collected in
// a global MetricsRegistry and exported as snapshots (see obs/snapshot.h).
//
// Design constraints (ROADMAP: the controller must serve millions of calls):
//  - the hot path is allocation-free and lock-free: callers resolve a
//    Counter&/Histogram& handle once (registration takes a mutex) and then
//    record through sharded, cache-line-padded atomics;
//  - histograms use fixed log-spaced buckets so p50/p90/p99 come from a
//    cheap merge over thread shards, never from storing samples;
//  - the whole layer compiles away: configure with -DSB_METRICS=OFF and
//    every class below becomes an empty inline stub (same API, no state),
//    which is how we measure the layer's own overhead.
//
// Metric naming scheme: `sb.<subsystem>.<metric>[_<unit>]`, e.g.
// `sb.realtime.freeze_latency_s`, `sb.lp.solve_s`, `sb.kvstore.ops`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sb::obs {

/// Number of per-thread shards in counters/histograms. Threads are assigned
/// shards round-robin; 8 shards keep contention negligible for the thread
/// counts the benches use while keeping merges cheap.
inline constexpr std::size_t kShardCount = 8;

/// Fixed log-spaced bucket layout shared by every histogram instance with
/// the same options. Bucket 0 is the underflow bucket (< min), buckets
/// 1..bucket_count cover [min, max) geometrically, bucket bucket_count+1 is
/// the overflow bucket (>= max).
struct HistogramOptions {
  double min = 1e-7;          ///< lower edge of the first finite bucket
  double max = 100.0;         ///< upper edge of the last finite bucket
  std::size_t bucket_count = 96;  ///< finite buckets (~10 per decade here)
};

/// Merged (cross-shard) histogram contents; the unit of percentile queries
/// and snapshot export. Plain data — always compiled, even with metrics off.
struct HistogramData {
  HistogramOptions options;
  std::vector<std::uint64_t> buckets;  ///< size bucket_count + 2
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact observed min (not bucketized); 0 when empty
  double max = 0.0;  ///< exact observed max; 0 when empty

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Lower/upper value edges of finite bucket i (1-based finite index).
  [[nodiscard]] double bucket_lower(std::size_t bucket) const;
  [[nodiscard]] double bucket_upper(std::size_t bucket) const;
  /// q in [0,1]; log-interpolated within the containing bucket and clamped
  /// to the exact observed [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
};

/// Bucket-level subtraction (after - before) for diffing two reads of the
/// same histogram. Exact extrema can't be un-merged, so the diff reports
/// per-window estimates at bucket resolution: the lower/upper edges of the
/// lowest/highest bucket the window touched (exact lifetime values when the
/// window occupies the edgeless underflow/overflow buckets, or when
/// `before` was empty and the window is the lifetime; 0/0 for an empty
/// window). Quantiles of the diff stay consistent: they clamp to these
/// window extrema, never to values outside the window's buckets. Throws
/// InvalidArgument on mismatched layouts.
HistogramData histogram_diff(const HistogramData& before,
                             const HistogramData& after);

#ifdef SB_METRICS_ENABLED

/// Index of the calling thread's shard (stable per thread).
std::size_t shard_index();

/// Monotone event counter, sharded across cache lines.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShardCount];
};

/// Last-value / peak gauge. Writes are rare (end-of-run summaries), so a
/// single atomic suffices.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d);
  /// Raises the gauge to `v` if larger (peak tracking across runs).
  void max_of(double v);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary log-bucket histogram with per-thread shards. record() is
/// a handful of relaxed atomic ops; collect() merges the shards.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double value);
  [[nodiscard]] HistogramData collect() const;
  void reset();

  [[nodiscard]] const HistogramOptions& options() const { return options_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  ///< valid only when count > 0
    std::atomic<double> max{0.0};
  };

  [[nodiscard]] std::size_t bucket_of(double value) const;

  HistogramOptions options_;
  double inv_log_growth_ = 0.0;  ///< bucket_count / log(max/min)
  std::unique_ptr<Shard[]> shards_;
};

struct MetricsSnapshot;  // obs/snapshot.h

/// Owns every metric in the process. Registration (counter()/gauge()/
/// histogram()) is mutex-guarded and idempotent per name; the returned
/// references stay valid for the registry's lifetime, so resolve them once
/// at construction time and record through them on the hot path.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `options` apply on first registration; later lookups return the
  /// existing histogram unchanged.
  Histogram& histogram(std::string_view name, HistogramOptions options = {});

  /// Weakly consistent read of every metric (see obs/snapshot.h for export
  /// and diff helpers).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric (benches/tests); handles stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // !SB_METRICS_ENABLED — same API, zero state, zero cost.

class Counter {
 public:
  void inc(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  void max_of(double) {}
  [[nodiscard]] double value() const { return 0.0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {}) : options_(options) {}
  void record(double) {}
  [[nodiscard]] HistogramData collect() const { return {options_, {}, 0, 0.0, 0.0, 0.0}; }
  void reset() {}
  [[nodiscard]] const HistogramOptions& options() const { return options_; }

 private:
  HistogramOptions options_;
};

struct MetricsSnapshot;  // obs/snapshot.h

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view, HistogramOptions = {}) {
    return histogram_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // SB_METRICS_ENABLED

}  // namespace sb::obs
