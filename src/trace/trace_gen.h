// Synthetic workload generation, the stand-in for Microsoft Teams's call
// records (see DESIGN.md substitutions). Three views of the same stochastic
// process are exposed so each consumer pays only for what it needs:
//  - expected_demand(): deterministic mean concurrency (Little's law) — the
//    provisioning LP input;
//  - arrival_count_series(): per-config Poisson bucket counts — the
//    forecasting pipeline input (Figs 7/9) without materializing calls;
//  - generate(): full call records with legs and join offsets — the
//    discrete-event simulator and Fig 8/10 input.
#pragma once

#include "calls/call_record.h"
#include "calls/demand.h"
#include "common/rng.h"
#include "trace/config_sampler.h"
#include "trace/diurnal.h"

namespace sb {

struct TraceParams {
  double bucket_s = 1800.0;        ///< 30-minute buckets (§5.2)
  double mean_duration_s = 2100.0; ///< ~35 min mean call length
  double duration_sigma = 0.8;     ///< log-normal shape
  /// Fig 8: this fraction of ALL participants (first joiner included) have
  /// joined within join_p80_s seconds of call start.
  double join_p80_s = 300.0;
  double join_p80_fraction = 0.80;
  /// §5.4: 95.2% of ALL calls have the first joiner in the majority
  /// country. Single-country calls satisfy this trivially, so the generator
  /// derates the probability applied to multi-country calls accordingly.
  double first_joiner_majority_prob = 0.952;
  /// Probability a video/screen-share call starts as audio and upgrades.
  double media_upgrade_prob = 0.5;
  double media_upgrade_max_s = 300.0;
};

/// Deterministic-by-seed workload source over a config universe.
///
/// The generator borrows `world` and `registry`; both must outlive it.
class TraceGenerator {
 public:
  TraceGenerator(const World& world, const CallConfigRegistry& registry,
                 ConfigUniverse universe, DiurnalShape shape,
                 TraceParams params, std::uint64_t seed);

  [[nodiscard]] const ConfigUniverse& universe() const { return universe_; }
  [[nodiscard]] const TraceParams& params() const { return params_; }

  /// Expected arrival rate (calls/hour) of universe config `idx` at `t`:
  /// base rate x home-location diurnal activity x compounded growth.
  [[nodiscard]] double rate_per_hour(std::size_t idx, SimTime t) const;

  /// Poisson arrival counts per bucket for one config over [start, end).
  /// Reproducible: depends only on the seed, the config index, and the
  /// absolute bucket number (not on the queried window).
  [[nodiscard]] std::vector<double> arrival_count_series(std::size_t idx,
                                                         SimTime start_s,
                                                         SimTime end_s) const;

  /// Expected concurrent-call demand per slot for every universe config
  /// (column order = universe order).
  [[nodiscard]] DemandMatrix expected_demand(double slot_s, SimTime start_s,
                                             SimTime end_s) const;

  /// Materializes full call records over [start, end).
  [[nodiscard]] CallRecordDatabase generate(SimTime start_s,
                                            SimTime end_s) const;

 private:
  [[nodiscard]] Rng bucket_rng(std::size_t idx, std::int64_t bucket) const;

  /// Probability a multi-country call's first joiner is from the majority
  /// country, derated so the overall rate hits first_joiner_majority_prob.
  double multi_majority_prob_ = 1.0;

  const World* world_;
  const CallConfigRegistry* registry_;
  ConfigUniverse universe_;
  DiurnalShape shape_;
  TraceParams params_;
  std::uint64_t seed_;
};

}  // namespace sb
