// Call-leg latency estimation: Lat(x, u) between every DC x and participant
// location u (Table 2). Two construction paths mirror the paper:
//  - from_topology(): model-derived latencies (WAN shortest path + access
//    latency) used when synthesizing a world;
//  - LatencyEstimator: the §6.2 counterfactual method — pool per-leg latency
//    samples from call records and take the per-(DC, location) median.
#pragma once

#include <vector>

#include "common/types.h"
#include "geo/topology.h"
#include "geo/world.h"

namespace sb {

/// Dense (DC x location) one-way latency table in milliseconds.
class LatencyMatrix {
 public:
  LatencyMatrix(std::size_t dc_count, std::size_t location_count);

  /// Derives latencies from WAN shortest paths plus a fixed last-mile
  /// access latency from participant to the WAN edge.
  static LatencyMatrix from_topology(const World& world, const Topology& topo,
                                     double access_ms = 8.0);

  [[nodiscard]] double latency_ms(DcId dc, LocationId loc) const;
  void set_latency_ms(DcId dc, LocationId loc, double ms);

  [[nodiscard]] std::size_t dc_count() const { return dc_count_; }
  [[nodiscard]] std::size_t location_count() const { return location_count_; }

  /// DC with minimum latency to `loc` (the "closest" DC of §5.4). Optionally
  /// restricted to a candidate set; throws if candidates is provided empty.
  [[nodiscard]] DcId closest_dc(LocationId loc) const;
  [[nodiscard]] DcId closest_dc(LocationId loc,
                                const std::vector<DcId>& candidates) const;

 private:
  [[nodiscard]] std::size_t index(DcId dc, LocationId loc) const;

  std::size_t dc_count_;
  std::size_t location_count_;
  std::vector<double> ms_;
};

/// Builds a LatencyMatrix from observed call-leg samples, taking the median
/// per (DC, location) pair and falling back to a model-derived matrix for
/// pairs with no samples (new DCs, rare countries).
class LatencyEstimator {
 public:
  LatencyEstimator(std::size_t dc_count, std::size_t location_count);

  void add_sample(DcId dc, LocationId loc, double latency_ms);

  [[nodiscard]] std::size_t sample_count() const { return samples_; }

  /// Median-of-samples matrix; `fallback` supplies pairs with no samples.
  [[nodiscard]] LatencyMatrix build(const LatencyMatrix& fallback) const;

 private:
  std::size_t dc_count_;
  std::size_t location_count_;
  std::vector<std::vector<double>> pair_samples_;
  std::size_t samples_ = 0;
};

}  // namespace sb
