#include "calls/demand.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.h"

namespace sb {

DemandMatrix::DemandMatrix(std::size_t slot_count, std::size_t config_count)
    : slots_(slot_count),
      configs_(config_count),
      cells_(slot_count * config_count, 0.0) {
  require(slot_count > 0 && config_count > 0, "DemandMatrix: empty shape");
  for (std::size_t i = 0; i < config_count; ++i) {
    configs_[i] = ConfigId(static_cast<std::uint32_t>(i));
  }
}

DemandMatrix make_demand_matrix(std::vector<ConfigId> configs,
                                std::size_t slot_count) {
  require(!configs.empty(), "make_demand_matrix: no configs");
  DemandMatrix m(slot_count, configs.size());
  m.configs_ = std::move(configs);
  return m;
}

DemandMatrix DemandMatrix::from_records(const CallRecordDatabase& db,
                                        const std::vector<ConfigId>& configs,
                                        double slot_s, SimTime start_s,
                                        SimTime end_s) {
  require(slot_s > 0.0, "from_records: slot width must be positive");
  require(end_s > start_s, "from_records: empty window");
  const auto slots =
      static_cast<std::size_t>(std::ceil((end_s - start_s) / slot_s));
  DemandMatrix m = make_demand_matrix(configs, slots);

  std::unordered_map<ConfigId, std::size_t> col;
  for (std::size_t i = 0; i < configs.size(); ++i) col[configs[i]] = i;

  for (const CallRecord& r : db.records()) {
    const auto it = col.find(r.config);
    if (it == col.end()) continue;
    const double call_begin = std::max(r.start_s, start_s);
    const double call_end = std::min(r.start_s + r.duration_s, end_s);
    if (call_end <= call_begin) continue;
    auto first = static_cast<std::size_t>((call_begin - start_s) / slot_s);
    auto last = static_cast<std::size_t>((call_end - start_s) / slot_s);
    first = std::min(first, slots - 1);
    last = std::min(last, slots - 1);
    for (std::size_t t = first; t <= last; ++t) {
      const double slot_begin = start_s + static_cast<double>(t) * slot_s;
      const double overlap = std::min(call_end, slot_begin + slot_s) -
                             std::max(call_begin, slot_begin);
      if (overlap > 0.0) {
        m.add_demand(static_cast<TimeSlot>(t), it->second, overlap / slot_s);
      }
    }
  }
  return m;
}

double DemandMatrix::demand(TimeSlot t, std::size_t config_col) const {
  require(t < slots_ && config_col < configs_.size(),
          "DemandMatrix::demand: out of range");
  return cells_[static_cast<std::size_t>(t) * configs_.size() + config_col];
}

void DemandMatrix::set_demand(TimeSlot t, std::size_t config_col,
                              double calls) {
  require(t < slots_ && config_col < configs_.size(),
          "DemandMatrix::set_demand: out of range");
  require(calls >= 0.0, "DemandMatrix::set_demand: negative demand");
  cells_[static_cast<std::size_t>(t) * configs_.size() + config_col] = calls;
}

void DemandMatrix::add_demand(TimeSlot t, std::size_t config_col,
                              double calls) {
  require(t < slots_ && config_col < configs_.size(),
          "DemandMatrix::add_demand: out of range");
  cells_[static_cast<std::size_t>(t) * configs_.size() + config_col] += calls;
}

ConfigId DemandMatrix::config_at(std::size_t col) const {
  require(col < configs_.size(), "config_at: out of range");
  return configs_[col];
}

std::size_t DemandMatrix::column_of(ConfigId config) const {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (configs_[i] == config) return i;
  }
  throw InvalidArgument("DemandMatrix::column_of: config not present");
}

double DemandMatrix::total() const {
  double acc = 0.0;
  for (double c : cells_) acc += c;
  return acc;
}

std::vector<double> location_core_demand(const DemandMatrix& demand,
                                         const CallConfigRegistry& registry,
                                         const LoadModel& loads,
                                         LocationId location) {
  std::vector<double> series(demand.slot_count(), 0.0);
  for (std::size_t col = 0; col < demand.config_count(); ++col) {
    const CallConfig& config = registry.get(demand.config_at(col));
    std::uint32_t at_location = 0;
    for (const ConfigEntry& e : config.entries()) {
      if (e.location == location) at_location += e.count;
    }
    if (at_location == 0) continue;
    const double cores_per_call =
        loads.cores_per_participant(config.media()) * at_location;
    for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
      series[t] += demand.demand(t, col) * cores_per_call;
    }
  }
  return series;
}

}  // namespace sb
