// Simplex basis: sparse LU factorization (lp/lu_factor.h) plus a
// product-form eta file for the pivots applied since the last
// refactorization. FTRAN/BTRAN route through the LU factors and then the
// update etas; update() appends one eta per pivot in O(nnz of the entering
// column's FTRAN image). The owner refactorizes periodically (drift +
// eta-file growth control) and whenever an update pivot is numerically
// unsafe.
//
// load() performs basis repair: columns the factorization rejects as
// dependent are reported back and replaced by the caller (typically with
// logical columns for the unpivoted rows) — this is what makes crash-starts
// from a foreign basis (warm starts across failure-scenario models) safe.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/lu_factor.h"

namespace sb::lp {

class Basis {
 public:
  /// Outcome of loading a set of basis columns.
  struct LoadResult {
    /// Positions whose columns were rejected as dependent, ascending.
    std::vector<int> rejected;
    /// Rows left without a pivot (parallel count to `rejected`), ascending.
    std::vector<int> unpivoted_rows;
    [[nodiscard]] bool clean() const { return rejected.empty(); }
  };

  /// (Re)factorizes the m x m basis whose columns are `cols`. The pointers
  /// must stay valid until the next load(). Discards any update etas.
  LoadResult load(std::vector<const SparseCol*> cols, std::size_t m);

  /// Solves B w = b: input in row space, output indexed by basis position.
  void ftran(IndexedVector& x) const;

  /// Solves B^T y = c: input indexed by basis position, output in row space.
  void btran(IndexedVector& x) const;

  /// Replaces the column at `position` with the column whose FTRAN image is
  /// `w` (position space) by appending a product-form eta. Returns false —
  /// leaving the basis unchanged — when the pivot element w[position] is
  /// too small to be stable, in which case the caller must refactorize.
  bool update(int position, const IndexedVector& w);

  /// Update etas appended since the last load().
  [[nodiscard]] std::size_t update_count() const { return updates_.size(); }
  /// Stored nonzeros across LU factors and update etas.
  [[nodiscard]] std::size_t eta_nnz() const {
    return lu_.fill_nnz() + update_nnz_;
  }
  [[nodiscard]] std::size_t factorizations() const { return factorizations_; }

 private:
  struct UpdateEta {
    int position = -1;
    double pivot = 0.0;  ///< w[position]
    std::vector<std::pair<int, double>> entries;  ///< (position, w) others
  };

  LuFactor lu_;
  std::vector<UpdateEta> updates_;
  std::size_t update_nnz_ = 0;
  std::size_t factorizations_ = 0;
};

}  // namespace sb::lp
