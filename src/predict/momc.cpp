#include "predict/momc.h"

#include <algorithm>

#include "common/error.h"

namespace sb {

MarkovAttendanceModel::MarkovAttendanceModel(std::size_t max_order,
                                             std::size_t min_support)
    : max_order_(max_order), min_support_(min_support) {
  require(max_order >= 1 && max_order <= 16,
          "MarkovAttendanceModel: order must be in [1,16]");
}

std::uint64_t MarkovAttendanceModel::encode(
    std::span<const std::uint8_t> bits) {
  std::uint64_t code = 1;  // marker bit disambiguates context length
  for (std::uint8_t b : bits) code = (code << 1) | (b ? 1u : 0u);
  return code;
}

void MarkovAttendanceModel::observe(std::span<const std::uint8_t> history) {
  for (std::size_t t = 0; t < history.size(); ++t) {
    const bool attended = history[t] != 0;
    if (attended) {
      ++global_.attends;
    } else {
      ++global_.misses;
    }
    for (std::size_t order = 1; order <= max_order_ && order <= t; ++order) {
      const auto context = history.subspan(t - order, order);
      Counts& c = contexts_[encode(context)];
      if (attended) {
        ++c.attends;
      } else {
        ++c.misses;
      }
    }
  }
}

double MarkovAttendanceModel::global_rate() const {
  return global_.total() == 0 ? 0.5 : global_.rate();
}

double MarkovAttendanceModel::predict(
    std::span<const std::uint8_t> history) const {
  const std::size_t longest = std::min(max_order_, history.size());
  for (std::size_t order = longest; order >= 1; --order) {
    const auto context = history.subspan(history.size() - order, order);
    const auto it = contexts_.find(encode(context));
    if (it != contexts_.end() && it->second.total() >= min_support_) {
      return it->second.rate();
    }
  }
  return global_rate();
}

std::vector<double> MarkovAttendanceModel::order_probs(
    std::span<const std::uint8_t> history) const {
  std::vector<double> probs(max_order_, global_rate());
  for (std::size_t order = 1;
       order <= max_order_ && order <= history.size(); ++order) {
    const auto context = history.subspan(history.size() - order, order);
    const auto it = contexts_.find(encode(context));
    if (it != contexts_.end() && it->second.total() > 0) {
      probs[order - 1] = it->second.rate();
    }
  }
  return probs;
}

}  // namespace sb
