// Named end-to-end scenarios bundling a world, a config universe, and a
// trace generator. Benches and examples start from these so their inputs
// are consistent and reproducible.
#pragma once

#include <memory>

#include "geo/world_presets.h"
#include "trace/trace_gen.h"

namespace sb {

/// A self-contained workload scenario. Held by unique_ptr members so the
/// TraceGenerator's borrowed references stay valid if the Scenario moves.
struct Scenario {
  std::unique_ptr<GeoModel> geo;
  std::unique_ptr<CallConfigRegistry> registry;
  std::unique_ptr<TraceGenerator> trace;

  [[nodiscard]] const World& world() const { return geo->world; }
  [[nodiscard]] const Topology& topology() const { return geo->topology; }
  [[nodiscard]] const LatencyMatrix& latency() const { return geo->latency; }
};

struct ScenarioParams {
  /// Multiplies the universe's total arrival rate; 1.0 is the default
  /// laptop-scale workload (peak ~1200 calls/hour region-wide).
  double rate_scale = 1.0;
  std::size_t config_count = 400;
  std::uint64_t seed = 7;
};

/// The paper's expository setting: the APAC region world with a Zipf config
/// universe homed across its countries.
Scenario make_apac_scenario(const ScenarioParams& params = {});

/// Three-region world for cross-region experiments.
Scenario make_global_scenario(const ScenarioParams& params = {});

}  // namespace sb
