# Empty dependencies file for sb_trace.
# This may be replaced when dependencies are built.
