file(REMOVE_RECURSE
  "CMakeFiles/sb_core.dir/allocation_plan.cpp.o"
  "CMakeFiles/sb_core.dir/allocation_plan.cpp.o.d"
  "CMakeFiles/sb_core.dir/backup_lp.cpp.o"
  "CMakeFiles/sb_core.dir/backup_lp.cpp.o.d"
  "CMakeFiles/sb_core.dir/capacity_plan.cpp.o"
  "CMakeFiles/sb_core.dir/capacity_plan.cpp.o.d"
  "CMakeFiles/sb_core.dir/controller.cpp.o"
  "CMakeFiles/sb_core.dir/controller.cpp.o.d"
  "CMakeFiles/sb_core.dir/failure.cpp.o"
  "CMakeFiles/sb_core.dir/failure.cpp.o.d"
  "CMakeFiles/sb_core.dir/placement.cpp.o"
  "CMakeFiles/sb_core.dir/placement.cpp.o.d"
  "CMakeFiles/sb_core.dir/provisioner.cpp.o"
  "CMakeFiles/sb_core.dir/provisioner.cpp.o.d"
  "CMakeFiles/sb_core.dir/realtime.cpp.o"
  "CMakeFiles/sb_core.dir/realtime.cpp.o.d"
  "libsb_core.a"
  "libsb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
