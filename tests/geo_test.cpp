// Tests for the world model, WAN topology, and latency estimation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/latency.h"
#include "geo/topology.h"
#include "geo/world.h"
#include "geo/world_presets.h"

namespace sb {
namespace {

World make_triangle_world() {
  World w;
  w.add_location({"A", 0.0, 0.0, 0.0, 5.0, "R"});
  w.add_location({"B", 0.0, 10.0, 0.7, 3.0, "R"});
  w.add_location({"C", 10.0, 0.0, -0.7, 2.0, "R"});
  w.add_datacenter({"DC-A", LocationId(0), 1.0});
  w.add_datacenter({"DC-B", LocationId(1), 1.2});
  return w;
}

TEST(WorldTest, RegistersAndLooksUp) {
  World w = make_triangle_world();
  EXPECT_EQ(w.location_count(), 3u);
  EXPECT_EQ(w.dc_count(), 2u);
  EXPECT_EQ(w.find_location("B")->value(), 1u);
  EXPECT_FALSE(w.find_location("Z").has_value());
  EXPECT_EQ(w.dc_region(DcId(0)), "R");
  EXPECT_EQ(w.dcs_in_region("R").size(), 2u);
  EXPECT_TRUE(w.dcs_in_region("other").empty());
}

TEST(WorldTest, RejectsDuplicatesAndBadRefs) {
  World w = make_triangle_world();
  EXPECT_THROW(w.add_location({"A", 0, 0, 0, 1, "R"}), InvalidArgument);
  EXPECT_THROW(w.add_datacenter({"DC-A", LocationId(0), 1.0}),
               InvalidArgument);
  EXPECT_THROW(w.add_datacenter({"DC-X", LocationId(99), 1.0}),
               InvalidArgument);
  EXPECT_THROW(w.add_datacenter({"DC-Y", LocationId(0), -1.0}),
               InvalidArgument);
}

TEST(GeoDistanceTest, KnownDistances) {
  // Tokyo to Singapore is roughly 5,300 km.
  const double d = geo_distance_km(35.7, 139.7, 1.35, 103.8);
  EXPECT_NEAR(d, 5300.0, 200.0);
  EXPECT_NEAR(geo_distance_km(10, 20, 10, 20), 0.0, 1e-9);
}

TEST(TopologyTest, ShortestPathPicksCheaperRoute) {
  World w = make_triangle_world();
  Topology topo(w);
  const LinkId ab = topo.add_link(LocationId(0), LocationId(1), 10.0, 1.0);
  const LinkId bc = topo.add_link(LocationId(1), LocationId(2), 10.0, 1.0);
  const LinkId ac = topo.add_link(LocationId(0), LocationId(2), 50.0, 1.0);
  topo.compute_paths();

  // A->C direct costs 50 ms; via B costs 20 ms.
  EXPECT_DOUBLE_EQ(topo.distance_ms(LocationId(0), LocationId(2)), 20.0);
  const auto& path = topo.path(LocationId(0), LocationId(2));
  ASSERT_EQ(path.size(), 2u);
  EXPECT_TRUE(topo.in_path(ab, LocationId(0), LocationId(2)));
  EXPECT_TRUE(topo.in_path(bc, LocationId(0), LocationId(2)));
  EXPECT_FALSE(topo.in_path(ac, LocationId(0), LocationId(2)));
  EXPECT_TRUE(topo.path(LocationId(1), LocationId(1)).empty());
  EXPECT_TRUE(topo.connected());
}

TEST(TopologyTest, QueriesBeforeComputeThrow) {
  World w = make_triangle_world();
  Topology topo(w);
  topo.add_link(LocationId(0), LocationId(1), 1.0, 1.0);
  EXPECT_THROW(topo.distance_ms(LocationId(0), LocationId(1)),
               InvalidArgument);
}

TEST(TopologyTest, DisconnectedPairThrows) {
  World w = make_triangle_world();
  Topology topo(w);
  topo.add_link(LocationId(0), LocationId(1), 1.0, 1.0);
  topo.compute_paths();
  EXPECT_FALSE(topo.connected());
  EXPECT_THROW(topo.distance_ms(LocationId(0), LocationId(2)),
               InvalidArgument);
}

TEST(TopologyTest, IncidentLinks) {
  World w = make_triangle_world();
  Topology topo(w);
  topo.add_link(LocationId(0), LocationId(1), 1.0, 1.0);
  topo.add_link(LocationId(0), LocationId(2), 1.0, 1.0);
  topo.compute_paths();
  EXPECT_EQ(topo.incident_links(LocationId(0)).size(), 2u);
  EXPECT_EQ(topo.incident_links(LocationId(2)).size(), 1u);
}

TEST(KnnTopologyTest, AlwaysConnected) {
  Rng rng(11);
  for (int rep = 0; rep < 5; ++rep) {
    RandomWorldParams params;
    params.location_count = 14;
    params.dc_count = 4;
    params.knn = 1;  // stress the component-bridging path
    GeoModel model = make_random_world(rng, params);
    EXPECT_TRUE(model.topology.connected());
  }
}

TEST(LatencyMatrixTest, FromTopologyAddsAccessLatency) {
  World w = make_triangle_world();
  Topology topo(w);
  topo.add_link(LocationId(0), LocationId(1), 10.0, 1.0);
  topo.add_link(LocationId(1), LocationId(2), 10.0, 1.0);
  topo.compute_paths();
  const LatencyMatrix m = LatencyMatrix::from_topology(w, topo, 8.0);
  // DC-A to its own location: access only.
  EXPECT_DOUBLE_EQ(m.latency_ms(DcId(0), LocationId(0)), 8.0);
  EXPECT_DOUBLE_EQ(m.latency_ms(DcId(0), LocationId(1)), 18.0);
  EXPECT_DOUBLE_EQ(m.latency_ms(DcId(0), LocationId(2)), 28.0);
  EXPECT_EQ(m.closest_dc(LocationId(2)), DcId(1));
}

TEST(LatencyEstimatorTest, MedianOfSamplesWithFallback) {
  LatencyMatrix fallback(2, 2);
  fallback.set_latency_ms(DcId(0), LocationId(0), 100.0);
  fallback.set_latency_ms(DcId(1), LocationId(1), 50.0);

  LatencyEstimator est(2, 2);
  est.add_sample(DcId(0), LocationId(0), 10.0);
  est.add_sample(DcId(0), LocationId(0), 30.0);
  est.add_sample(DcId(0), LocationId(0), 20.0);
  const LatencyMatrix m = est.build(fallback);
  EXPECT_DOUBLE_EQ(m.latency_ms(DcId(0), LocationId(0)), 20.0);  // median
  EXPECT_DOUBLE_EQ(m.latency_ms(DcId(1), LocationId(1)), 50.0);  // fallback
}

TEST(PresetWorldTest, ApacIsWellFormed) {
  const GeoModel apac = make_apac_world();
  EXPECT_EQ(apac.world.dc_count(), 5u);
  EXPECT_EQ(apac.world.location_count(), 15u);
  EXPECT_TRUE(apac.topology.connected());
  // Every location reaches its closest DC within the 120 ms threshold.
  for (LocationId loc : apac.world.location_ids()) {
    const DcId dc = apac.latency.closest_dc(loc);
    EXPECT_LT(apac.latency.latency_ms(dc, loc), 120.0)
        << apac.world.location(loc).name;
  }
}

TEST(PresetWorldTest, GlobalHasThreeRegions) {
  const GeoModel global = make_global_world();
  EXPECT_FALSE(global.world.dcs_in_region("APAC").empty());
  EXPECT_FALSE(global.world.dcs_in_region("NA").empty());
  EXPECT_FALSE(global.world.dcs_in_region("EU").empty());
  EXPECT_TRUE(global.topology.connected());
}

}  // namespace
}  // namespace sb
