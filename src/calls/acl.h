// Average Call Latency (ACL): the participant-weighted mean one-way latency
// of a call's legs when hosted at a given DC (Table 2's ACL(x, c)). The
// provisioning and allocation LPs constrain/minimize this quantity; §2.1
// fixes the operating threshold at 120 ms one-way.
#pragma once

#include <vector>

#include "calls/call_config.h"
#include "common/types.h"
#include "geo/latency.h"

namespace sb {

/// The paper's one-way ACL threshold in milliseconds.
inline constexpr double kDefaultAclThresholdMs = 120.0;

/// ACL of hosting a call of `config` at `dc`: sum over participants of
/// Lat(dc, participant location) divided by participant count.
double acl_ms(const CallConfig& config, DcId dc, const LatencyMatrix& latency);

/// DCs (from `candidates`) whose ACL for `config` is within `threshold_ms`.
/// If none qualify, returns the single minimum-ACL DC — the paper's rule for
/// widely dispersed calls (§5.3 note). Never returns empty for a non-empty
/// candidate set.
std::vector<DcId> feasible_dcs(const CallConfig& config,
                               const std::vector<DcId>& candidates,
                               const LatencyMatrix& latency,
                               double threshold_ms = kDefaultAclThresholdMs);

/// Minimum-ACL DC among candidates (the Locality-First choice, §3.2).
DcId min_acl_dc(const CallConfig& config, const std::vector<DcId>& candidates,
                const LatencyMatrix& latency);

}  // namespace sb
