#include "lp/dense_inverse_simplex.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sb::lp {
namespace {

/// Sparse column: (row, value) pairs.
using SparseCol = std::vector<std::pair<std::size_t, double>>;

class RevisedSimplex {
 public:
  RevisedSimplex(const StandardForm& sf, const SimplexOptions& options)
      : options_(options), n_(sf.var_count()), m_(sf.rows.size()) {
    build(sf);
  }

  SfSolution run() {
    SfSolution result;
    if (artificial_begin_ < cols_) {
      set_phase_costs(/*phase1=*/true);
      const SolveStatus p1 = iterate(result.iterations, /*phase1=*/true);
      if (p1 == SolveStatus::kIterationLimit) {
        result.status = p1;
        return result;
      }
      if (phase_objective() > options_.feasibility_tol * rhs_scale_) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
      expel_artificials();
    }
    set_phase_costs(/*phase1=*/false);
    for (std::size_t j = artificial_begin_; j < cols_; ++j) banned_[j] = true;
    result.status = iterate(result.iterations, /*phase1=*/false);
    if (result.status == SolveStatus::kOptimal) {
      result.values.assign(n_, 0.0);
      for (std::size_t r = 0; r < m_; ++r) {
        if (basis_[r] < n_) result.values[basis_[r]] = x_basic_[r];
      }
    }
    return result;
  }

 private:
  void build(const StandardForm& sf) {
    std::size_t slack_count = 0;
    std::size_t artificial_count = 0;
    std::vector<int> row_sign(m_, 1);
    std::vector<Sense> sense(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      sense[r] = sf.rows[r].sense;
      if (sf.rows[r].rhs < 0.0) {
        row_sign[r] = -1;
        if (sense[r] == Sense::kLe) {
          sense[r] = Sense::kGe;
        } else if (sense[r] == Sense::kGe) {
          sense[r] = Sense::kLe;
        }
      }
      if (sense[r] != Sense::kEq) ++slack_count;
      if (sense[r] != Sense::kLe) ++artificial_count;
    }
    slack_begin_ = n_;
    artificial_begin_ = n_ + slack_count;
    cols_ = artificial_begin_ + artificial_count;

    columns_.resize(cols_);
    cost_.assign(cols_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) cost_[j] = sf.cost[j];
    rhs_.assign(m_, 0.0);
    basis_.assign(m_, 0);
    in_basis_.assign(cols_, false);
    banned_.assign(cols_, false);

    for (std::size_t j = 0; j < n_; ++j) columns_[j].clear();
    for (std::size_t r = 0; r < m_; ++r) {
      const double sign = row_sign[r];
      for (const Term& t : sf.rows[r].terms) {
        if (t.coeff != 0.0) {
          columns_[static_cast<std::size_t>(t.var)].emplace_back(
              r, sign * t.coeff);
        }
      }
      rhs_[r] = sign * sf.rows[r].rhs;
      rhs_scale_ = std::max(rhs_scale_, std::abs(rhs_[r]));
    }
    std::size_t next_slack = slack_begin_;
    std::size_t next_artificial = artificial_begin_;
    for (std::size_t r = 0; r < m_; ++r) {
      if (sense[r] == Sense::kLe) {
        columns_[next_slack] = {{r, 1.0}};
        set_basis(r, next_slack++);
      } else if (sense[r] == Sense::kGe) {
        columns_[next_slack] = {{r, -1.0}};
        ++next_slack;
        columns_[next_artificial] = {{r, 1.0}};
        set_basis(r, next_artificial++);
      } else {
        columns_[next_artificial] = {{r, 1.0}};
        set_basis(r, next_artificial++);
      }
    }
    // Initial basis is the identity.
    binv_.assign(m_ * m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) binv_[r * m_ + r] = 1.0;
    x_basic_ = rhs_;
  }

  void set_basis(std::size_t row, std::size_t col) {
    basis_[row] = col;
    in_basis_[col] = true;
  }

  void set_phase_costs(bool phase1) {
    active_cost_.assign(cols_, 0.0);
    if (phase1) {
      for (std::size_t j = artificial_begin_; j < cols_; ++j) {
        active_cost_[j] = 1.0;
      }
    } else {
      active_cost_ = cost_;
    }
  }

  double phase_objective() const {
    double acc = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      acc += active_cost_[basis_[r]] * x_basic_[r];
    }
    return acc;
  }

  /// y = c_B^T B^-1, skipping zero-cost basic rows.
  void compute_duals(std::vector<double>& y) const {
    y.assign(m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      const double c = active_cost_[basis_[r]];
      if (c == 0.0) continue;
      const double* row = &binv_[r * m_];
      for (std::size_t i = 0; i < m_; ++i) y[i] += c * row[i];
    }
  }

  [[nodiscard]] double reduced_cost(std::size_t j,
                                    const std::vector<double>& y) const {
    double d = active_cost_[j];
    for (const auto& [row, val] : columns_[j]) d -= y[row] * val;
    return d;
  }

  /// w = B^-1 a_j (FTRAN via the dense inverse and the sparse column).
  void ftran(std::size_t j, std::vector<double>& w) const {
    w.assign(m_, 0.0);
    for (const auto& [row, val] : columns_[j]) {
      for (std::size_t i = 0; i < m_; ++i) w[i] += binv_[i * m_ + row] * val;
    }
  }

  SolveStatus iterate(std::size_t& iterations, bool phase1) {
    bool bland = false;
    std::size_t stall = 0;
    std::size_t since_refactor = 0;
    double last_objective = phase_objective();
    std::vector<double> y;
    std::vector<double> w;
    for (;; ++iterations) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      compute_duals(y);
      const int entering = pick_entering(y, bland);
      if (entering < 0) return SolveStatus::kOptimal;
      ftran(static_cast<std::size_t>(entering), w);
      const int leaving = pick_leaving(w, phase1);
      if (leaving < 0) {
        if (phase1) throw InternalError("revised simplex: phase-1 unbounded");
        return SolveStatus::kUnbounded;
      }
      pivot(static_cast<std::size_t>(leaving),
            static_cast<std::size_t>(entering), w);
      if (++since_refactor >= options_.refactor_interval) {
        refactorize();
        since_refactor = 0;
      }
      const double objective = phase_objective();
      if (objective < last_objective - options_.optimality_tol) {
        stall = 0;
        last_objective = objective;
      } else if (++stall >= options_.stall_limit) {
        bland = true;
      }
    }
  }

  int pick_entering(const std::vector<double>& y, bool bland) const {
    int best = -1;
    double best_cost = -options_.optimality_tol;
    for (std::size_t j = 0; j < cols_; ++j) {
      if (in_basis_[j] || banned_[j]) continue;
      const double d = reduced_cost(j, y);
      if (d < best_cost) {
        if (bland) return static_cast<int>(j);
        best_cost = d;
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  int pick_leaving(const std::vector<double>& w, bool phase1) const {
    int leaving = -1;
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      double ratio;
      if (w[r] > options_.feasibility_tol) {
        ratio = std::max(0.0, x_basic_[r]) / w[r];
      } else if (!phase1 && basis_[r] >= artificial_begin_ &&
                 w[r] < -options_.feasibility_tol) {
        ratio = 0.0;  // keep zero-valued artificials from going positive
      } else {
        continue;
      }
      if (leaving < 0 || ratio < best_ratio - options_.optimality_tol ||
          (ratio < best_ratio + options_.optimality_tol &&
           basis_[r] < basis_[static_cast<std::size_t>(leaving)])) {
        leaving = static_cast<int>(r);
        best_ratio = ratio;
      }
    }
    return leaving;
  }

  void pivot(std::size_t leave_row, std::size_t enter_col,
             const std::vector<double>& w) {
    const double pivot_val = w[leave_row];
    require(std::abs(pivot_val) > options_.feasibility_tol * 1e-3,
            "revised simplex: tiny pivot");
    const double theta =
        w[leave_row] > 0.0 ? std::max(0.0, x_basic_[leave_row]) / pivot_val
                           : 0.0;
    for (std::size_t r = 0; r < m_; ++r) x_basic_[r] -= theta * w[r];
    x_basic_[leave_row] = theta;

    in_basis_[basis_[leave_row]] = false;
    set_basis(leave_row, enter_col);

    // Rank-1 update of the dense inverse: eliminate column `enter` from all
    // rows except the pivot row, then scale the pivot row.
    double* pivot_row = &binv_[leave_row * m_];
    const double inv = 1.0 / pivot_val;
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == leave_row) continue;
      const double factor = w[r] * inv;
      if (factor == 0.0) continue;
      double* row = &binv_[r * m_];
      for (std::size_t i = 0; i < m_; ++i) row[i] -= factor * pivot_row[i];
    }
    for (std::size_t i = 0; i < m_; ++i) pivot_row[i] *= inv;

    for (double& x : x_basic_) {
      if (x < 0.0 && x > -options_.feasibility_tol) x = 0.0;
    }
  }

  /// Rebuilds binv_ from the sparse basis columns by Gauss-Jordan with
  /// partial pivoting, then refreshes x_basic_ = B^-1 rhs. Controls drift
  /// from repeated rank-1 updates.
  void refactorize() {
    std::vector<double> b(m_ * m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      for (const auto& [row, val] : columns_[basis_[r]]) {
        b[row * m_ + r] = val;
      }
    }
    std::vector<double> inv(m_ * m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) inv[r * m_ + r] = 1.0;
    for (std::size_t col = 0; col < m_; ++col) {
      std::size_t pivot_row = col;
      double best = std::abs(b[col * m_ + col]);
      for (std::size_t r = col + 1; r < m_; ++r) {
        if (std::abs(b[r * m_ + col]) > best) {
          best = std::abs(b[r * m_ + col]);
          pivot_row = r;
        }
      }
      if (best < 1e-12) {
        throw InternalError("revised simplex: singular basis at refactor");
      }
      if (pivot_row != col) {
        for (std::size_t i = 0; i < m_; ++i) {
          std::swap(b[pivot_row * m_ + i], b[col * m_ + i]);
          std::swap(inv[pivot_row * m_ + i], inv[col * m_ + i]);
        }
      }
      const double scale = 1.0 / b[col * m_ + col];
      for (std::size_t i = 0; i < m_; ++i) {
        b[col * m_ + i] *= scale;
        inv[col * m_ + i] *= scale;
      }
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = b[r * m_ + col];
        if (factor == 0.0) continue;
        for (std::size_t i = 0; i < m_; ++i) {
          b[r * m_ + i] -= factor * b[col * m_ + i];
          inv[r * m_ + i] -= factor * inv[col * m_ + i];
        }
      }
    }
    binv_ = std::move(inv);
    x_basic_.assign(m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      const double* row = &binv_[r * m_];
      double acc = 0.0;
      for (std::size_t i = 0; i < m_; ++i) acc += row[i] * rhs_[i];
      x_basic_[r] = acc < 0.0 && acc > -options_.feasibility_tol ? 0.0 : acc;
    }
  }

  /// Pivots zero-valued basic artificials out after phase 1 where a
  /// non-artificial pivot column exists; otherwise the row is redundant and
  /// the artificial stays basic at zero (guarded by pick_leaving).
  void expel_artificials() {
    std::vector<double> w;
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < artificial_begin_) continue;
      const double* binv_row = &binv_[r * m_];
      for (std::size_t j = 0; j < artificial_begin_; ++j) {
        if (in_basis_[j]) continue;
        double val = 0.0;
        for (const auto& [row, coeff] : columns_[j]) {
          val += binv_row[row] * coeff;
        }
        if (std::abs(val) > options_.feasibility_tol) {
          ftran(j, w);
          pivot(r, j, w);
          break;
        }
      }
    }
  }

  SimplexOptions options_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t cols_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t artificial_begin_ = 0;
  double rhs_scale_ = 1.0;
  std::vector<SparseCol> columns_;
  std::vector<double> cost_;         ///< phase-2 costs
  std::vector<double> active_cost_;  ///< current phase costs
  std::vector<double> rhs_;
  std::vector<double> binv_;  ///< dense m_ x m_ basis inverse, row-major
  std::vector<double> x_basic_;
  std::vector<std::size_t> basis_;
  std::vector<bool> in_basis_;
  std::vector<bool> banned_;
};

}  // namespace

SfSolution solve_dense_inverse(const StandardForm& sf,
                               const SimplexOptions& options) {
  if (sf.rows.empty()) {
    SfSolution result;
    for (double c : sf.cost) {
      if (c < 0.0) {
        result.status = SolveStatus::kUnbounded;
        return result;
      }
    }
    result.status = SolveStatus::kOptimal;
    result.values.assign(sf.var_count(), 0.0);
    return result;
  }
  RevisedSimplex solver(sf, options);
  return solver.run();
}

}  // namespace sb::lp
