# Empty compiler generated dependencies file for sb_kvstore.
# This may be replaced when dependencies are built.
