// Round-Robin baseline (§3.1): spread every config's calls equally over the
// DCs of its region. Minimizes compute (every DC carries 1/n of the global
// peak, and single-DC-failure backup is peak/(n(n-1)) per DC) but sprays
// calls to far-off DCs, inflating WAN capacity and latency.
#pragma once

#include "baselines/baseline.h"

namespace sb {

/// The RR no-failure placement: D_tc / n to each regional DC.
PlacementMatrix round_robin_placement(const DemandMatrix& demand,
                                      const EvalContext& ctx);

/// Full RR provisioning: serving cores from the equal-spread peaks, backup
/// cores per §3.1's formula, WAN capacity as the per-link max across all
/// failure scenarios (failed DC's share re-spread over survivors; calls
/// avoiding a failed link re-spread over DCs whose paths avoid it).
BaselineResult provision_round_robin(const DemandMatrix& demand,
                                     const EvalContext& ctx,
                                     const BaselineOptions& options = {});

}  // namespace sb
