#include "core/backup_lp.h"

#include "common/error.h"
#include "lp/solver.h"

namespace sb {

std::vector<double> solve_backup_lp(const std::vector<double>& serving_cores) {
  require(!serving_cores.empty(), "solve_backup_lp: no DCs");
  const std::size_t n = serving_cores.size();
  if (n == 1) {
    if (serving_cores[0] > 0.0) {
      throw SolveError(
          "solve_backup_lp: single-DC deployment cannot survive DC failure");
    }
    return {0.0};
  }
  lp::Model model;
  std::vector<int> backup(n);
  for (std::size_t x = 0; x < n; ++x) {
    backup[x] = model.add_variable(0.0, lp::kInf, 1.0,
                                   "backup" + std::to_string(x));
  }
  for (std::size_t x = 0; x < n; ++x) {
    std::vector<lp::Term> terms;
    for (std::size_t y = 0; y < n; ++y) {
      if (y != x) terms.push_back({backup[y], 1.0});
    }
    model.add_constraint(std::move(terms), lp::Sense::kGe, serving_cores[x],
                         "cover" + std::to_string(x));
  }
  const lp::Solution solution = lp::solve(model);
  if (!solution.optimal()) {
    throw SolveError("solve_backup_lp: solver returned " +
                     lp::to_string(solution.status));
  }
  std::vector<double> result(n);
  for (std::size_t x = 0; x < n; ++x) {
    result[x] = solution.values[backup[x]];
  }
  return result;
}

}  // namespace sb
