// LP presolve: cheap reductions applied before the simplex runs.
// Switchboard's provisioning LPs contain many structurally trivial pieces
// (singleton rows that are really variable bounds, empty rows, variables
// fixed by Eq 4's latency pruning); presolve removes them, detects trivial
// infeasibility early, and shrinks the simplex's working set.
//
// Reductions (applied to fixpoint):
//  - empty rows: constant constraints — either trivially satisfied (drop)
//    or proof of infeasibility;
//  - singleton rows: a*x {<=,>=,=} b tightens x's bounds and drops the row;
//  - crossed bounds (lower > upper) after tightening: infeasible;
//  - variables whose bounds meet become fixed (the standard-form conversion
//    substitutes them out);
//  - implied upper bounds from kLe row activity: boxes +inf columns so the
//    simplex engines' long-step ratio tests can bound-flip them.
#pragma once

#include <optional>

#include "lp/model.h"

namespace sb::lp {

struct PresolveResult {
  /// The reduced model. Variable indices are preserved (variables are
  /// fixed via bounds rather than renumbered), so solutions of `reduced`
  /// are solutions of the original model directly.
  Model reduced;
  /// Set when presolve proves the model infeasible; `reduced` is then
  /// meaningless.
  bool infeasible = false;
  std::string infeasible_reason;
  /// Original constraint index -> index in `reduced` (-1 when the row was
  /// removed). Lets callers map row-level data (e.g. warm-start logical
  /// statuses) between the original and reduced models.
  std::vector<int> row_map;
  /// Statistics for logging/tests.
  std::size_t rows_removed = 0;
  std::size_t bounds_tightened = 0;
  std::size_t variables_fixed = 0;
  /// +inf uppers replaced by finite row-activity implied bounds. Changes no
  /// solution, but boxes the column so the long-step ratio tests can
  /// bound-flip it instead of pivoting.
  std::size_t uppers_implied = 0;
};

/// Runs the reductions. `tolerance` guards bound comparisons.
PresolveResult presolve(const Model& model, double tolerance = 1e-9);

}  // namespace sb::lp
