#include "calls/acl.h"

#include "common/error.h"

namespace sb {

double acl_ms(const CallConfig& config, DcId dc, const LatencyMatrix& latency) {
  double total = 0.0;
  std::uint32_t participants = 0;
  for (const ConfigEntry& e : config.entries()) {
    total += latency.latency_ms(dc, e.location) * e.count;
    participants += e.count;
  }
  return total / participants;
}

std::vector<DcId> feasible_dcs(const CallConfig& config,
                               const std::vector<DcId>& candidates,
                               const LatencyMatrix& latency,
                               double threshold_ms) {
  require(!candidates.empty(), "feasible_dcs: empty candidate set");
  std::vector<DcId> ok;
  for (DcId dc : candidates) {
    if (acl_ms(config, dc, latency) <= threshold_ms) ok.push_back(dc);
  }
  if (ok.empty()) ok.push_back(min_acl_dc(config, candidates, latency));
  return ok;
}

DcId min_acl_dc(const CallConfig& config, const std::vector<DcId>& candidates,
                const LatencyMatrix& latency) {
  require(!candidates.empty(), "min_acl_dc: empty candidate set");
  DcId best = candidates.front();
  double best_acl = acl_ms(config, best, latency);
  for (DcId dc : candidates) {
    const double a = acl_ms(config, dc, latency);
    if (a < best_acl) {
      best = dc;
      best_acl = a;
    }
  }
  return best;
}

}  // namespace sb
