#include "core/controller.h"

#include "common/error.h"

namespace sb {

Switchboard::Switchboard(EvalContext ctx, ControllerOptions options)
    : ctx_(ctx), options_(options) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "Switchboard: incomplete context");
  // Realtime service is available before any plan exists: the selector then
  // runs pure closest-DC assignment.
  selector_ = std::make_unique<RealtimeSelector>(ctx_, nullptr,
                                                 options_.realtime);
}

const ProvisionResult& Switchboard::provision(const DemandMatrix& demand) {
  SwitchboardProvisioner provisioner(ctx_, options_.provision);
  provision_result_ = provisioner.provision(demand);
  return *provision_result_;
}

const AllocationPlan& Switchboard::build_allocation_plan(
    const DemandMatrix& demand, SimTime plan_start_s) {
  require(provision_result_.has_value(),
          "build_allocation_plan: call provision() first");
  AllocationPlanner planner(ctx_, options_.allocation);
  plan_ = planner.plan(demand, provision_result_->capacity, options_.slot_s);
  std::lock_guard lock(selector_mutex_);
  selector_ = std::make_unique<RealtimeSelector>(
      ctx_, &*plan_, options_.realtime, plan_start_s);
  return *plan_;
}

DcId Switchboard::call_started(CallId call, LocationId first_joiner,
                               SimTime now) {
  DcId dc;
  {
    std::lock_guard lock(selector_mutex_);
    dc = selector_->on_call_start(call, first_joiner, now);
  }
  if (store_) {
    store_->set("call:" + std::to_string(call.value()) + ":dc",
                std::to_string(dc.value()));
  }
  return dc;
}

FreezeResult Switchboard::config_frozen(CallId call, const CallConfig& config,
                                        SimTime now) {
  FreezeResult result;
  {
    std::lock_guard lock(selector_mutex_);
    result = selector_->on_config_frozen(call, config, now);
  }
  if (store_) {
    store_->set("call:" + std::to_string(call.value()) + ":dc",
                std::to_string(result.dc.value()));
  }
  return result;
}

void Switchboard::call_ended(CallId call, SimTime now) {
  {
    std::lock_guard lock(selector_mutex_);
    selector_->on_call_end(call, now);
  }
  if (store_) {
    store_->erase("call:" + std::to_string(call.value()) + ":dc");
  }
}

RealtimeSelector::Stats Switchboard::realtime_stats() const {
  std::lock_guard lock(selector_mutex_);
  return selector_->stats();
}

}  // namespace sb
