#include "lp/model.h"

#include <algorithm>
#include <cmath>

namespace sb::lp {

int Model::add_variable(double lower, double upper, double cost,
                        std::string name) {
  require(std::isfinite(lower), "add_variable: lower bound must be finite");
  require(upper >= lower, "add_variable: upper < lower");
  require(std::isfinite(cost), "add_variable: non-finite cost");
  vars_.push_back(Variable{lower, upper, cost, std::move(name)});
  return static_cast<int>(vars_.size() - 1);
}

int Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                          std::string name) {
  require(std::isfinite(rhs), "add_constraint: non-finite rhs");
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  for (const Term& t : terms) {
    require(t.var >= 0 && t.var < static_cast<int>(vars_.size()),
            "add_constraint: variable index out of range");
    require(std::isfinite(t.coeff), "add_constraint: non-finite coefficient");
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  rows_.push_back(Constraint{std::move(merged), sense, rhs, std::move(name)});
  return static_cast<int>(rows_.size() - 1);
}

const Variable& Model::variable(int v) const {
  require(v >= 0 && v < static_cast<int>(vars_.size()),
          "variable: index out of range");
  return vars_[v];
}

const Constraint& Model::constraint(int c) const {
  require(c >= 0 && c < static_cast<int>(rows_.size()),
          "constraint: index out of range");
  return rows_[c];
}

double Model::objective_value(const std::vector<double>& x) const {
  require(x.size() == vars_.size(), "objective_value: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < vars_.size(); ++i) acc += vars_[i].cost * x[i];
  return acc;
}

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

ValidationReport validate_solution(const Model& model,
                                   const std::vector<double>& values,
                                   double tolerance) {
  require(values.size() == model.variable_count(),
          "validate_solution: size mismatch");
  ValidationReport report;
  auto note = [&](double violation, const std::string& what) {
    if (violation > report.max_violation) {
      report.max_violation = violation;
      report.worst = what;
    }
  };
  for (std::size_t i = 0; i < model.variable_count(); ++i) {
    const Variable& v = model.variable(static_cast<int>(i));
    note(v.lower - values[i], "lb of var " + std::to_string(i) + " " + v.name);
    if (v.upper != kInf) {
      note(values[i] - v.upper,
           "ub of var " + std::to_string(i) + " " + v.name);
    }
  }
  for (std::size_t r = 0; r < model.constraint_count(); ++r) {
    const Constraint& row = model.constraint(static_cast<int>(r));
    double lhs = 0.0;
    for (const Term& t : row.terms) lhs += t.coeff * values[t.var];
    const std::string what = "row " + std::to_string(r) + " " + row.name;
    switch (row.sense) {
      case Sense::kLe:
        note(lhs - row.rhs, what);
        break;
      case Sense::kGe:
        note(row.rhs - lhs, what);
        break;
      case Sense::kEq:
        note(std::abs(lhs - row.rhs), what);
        break;
    }
  }
  report.feasible = report.max_violation <= tolerance;
  return report;
}

ValidationReport validate_solution(const Model& model, const Solution& solution,
                                   double tolerance) {
  if (!solution.optimal()) {
    ValidationReport report;
    report.feasible = false;
    report.max_violation = kInf;
    report.worst = "solution status " + to_string(solution.status);
    return report;
  }
  ValidationReport report =
      validate_solution(model, solution.values, tolerance);
  const double recomputed = model.objective_value(solution.values);
  const double scale = std::max(1.0, std::abs(recomputed));
  const double objective_gap =
      std::abs(solution.objective - recomputed) / scale;
  if (objective_gap > report.max_violation) {
    report.max_violation = objective_gap;
    report.worst = "objective mismatch: reported " +
                   std::to_string(solution.objective) + " vs recomputed " +
                   std::to_string(recomputed);
  }
  report.feasible = report.max_violation <= tolerance;
  return report;
}

}  // namespace sb::lp
