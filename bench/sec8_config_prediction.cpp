// Reproduces §8: predicting the call configuration of recurring meetings.
// A variable-length multi-order Markov chain over each participant's
// attendance history feeds a logistic regression; per-participant
// predictions aggregate into a predicted per-country participant count.
// The paper reports RMSE 0.97 / MAE 0.90 for the model vs 24.90 / 23.60 for
// the previous-instance baseline, with the gap widest on large meetings.
//
// Flags: --series=600 --train_frac=0.8
#include <iostream>

#include "bench_util.h"
#include "predict/config_predictor.h"

int main(int argc, char** argv) {
  using namespace sb;
  const std::size_t series_count = bench::arg_size(argc, argv, "series", 600);
  const double train_frac = bench::arg_double(argc, argv, "train_frac", 0.8);

  const GeoModel apac = make_apac_world();
  Rng rng(2026);
  SeriesGenParams params;
  params.series_count = series_count;
  auto series = generate_meeting_series(apac.world, params, rng);
  const auto split =
      static_cast<std::size_t>(static_cast<double>(series.size()) * train_frac);
  const std::vector<MeetingSeries> train(series.begin(),
                                         series.begin() + static_cast<long>(split));
  const std::vector<MeetingSeries> test(series.begin() + static_cast<long>(split),
                                        series.end());

  ConfigPredictor model;
  model.train(train);

  const std::size_t locations = apac.world.location_count();
  const PredictionEval ours = evaluate_model(model, test, locations);
  const PredictionEval baseline = evaluate_previous_instance(test, locations);

  std::cout << "§8: call-config prediction for recurring meetings\n"
            << "training: " << train.size() << " series; evaluation: "
            << ours.instances << " held-out final instances\n\n";
  TextTable table({"Predictor", "RMSE", "MAE", "paper RMSE", "paper MAE"});
  table.row()
      .cell("MOMC + logistic")
      .cell(ours.rmse)
      .cell(ours.mae)
      .cell("0.97")
      .cell("0.90");
  table.row()
      .cell("previous instance")
      .cell(baseline.rmse)
      .cell(baseline.mae)
      .cell("24.90")
      .cell("23.60");
  std::cout << table;

  // Large-meeting breakout: the paper notes the baseline is "particularly
  // inaccurate" for meetings with dozens/hundreds of participants.
  std::vector<MeetingSeries> large;
  std::vector<MeetingSeries> small;
  for (const MeetingSeries& s : test) {
    (s.roster.size() > 40 ? large : small).push_back(s);
  }
  if (!large.empty()) {
    print_banner(std::cout, "breakout by roster size");
    TextTable breakout(
        {"subset", "series", "model RMSE", "baseline RMSE", "improvement"});
    for (const auto& [label, subset] :
         {std::pair<const char*, const std::vector<MeetingSeries>&>{"large "
                                                                    "(>40)",
                                                                    large},
          {"small (<=40)", small}}) {
      const PredictionEval m = evaluate_model(model, subset, locations);
      const PredictionEval b = evaluate_previous_instance(subset, locations);
      breakout.row()
          .cell(label)
          .cell(static_cast<std::uint64_t>(subset.size()))
          .cell(m.rmse)
          .cell(b.rmse)
          .cell(b.rmse > 0 ? format_double(b.rmse / std::max(m.rmse, 1e-9), 1)
                                 + "x"
                           : "-");
    }
    std::cout << breakout;
  }
  std::cout << "\nmodel beats the previous-instance baseline by "
            << format_double(baseline.rmse / std::max(ours.rmse, 1e-9), 1)
            << "x on RMSE (paper: ~25x; exact factor depends on the "
               "synthetic attendance volatility)\n";
  return 0;
}
