// Tests for the discrete-event simulator and its allocator adapters:
// conservation of usage, migration behaviour per scheme, and latency
// ordering across schemes.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "trace/scenario.h"

namespace sb {
namespace {

class SimFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_apac_scenario());
    loads_ = new LoadModel(LoadModel::paper_default());
    ctx_ = new EvalContext{&scenario_->world(), &scenario_->topology(),
                           &scenario_->latency(), scenario_->registry.get(),
                           loads_};
    // Four busy hours of a Tuesday.
    const double start = kSecondsPerDay + 3.0 * kSecondsPerHour;
    db_ = new CallRecordDatabase(
        scenario_->trace->generate(start, start + 4.0 * kSecondsPerHour));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete ctx_;
    delete loads_;
    delete scenario_;
  }

  static Scenario* scenario_;
  static LoadModel* loads_;
  static EvalContext* ctx_;
  static CallRecordDatabase* db_;
};
Scenario* SimFixture::scenario_ = nullptr;
LoadModel* SimFixture::loads_ = nullptr;
EvalContext* SimFixture::ctx_ = nullptr;
CallRecordDatabase* SimFixture::db_ = nullptr;

TEST_F(SimFixture, ProcessesEveryCallOnce) {
  Simulator sim(*ctx_);
  RoundRobinAllocator rr(*ctx_);
  const SimReport report = sim.run(*db_, rr);
  EXPECT_EQ(report.calls, db_->size());
  EXPECT_EQ(report.allocator, "round-robin");
  EXPECT_GT(report.peak_concurrent_calls, 0u);
  EXPECT_GT(report.total_peak_cores(), 0.0);
}

TEST_F(SimFixture, RoundRobinNeverMigrates) {
  Simulator sim(*ctx_);
  RoundRobinAllocator rr(*ctx_);
  const SimReport report = sim.run(*db_, rr);
  EXPECT_EQ(report.migrations, 0u);
}

TEST_F(SimFixture, LocalityFirstMigratesSmallFraction) {
  // §6.4: LF migrates ~1.53% of calls — the ones whose first joiner was not
  // in the majority country (or whose majority sits closer to another DC).
  Simulator sim(*ctx_);
  LocalityFirstAllocator lf(*ctx_);
  const SimReport report = sim.run(*db_, lf);
  EXPECT_GT(report.migration_fraction, 0.001);
  EXPECT_LT(report.migration_fraction, 0.10);
}

TEST_F(SimFixture, AclOrderingLfBelowRr) {
  Simulator sim(*ctx_);
  RoundRobinAllocator rr(*ctx_);
  LocalityFirstAllocator lf(*ctx_);
  const SimReport rr_report = sim.run(*db_, rr);
  const SimReport lf_report = sim.run(*db_, lf);
  EXPECT_LT(lf_report.mean_acl_ms, 0.7 * rr_report.mean_acl_ms);
}

TEST_F(SimFixture, FirstJoinerMajorityMatchesTraceTarget) {
  Simulator sim(*ctx_);
  RoundRobinAllocator rr(*ctx_);
  const SimReport report = sim.run(*db_, rr);
  EXPECT_NEAR(report.first_joiner_majority_fraction, 0.952, 0.02);
}

TEST_F(SimFixture, SwitchboardWithoutPlanBehavesLikeLocalityFirst) {
  // With no allocation plan the realtime selector assigns closest-DC and
  // re-homes unplanned configs to their min-ACL DC, i.e. LF behaviour.
  Simulator sim(*ctx_);
  RealtimeSelector selector(*ctx_, nullptr, {});
  SwitchboardAllocator sb_alloc(selector);
  LocalityFirstAllocator lf(*ctx_);
  const SimReport sb_report = sim.run(*db_, sb_alloc);
  const SimReport lf_report = sim.run(*db_, lf);
  EXPECT_NEAR(sb_report.mean_acl_ms, lf_report.mean_acl_ms,
              0.1 * lf_report.mean_acl_ms);
}

TEST_F(SimFixture, UsagePeaksScaleWithLoadModel) {
  // Realized peaks must be bounded by "every call at its largest media
  // everywhere" and above zero; a coarse sanity envelope.
  Simulator sim(*ctx_);
  LocalityFirstAllocator lf(*ctx_);
  const SimReport report = sim.run(*db_, lf);
  double upper = 0.0;
  for (const CallRecord& r : db_->records()) {
    const CallConfig& config = scenario_->registry->get(r.config);
    upper += loads_->cores_per_participant(config.media()) *
             config.total_participants();
  }
  EXPECT_GT(report.total_peak_cores(), 0.0);
  EXPECT_LT(report.total_peak_cores(), upper);
}

TEST_F(SimFixture, ConcurrentDriverMatchesSequentialCounters) {
  // The no-plan realtime selector decides per call from immutable data
  // (closest DC, min-ACL DC), so its decisions are independent of event
  // interleaving: the sharded driver must reproduce the sequential count
  // and per-call metrics exactly. Concurrent per-DC peaks are time-aligned
  // bucket maxima, so they can never exceed the sequential continuous
  // peaks, and the bucket series itself (an exact snapshot sum across
  // partitions of identical decisions) must match the sequential one.
  Simulator sim(*ctx_);
  RealtimeSelector seq_selector(*ctx_, nullptr, {});
  SwitchboardAllocator seq_alloc(seq_selector);
  const SimReport seq = sim.run(*db_, seq_alloc);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    RealtimeSelector selector(*ctx_, nullptr, {});
    SwitchboardAllocator alloc(selector);
    const SimReport conc = sim.run_concurrent(*db_, alloc, 300.0, threads);
    EXPECT_EQ(conc.calls, seq.calls) << threads;
    EXPECT_EQ(conc.frozen, seq.frozen) << threads;
    EXPECT_EQ(conc.migrations, seq.migrations) << threads;
    EXPECT_NEAR(conc.mean_acl_ms, seq.mean_acl_ms, 1e-9 * seq.mean_acl_ms)
        << threads;
    EXPECT_DOUBLE_EQ(conc.first_joiner_majority_fraction,
                     seq.first_joiner_majority_fraction);
    EXPECT_GE(conc.peak_concurrent_calls, seq.peak_concurrent_calls);
    EXPECT_LE(conc.total_peak_cores(), seq.total_peak_cores() + 1e-9);
    ASSERT_EQ(conc.dc_cores_buckets.size(), seq.dc_cores_buckets.size());
    for (std::size_t x = 0; x < seq.dc_cores_buckets.size(); ++x) {
      const auto& s = seq.dc_cores_buckets[x];
      const auto& c = conc.dc_cores_buckets[x];
      // Trailing buckets a driver never sampled are implicitly zero.
      for (std::size_t b = 0; b < std::max(s.size(), c.size()); ++b) {
        EXPECT_NEAR(b < c.size() ? c[b] : 0.0, b < s.size() ? s[b] : 0.0,
                    1e-6)
            << "dc " << x << " bucket " << b << " threads " << threads;
      }
      EXPECT_LE(conc.dc_peak_cores[x], seq.dc_peak_cores[x] + 1e-9);
    }
  }
}

TEST_F(SimFixture, ConcurrentDriverSingleThreadIsBitIdentical) {
  // One partition replays in exactly run()'s event order, so even the
  // floating-point accumulations must match bit for bit.
  Simulator sim(*ctx_);
  RealtimeSelector seq_selector(*ctx_, nullptr, {});
  SwitchboardAllocator seq_alloc(seq_selector);
  const SimReport seq = sim.run(*db_, seq_alloc);
  RealtimeSelector selector(*ctx_, nullptr, {});
  SwitchboardAllocator alloc(selector);
  const SimReport conc = sim.run_concurrent(*db_, alloc, 300.0, 1);
  EXPECT_EQ(conc.calls, seq.calls);
  EXPECT_EQ(conc.migrations, seq.migrations);
  EXPECT_EQ(conc.mean_acl_ms, seq.mean_acl_ms);
  EXPECT_EQ(conc.peak_concurrent_calls, seq.peak_concurrent_calls);
  // Same event order -> the bucket-boundary samples are bit-identical; the
  // reported peaks differ only in granularity (bucket max vs continuous).
  EXPECT_EQ(conc.dc_cores_buckets, seq.dc_cores_buckets);
  for (std::size_t x = 0; x < seq.dc_peak_cores.size(); ++x) {
    EXPECT_EQ(conc.dc_peak_cores[x], conc.dc_bucket_peak(x));
    EXPECT_LE(conc.dc_peak_cores[x], seq.dc_peak_cores[x]);
  }
  EXPECT_EQ(conc.link_peak_gbps, seq.link_peak_gbps);
}

TEST(SimulatorValidationTest, RejectsBadFreezeDelay) {
  Scenario scenario = make_apac_scenario({.config_count = 50});
  const LoadModel loads = LoadModel::paper_default();
  EvalContext ctx{&scenario.world(), &scenario.topology(),
                  &scenario.latency(), scenario.registry.get(), &loads};
  Simulator sim(ctx);
  RoundRobinAllocator rr(ctx);
  CallRecordDatabase empty;
  EXPECT_THROW(sim.run(empty, rr, 0.0), InvalidArgument);
  const SimReport report = sim.run(empty, rr);
  EXPECT_EQ(report.calls, 0u);
  EXPECT_DOUBLE_EQ(report.mean_acl_ms, 0.0);
}

}  // namespace
}  // namespace sb
