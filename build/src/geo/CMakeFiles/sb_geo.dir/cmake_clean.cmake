file(REMOVE_RECURSE
  "CMakeFiles/sb_geo.dir/latency.cpp.o"
  "CMakeFiles/sb_geo.dir/latency.cpp.o.d"
  "CMakeFiles/sb_geo.dir/topology.cpp.o"
  "CMakeFiles/sb_geo.dir/topology.cpp.o.d"
  "CMakeFiles/sb_geo.dir/world.cpp.o"
  "CMakeFiles/sb_geo.dir/world.cpp.o.d"
  "CMakeFiles/sb_geo.dir/world_presets.cpp.o"
  "CMakeFiles/sb_geo.dir/world_presets.cpp.o.d"
  "libsb_geo.a"
  "libsb_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
