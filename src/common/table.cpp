#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace sb {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& text) {
  require(!rows_.empty(), "TextTable::cell: call row() first");
  require(rows_.back().size() < headers_.size(),
          "TextTable::cell: more cells than columns");
  rows_.back().push_back(text);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      out << text << std::string(widths[c] - text.size(), ' ');
      if (c + 1 < headers_.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace sb
