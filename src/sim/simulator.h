// Discrete-event call simulator: replays a call-record trace against an
// allocator, tracking per-DC core usage, per-link traffic, per-call ACL,
// and migrations. This is the evaluation harness behind §6.4 (migration
// frequency) and the realized-usage sanity checks against provisioned
// capacity.
//
// Event model per call: the first joiner starts the call (allocator picks
// the initial DC); remaining legs join at their offsets; the media type may
// escalate mid-call; the config freezes A seconds in (allocator may
// migrate); the call ends. Loads follow the Table 1 model and the joined
// participant set at each instant.
//
// Two driver modes: run() replays the whole event stream on the calling
// thread in strict time order (the bit-exact reference), run_concurrent()
// partitions calls by shard (CallId % threads) across a thread pool to
// drive a thread-safe allocator at scale — see the method comment for which
// report fields stay exact.
#pragma once

#include "calls/call_record.h"
#include "obs/metrics.h"
#include "sim/allocator.h"

namespace sb {

struct SimReport {
  std::string allocator;
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;      ///< calls that lived past the freeze point
  std::uint64_t migrations = 0;
  double migration_fraction = 0.0;  ///< migrations / calls (§6.4)
  /// Call-weighted mean ACL at the final hosting DC.
  double mean_acl_ms = 0.0;
  /// Fraction of calls whose first joiner is in the majority country
  /// (§5.4 reports 95.2% in Teams).
  double first_joiner_majority_fraction = 0.0;
  std::vector<double> dc_peak_cores;   ///< realized per-DC peaks
  std::vector<double> link_peak_gbps;  ///< realized per-link peaks
  std::uint64_t peak_concurrent_calls = 0;

  [[nodiscard]] double total_peak_cores() const;
  [[nodiscard]] double total_peak_gbps() const;
};

class Simulator {
 public:
  explicit Simulator(EvalContext ctx);

  /// Replays `db` against `allocator` on the calling thread, every event in
  /// strict (time, insertion) order. `freeze_delay_s` is the A parameter
  /// (§6.4); calls shorter than it are never frozen or migrated.
  SimReport run(const CallRecordDatabase& db, CallAllocator& allocator,
                double freeze_delay_s = 300.0) const;

  /// Multi-threaded driver: partitions the event stream by CallId % threads
  /// and replays each partition on the shared thread pool. Every call's
  /// events land in exactly one partition, so each call keeps single-thread
  /// affinity and strict per-call event order (which also keeps per-call KV
  /// writes last-writer-wins). Requires a thread-safe allocator (the sharded
  /// RealtimeSelector / Switchboard; NOT the RR/LF baselines).
  ///
  /// Count and per-call fields (calls, frozen, migrations, mean_acl_ms,
  /// first_joiner_majority_fraction) are exact sums over partitions. The
  /// peak fields (dc_peak_cores, link_peak_gbps, peak_concurrent_calls) are
  /// per-partition peaks summed — an upper bound on the true time-aligned
  /// peak, since partitions replay concurrently without a global clock. Use
  /// run() when exact peaks matter; it remains the bit-exact reference.
  ///
  /// `threads` == 0 picks hardware_concurrency; 1 degenerates to a single
  /// pool-driven partition (same event order as run()).
  SimReport run_concurrent(const CallRecordDatabase& db,
                           CallAllocator& allocator,
                           double freeze_delay_s = 300.0,
                           std::size_t threads = 0) const;

 private:
  struct Partial;  // per-partition accumulator (simulator.cpp)

  /// sb.sim.* handles resolved once so run() never does a registry name
  /// lookup; per-DC peak gauges are updated in the same pass that copies
  /// the peaks into the report (no second accounting path).
  struct Metrics {
    obs::Counter& calls;
    obs::Counter& frozen;
    obs::Counter& migrations;
    obs::Histogram& acl_ms;
    obs::Histogram& run_s;
    obs::Gauge& peak_concurrent_calls;
    std::vector<obs::Gauge*> dc_peak_cores;
    explicit Metrics(const EvalContext& ctx);
  };

  /// Replays the records selected by `mine` (record index -> bool) and
  /// accumulates into `out`. Identical event ordering to the pre-sharding
  /// implementation when `mine` selects everything.
  void replay_partition(const CallRecordDatabase& db, CallAllocator& allocator,
                        double freeze_delay_s,
                        const std::vector<std::uint8_t>& mine,
                        Partial& out) const;
  SimReport finalize(const CallRecordDatabase& db, CallAllocator& allocator,
                     const Partial& total) const;

  EvalContext ctx_;
  Metrics metrics_;
};

}  // namespace sb
