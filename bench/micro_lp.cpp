// google-benchmark microbenchmarks for the LP solvers: dense tableau vs
// revised simplex across problem sizes, plus a provisioning-LP-shaped
// instance (sparse columns, capacity peaks).
//
// Besides google-benchmark's own wall-time mean, each benchmark reports
// p50/p99 solve latency and iterations-per-solve sourced from the sb::obs
// registry (lp::solve times itself into sb.lp.solve_s), by diffing registry
// snapshots around the timed loop.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "lp/solver.h"
#include "obs/snapshot.h"

namespace sb::lp {
namespace {

/// Attaches registry-sourced percentile counters for the samples recorded
/// between `before` and now to the benchmark's output row.
void report_registry_latencies(benchmark::State& state,
                               const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot delta = obs::snapshot_diff(
      before, obs::MetricsRegistry::global().snapshot());
  const obs::HistogramSample* solve = delta.find_histogram("sb.lp.solve_s");
  if (solve == nullptr || solve->data.count == 0) return;  // SB_METRICS=OFF
  state.counters["p50_us"] = solve->data.p50() * 1e6;
  state.counters["p99_us"] = solve->data.p99() * 1e6;
  state.counters["iters/solve"] =
      static_cast<double>(delta.counter_value("sb.lp.simplex_iterations")) /
      static_cast<double>(solve->data.count);
}

Model make_random_lp(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<double> witness(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    witness[i] = rng.uniform(0.0, 10.0);
    m.add_variable(0.0, kInf, rng.uniform(0.1, 5.0));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < vars; ++i) {
      if (!rng.chance(0.3)) continue;
      const double coeff = rng.uniform(-2.0, 3.0);
      terms.push_back({static_cast<int>(i), coeff});
      lhs += coeff * witness[i];
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms),
                     rng.chance(0.5) ? Sense::kLe : Sense::kGe,
                     lhs + (rng.chance(0.5) ? 1.0 : -1.0) * rng.uniform(0, 2));
  }
  return m;
}

/// A provisioning-shaped LP: T slots x C configs x X DCs share variables
/// with per-slot capacity-peak rows and completeness equalities.
Model make_provisioning_lp(std::size_t slots, std::size_t configs,
                           std::size_t dcs, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<int> cp(dcs);
  for (std::size_t x = 0; x < dcs; ++x) {
    cp[x] = m.add_variable(0.0, kInf, rng.uniform(0.9, 1.4));
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::vector<Term>> dc_rows(dcs);
    for (std::size_t c = 0; c < configs; ++c) {
      std::vector<Term> completeness;
      for (std::size_t x = 0; x < dcs; ++x) {
        const int s = m.add_variable(0.0, kInf, 1e-6 * rng.uniform(5, 100));
        dc_rows[x].push_back({s, rng.uniform(0.01, 0.1)});
        completeness.push_back({s, 1.0});
      }
      m.add_constraint(std::move(completeness), Sense::kEq,
                       rng.uniform(0.0, 50.0));
    }
    for (std::size_t x = 0; x < dcs; ++x) {
      dc_rows[x].push_back({cp[x], -1.0});
      m.add_constraint(std::move(dc_rows[x]), Sense::kLe, 0.0);
    }
  }
  return m;
}

void BM_DenseSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kDense;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
  report_registry_latencies(state, before);
}
BENCHMARK(BM_DenseSimplexRandom)->Args({20, 15})->Args({60, 40})->Args({120, 80});

void BM_RevisedSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kRevised;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
  report_registry_latencies(state, before);
}
BENCHMARK(BM_RevisedSimplexRandom)
    ->Args({20, 15})
    ->Args({60, 40})
    ->Args({120, 80});

void BM_ProvisioningShapedLp(benchmark::State& state) {
  const Model m = make_provisioning_lp(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)), 5, 11);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  for (auto _ : state) {
    const Solution s = solve(m);
    if (!s.optimal()) state.SkipWithError("not optimal");
    benchmark::DoNotOptimize(s.objective);
  }
  report_registry_latencies(state, before);
}
BENCHMARK(BM_ProvisioningShapedLp)
    ->Args({6, 10})
    ->Args({12, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sb::lp

BENCHMARK_MAIN();
