file(REMOVE_RECURSE
  "CMakeFiles/sb_predict.dir/config_predictor.cpp.o"
  "CMakeFiles/sb_predict.dir/config_predictor.cpp.o.d"
  "CMakeFiles/sb_predict.dir/logistic.cpp.o"
  "CMakeFiles/sb_predict.dir/logistic.cpp.o.d"
  "CMakeFiles/sb_predict.dir/momc.cpp.o"
  "CMakeFiles/sb_predict.dir/momc.cpp.o.d"
  "libsb_predict.a"
  "libsb_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
