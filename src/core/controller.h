// The Switchboard controller facade (Fig 6): wires the offline pipeline
// (demand -> capacity provisioning -> allocation plan) to the realtime MP
// selector, with optional per-event persistence to a KV store (the paper's
// Redis) — the configuration the Fig 10 controller benchmark measures.
//
// This is the primary public API of the library; see examples/quickstart.cpp.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "core/allocation_plan.h"
#include "core/provisioner.h"
#include "core/realtime.h"
#include "kvstore/kvstore.h"
#include "obs/metrics.h"

namespace sb {

struct FailoverOptions {
  /// Calls re-homed per shard-lock acquisition while draining a failed DC
  /// (bounds how long one drain batch can block signaling events that hash
  /// to the same shard).
  std::size_t drain_batch = 64;
};

struct ControllerOptions {
  ProvisionOptions provision;
  AllocationOptions allocation;
  RealtimeOptions realtime;
  FailoverOptions failover;
  /// Provisioning/allocation slot width in seconds (§5.2: 30 minutes).
  double slot_s = 1800.0;
  /// Number of sb_cluster controller-worker rows to track in the health
  /// table (0 = single-process deployment, the default). Worker rows never
  /// affect placement: they live outside the table's all_up() fast path.
  std::size_t worker_rows = 0;
};

/// One controller instance per deployment. Offline methods (provision,
/// build_allocation_plan) are heavyweight and not thread-safe against each
/// other; realtime methods are thread-safe and may be called concurrently
/// by many call-signaling threads.
///
/// Threading (DESIGN.md "Threading model"): there is no global event lock.
/// The selector is internally lock-striped, so concurrent events contend
/// only when they hit the same call shard; KV-store persistence happens
/// after the shard lock is released. Per-call store writes stay
/// last-writer-wins because each call's events are ordered by its driver
/// (signaling threads and the concurrent simulator both give every call a
/// single-thread affinity), and distinct calls never share a key.
class Switchboard {
 public:
  Switchboard(EvalContext ctx, ControllerOptions options);

  /// Runs MP capacity provisioning (§5.3); stores and returns the result.
  /// `f0_warm` / `f0_basis_out` (optional) thread a ScenarioBasisHint
  /// through the F0 solve so the closed-loop re-provision path warm-starts
  /// from the previous round (see SwitchboardProvisioner::provision).
  const ProvisionResult& provision(const DemandMatrix& demand,
                                   const ScenarioBasisHint* f0_warm = nullptr,
                                   ScenarioBasisHint* f0_basis_out = nullptr);

  /// Builds the daily allocation plan (Eq 10) from the last provision()
  /// capacities, and resets the realtime selector to consume it.
  /// `plan_start_s` anchors slot 0 of the plan on the simulation clock.
  const AllocationPlan& build_allocation_plan(const DemandMatrix& demand,
                                              SimTime plan_start_s);

  /// Rebuilds the allocation plan from `demand` and installs it into the
  /// LIVE selector without dropping call state — the closed-loop re-plan
  /// path. Where build_allocation_plan replaces the selector (orphaning
  /// in-flight calls by design, a day-boundary operation), install_plan
  /// re-binds every live call's slot accounting to the new plan under the
  /// exclusive swap lock: calls never move (MP selection stays sticky), but
  /// each frozen call re-debits its config's quota cell in the new plan at
  /// its current accounting DC; calls whose config lost its column — or
  /// whose cell is already full — fall back to unplanned/overflow
  /// accounting, and overflow calls may gain a slot the old plan denied
  /// them. `plan_start_s` must be the anchor of the plan being replaced so
  /// slot indices stay aligned across the install. Requires a prior
  /// build_allocation_plan. Thread-safe against concurrent realtime events
  /// (they drain before the install and resume after).
  const AllocationPlan& install_plan(const DemandMatrix& demand,
                                     SimTime plan_start_s, SimTime now);

  /// Monotone epoch bumped by every plan publication (build_allocation_plan
  /// and install_plan). Readers use it to detect that a re-plan landed
  /// without taking the swap lock.
  [[nodiscard]] std::uint64_t plan_epoch() const {
    return plan_epoch_.load(std::memory_order_acquire);
  }

  /// Realtime events (§5.4). call_started returns the initial DC.
  DcId call_started(CallId call, LocationId first_joiner, SimTime now);
  /// `id_hint`, when valid, must be the registry id for `config`; drivers
  /// that already hold the interned id (the simulator's replay engines)
  /// pass it so the selector skips the full-config hash lookup.
  FreezeResult config_frozen(CallId call, const CallConfig& config,
                             SimTime now, ConfigId id_hint = ConfigId());
  void call_ended(CallId call, SimTime now);

  // --- Batched event API (high-throughput drivers) ---
  //
  // The per-event methods above take swap_mutex_ shared once per event; at
  // simulator replay rates that RMW pair on one contended cache line is the
  // dominant per-event cost. A batched driver brackets a run of events with
  // lock_events_shared()/unlock_events_shared() and issues the *_locked
  // variants in between — same selector calls, same KV writes, same
  // counters, but one shared-lock acquisition per batch and no per-event
  // controller span/latency-histogram instrumentation (the driver records
  // batch-granular timing instead). Rules: the caller must not invoke
  // fault/plan methods (or the unlocked event methods) while it holds the
  // batch lock, and must release it before parking at any barrier.
  void lock_events_shared() const { swap_mutex_.lock_shared(); }
  void unlock_events_shared() const { swap_mutex_.unlock_shared(); }
  DcId call_started_locked(CallId call, LocationId first_joiner, SimTime now);
  FreezeResult config_frozen_locked(CallId call, const CallConfig& config,
                                    SimTime now, ConfigId id_hint = ConfigId());
  void call_ended_locked(CallId call, SimTime now);

  /// Fault events (DESIGN.md "Failure model & runtime failover"). dc_failed
  /// marks the DC down in the health table (so no new call lands there) and
  /// then drains its live calls through the selector in bounded batches,
  /// re-homing onto surviving plan slots and provisioned backup capacity —
  /// the per-DC serving+backup budgets from the last provision() — and
  /// dropping calls only when backup is truly exhausted. Returns who moved
  /// where and who was dropped; KV state for affected calls is rewritten
  /// after the drain. A dropped call is torn down completely (its state is
  /// erased) — the caller must not deliver its later call_ended event.
  /// Thread-safe against concurrent realtime events.
  fault::FailoverOutcome dc_failed(DcId dc, SimTime now);
  /// Marks the DC healthy again; new calls may land there immediately.
  /// Live calls are not migrated back (the paper's MP selection is sticky;
  /// the next plan rebuild naturally repopulates the DC).
  void dc_recovered(DcId dc, SimTime now);
  /// Link faults only gate placement (the selector avoids DCs whose WAN
  /// path from the first joiner crosses a down link); no drain.
  void link_failed(LinkId link, SimTime now);
  void link_recovered(LinkId link, SimTime now);
  /// Media-server faults (DESIGN.md "Server packing layer"): server_failed
  /// marks the server down, then drains its calls tier by tier — bounded
  /// re-pack onto up siblings first (DC quota untouched), then the cross-DC
  /// quota/backup tiers a DC drain uses, then overcommit onto the least
  /// loaded up sibling, dropping only when every tier is exhausted. Only
  /// valid when the World has a fleet.
  fault::FailoverOutcome server_failed(ServerId server, SimTime now);
  /// Marks the server healthy; calls drift back on future admits (sticky,
  /// like dc_recovered). Runs no migration.
  void server_recovered(ServerId server, SimTime now);
  /// Intra-DC defragmentation pass (offline best-fit-decreasing re-pack of
  /// `dc`'s calls, applied move by move under the shard locks). No-op
  /// without a fleet.
  pack::DefragResult defragment_dc(DcId dc, std::size_t max_moves = 1024);
  /// Lock-free availability table consulted by the realtime hot path; the
  /// simulator's fault weaving reads it too.
  [[nodiscard]] const fault::HealthTable& health() const { return *health_; }
  /// Mutable view for the sb_cluster layer, which flips the worker rows
  /// sized by ControllerOptions::worker_rows. Media-plane rows (DCs, links,
  /// servers) must only be flipped through the fault event methods above.
  [[nodiscard]] fault::HealthTable& health_mut() { return *health_; }

  // --- Crash-recovery passthroughs (sb_cluster; see RealtimeSelector) ---
  // Shared-lock wrappers so the cluster layer can snapshot, drop, and
  // replay controller-side call rows against the live selector without
  // racing a plan swap.
  [[nodiscard]] std::optional<RealtimeSelector::CallSnapshot> snapshot_call(
      CallId call) const;
  std::size_t drop_shards(std::size_t shard_begin, std::size_t shard_end);
  void adopt_call(CallId call, const RealtimeSelector::CallSnapshot& snap);
  /// Shard count of the live selector (the cluster layer partitions these
  /// shards into contiguous per-worker ranges).
  [[nodiscard]] std::size_t realtime_shard_count() const;

  [[nodiscard]] RealtimeSelector::Stats realtime_stats() const;
  /// Plan slots currently held by the live selector (sum of the atomic
  /// quota-usage table). Zero at quiescence — the sb_check conservation
  /// oracle asserts exactly that after every run.
  [[nodiscard]] std::uint64_t held_slots() const;
  /// Calls currently tracked by the live selector (exact when quiescent).
  [[nodiscard]] std::size_t active_calls() const;
  [[nodiscard]] const std::optional<ProvisionResult>& provision_result() const {
    return provision_result_;
  }
  [[nodiscard]] double freeze_delay_s() const {
    return options_.realtime.freeze_delay_s;
  }
  /// Live packer of the current selector, or null without a fleet. The
  /// pointer is invalidated by the next plan rebuild — snapshot stats, do
  /// not hold it across build_allocation_plan().
  [[nodiscard]] const pack::ServerPacker* packer() const {
    std::shared_lock lock(swap_mutex_);
    return selector_->packer();
  }

  /// Attaches a state store; subsequent realtime events persist call state
  /// (writes happen outside the selector lock so they overlap).
  void attach_store(KvStore* store) { store_ = store; }

 private:
  /// sb.realtime.* / sb.provisioner.* handles, resolved once at controller
  /// construction so the concurrent event path never does a name lookup.
  struct Metrics {
    obs::Counter& calls_started;
    obs::Counter& configs_frozen;
    obs::Counter& calls_ended;
    obs::Counter& migrations;
    obs::Counter& unplanned;
    obs::Histogram& start_latency_s;
    obs::Histogram& freeze_latency_s;
    obs::Histogram& end_latency_s;
    obs::Histogram& provision_s;
    obs::Histogram& allocation_plan_s;
    obs::Counter& dc_failures;
    obs::Counter& dc_recoveries;
    obs::Counter& link_failures;
    obs::Counter& link_recoveries;
    obs::Counter& failover_migrations;
    obs::Counter& dropped_calls;
    obs::Histogram& drain_s;
    obs::Histogram& recovery_s;
    obs::Counter& server_failures;
    obs::Counter& server_recoveries;
    obs::Counter& defrag_moves;
    Metrics();
  };

  EvalContext ctx_;
  ControllerOptions options_;
  Metrics metrics_;
  std::optional<ProvisionResult> provision_result_;
  std::optional<AllocationPlan> plan_;
  std::unique_ptr<RealtimeSelector> selector_;
  /// Guards installation of a fresh plan: build_allocation_plan (and
  /// provision) publish plan_ / provision_result_ and rebuild selector_
  /// only while holding this exclusively, so the swap waits out every
  /// in-flight event still reading the old plan through the old selector.
  /// Realtime events take it shared (readers never contend with each
  /// other); the selector's own lock striping provides all per-event
  /// synchronization.
  mutable std::shared_mutex swap_mutex_;
  /// Owned by the controller, outlives every selector it hands the pointer
  /// to (selector rebuilds reuse the same table, so health state survives
  /// plan swaps).
  std::unique_ptr<fault::HealthTable> health_;
  /// Guards the fail-time bookkeeping below (cold path only).
  std::mutex fault_mutex_;
  std::vector<SimTime> dc_fail_time_;
  std::atomic<std::uint64_t> plan_epoch_{0};
  KvStore* store_ = nullptr;
};

}  // namespace sb
