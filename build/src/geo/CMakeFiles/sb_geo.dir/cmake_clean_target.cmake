file(REMOVE_RECURSE
  "libsb_geo.a"
)
