#include "forecast/holt_winters.h"

#include <cmath>

#include "common/error.h"

namespace sb {

HoltWinters::HoltWinters(HoltWintersParams params) : params_(params) {
  require(params_.alpha > 0.0 && params_.alpha < 1.0,
          "HoltWinters: alpha must be in (0,1)");
  require(params_.beta >= 0.0 && params_.beta < 1.0,
          "HoltWinters: beta must be in [0,1)");
  require(params_.gamma >= 0.0 && params_.gamma < 1.0,
          "HoltWinters: gamma must be in [0,1)");
  require(params_.season_length >= 1, "HoltWinters: season length");
}

void HoltWinters::train(std::span<const double> series) {
  const std::size_t m = params_.season_length;
  require(series.size() >= 2 * m,
          "HoltWinters::train: need at least two full seasons");
  // Classical initialization: level = mean of season 1, trend = per-period
  // change between the first two season means, seasonal = deviation of the
  // first season from its mean.
  double season1_mean = 0.0;
  double season2_mean = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    season1_mean += series[i];
    season2_mean += series[m + i];
  }
  season1_mean /= static_cast<double>(m);
  season2_mean /= static_cast<double>(m);

  level_ = season1_mean;
  trend_ = (season2_mean - season1_mean) / static_cast<double>(m);
  seasonal_.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) seasonal_[i] = series[i] - season1_mean;

  fitted_.assign(series.size(), 0.0);
  sse_ = 0.0;
  season_pos_ = 0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const std::size_t sp = t % m;
    const double predicted = level_ + trend_ + seasonal_[sp];
    fitted_[t] = predicted;
    const double err = series[t] - predicted;
    sse_ += err * err;

    const double prev_level = level_;
    level_ = params_.alpha * (series[t] - seasonal_[sp]) +
             (1.0 - params_.alpha) * (level_ + trend_);
    trend_ = params_.beta * (level_ - prev_level) +
             (1.0 - params_.beta) * trend_;
    seasonal_[sp] = params_.gamma * (series[t] - level_) +
                    (1.0 - params_.gamma) * seasonal_[sp];
  }
  season_pos_ = series.size() % m;
  trained_ = true;
}

std::vector<double> HoltWinters::forecast(std::size_t horizon) const {
  require(trained_, "HoltWinters::forecast: call train() first");
  const std::size_t m = params_.season_length;
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t sp = (season_pos_ + h) % m;
    out[h] = level_ + static_cast<double>(h + 1) * trend_ + seasonal_[sp];
  }
  return out;
}

HoltWinters HoltWinters::fit(std::span<const double> series,
                             std::size_t season_length) {
  static constexpr double kAlphas[] = {0.05, 0.1, 0.2, 0.35, 0.5};
  static constexpr double kBetas[] = {0.0, 0.01, 0.05, 0.1};
  static constexpr double kGammas[] = {0.05, 0.1, 0.3};

  HoltWinters best(HoltWintersParams{kAlphas[0], kBetas[0], kGammas[0],
                                     season_length});
  bool first = true;
  for (double alpha : kAlphas) {
    for (double beta : kBetas) {
      for (double gamma : kGammas) {
        HoltWinters candidate(
            HoltWintersParams{alpha, beta, gamma, season_length});
        candidate.train(series);
        if (first || candidate.sse() < best.sse()) {
          best = candidate;
          first = false;
        }
      }
    }
  }
  return best;
}

}  // namespace sb
