// Minimal CSV writing/parsing. Benches optionally dump their series as CSV
// (for external plotting) and tests round-trip small tables through it.
// Supports RFC-4180-style quoting for fields containing commas, quotes, or
// newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sb {

/// Streams rows of string fields as CSV to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows: first field is a label, the rest are
  /// values formatted with the given precision.
  void write_row(const std::string& label, const std::vector<double>& values,
                 int precision = 6);

 private:
  std::ostream& out_;
};

/// Quotes a single field if needed.
std::string csv_escape(const std::string& field);

/// Parses one CSV document into rows of fields. Handles quoted fields with
/// embedded commas/quotes/newlines; a trailing newline is not required.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace sb
