file(REMOVE_RECURSE
  "CMakeFiles/sb_forecast.dir/forecaster.cpp.o"
  "CMakeFiles/sb_forecast.dir/forecaster.cpp.o.d"
  "CMakeFiles/sb_forecast.dir/holt_winters.cpp.o"
  "CMakeFiles/sb_forecast.dir/holt_winters.cpp.o.d"
  "libsb_forecast.a"
  "libsb_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
