// Shard-ownership table for the sb_cluster control plane: which worker owns
// each of the realtime selector's call shards, at which fencing epoch, and
// whether the shard's controller rows still need a WAL replay ("dirty" —
// set when the owning worker is killed, cleared when a survivor or the
// restarted worker re-adopts the shard).
//
// The map itself is plain data with no locking; ClusterController guards it
// with its bookkeeping mutex. Initial assignment gives every worker a
// contiguous range of shards (worker w of W owns roughly shard_count/W
// consecutive shards), matching the ISSUE's "contiguous range of call
// shards" deployment shape; re-adoption may fragment ownership over time
// (shards move, calls never do — the greedy-with-switching-costs framing:
// re-homing controller state is cheap, re-homing media is not).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace sb::cluster {

struct ShardOwnership {
  /// Owning worker; invalid means no live worker holds the shard (degraded
  /// direct mode — the coordinator applies events itself).
  WorkerId owner;
  /// Fencing epoch: bumped (monotone, cluster-wide) every time ownership
  /// changes. Events stamped with an older epoch are fenced.
  std::uint64_t epoch = 0;
  /// Controller rows for this shard were dropped by a worker kill and have
  /// not been replayed from the WAL yet.
  bool dirty = false;
};

class ShardMap {
 public:
  /// Partitions `shard_count` shards into `worker_count` contiguous ranges
  /// (all at epoch `initial_epoch`). Requires 1 <= worker_count <=
  /// shard_count.
  ShardMap(std::size_t shard_count, std::size_t worker_count,
           std::uint64_t initial_epoch);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t worker_count() const { return worker_count_; }

  [[nodiscard]] const ShardOwnership& shard(std::size_t s) const;
  [[nodiscard]] ShardOwnership& shard_mut(std::size_t s);

  /// The initial contiguous range [begin, end) assigned to `w`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> initial_range(
      WorkerId w) const;

  /// Shards currently owned by `w` (ascending).
  [[nodiscard]] std::vector<std::size_t> owned_by(WorkerId w) const;
  [[nodiscard]] std::size_t shards_owned(WorkerId w) const;
  /// Shards with no valid owner (degraded / awaiting adoption).
  [[nodiscard]] std::size_t orphaned_shards() const;

  /// Partition invariant for the cluster conservation oracle: every shard
  /// has exactly one ownership row (trivially true by construction) and no
  /// shard is both owned and dirty-with-a-live-owner after quiescence.
  [[nodiscard]] bool any_dirty() const;

 private:
  std::vector<ShardOwnership> shards_;
  std::size_t worker_count_;
};

}  // namespace sb::cluster
