#include "calls/media.h"

#include "common/error.h"

namespace sb {

std::string to_string(MediaType media) {
  switch (media) {
    case MediaType::kAudio:
      return "audio";
    case MediaType::kScreenShare:
      return "screen";
    case MediaType::kVideo:
      return "video";
  }
  throw InternalError("to_string: bad MediaType");
}

LoadModel::LoadModel(std::array<double, kMediaTypeCount> cores_per_participant,
                     std::array<double, kMediaTypeCount> mbps_per_participant)
    : cores_(cores_per_participant), mbps_(mbps_per_participant) {
  for (std::size_t i = 0; i < kMediaTypeCount; ++i) {
    require(cores_[i] > 0.0 && mbps_[i] > 0.0,
            "LoadModel: loads must be positive");
  }
}

LoadModel LoadModel::paper_default() {
  // Audio leg ~80 kbps and 0.01 core; video 35x network and 3x compute;
  // screen-share 15x network and 1.5x compute (Table 1 midpoints).
  return LoadModel({0.010, 0.015, 0.030}, {0.08, 1.20, 2.80});
}

double LoadModel::cores_per_participant(MediaType media) const {
  return cores_[static_cast<std::size_t>(media)];
}

double LoadModel::mbps_per_participant(MediaType media) const {
  return mbps_[static_cast<std::size_t>(media)];
}

double LoadModel::offload_ratio(MediaType media) const {
  const double audio_ratio = mbps_[0] / cores_[0];
  const double ratio = mbps_per_participant(media) / cores_per_participant(media);
  return ratio / audio_ratio;
}

}  // namespace sb
