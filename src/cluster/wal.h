// Write-ahead call-lifecycle records for the sb_cluster control plane.
//
// Every event a worker applies is mirrored into the KV system of record as
// a full image of the call's controller-side row (RealtimeSelector::
// CallSnapshot), keyed by the call's lock-stripe shard:
//
//   wal:<shard>:<call>  ->  "dc=.. fj=.. col=.. slot=.. sdc=.. cores=.. srv=.."
//
// Records are written after start and freeze, rewritten when a drain moves
// the call, and erased at end/drop — so at quiescence the WAL is empty
// (the cluster conservation oracle asserts exactly that). Replay after a
// worker crash scans one shard's prefix and re-inserts each row verbatim
// (RealtimeSelector::adopt_call), reconstructing controller state without
// re-debiting quota, cores, or packer occupancy.
//
// `cores` round-trips through C99 hexfloat (%a) so a replayed row is
// bit-identical to the one the crashed worker held — the conservation
// oracles compare doubles exactly.
//
// Torn records cannot occur: worker kills only happen at simulator fault
// barriers, where every event (and its trailing WAL write) has completed.
#pragma once

#include <string>

#include "core/realtime.h"

namespace sb::cluster {

/// "wal:<shard>:" — scan this prefix to replay one shard.
[[nodiscard]] std::string wal_shard_prefix(std::size_t shard);
/// Key for one call's record within its shard.
[[nodiscard]] std::string wal_key(std::size_t shard, CallId call);
/// The call id encoded in a WAL key (throws on malformed keys).
[[nodiscard]] CallId call_from_wal_key(const std::string& key);

[[nodiscard]] std::string encode_wal_record(
    const RealtimeSelector::CallSnapshot& snap);
/// Inverse of encode_wal_record (throws on malformed records).
[[nodiscard]] RealtimeSelector::CallSnapshot decode_wal_record(
    const std::string& record);

}  // namespace sb::cluster
