// Span consumers: Chrome trace-event JSON export (loadable in Perfetto /
// chrome://tracing) and per-name span statistics for text reports.
//
// Always compiled — these operate on SpanData values, which exist in both
// tracing modes; with -DSB_TRACING=OFF SpanRecorder::collect() simply
// returns nothing and the exports are empty (but structurally valid).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span.h"

namespace sb::obs {

/// Writes `spans` as Chrome trace-event JSON: one complete ("ph": "X") event
/// per span with ts/dur in microseconds, tid = recorder thread, cat = the
/// subsystem, and the typed attributes (plus span/parent ids and sim_time)
/// under "args". Perfetto nests events of one tid by time containment,
/// which matches span nesting because child spans close before their
/// parents on the recording thread.
void write_chrome_trace(std::ostream& out, const std::vector<SpanData>& spans);

/// Collects the global recorder and writes the trace to `path`. Returns
/// false (writing nothing) when the file cannot be opened. `dropped_out`,
/// when non-null, receives the recorder's wrap-drop count so callers can
/// surface truncation.
bool dump_chrome_trace(const std::string& path,
                       std::uint64_t* dropped_out = nullptr);

/// Aggregate of every span sharing a name.
struct SpanStats {
  const char* name = "";
  Subsystem subsystem = Subsystem::kOther;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;

  [[nodiscard]] double mean_s() const {
    return count == 0 ? 0.0 : total_s / static_cast<double>(count);
  }
};

/// Groups spans by name, sorted by descending total duration.
std::vector<SpanStats> span_stats(const std::vector<SpanData>& spans);

/// Renders span_stats() as an aligned text table (name, count, total,
/// mean, min, max), one row per name; writes nothing for no spans.
void write_span_stats(std::ostream& out, const std::vector<SpanStats>& stats);

}  // namespace sb::obs
