// google-benchmark microbenchmarks for the LP solvers: dense tableau vs
// revised simplex across problem sizes, plus a provisioning-LP-shaped
// instance (sparse columns, capacity peaks).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "lp/solver.h"

namespace sb::lp {
namespace {

Model make_random_lp(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<double> witness(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    witness[i] = rng.uniform(0.0, 10.0);
    m.add_variable(0.0, kInf, rng.uniform(0.1, 5.0));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < vars; ++i) {
      if (!rng.chance(0.3)) continue;
      const double coeff = rng.uniform(-2.0, 3.0);
      terms.push_back({static_cast<int>(i), coeff});
      lhs += coeff * witness[i];
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms),
                     rng.chance(0.5) ? Sense::kLe : Sense::kGe,
                     lhs + (rng.chance(0.5) ? 1.0 : -1.0) * rng.uniform(0, 2));
  }
  return m;
}

/// A provisioning-shaped LP: T slots x C configs x X DCs share variables
/// with per-slot capacity-peak rows and completeness equalities.
Model make_provisioning_lp(std::size_t slots, std::size_t configs,
                           std::size_t dcs, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<int> cp(dcs);
  for (std::size_t x = 0; x < dcs; ++x) {
    cp[x] = m.add_variable(0.0, kInf, rng.uniform(0.9, 1.4));
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::vector<Term>> dc_rows(dcs);
    for (std::size_t c = 0; c < configs; ++c) {
      std::vector<Term> completeness;
      for (std::size_t x = 0; x < dcs; ++x) {
        const int s = m.add_variable(0.0, kInf, 1e-6 * rng.uniform(5, 100));
        dc_rows[x].push_back({s, rng.uniform(0.01, 0.1)});
        completeness.push_back({s, 1.0});
      }
      m.add_constraint(std::move(completeness), Sense::kEq,
                       rng.uniform(0.0, 50.0));
    }
    for (std::size_t x = 0; x < dcs; ++x) {
      dc_rows[x].push_back({cp[x], -1.0});
      m.add_constraint(std::move(dc_rows[x]), Sense::kLe, 0.0);
    }
  }
  return m;
}

void BM_DenseSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kDense;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
}
BENCHMARK(BM_DenseSimplexRandom)->Args({20, 15})->Args({60, 40})->Args({120, 80});

void BM_RevisedSimplexRandom(benchmark::State& state) {
  const Model m = make_random_lp(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 7);
  SolveOptions options;
  options.method = Method::kRevised;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(m, options));
  }
}
BENCHMARK(BM_RevisedSimplexRandom)
    ->Args({20, 15})
    ->Args({60, 40})
    ->Args({120, 80});

void BM_ProvisioningShapedLp(benchmark::State& state) {
  const Model m = make_provisioning_lp(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)), 5, 11);
  for (auto _ : state) {
    const Solution s = solve(m);
    if (!s.optimal()) state.SkipWithError("not optimal");
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_ProvisioningShapedLp)
    ->Args({6, 10})
    ->Args({12, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sb::lp

BENCHMARK_MAIN();
