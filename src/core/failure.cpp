#include "core/failure.h"

namespace sb {

FailureScenario FailureScenario::none() {
  return FailureScenario{Type::kNone, DcId{}, LinkId{}, "F0"};
}

FailureScenario FailureScenario::dc_failure(DcId dc, const World& world) {
  return FailureScenario{Type::kDc, dc, LinkId{},
                         "F_" + world.datacenter(dc).name};
}

FailureScenario FailureScenario::link_failure(LinkId link,
                                              const Topology& topo) {
  return FailureScenario{Type::kLink, DcId{}, link,
                         "F_" + topo.link(link).name};
}

std::vector<FailureScenario> enumerate_failures(const World& world,
                                                const Topology& topo,
                                                bool include_link_failures) {
  std::vector<FailureScenario> scenarios;
  scenarios.push_back(FailureScenario::none());
  for (DcId dc : world.dc_ids()) {
    scenarios.push_back(FailureScenario::dc_failure(dc, world));
  }
  if (include_link_failures) {
    for (LinkId link : topo.link_ids()) {
      scenarios.push_back(FailureScenario::link_failure(link, topo));
    }
  }
  return scenarios;
}

bool dc_available(const FailureScenario& scenario, DcId dc) {
  return scenario.type != FailureScenario::Type::kDc || scenario.dc != dc;
}

bool uses_failed_link(const FailureScenario& scenario, const Topology& topo,
                      LocationId dc_location, LocationId participant) {
  if (scenario.type != FailureScenario::Type::kLink) return false;
  return topo.in_path(scenario.link, dc_location, participant);
}

}  // namespace sb
