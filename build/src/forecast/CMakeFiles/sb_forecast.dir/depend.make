# Empty dependencies file for sb_forecast.
# This may be replaced when dependencies are built.
