#include "trace/scenario.h"

namespace sb {

namespace {

Scenario make_scenario(GeoModel model, const ScenarioParams& params) {
  require(params.rate_scale > 0.0, "make_scenario: rate_scale");
  Scenario scenario;
  scenario.geo = std::make_unique<GeoModel>(std::move(model));
  scenario.registry = std::make_unique<CallConfigRegistry>();

  Rng rng(params.seed);
  UniverseParams universe_params;
  universe_params.config_count = params.config_count;
  universe_params.total_peak_rate_per_hour *= params.rate_scale;
  ConfigUniverse universe = sample_universe(
      scenario.geo->world, *scenario.registry, universe_params, rng);

  scenario.trace = std::make_unique<TraceGenerator>(
      scenario.geo->world, *scenario.registry, std::move(universe),
      DiurnalShape{}, TraceParams{}, params.seed ^ 0xabcdef12345ULL);
  return scenario;
}

}  // namespace

Scenario make_apac_scenario(const ScenarioParams& params) {
  return make_scenario(make_apac_world(), params);
}

Scenario make_global_scenario(const ScenarioParams& params) {
  return make_scenario(make_global_world(), params);
}

}  // namespace sb
