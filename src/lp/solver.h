// Solver facade: converts a Model to standard form, dispatches to a simplex
// implementation, and maps the answer back to model variable space. This is
// the only LP entry point the rest of Switchboard uses.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/dense_simplex.h"
#include "lp/model.h"

namespace sb::lp {

enum class Method {
  kAuto,     ///< sparse LU/eta engine at scale, dense tableau for tiny LPs
  kDense,    ///< force the dense tableau (reference implementation)
  kRevised,  ///< force the legacy dense-inverse revised simplex
  kSparse,   ///< force the sparse LU/eta bounded-variable engine
};

/// kAuto cutoff: models with at least this many constraints go to the sparse
/// engine; below it the dense tableau's tiny constant factor wins (tuned
/// with bench/micro_lp.cpp — the crossover sits well under 100 rows because
/// the sparse engine prices and factorizes only nonzeros).
inline constexpr std::size_t kAutoSparseRowCutoff = 32;

/// The dense tableau materializes an m x (n + m) tableau and the legacy
/// revised simplex a dense m x m inverse; both are quadratic-plus in the row
/// count. Forcing them beyond these limits throws InvalidArgument instead of
/// silently burning memory and time — use Method::kSparse (or kAuto) for
/// large instances. Limits count standard-form rows, which for these
/// engines include one row per finite upper bound.
inline constexpr std::size_t kDenseRowLimit = 2000;
inline constexpr std::size_t kDenseInverseRowLimit = 8000;

struct SolveOptions : SimplexOptions {
  Method method = Method::kAuto;
  /// Run the presolve reductions (singleton rows -> bounds, empty rows,
  /// early infeasibility) before the simplex. See lp/presolve.h.
  bool use_presolve = true;
  /// Optional warm start for the sparse engine: one status per model
  /// variable, as returned in Solution::basis by a previous solve of a
  /// structurally similar model (same variables, perturbed rows/bounds —
  /// e.g. successive failure scenarios). Ignored by the dense engines;
  /// a mismatched size falls back to a cold start.
  std::vector<VarStatus> warm_start;
  /// Optional companion to `warm_start`: one status per model constraint,
  /// as returned in Solution::row_basis. Supplying it preserves which rows
  /// were tight vs slack in the hint basis, eliminating most of the repair
  /// pivots a variables-only warm start needs. Ignored unless `warm_start`
  /// is also set and both sizes match their model dimensions.
  std::vector<VarStatus> warm_start_rows;
};

/// Solves `model` (minimization). The returned Solution's `values` cover all
/// model variables, including fixed ones. Throws InvalidArgument for models
/// with non-finite lower bounds or when a dense method is forced beyond its
/// row limit; solver failures are reported via Solution::status, not
/// exceptions.
Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace sb::lp
