file(REMOVE_RECURSE
  "CMakeFiles/sb_lp.dir/dense_simplex.cpp.o"
  "CMakeFiles/sb_lp.dir/dense_simplex.cpp.o.d"
  "CMakeFiles/sb_lp.dir/model.cpp.o"
  "CMakeFiles/sb_lp.dir/model.cpp.o.d"
  "CMakeFiles/sb_lp.dir/presolve.cpp.o"
  "CMakeFiles/sb_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/sb_lp.dir/revised_simplex.cpp.o"
  "CMakeFiles/sb_lp.dir/revised_simplex.cpp.o.d"
  "CMakeFiles/sb_lp.dir/solver.cpp.o"
  "CMakeFiles/sb_lp.dir/solver.cpp.o.d"
  "CMakeFiles/sb_lp.dir/standard_form.cpp.o"
  "CMakeFiles/sb_lp.dir/standard_form.cpp.o.d"
  "libsb_lp.a"
  "libsb_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
