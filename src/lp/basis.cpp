#include "lp/basis.h"

#include <cmath>

#include "common/error.h"

namespace sb::lp {
namespace {

/// Update pivots smaller than this force a refactorization instead of an
/// eta append (product-form updates amplify error by 1/|pivot|).
constexpr double kUpdatePivotTol = 1e-9;
/// Eta entries below this are dropped: FTRAN images carry long tails of
/// roundoff-scale fill that would otherwise dominate every later
/// ftran/btran through the eta file.
constexpr double kEtaDropTol = 1e-12;

}  // namespace

Basis::LoadResult Basis::load(std::vector<const SparseCol*> cols,
                              std::size_t m) {
  updates_.clear();
  update_nnz_ = 0;
  ++factorizations_;
  LoadResult result;
  result.rejected = lu_.factorize(cols, m);
  result.unpivoted_rows = lu_.unpivoted_rows();
  return result;
}

void Basis::ftran(IndexedVector& x) const {
  lu_.ftran(x);
  for (const UpdateEta& eta : updates_) {
    const double xp = x.values[static_cast<std::size_t>(eta.position)];
    if (xp == 0.0) continue;
    const double t = xp / eta.pivot;
    x.set(eta.position, t);
    for (const auto& [i, w] : eta.entries) x.add(i, -w * t);
  }
}

void Basis::btran(IndexedVector& x) const {
  for (std::size_t k = updates_.size(); k-- > 0;) {
    const UpdateEta& eta = updates_[k];
    double acc = x.values[static_cast<std::size_t>(eta.position)];
    bool any = acc != 0.0;
    for (const auto& [i, w] : eta.entries) {
      const double v = x.values[static_cast<std::size_t>(i)];
      if (v != 0.0) {
        acc -= w * v;
        any = true;
      }
    }
    if (any) x.set(eta.position, acc / eta.pivot);
  }
  lu_.btran(x);
}

bool Basis::update(int position, const IndexedVector& w) {
  const double pivot = w.values[static_cast<std::size_t>(position)];
  if (std::abs(pivot) < kUpdatePivotTol) return false;
  UpdateEta eta;
  eta.position = position;
  eta.pivot = pivot;
  eta.entries.reserve(w.nz.size());
  for (int i : w.nz) {
    if (i == position) continue;
    const double v = w.values[static_cast<std::size_t>(i)];
    if (std::abs(v) > kEtaDropTol) eta.entries.emplace_back(i, v);
  }
  update_nnz_ += eta.entries.size() + 1;
  updates_.push_back(std::move(eta));
  return true;
}

}  // namespace sb::lp
