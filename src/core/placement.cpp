#include "core/placement.h"

#include <algorithm>

#include "common/error.h"

namespace sb {

PlacementMatrix::PlacementMatrix(std::size_t slot_count,
                                 std::size_t config_count,
                                 std::size_t dc_count)
    : slots_(slot_count),
      configs_(config_count),
      dcs_(dc_count),
      cells_(slot_count * config_count * dc_count, 0.0) {
  require(slot_count > 0 && config_count > 0 && dc_count > 0,
          "PlacementMatrix: empty shape");
}

std::size_t PlacementMatrix::index(TimeSlot t, std::size_t c, DcId dc) const {
  require(t < slots_ && c < configs_ && dc.valid() && dc.value() < dcs_,
          "PlacementMatrix: index out of range");
  return (static_cast<std::size_t>(t) * configs_ + c) * dcs_ + dc.value();
}

double PlacementMatrix::calls(TimeSlot t, std::size_t c, DcId dc) const {
  return cells_[index(t, c, dc)];
}

void PlacementMatrix::set_calls(TimeSlot t, std::size_t c, DcId dc,
                                double calls) {
  cells_[index(t, c, dc)] = calls;
}

void PlacementMatrix::add_calls(TimeSlot t, std::size_t c, DcId dc,
                                double calls) {
  cells_[index(t, c, dc)] += calls;
}

double PlacementMatrix::total_calls(TimeSlot t, std::size_t c) const {
  double acc = 0.0;
  for (std::size_t x = 0; x < dcs_; ++x) {
    acc += calls(t, c, DcId(static_cast<std::uint32_t>(x)));
  }
  return acc;
}

std::vector<double> UsageProfile::dc_peaks() const {
  std::vector<double> peaks(dc_cores.size(), 0.0);
  for (std::size_t x = 0; x < dc_cores.size(); ++x) {
    for (double v : dc_cores[x]) peaks[x] = std::max(peaks[x], v);
  }
  return peaks;
}

std::vector<double> UsageProfile::link_peaks() const {
  std::vector<double> peaks(link_gbps.size(), 0.0);
  for (std::size_t l = 0; l < link_gbps.size(); ++l) {
    for (double v : link_gbps[l]) peaks[l] = std::max(peaks[l], v);
  }
  return peaks;
}

UsageProfile compute_usage(const PlacementMatrix& placement,
                           const DemandMatrix& demand, const EvalContext& ctx) {
  require(ctx.world && ctx.topology && ctx.registry && ctx.loads,
          "compute_usage: incomplete context");
  require(placement.slot_count() == demand.slot_count() &&
              placement.config_count() == demand.config_count(),
          "compute_usage: placement/demand shape mismatch");
  const World& world = *ctx.world;
  const Topology& topo = *ctx.topology;
  require(placement.dc_count() == world.dc_count(),
          "compute_usage: dc count mismatch");

  UsageProfile usage;
  usage.dc_cores.assign(world.dc_count(),
                        std::vector<double>(placement.slot_count(), 0.0));
  usage.link_gbps.assign(topo.link_count(),
                         std::vector<double>(placement.slot_count(), 0.0));

  for (std::size_t c = 0; c < placement.config_count(); ++c) {
    const CallConfig& config = ctx.registry->get(demand.config_at(c));
    for (std::size_t x = 0; x < world.dc_count(); ++x) {
      const DcId dc(static_cast<std::uint32_t>(x));
      const HostingProfile profile = make_hosting_profile(config, dc, ctx);
      for (TimeSlot t = 0; t < placement.slot_count(); ++t) {
        const double calls = placement.calls(t, c, dc);
        if (calls <= 0.0) continue;
        usage.dc_cores[x][t] += calls * profile.cores_per_call;
        for (const auto& [l, gbps] : profile.link_gbps_per_call) {
          usage.link_gbps[l.value()][t] += calls * gbps;
        }
      }
    }
  }
  return usage;
}

HostingProfile make_hosting_profile(const CallConfig& config, DcId dc,
                                    const EvalContext& ctx) {
  require(ctx.world && ctx.topology && ctx.loads && ctx.latency,
          "make_hosting_profile: incomplete context");
  HostingProfile profile;
  profile.cores_per_call =
      ctx.loads->cores_per_participant(config.media()) *
      config.total_participants();
  profile.acl_ms = acl_ms(config, dc, *ctx.latency);
  const LocationId dc_loc = ctx.world->datacenter(dc).location;
  const double mbps = ctx.loads->mbps_per_participant(config.media());
  for (const ConfigEntry& e : config.entries()) {
    for (LinkId l : ctx.topology->path(dc_loc, e.location)) {
      const double gbps = mbps * e.count / kMbpsPerGbps;
      bool merged = false;
      for (auto& [link, load] : profile.link_gbps_per_call) {
        if (link == l) {
          load += gbps;
          merged = true;
          break;
        }
      }
      if (!merged) profile.link_gbps_per_call.emplace_back(l, gbps);
    }
  }
  return profile;
}

double mean_acl_ms(const PlacementMatrix& placement, const DemandMatrix& demand,
                   const EvalContext& ctx) {
  require(ctx.latency && ctx.registry, "mean_acl_ms: incomplete context");
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t c = 0; c < placement.config_count(); ++c) {
    const CallConfig& config = ctx.registry->get(demand.config_at(c));
    for (std::size_t x = 0; x < placement.dc_count(); ++x) {
      const DcId dc(static_cast<std::uint32_t>(x));
      const double acl = acl_ms(config, dc, *ctx.latency);
      for (TimeSlot t = 0; t < placement.slot_count(); ++t) {
        const double calls = placement.calls(t, c, dc);
        if (calls <= 0.0) continue;
        weighted += calls * acl;
        total += calls;
      }
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

CapacityPlan plan_from_usage(const UsageProfile& usage) {
  CapacityPlan plan;
  plan.dc_serving_cores = usage.dc_peaks();
  plan.dc_backup_cores.assign(plan.dc_serving_cores.size(), 0.0);
  plan.link_gbps = usage.link_peaks();
  return plan;
}

}  // namespace sb
