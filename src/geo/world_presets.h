// Canonical synthetic worlds used by tests, examples, and benches, plus a
// randomized world generator for property tests. The APAC world mirrors the
// paper's running example (§2.1: Hong Kong, India, Japan, Singapore DCs).
#pragma once

#include "common/rng.h"
#include "geo/latency.h"
#include "geo/topology.h"
#include "geo/world.h"

namespace sb {

/// A world plus its WAN topology and model-derived latency matrix.
struct GeoModel {
  World world;
  Topology topology;
  LatencyMatrix latency;
};

/// Asia-Pacific region: 15 countries, 5 DCs (India, Japan, Singapore,
/// Hong Kong, Australia), k-nearest-neighbor WAN. Matches the paper's
/// expository setting where all participants share a region.
GeoModel make_apac_world();

/// Three regions (APAC, NA, EU), 27 countries, 10 DCs. Exercises
/// cross-region pruning by the 120 ms latency threshold.
GeoModel make_global_world();

/// Parameters for random world generation (property tests).
struct RandomWorldParams {
  std::size_t location_count = 12;
  std::size_t dc_count = 4;
  double lat_span_deg = 60.0;   ///< locations scattered over this span
  double lon_span_deg = 120.0;  ///< and this longitude span
  std::size_t knn = 3;
};

/// Scatters locations uniformly over a geographic box, places DCs at
/// distinct random locations, builds a knn topology. UTC offsets follow
/// longitude (15 degrees per hour), so diurnal peaks shift realistically.
GeoModel make_random_world(Rng& rng, const RandomWorldParams& params = {});

/// Splits every DC of an existing world into a uniform media-server fleet:
/// `servers_per_dc` servers named "<DC>-ms<i>", each with
/// `cores_per_server` physical cores. Registering servers flips the world
/// into packed mode (World::has_fleets()), so call this before building
/// selectors or health tables — they size themselves from the registry.
void add_uniform_fleet(World& world, std::size_t servers_per_dc,
                       double cores_per_server);

}  // namespace sb
