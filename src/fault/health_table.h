// Lock-free runtime availability table: one epoch-stamped atomic word per
// DC and per WAN link. The realtime selector consults it on the hot path
// (call start / config freeze), so reads are single relaxed/acquire loads
// and the common no-fault case short-circuits through all_up() — one load
// of a process-wide down counter, keeping the healthy path bit-identical
// to a selector with no fault domain at all.
//
// Epochs count state flips per entry (monotone, starts at 0), so observers
// can tell "still down" from "went down, recovered, went down again"
// without any lock or history buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace sb::fault {

/// Availability state of one DC or link at a point in its flip history.
struct HealthState {
  bool up = true;
  std::uint64_t epoch = 0;  ///< number of up/down flips this entry has seen
};

/// Thread-safe availability table. set_* may be called by a fault driver
/// concurrently with any number of *_up() readers; every operation is a
/// single atomic word access (no mutex anywhere).
class HealthTable {
 public:
  HealthTable(std::size_t dc_count, std::size_t link_count,
              std::size_t server_count = 0, std::size_t worker_count = 0);

  /// Flips the entry's state; a redundant set (already up/down) is a no-op
  /// and does not advance the epoch. Returns the entry's state after the
  /// call.
  HealthState set_dc(DcId dc, bool up);
  HealthState set_link(LinkId link, bool up);
  HealthState set_server(ServerId server, bool up);
  /// Controller-worker rows are tracked separately from the media plane:
  /// a dead worker does NOT flip all_up() (placement must stay bit-identical
  /// while the cluster layer re-adopts the worker's shards).
  HealthState set_worker(WorkerId worker, bool up);

  [[nodiscard]] bool dc_up(DcId dc) const;
  [[nodiscard]] bool link_up(LinkId link) const;
  [[nodiscard]] bool server_up(ServerId server) const;
  [[nodiscard]] bool worker_up(WorkerId worker) const;
  [[nodiscard]] HealthState dc_state(DcId dc) const;
  [[nodiscard]] HealthState link_state(LinkId link) const;
  [[nodiscard]] HealthState server_state(ServerId server) const;
  [[nodiscard]] HealthState worker_state(WorkerId worker) const;

  /// Fast path for the realtime selector: true iff no DC, link, or media
  /// server is currently down (one relaxed load of a shared counter).
  [[nodiscard]] bool all_up() const {
    return down_total_.load(std::memory_order_acquire) == 0;
  }
  [[nodiscard]] std::size_t down_dcs() const;
  [[nodiscard]] std::size_t down_links() const;
  [[nodiscard]] std::size_t down_servers() const;
  /// Down controller workers (own counter, never part of all_up()).
  [[nodiscard]] std::size_t down_workers() const {
    return down_workers_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t dc_count() const { return dc_count_; }
  [[nodiscard]] std::size_t link_count() const { return link_count_; }
  [[nodiscard]] std::size_t server_count() const { return server_count_; }
  [[nodiscard]] std::size_t worker_count() const { return worker_count_; }

 private:
  /// Bit 0: 1 = down; bits 1..63: flip epoch. One word so state + epoch
  /// publish atomically, cache-line padded so flipping one DC never
  /// invalidates a neighbour's line under concurrent readers.
  struct alignas(64) Entry {
    std::atomic<std::uint64_t> word{0};
  };

  static HealthState unpack(std::uint64_t word) {
    return {.up = (word & 1u) == 0, .epoch = word >> 1};
  }
  HealthState flip(Entry& entry, bool up, std::atomic<std::uint32_t>& counter);

  std::size_t dc_count_;
  std::size_t link_count_;
  std::size_t server_count_;
  std::size_t worker_count_;
  std::unique_ptr<Entry[]> dcs_;
  std::unique_ptr<Entry[]> links_;
  std::unique_ptr<Entry[]> servers_;
  std::unique_ptr<Entry[]> workers_;
  /// Total media-plane entries (DCs + links + servers) currently down;
  /// maintained by flip(). Worker rows deliberately use their own counter
  /// so controller crashes never perturb all_up().
  std::atomic<std::uint32_t> down_total_{0};
  std::atomic<std::uint32_t> down_workers_{0};
};

}  // namespace sb::fault
