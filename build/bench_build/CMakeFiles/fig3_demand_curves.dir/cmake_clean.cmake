file(REMOVE_RECURSE
  "../bench/fig3_demand_curves"
  "../bench/fig3_demand_curves.pdb"
  "CMakeFiles/fig3_demand_curves.dir/fig3_demand_curves.cpp.o"
  "CMakeFiles/fig3_demand_curves.dir/fig3_demand_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_demand_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
