// Intra-DC server packing (the Tetris direction, PAPERS.md arXiv
// 2508.00426): beneath the DC-granular realtime selector, calls are
// bin-packed onto the DC's fleet of media servers. The packer owns one
// atomic millicore occupancy counter per server, so admits and releases
// compose with the selector's lock-striped shards without any new lock —
// the accounting contract mirrors the plan-slot quota table:
//
//  - admit() picks the best-fit server (minimum residual after placement,
//    plus an anti-fragmentation penalty for waking an empty server) and
//    claims the cores with a bounded CAS against the server's capacity.
//    Ties break on the lowest ServerId, so a single-threaded caller is
//    fully deterministic.
//  - when no up server has bounded room, admit() fails open: the call
//    overflows onto the relatively least-loaded up server (unbounded
//    fetch_add, counted in overcommit_admits) — a degraded placement beats
//    refusing service, exactly like the selector's plan-overflow path.
//  - release() returns the exact millicores admit() claimed. All
//    footprints cross the double->millicore boundary through
//    to_millicores(), so per-server conservation is checkable by exact
//    integer comparison (sb_check's per-server recount oracle).
//
// Cumulative per-server admit/release totals are kept alongside the live
// occupancy; at quiescence occupancy == admitted - released == 0, which is
// the invariant the oracle recounts from the HostingLog.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "fault/health_table.h"
#include "geo/world.h"
#include "obs/metrics.h"

namespace sb::pack {

/// Exact integer footprint used for all per-server accounting. Shared with
/// the sb_check recount so both sides quantize identically.
[[nodiscard]] inline std::int64_t to_millicores(double cores) {
  return std::llround(cores * 1000.0);
}

struct PackOptions {
  /// Added to a candidate's best-fit score when the server is currently
  /// empty: keeps small calls consolidating onto warm servers instead of
  /// spreading one call per server (the fragmentation the Tetris paper
  /// measures). In cores; 0 disables.
  double anti_frag_empty_penalty_cores = 0.25;
  /// CAS attempts per candidate before rescanning the fleet.
  std::uint32_t max_cas_retries = 8;
};

/// One call moved by an intra-DC defragmentation pass.
struct RepackMove {
  CallId call;
  ServerId from;
  ServerId to;
};

/// Result of RealtimeSelector::defragment_dc.
struct DefragResult {
  std::vector<RepackMove> moves;
  double fragmentation_before = 0.0;
  double fragmentation_after = 0.0;
};

/// Immutable per-server snapshot (stats() / tests / benches).
struct ServerStats {
  ServerId server;
  DcId dc;
  double capacity_cores = 0.0;
  double used_cores = 0.0;
  std::uint64_t admits = 0;
  std::uint64_t releases = 0;
  std::int64_t admitted_mc = 0;  ///< cumulative millicores claimed
  std::int64_t released_mc = 0;  ///< cumulative millicores returned
};

/// Thread-safe fleet packer for one World. Any number of selector shards
/// may admit/release concurrently; every operation is atomics-only.
class ServerPacker {
 public:
  /// `world` must have at least one server and outlive the packer.
  /// `health` may be null (no server fault domain); when set it must cover
  /// exactly world.server_count() servers and outlive the packer.
  explicit ServerPacker(const World& world, PackOptions options = {},
                        const fault::HealthTable* health = nullptr);

  /// Packs `cores` onto a server of `dc` (best-fit-decreasing admit; see
  /// file comment). `exclude` is skipped entirely — a server drain excludes
  /// the failed server. Returns the chosen server; invalid only when the DC
  /// owns no servers at all. `retries` accumulates failed CAS attempts.
  ServerId admit(DcId dc, double cores, ServerId exclude = ServerId(),
                 std::uint32_t* retries = nullptr);

  /// Like admit() but never overcommits: returns invalid when no up,
  /// non-excluded server has bounded room. Tier-1 of a server drain.
  ServerId admit_bounded(DcId dc, double cores, ServerId exclude = ServerId(),
                         std::uint32_t* retries = nullptr);

  /// Unbounded overflow claim on the relatively least-loaded candidate;
  /// `up_only` restricts to up servers. Counted in overcommit_admits.
  /// Invalid when no candidate exists.
  ServerId admit_overflow(DcId dc, double cores, ServerId exclude,
                          bool up_only);

  /// Claims `cores` on `server` iff it fits within capacity (bounded CAS);
  /// the defragmentation pass uses this to apply a precomputed target.
  bool try_admit_to(ServerId server, double cores);

  /// Returns the cores a prior admit claimed on `server`.
  void release(ServerId server, double cores);

  [[nodiscard]] double server_cores_used(ServerId server) const;
  [[nodiscard]] double server_capacity(ServerId server) const;
  /// Sum of server occupancies in `dc` (weakly consistent under load).
  [[nodiscard]] double dc_cores_used(DcId dc) const;
  [[nodiscard]] std::size_t server_count() const { return server_count_; }
  [[nodiscard]] const std::vector<ServerId>& fleet(DcId dc) const {
    return world_->servers_in_dc(dc);
  }

  /// Fragmentation of `dc`'s free space: 1 - (largest free block / total
  /// free), over up servers. 0 = all free space on one server (a whole-call
  /// hole), -> 1 = free space shredded across the fleet. 0 when no free
  /// space or a single server.
  [[nodiscard]] double fragmentation(DcId dc) const;

  [[nodiscard]] std::uint64_t overcommit_admits() const {
    return overcommit_admits_.load(std::memory_order_relaxed);
  }

  /// Per-server snapshot, ordered by ServerId. Weakly consistent under
  /// concurrent events, exact at quiescence.
  [[nodiscard]] std::vector<ServerStats> stats() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> used_mc{0};
    std::atomic<std::uint64_t> admits{0};
    std::atomic<std::uint64_t> releases{0};
    std::atomic<std::int64_t> admitted_mc{0};
    std::atomic<std::int64_t> released_mc{0};
  };

  [[nodiscard]] bool server_ok(ServerId server) const {
    return health_ == nullptr || health_->server_up(server);
  }
  /// Bounded CAS claim of `need_mc` on `server`; false when it no longer
  /// fits (another thread raced the capacity away).
  bool try_claim(ServerId server, std::int64_t need_mc,
                 std::uint32_t* retries);
  void record_admit(ServerId server, std::int64_t need_mc);

  const World* world_;
  PackOptions options_;
  const fault::HealthTable* health_;
  std::size_t server_count_;
  std::unique_ptr<Slot[]> slots_;
  std::vector<std::int64_t> capacity_mc_;  ///< per server, immutable
  std::atomic<std::uint64_t> overcommit_admits_{0};

  obs::Counter& admits_metric_;
  obs::Counter& releases_metric_;
  obs::Counter& overcommit_metric_;
  obs::Counter& cas_retries_metric_;
};

}  // namespace sb::pack
