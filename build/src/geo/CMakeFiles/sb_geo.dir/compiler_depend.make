# Empty compiler generated dependencies file for sb_geo.
# This may be replaced when dependencies are built.
