// Tests for the CSV interchange of call records and demand matrices.
#include <gtest/gtest.h>

#include <sstream>

#include "calls/io.h"
#include "geo/world_presets.h"
#include "trace/scenario.h"

namespace sb {
namespace {

TEST(ConfigParseTest, RoundTripsDescriptions) {
  const GeoModel apac = make_apac_world();
  const LocationId in = *apac.world.find_location("IN");
  const LocationId jp = *apac.world.find_location("JP");
  const CallConfig original =
      CallConfig::make({{in, 2}, {jp, 1}}, MediaType::kVideo);
  const std::string text = original.describe(apac.world);
  EXPECT_EQ(text, "((IN-2,JP-1),video)");
  const CallConfig parsed = parse_call_config(text, apac.world);
  EXPECT_EQ(parsed, original);
}

TEST(ConfigParseTest, RejectsMalformedInput) {
  const GeoModel apac = make_apac_world();
  EXPECT_THROW(parse_call_config("garbage", apac.world), InvalidArgument);
  EXPECT_THROW(parse_call_config("((XX-2),audio)", apac.world),
               InvalidArgument);
  EXPECT_THROW(parse_call_config("((IN-0),audio)", apac.world),
               InvalidArgument);
  EXPECT_THROW(parse_call_config("((IN-2),tuba)", apac.world),
               InvalidArgument);
  EXPECT_THROW(parse_media_type("tuba"), InvalidArgument);
  EXPECT_EQ(parse_media_type("screen"), MediaType::kScreenShare);
}

TEST(RecordsCsvTest, RoundTripsGeneratedTrace) {
  Scenario scenario = make_apac_scenario({.config_count = 60});
  const double start = kSecondsPerDay + 3 * kSecondsPerHour;
  const CallRecordDatabase original =
      scenario.trace->generate(start, start + 1800.0);
  ASSERT_GT(original.size(), 20u);

  std::ostringstream out;
  write_records_csv(out, original, *scenario.registry, scenario.world());

  CallConfigRegistry fresh;
  const CallRecordDatabase loaded =
      read_records_csv(out.str(), fresh, scenario.world());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const CallRecord& a = original.records()[i];
    const CallRecord& b = loaded.records()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_NEAR(a.start_s, b.start_s, 1e-3);
    EXPECT_NEAR(a.duration_s, b.duration_s, 1e-3);
    ASSERT_EQ(a.legs.size(), b.legs.size());
    for (std::size_t l = 0; l < a.legs.size(); ++l) {
      EXPECT_EQ(a.legs[l].location, b.legs[l].location);
      EXPECT_NEAR(a.legs[l].join_offset_s, b.legs[l].join_offset_s, 1e-3);
    }
    // Config equality across registries (ids differ, content must not).
    EXPECT_EQ(scenario.registry->get(a.config), fresh.get(b.config));
  }
}

TEST(RecordsCsvTest, RejectsBadRows) {
  const GeoModel apac = make_apac_world();
  CallConfigRegistry registry;
  EXPECT_THROW(read_records_csv("not,a,header\n", registry, apac.world),
               InvalidArgument);
  EXPECT_THROW(
      read_records_csv("call_id,start_s,duration_s,media,legs\n"
                       "0,0,60,audio,XX@0\n",
                       registry, apac.world),
      InvalidArgument);
  EXPECT_THROW(
      read_records_csv("call_id,start_s,duration_s,media,legs\n"
                       "0,abc,60,audio,IN@0\n",
                       registry, apac.world),
      InvalidArgument);
}

TEST(DemandCsvTest, RoundTrips) {
  const GeoModel apac = make_apac_world();
  CallConfigRegistry registry;
  const LocationId in = *apac.world.find_location("IN");
  const LocationId sg = *apac.world.find_location("SG");
  const ConfigId a =
      registry.intern(CallConfig::make({{in, 3}}, MediaType::kAudio));
  const ConfigId b = registry.intern(
      CallConfig::make({{in, 1}, {sg, 2}}, MediaType::kScreenShare));
  DemandMatrix demand = make_demand_matrix({a, b}, 3);
  demand.set_demand(0, 0, 12.5);
  demand.set_demand(1, 1, 7.25);
  demand.set_demand(2, 0, 0.125);

  std::ostringstream out;
  write_demand_csv(out, demand, registry, apac.world);

  CallConfigRegistry fresh;
  const DemandMatrix loaded = read_demand_csv(out.str(), fresh, apac.world);
  ASSERT_EQ(loaded.slot_count(), 3u);
  ASSERT_EQ(loaded.config_count(), 2u);
  EXPECT_NEAR(loaded.demand(0, 0), 12.5, 1e-9);
  EXPECT_NEAR(loaded.demand(1, 1), 7.25, 1e-9);
  EXPECT_NEAR(loaded.demand(2, 0), 0.125, 1e-9);
  EXPECT_EQ(fresh.get(loaded.config_at(1)), registry.get(b));
}

TEST(DemandCsvTest, RejectsRaggedRows) {
  const GeoModel apac = make_apac_world();
  CallConfigRegistry registry;
  EXPECT_THROW(read_demand_csv("slot,((IN-1),audio)\n0,1,2\n", registry,
                               apac.world),
               InvalidArgument);
}

}  // namespace
}  // namespace sb
