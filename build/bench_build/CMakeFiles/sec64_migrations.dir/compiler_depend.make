# Empty compiler generated dependencies file for sec64_migrations.
# This may be replaced when dependencies are built.
