# Empty dependencies file for provisioner_property_test.
# This may be replaced when dependencies are built.
