#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "lp/basis.h"
#include "lp/lu_factor.h"
#include "obs/span.h"

namespace sb::lp {
namespace {

/// Absolute slack when comparing ratio-test breakpoints for ties.
constexpr double kRatioTieTol = 1e-9;
/// Relative improvement below which an iteration counts as stalled.
constexpr double kStallRelTol = 1e-12;
/// Rounds of basis repair (demote dependent columns, slot in logicals for
/// uncovered rows) before a crash start is abandoned.
constexpr int kMaxRepairRounds = 5;
/// Devex reference-framework reset: when the entering column's own weight
/// exceeds this, accumulated weight growth has outlived its reference basis.
constexpr double kDevexResetThreshold = 1e6;
/// Devex drift: when the tracked weight of the entering column disagrees
/// with its exact reference-framework weight (computable from the FTRAN
/// image) by more than this factor, the recurrence has gone stale — the
/// framework is restarted at the next refactorization.
constexpr double kDevexDriftLimit = 16.0;

class SparseSimplex {
 public:
  SparseSimplex(const StandardForm& sf, const SimplexOptions& options)
      : options_(options),
        n_(sf.var_count()),
        m_(sf.rows.size()),
        total_(n_ + m_) {
    build(sf);
  }

  SfSolution run(const std::vector<VarStatus>* warm, SparseSolveStats* stats) {
    SfSolution out;
    {
      obs::Span crash("lp.crash", obs::Subsystem::kLp);
      const bool warmed = init_warm(warm);
      if (!warmed) init_cold();
      crash.attr(obs::AttrKey::kWarmStart, warmed ? 1 : 0);
    }
    out.status = SolveStatus::kOptimal;

    {
      obs::Span phase1("lp.phase1", obs::Subsystem::kLp);
      const std::uint64_t before = out.iterations;
      const SolveStatus p1 = run_phase(/*phase1=*/true, out.iterations);
      phase1.attr(obs::AttrKey::kIterations,
                  static_cast<std::int64_t>(out.iterations - before));
      if (p1 != SolveStatus::kOptimal) {
        out.status = p1;
      } else if (infeasibility() >
                 options_.feasibility_tol * rhs_scale_ * 10.0) {
        out.status = SolveStatus::kInfeasible;
      }
    }
    if (out.status == SolveStatus::kOptimal) {
      // Snap residual within-tolerance violations onto the bounds so phase 2
      // starts from a (numerically) feasible point.
      for (std::size_t p = 0; p < m_; ++p) {
        const int col = basis_[p];
        x_basic_[p] = std::clamp(x_basic_[p],
                                 lower_[static_cast<std::size_t>(col)],
                                 upper_[static_cast<std::size_t>(col)]);
      }
      obs::Span phase2("lp.phase2", obs::Subsystem::kLp);
      const std::uint64_t before = out.iterations;
      out.status = run_phase(/*phase1=*/false, out.iterations);
      phase2.attr(obs::AttrKey::kIterations,
                  static_cast<std::int64_t>(out.iterations - before));
      phase2.attr(obs::AttrKey::kFactorizations,
                  static_cast<std::int64_t>(basis_state_.factorizations()));
      phase2.attr(obs::AttrKey::kPricingPasses,
                  static_cast<std::int64_t>(pricing_passes_));
    }

    out.values.resize(n_);
    // Statuses cover the logical (row) block too: a warm start that knows
    // which rows had basic slacks skips the repair pivots a structural-only
    // hint needs.
    out.statuses.resize(total_);
    for (std::size_t j = 0; j < total_; ++j) out.statuses[j] = status_[j];
    for (std::size_t j = 0; j < n_; ++j) {
      out.values[j] = status_[j] == VarStatus::kBasic
                          ? x_basic_[static_cast<std::size_t>(pos_of_[j])]
                          : nonbasic_value(static_cast<int>(j));
    }
    if (stats != nullptr) {
      stats->factorizations = basis_state_.factorizations();
      stats->eta_nnz = basis_state_.eta_nnz();
      stats->pricing_passes = pricing_passes_;
      stats->bound_flips = bound_flips_;
      stats->devex_resets = devex_resets_;
    }
    return out;
  }

 private:
  void build(const StandardForm& sf) {
    columns_.resize(total_);
    lower_.assign(total_, 0.0);
    upper_.assign(total_, kInf);
    cost_.assign(total_, 0.0);
    rhs_.resize(m_);
    rhs_scale_ = 1.0;
    for (std::size_t j = 0; j < n_; ++j) {
      cost_[j] = sf.cost[j];
      upper_[j] = sf.upper[j];
    }
    rows_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      const StandardRow& row = sf.rows[r];
      for (const Term& t : row.terms) {
        columns_[static_cast<std::size_t>(t.var)].emplace_back(r, t.coeff);
        rows_[r].emplace_back(static_cast<std::size_t>(t.var), t.coeff);
      }
      const std::size_t lj = n_ + r;
      columns_[lj].emplace_back(r, 1.0);
      switch (row.sense) {
        case Sense::kLe:
          break;  // s in [0, inf)
        case Sense::kGe:
          lower_[lj] = -kInf;
          upper_[lj] = 0.0;
          break;
        case Sense::kEq:
          upper_[lj] = 0.0;
          break;
      }
      rhs_[r] = row.rhs;
      rhs_scale_ = std::max(rhs_scale_, std::abs(row.rhs));
    }
    status_.assign(total_, VarStatus::kAtLower);
    pos_of_.assign(total_, -1);
    devex_.assign(total_, 1.0);
    in_ref_.assign(total_, 1);
    w_.resize(m_);
    cb_.resize(m_);
    bwork_.resize(m_);
    rho_.resize(m_);
    alpha_.resize(total_);
  }

  [[nodiscard]] double nonbasic_value(int j) const {
    const auto ju = static_cast<std::size_t>(j);
    return status_[ju] == VarStatus::kAtUpper ? upper_[ju] : lower_[ju];
  }

  /// Nonbasic resting status: at-lower unless the lower bound is -inf
  /// (kGe logicals), which can only rest at their (zero) upper bound.
  [[nodiscard]] VarStatus resting_status(std::size_t j) const {
    return lower_[j] == -kInf ? VarStatus::kAtUpper : VarStatus::kAtLower;
  }

  void init_cold() {
    basis_.resize(m_);
    for (std::size_t j = 0; j < total_; ++j) status_[j] = resting_status(j);
    for (std::size_t r = 0; r < m_; ++r) {
      basis_[r] = static_cast<int>(n_ + r);
      status_[n_ + r] = VarStatus::kBasic;
    }
    // Crash: rows whose logical would start infeasible (eq rows with
    // nonzero rhs, ge rows with positive rhs) get the cheapest structural
    // column instead — it can absorb the rhs inside its own bounds, which
    // moves most of the phase-1 work into the initial basis. Dependent
    // picks are demoted again by load_with_repair().
    std::vector<unsigned char> taken(total_, 0);
    // Build a row -> structural columns list once (only rows needing crash).
    std::vector<std::vector<int>> row_cols(m_);
    {
      std::vector<unsigned char> wanted(m_, 0);
      bool any = false;
      for (std::size_t r = 0; r < m_; ++r) {
        const std::size_t lj = n_ + r;
        if (rhs_[r] < lower_[lj] || rhs_[r] > upper_[lj]) {
          wanted[r] = 1;
          any = true;
        }
      }
      if (any) {
        for (std::size_t j = 0; j < n_; ++j) {
          for (const auto& [r, v] : columns_[j]) {
            if (wanted[r] && v != 0.0) {
              row_cols[r].push_back(static_cast<int>(j));
            }
          }
        }
        for (std::size_t r = 0; r < m_; ++r) {
          if (!wanted[r] || row_cols[r].empty()) continue;
          int pick = -1;
          for (int j : row_cols[r]) {
            if (taken[static_cast<std::size_t>(j)]) continue;
            if (pick < 0 ||
                cost_[static_cast<std::size_t>(j)] <
                    cost_[static_cast<std::size_t>(pick)]) {
              pick = j;
            }
          }
          if (pick < 0) continue;
          taken[static_cast<std::size_t>(pick)] = 1;
          status_[n_ + r] = resting_status(n_ + r);
          basis_[r] = pick;
          status_[static_cast<std::size_t>(pick)] = VarStatus::kBasic;
        }
      }
    }
    if (!load_with_repair()) {
      throw InternalError("sparse simplex: cold basis failed to factorize");
    }
    compute_basic_values();
  }

  /// Crash start from a foreign status vector: nonbasic variables land on
  /// their bounds, the proposed basic set is factorized with repair. Returns
  /// false (leaving state unspecified) when the crash is unusable. Accepts
  /// either n (structurals only — logicals padded in row order) or n + m
  /// entries (logical kBasic hints restore the exact slack/tight row
  /// pattern of the donor basis).
  bool init_warm(const std::vector<VarStatus>* warm) {
    if (warm == nullptr || (warm->size() != n_ && warm->size() != total_)) {
      return false;
    }
    const bool has_row_hints = warm->size() == total_;
    basis_.clear();
    for (std::size_t j = 0; j < n_; ++j) {
      switch ((*warm)[j]) {
        case VarStatus::kBasic:
          if (basis_.size() < m_) {
            basis_.push_back(static_cast<int>(j));
            status_[j] = VarStatus::kBasic;
          } else {
            status_[j] = resting_status(j);
          }
          break;
        case VarStatus::kAtUpper:
          status_[j] =
              upper_[j] < kInf ? VarStatus::kAtUpper : VarStatus::kAtLower;
          break;
        default:
          status_[j] = resting_status(j);
          break;
      }
    }
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t lj = n_ + r;
      if (has_row_hints && (*warm)[lj] == VarStatus::kBasic &&
          basis_.size() < m_) {
        basis_.push_back(static_cast<int>(lj));
        status_[lj] = VarStatus::kBasic;
      } else {
        status_[lj] = resting_status(lj);
      }
    }
    // A short basis means the donor's basics for some rows are gone (e.g. a
    // failure scenario removed the columns a hint row relied on). Pad on the
    // rows no basic column touches, reusing init_cold's crash heuristic:
    // rows whose logical would start infeasible (eq rows with nonzero rhs)
    // get their cheapest nonbasic structural column, the rest their logical.
    // Blind first-rows padding here costs a phase-1 repair pivot per
    // uncovered eq row and makes the warm start slower than cold.
    if (basis_.size() < m_) {
      std::vector<unsigned char> covered(m_, 0);
      for (int col : basis_) {
        for (const auto& [r, v] : columns_[static_cast<std::size_t>(col)]) {
          if (v != 0.0) covered[r] = 1;
        }
      }
      for (std::size_t r = 0; r < m_ && basis_.size() < m_; ++r) {
        if (covered[r]) continue;
        const std::size_t lj = n_ + r;
        int pick = -1;
        if (rhs_[r] < lower_[lj] || rhs_[r] > upper_[lj]) {
          for (const auto& [j, v] : rows_[r]) {
            if (v == 0.0 || status_[j] == VarStatus::kBasic) continue;
            if (pick < 0 ||
                cost_[j] < cost_[static_cast<std::size_t>(pick)]) {
              pick = static_cast<int>(j);
            }
          }
        }
        if (pick >= 0) {
          basis_.push_back(pick);
          status_[static_cast<std::size_t>(pick)] = VarStatus::kBasic;
          for (const auto& [rr, v] : columns_[static_cast<std::size_t>(pick)]) {
            if (v != 0.0) covered[rr] = 1;
          }
        } else {
          basis_.push_back(static_cast<int>(lj));
          status_[lj] = VarStatus::kBasic;
          covered[r] = 1;
        }
      }
    }
    // Rank-deficiency safety net: still short (every row covered but the
    // basic set is dependent) — first nonbasic logicals; load_with_repair()
    // swaps any that turn out redundant.
    for (std::size_t r = 0; r < m_ && basis_.size() < m_; ++r) {
      const std::size_t lj = n_ + r;
      if (status_[lj] == VarStatus::kBasic) continue;
      basis_.push_back(static_cast<int>(lj));
      status_[lj] = VarStatus::kBasic;
    }
    if (!load_with_repair()) return false;
    compute_basic_values();
    return true;
  }

  /// Factorizes basis_, demoting rejected columns to their bounds and
  /// substituting logicals for uncovered rows until the factorization is
  /// clean. Rebinds pos_of_ / statuses on success.
  bool load_with_repair() {
    std::vector<const SparseCol*> cols;
    for (int round = 0; round < kMaxRepairRounds; ++round) {
      cols.clear();
      cols.reserve(basis_.size());
      for (int col : basis_) {
        cols.push_back(&columns_[static_cast<std::size_t>(col)]);
      }
      const Basis::LoadResult res = basis_state_.load(cols, m_);
      if (res.clean() && basis_.size() == m_) {
        std::fill(pos_of_.begin(), pos_of_.end(), -1);
        for (std::size_t p = 0; p < m_; ++p) {
          pos_of_[static_cast<std::size_t>(basis_[p])] = static_cast<int>(p);
          status_[static_cast<std::size_t>(basis_[p])] = VarStatus::kBasic;
        }
        return true;
      }
      std::vector<int> next;
      next.reserve(m_);
      std::size_t rej = 0;
      for (std::size_t p = 0; p < basis_.size(); ++p) {
        if (rej < res.rejected.size() &&
            res.rejected[rej] == static_cast<int>(p)) {
          ++rej;
          const auto col = static_cast<std::size_t>(basis_[p]);
          status_[col] = resting_status(col);
          continue;
        }
        next.push_back(basis_[p]);
      }
      for (int r : res.unpivoted_rows) {
        const std::size_t lj = n_ + static_cast<std::size_t>(r);
        next.push_back(static_cast<int>(lj));
        status_[lj] = VarStatus::kBasic;
      }
      basis_ = std::move(next);
      if (basis_.size() != m_) return false;  // inconsistent repair
    }
    return false;
  }

  /// Recomputes basic values from scratch: x_B = B^-1 (b - N x_N).
  void compute_basic_values() {
    bwork_.clear();
    for (std::size_t r = 0; r < m_; ++r) {
      if (rhs_[r] != 0.0) bwork_.set(static_cast<int>(r), rhs_[r]);
    }
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = nonbasic_value(static_cast<int>(j));
      if (v == 0.0) continue;
      for (const auto& [r, a] : columns_[j]) {
        bwork_.add(static_cast<int>(r), -a * v);
      }
    }
    basis_state_.ftran(bwork_);
    x_basic_.assign(m_, 0.0);
    for (int p : bwork_.nz) {
      if (p >= 0 && static_cast<std::size_t>(p) < m_) {
        x_basic_[static_cast<std::size_t>(p)] =
            bwork_.values[static_cast<std::size_t>(p)];
      }
    }
    nb_cost_ = 0.0;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] != VarStatus::kBasic && cost_[j] != 0.0) {
        nb_cost_ += cost_[j] * nonbasic_value(static_cast<int>(j));
      }
    }
  }

  bool refactorize() {
    if (!load_with_repair()) return false;
    compute_basic_values();
    // The eta file the weight recurrence ran against is gone; if the
    // tracked weights had visibly drifted from their exact framework
    // values, restart the framework here rather than carrying stale
    // weights into the fresh factorization.
    if (devex_drift_pending_) reset_devex_framework(/*count=*/true);
    return true;
  }

  /// Starts a new Devex reference framework: the reference set becomes the
  /// current nonbasic columns and every weight returns to 1.
  void reset_devex_framework(bool count) {
    for (std::size_t j = 0; j < total_; ++j) {
      in_ref_[j] = status_[j] != VarStatus::kBasic ? 1 : 0;
    }
    std::fill(devex_.begin(), devex_.end(), 1.0);
    devex_drift_pending_ = false;
    if (count) ++devex_resets_;
  }

  /// Exact Devex weight of the entering column in the CURRENT reference
  /// framework, from its FTRAN image: reference columns now basic
  /// contribute alpha^2, plus 1 when the column itself is a reference
  /// member. The tracked weight is only a lower-bound estimate of this;
  /// the exact value both sharpens the weight recurrence and exposes
  /// drift.
  [[nodiscard]] double devex_exact_weight(int entering) const {
    double sum = in_ref_[static_cast<std::size_t>(entering)] ? 1.0 : 0.0;
    for (int p : w_.nz) {
      const auto col = static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(p)]);
      if (!in_ref_[col]) continue;
      const double v = w_.values[static_cast<std::size_t>(p)];
      sum += v * v;
    }
    return std::max(sum, 1.0);
  }

  [[nodiscard]] double infeasibility() const {
    double total = 0.0;
    for (std::size_t p = 0; p < m_; ++p) {
      const auto col = static_cast<std::size_t>(basis_[p]);
      const double x = x_basic_[p];
      if (x < lower_[col]) total += lower_[col] - x;
      if (x > upper_[col]) total += x - upper_[col];
    }
    return total;
  }

  [[nodiscard]] double objective_value() const {
    double obj = nb_cost_;
    for (std::size_t p = 0; p < m_; ++p) {
      obj += cost_[static_cast<std::size_t>(basis_[p])] * x_basic_[p];
    }
    return obj;
  }

  [[nodiscard]] double reduced_cost(int j, bool phase1) const {
    const auto ju = static_cast<std::size_t>(j);
    double d = phase1 ? 0.0 : cost_[ju];
    for (const auto& [r, v] : columns_[ju]) {
      d -= cb_.values[r] * v;
    }
    return d;
  }

  [[nodiscard]] bool eligible(int j, double d) const {
    const auto ju = static_cast<std::size_t>(j);
    if (status_[ju] == VarStatus::kBasic) return false;
    if (!(upper_[ju] - lower_[ju] > 0.0)) return false;  // fixed (kEq slack)
    return status_[ju] == VarStatus::kAtLower ? d < -options_.optimality_tol
                                              : d > options_.optimality_tol;
  }

  /// Picks the entering column. Partial pricing with Devex weights: the
  /// candidate list is re-scored by d^2 / devex_[j] (approximate steepest
  /// edge — heavily degenerate provisioning LPs crawl under plain Dantzig),
  /// refilling it from a rotating cursor only when it runs dry (one full
  /// wrap with no hit is the optimality proof). Bland mode degrades to a
  /// lowest-index full scan for guaranteed termination.
  int price(bool phase1) {
    if (bland_) {
      for (std::size_t j = 0; j < total_; ++j) {
        if (eligible(static_cast<int>(j),
                     reduced_cost(static_cast<int>(j), phase1))) {
          return static_cast<int>(j);
        }
      }
      return -1;
    }
    int best = -1;
    double best_score = 0.0;
    std::size_t out = 0;
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const int j = candidates_[i];
      const double d = reduced_cost(j, phase1);
      if (!eligible(j, d)) continue;
      candidates_[out++] = j;
      const double score = d * d / devex_[static_cast<std::size_t>(j)];
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
    candidates_.resize(out);
    if (best >= 0) return best;

    ++pricing_passes_;
    candidates_.clear();
    for (std::size_t scanned = 0; scanned < total_; ++scanned) {
      const int j = static_cast<int>(cursor_);
      cursor_ = cursor_ + 1 == total_ ? 0 : cursor_ + 1;
      const double d = reduced_cost(j, phase1);
      if (!eligible(j, d)) continue;
      candidates_.push_back(j);
      const double score = d * d / devex_[static_cast<std::size_t>(j)];
      if (score > best_score) {
        best_score = score;
        best = j;
      }
      if (candidates_.size() >= options_.pricing_candidates) break;
    }
    return best;
  }

  /// Devex weight update after a pivot (entering column q at basis position
  /// r): the full pivot row alpha_r = e_r^T B^-1 A is computed through the
  /// row-wise matrix copy, and every nonbasic column's reference weight is
  /// raised to max(w_j, (alpha_rj/alpha_rq)^2 w_q). One extra btran plus an
  /// O(nnz) pass per pivot buys a steepest-edge-quality pricing signal.
  ///
  /// `wq` is the entering column's EXACT reference-framework weight (from
  /// devex_exact_weight), not the tracked estimate: seeding the recurrence
  /// with the exact value is what keeps the framework honest between
  /// restarts (Forrest & Goldfarb's "exact recurrence" refinement).
  void update_devex(int entering, int leaving, int r, double wq) {
    const double alpha_q = w_.values[static_cast<std::size_t>(r)];
    if (alpha_q == 0.0) return;
    // Drift check: the tracked weight should track the exact one from
    // below. A large disagreement either way means the recurrence has
    // outlived its reference basis.
    const double tracked = devex_[static_cast<std::size_t>(entering)];
    if (tracked > wq * kDevexDriftLimit || wq > tracked * kDevexDriftLimit) {
      devex_drift_pending_ = true;
    }
    if (wq > kDevexResetThreshold) {
      // Weight growth has outlived the framework: restart it around the
      // post-pivot basis instead of propagating the blown-up weights.
      // (status_ still shows the pre-pivot state; the entering column
      // joining the reference set is by-design Devex behavior.)
      reset_devex_framework(/*count=*/true);
      return;
    }
    // rho = row r of B^-1 (btran of the r-th unit vector), in row space.
    rho_.clear();
    rho_.set(r, 1.0);
    basis_state_.btran(rho_);
    const double scale = wq / (alpha_q * alpha_q);
    double rho_max = 0.0;
    for (int i : rho_.nz) {
      rho_max =
          std::max(rho_max, std::abs(rho_.values[static_cast<std::size_t>(i)]));
    }
    // Rows with negligible pivot-row weight cannot move any weight past its
    // current value; skipping them keeps the update pass near the pivot
    // row's true (short) reach instead of its roundoff fill.
    const double rho_cut = rho_max * 1e-7;
    for (int i : rho_.nz) {
      const double rv = rho_.values[static_cast<std::size_t>(i)];
      if (std::abs(rv) <= rho_cut) continue;
      for (const auto& [col, v] : rows_[static_cast<std::size_t>(i)]) {
        alpha_.add(static_cast<int>(col), rv * v);
      }
      // The logical of row i is a unit column: alpha contribution is rv.
      alpha_.add(static_cast<int>(n_) + i, rv);
    }
    for (int j : alpha_.nz) {
      const auto ju = static_cast<std::size_t>(j);
      if (status_[ju] == VarStatus::kBasic) continue;
      const double a = alpha_.values[ju];
      const double cand = a * a * scale;
      if (cand > devex_[ju]) devex_[ju] = cand;
    }
    alpha_.clear();
    devex_[static_cast<std::size_t>(leaving)] =
        std::max(wq / (alpha_q * alpha_q), 1.0);
  }

  struct Ratio {
    double t = kInf;
    int pos = -1;  ///< leaving basis position; -1 means bound flip
    bool to_upper = false;
  };

  /// Soft breakpoint in the long-step phase-1 ratio test: a violated basic
  /// reaching the bound it violates. Passing it adds `weight` (= |w_p|) to
  /// the infeasibility slope.
  struct Breakpoint {
    double cap;
    int pos;
    double weight;
    bool to_upper;
  };

  /// Bounded-variable (phase-2) ratio test. `dir` is +1 entering from
  /// lower, -1 from upper; w_ holds the FTRAN image of the entering column.
  Ratio ratio_test(int entering, double dir) const {
    const auto ent = static_cast<std::size_t>(entering);
    Ratio best;
    best.t = upper_[ent] - lower_[ent];  // bound-flip distance (may be inf)
    best.pos = -1;
    const double ftol = options_.feasibility_tol;
    for (int p : w_.nz) {
      const double wv = w_.values[static_cast<std::size_t>(p)];
      if (std::abs(wv) <= ftol) continue;
      const double s = -dir * wv;  // d x_basic[p] / d t
      const auto col =
          static_cast<std::size_t>(basis_[static_cast<std::size_t>(p)]);
      const double l = lower_[col];
      const double u = upper_[col];
      const double x = x_basic_[static_cast<std::size_t>(p)];
      double cap = kInf;
      bool to_upper = false;
      if (s < 0.0) {
        if (l == -kInf) continue;
        cap = (x - l) / (-s);
        to_upper = false;
      } else {
        if (u == kInf) continue;
        cap = (u - x) / s;
        to_upper = true;
      }
      if (cap < 0.0) cap = 0.0;
      bool take = false;
      if (cap < best.t - kRatioTieTol) {
        take = true;
      } else if (best.pos >= 0 && cap <= best.t + kRatioTieTol) {
        // Tie between two leaving candidates: prefer the larger pivot for
        // stability; under Bland, the lowest column index for termination.
        const double bw =
            std::abs(w_.values[static_cast<std::size_t>(best.pos)]);
        take = bland_ ? static_cast<int>(col) <
                            basis_[static_cast<std::size_t>(best.pos)]
                      : std::abs(wv) > bw;
      }
      if (take) {
        best.t = cap;
        best.pos = p;
        best.to_upper = to_upper;
      }
    }
    return best;
  }

  /// Long-step composite phase-1 ratio test. Feasible basics block hard at
  /// their bounds (no new violations are ever created), but a VIOLATED
  /// basic merely stops reducing the infeasibility once it reaches the
  /// bound it violates — the entering variable may travel past that
  /// breakpoint as long as the total infeasibility slope stays negative.
  /// One pivot can therefore repair many violated rows at once (e.g. a
  /// capacity-peak column covering every violated slot row of its DC).
  /// `d` is the phase-1 reduced cost of the entering column.
  Ratio ratio_test_phase1(int entering, double dir, double d) const {
    const auto ent = static_cast<std::size_t>(entering);
    const double ftol = options_.feasibility_tol;

    double hard_cap = upper_[ent] - lower_[ent];  // bound flip (may be inf)
    int hard_pos = -1;
    bool hard_to_upper = false;
    breakpoints_.clear();
    for (int p : w_.nz) {
      const double wv = w_.values[static_cast<std::size_t>(p)];
      if (std::abs(wv) <= ftol) continue;
      const double s = -dir * wv;  // d x_basic[p] / d t
      const auto col =
          static_cast<std::size_t>(basis_[static_cast<std::size_t>(p)]);
      const double l = lower_[col];
      const double u = upper_[col];
      const double x = x_basic_[static_cast<std::size_t>(p)];
      double cap = kInf;
      bool to_upper = false;
      bool soft = false;
      if (x < l - ftol) {
        if (s <= 0.0) continue;  // drifting further below: no block
        cap = (l - x) / s;
        to_upper = false;
        // Fixed variables (l == u) re-violate immediately past the bound;
        // ranged ones travel on to their far bound, so the first touch is
        // only a slope change unless the range is degenerate.
        soft = u > l;
        if (u < kInf && soft) {
          // Far bound is a hard block further out; fold it in.
          const double far = (u - x) / s;
          if (far < hard_cap) {
            hard_cap = far;
            hard_pos = p;
            hard_to_upper = true;
          }
        }
      } else if (x > u + ftol) {
        if (s >= 0.0) continue;
        cap = (u - x) / s;  // s < 0, cap >= 0
        to_upper = true;
        soft = u > l;
        if (l > -kInf && soft) {
          const double far = (l - x) / s;
          if (far < hard_cap) {
            hard_cap = far;
            hard_pos = p;
            hard_to_upper = false;
          }
        }
      } else if (s < 0.0) {
        if (l == -kInf) continue;
        cap = (x - l) / (-s);
        to_upper = false;
      } else {
        if (u == kInf) continue;
        cap = (u - x) / s;
        to_upper = true;
      }
      if (cap < 0.0) cap = 0.0;
      if (soft) {
        breakpoints_.push_back({cap, p, std::abs(wv), to_upper});
      } else if (cap < hard_cap ||
                 (hard_pos >= 0 && cap <= hard_cap + kRatioTieTol &&
                  std::abs(wv) >
                      std::abs(w_.values[static_cast<std::size_t>(hard_pos)]))) {
        hard_cap = cap;
        hard_pos = p;
        hard_to_upper = to_upper;
      }
    }

    std::sort(breakpoints_.begin(), breakpoints_.end(),
              [](const Breakpoint& a, const Breakpoint& b) {
                return a.cap < b.cap;
              });
    // Walk the soft breakpoints while the infeasibility keeps decreasing.
    double slope = dir * d;  // < 0: rate of infeasibility change per unit t
    Ratio best;
    best.t = kInf;
    for (const Breakpoint& bp : breakpoints_) {
      if (bp.cap >= hard_cap) break;
      slope += bp.weight;
      if (slope >= -options_.optimality_tol || bp.cap >= hard_cap) {
        best.t = bp.cap;
        best.pos = bp.pos;
        best.to_upper = bp.to_upper;
        return best;
      }
    }
    best.t = hard_cap;
    best.pos = hard_pos;
    best.to_upper = hard_to_upper;
    return best;
  }

  SolveStatus run_phase(bool phase1, std::size_t& iterations) {
    bland_ = false;
    candidates_.clear();
    reset_devex_framework(/*count=*/false);  // new reference framework
    std::size_t stalled = 0;
    double last_obj = phase1 ? infeasibility() : objective_value();
    const double ftol = options_.feasibility_tol;
    // The duals (cb_) stay valid across bound flips — a flip changes no
    // basis column — so consecutive flips skip the BTRAN and share one
    // pricing state. Pivots and refactorizations invalidate them.
    bool duals_fresh = false;
    while (true) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      if (basis_state_.update_count() >= options_.refactor_interval) {
        if (!refactorize()) {
          throw InternalError("sparse simplex: basis repair failed");
        }
        duals_fresh = false;
      }

      if (!duals_fresh) {
        // BTRAN the phase objective's basic costs into row space (cb_
        // doubles as the y workspace used by reduced_cost()).
        cb_.clear();
        for (std::size_t p = 0; p < m_; ++p) {
          double c;
          if (phase1) {
            const auto col = static_cast<std::size_t>(basis_[p]);
            const double x = x_basic_[p];
            c = x < lower_[col] - ftol ? -1.0
                                       : (x > upper_[col] + ftol ? 1.0 : 0.0);
          } else {
            c = cost_[static_cast<std::size_t>(basis_[p])];
          }
          if (c != 0.0) cb_.set(static_cast<int>(p), c);
        }
        basis_state_.btran(cb_);
        duals_fresh = true;
      }

      const int entering = price(phase1);
      if (entering < 0) {
        // Optimality (or phase-1 completion) is only declared against fresh
        // factors: eta-file drift in the duals can hide reduced costs at the
        // tie-break scale. Refactorize and price once more.
        if (basis_state_.update_count() > 0) {
          if (!refactorize()) {
            throw InternalError("sparse simplex: basis repair failed");
          }
          candidates_.clear();
          duals_fresh = false;
          continue;
        }
        return SolveStatus::kOptimal;
      }

      w_.clear();
      for (const auto& [r, v] : columns_[static_cast<std::size_t>(entering)]) {
        w_.add(static_cast<int>(r), v);
      }
      basis_state_.ftran(w_);

      const double dir =
          status_[static_cast<std::size_t>(entering)] == VarStatus::kAtUpper
              ? -1.0
              : 1.0;
      const Ratio ratio =
          phase1 ? ratio_test_phase1(entering, dir,
                                     reduced_cost(entering, /*phase1=*/true))
                 : ratio_test(entering, dir);
      if (ratio.t == kInf) {
        if (basis_state_.update_count() > 0) {
          // Stale duals from accumulated eta updates can nominate a column
          // with no blocking pivot; refresh the factorization and re-price.
          if (!refactorize()) {
            throw InternalError("sparse simplex: basis repair failed");
          }
          candidates_.clear();
          duals_fresh = false;
          continue;
        }
        if (phase1) {
          double wmax = 0.0;
          for (int p : w_.nz) {
            wmax = std::max(
                wmax, std::abs(w_.values[static_cast<std::size_t>(p)]));
          }
          throw InternalError(
              "sparse simplex: phase-1 unbounded (col=" +
              std::to_string(entering) +
              " d=" + std::to_string(reduced_cost(entering, phase1)) +
              " wmax=" + std::to_string(wmax) +
              " iter=" + std::to_string(iterations) +
              " infeas=" + std::to_string(infeasibility()) + ")");
        }
        return SolveStatus::kUnbounded;
      }

      if (ratio.pos < 0) {
        // Bound flip: the entering variable crosses its whole range without
        // any basic variable blocking; no basis change — and therefore no
        // dual change in phase 2, so the next iteration reuses cb_ and the
        // candidate list instead of paying a BTRAN + pricing pass per flip.
        const auto ent = static_cast<std::size_t>(entering);
        for (int p : w_.nz) {
          x_basic_[static_cast<std::size_t>(p)] -=
              dir * ratio.t * w_.values[static_cast<std::size_t>(p)];
        }
        const double old_v = nonbasic_value(entering);
        status_[ent] = status_[ent] == VarStatus::kAtLower
                           ? VarStatus::kAtUpper
                           : VarStatus::kAtLower;
        nb_cost_ += cost_[ent] * (nonbasic_value(entering) - old_v);
        ++bound_flips_;
        // Phase-1 costs depend on which basics are violated, and the flip
        // just moved every basic in the entering column's pattern — only
        // phase 2's duals survive.
        if (phase1) duals_fresh = false;
      } else {
        // Devex needs the pre-pivot basis for the pivot-row btran, so the
        // weights are updated before the eta is appended.
        update_devex(entering, basis_[static_cast<std::size_t>(ratio.pos)],
                     ratio.pos, devex_exact_weight(entering));
        // Pivot: append the update eta first — on a numerically unsafe
        // pivot, refactorize and retry the iteration with fresh factors.
        if (!basis_state_.update(ratio.pos, w_)) {
          if (!refactorize()) {
            throw InternalError("sparse simplex: basis repair failed");
          }
          candidates_.clear();
          duals_fresh = false;
          continue;
        }
        const auto ent = static_cast<std::size_t>(entering);
        const auto lpos = static_cast<std::size_t>(ratio.pos);
        const int leaving = basis_[lpos];
        const auto lea = static_cast<std::size_t>(leaving);
        for (int p : w_.nz) {
          x_basic_[static_cast<std::size_t>(p)] -=
              dir * ratio.t * w_.values[static_cast<std::size_t>(p)];
        }
        nb_cost_ -= cost_[ent] * nonbasic_value(entering);
        status_[lea] =
            ratio.to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        pos_of_[lea] = -1;
        nb_cost_ += cost_[lea] * nonbasic_value(leaving);
        basis_[lpos] = entering;
        pos_of_[ent] = ratio.pos;
        status_[ent] = VarStatus::kBasic;
        x_basic_[lpos] = dir > 0.0 ? lower_[ent] + ratio.t
                                   : upper_[ent] - ratio.t;
        duals_fresh = false;
      }
      ++iterations;

      const double obj = phase1 ? infeasibility() : objective_value();
      if (obj < last_obj - kStallRelTol * (1.0 + std::abs(last_obj))) {
        stalled = 0;
        last_obj = obj;
        if (bland_) {
          // Degenerate plateau broken: return to partial pricing. Bland's
          // rule guarantees escape but converges far too slowly to keep
          // beyond the plateau that triggered it.
          bland_ = false;
          candidates_.clear();
        }
      } else if (++stalled >= options_.stall_limit && !bland_) {
        bland_ = true;
        candidates_.clear();
      }
    }
  }

  const SimplexOptions options_;
  const std::size_t n_;      ///< structural variables
  const std::size_t m_;      ///< rows (= logical variables)
  const std::size_t total_;  ///< n_ + m_

  std::vector<SparseCol> columns_;  ///< structurals then logicals
  std::vector<SparseCol> rows_;     ///< row-wise structural copy (Devex)
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<double> rhs_;
  double rhs_scale_ = 1.0;

  Basis basis_state_;
  std::vector<int> basis_;   ///< column id per basis position
  std::vector<int> pos_of_;  ///< column id -> basis position or -1
  std::vector<VarStatus> status_;
  std::vector<double> x_basic_;  ///< value of the basic var at each position
  double nb_cost_ = 0.0;  ///< objective contribution of nonbasic variables

  std::vector<int> candidates_;  ///< partial-pricing list
  std::vector<double> devex_;    ///< Devex reference weights per column
  std::vector<unsigned char> in_ref_;  ///< Devex reference-set membership
  std::size_t cursor_ = 0;
  std::size_t pricing_passes_ = 0;
  std::size_t bound_flips_ = 0;
  std::size_t devex_resets_ = 0;
  bool devex_drift_pending_ = false;
  bool bland_ = false;

  mutable std::vector<Breakpoint> breakpoints_;  ///< phase-1 workspace

  IndexedVector w_;      ///< entering column FTRAN image (position space)
  IndexedVector cb_;     ///< basic costs -> BTRAN -> dual values y
  IndexedVector bwork_;  ///< rhs workspace for compute_basic_values()
  IndexedVector rho_;    ///< pivot-row workspace for update_devex()
  IndexedVector alpha_;  ///< pivot-row in column space (Devex)
};

}  // namespace

SfSolution solve_sparse(const StandardForm& sf, const SimplexOptions& options,
                        const std::vector<VarStatus>* warm,
                        SparseSolveStats* stats) {
  const std::size_t n = sf.var_count();
  if (sf.rows.empty()) {
    // No constraints: each variable independently sits at whichever bound
    // minimizes its cost term.
    SfSolution out;
    out.status = SolveStatus::kOptimal;
    out.values.assign(n, 0.0);
    out.statuses.assign(n, VarStatus::kAtLower);
    for (std::size_t j = 0; j < n; ++j) {
      if (sf.cost[j] < 0.0) {
        if (sf.upper[j] == kInf) {
          out.status = SolveStatus::kUnbounded;
          return out;
        }
        out.values[j] = sf.upper[j];
        out.statuses[j] = VarStatus::kAtUpper;
      }
    }
    return out;
  }
  SparseSimplex engine(sf, options);
  return engine.run(warm, stats);
}

}  // namespace sb::lp
