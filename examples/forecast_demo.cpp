// Forecast demo: the §5.2 pipeline on one call config — build a bucketed
// call-count series, fit Holt-Winters with weekly seasonality, forecast two
// weeks ahead, and show the accuracy plus the validation cushion that
// provisioning applies.
//
// Flags: --config=0 --history_weeks=8
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "forecast/forecaster.h"
#include "trace/scenario.h"

namespace {
double flag(int argc, char** argv, const std::string& name, double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
  }
  return fallback;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const auto config_idx = static_cast<std::size_t>(flag(argc, argv, "config", 0));
  const auto history_weeks =
      static_cast<std::size_t>(flag(argc, argv, "history_weeks", 8));

  Scenario scenario = make_apac_scenario();
  const TraceGenerator& trace = *scenario.trace;
  require(config_idx < trace.universe().configs.size(),
          "--config out of range");
  const ConfigUsage& usage = trace.universe().configs[config_idx];
  std::cout << "forecasting config "
            << scenario.registry->get(usage.config).describe(scenario.world())
            << " (home " << scenario.world().location(usage.home).name
            << ", weekly growth "
            << format_double(usage.weekly_growth, 4) << ")\n\n";

  const double bucket_s = trace.params().bucket_s;
  const auto season = static_cast<std::size_t>(kSecondsPerWeek / bucket_s);
  const double history_end = history_weeks * kSecondsPerWeek;
  const double horizon_end = history_end + 2 * kSecondsPerWeek;

  const auto history =
      trace.arrival_count_series(config_idx, 0.0, history_end);
  const auto truth =
      trace.arrival_count_series(config_idx, history_end, horizon_end);

  HoltWinters model = HoltWinters::fit(history, season);
  std::cout << "fitted Holt-Winters: alpha="
            << format_double(model.params().alpha, 2)
            << " beta=" << format_double(model.params().beta, 2)
            << " gamma=" << format_double(model.params().gamma, 2)
            << " (season " << season << " buckets = 1 week)\n\n";

  auto forecast = model.forecast(truth.size());
  for (double& v : forecast) v = std::max(0.0, v);

  TextTable table({"day", "truth", "forecast", "error %"});
  const auto per_day = static_cast<std::size_t>(kSecondsPerDay / bucket_s);
  for (std::size_t d = 0; d < 14; ++d) {
    double t_sum = 0.0;
    double f_sum = 0.0;
    for (std::size_t b = d * per_day;
         b < std::min((d + 1) * per_day, truth.size()); ++b) {
      t_sum += truth[b];
      f_sum += forecast[b];
    }
    table.row()
        .cell(std::to_string(d + 1))
        .cell(t_sum, 0)
        .cell(f_sum, 0)
        .cell(t_sum > 0 ? 100.0 * (f_sum - t_sum) / t_sum : 0.0, 1);
  }
  std::cout << table;

  const NormalizedErrors errors = normalized_errors(truth, forecast);
  std::cout << "\npeak-normalized RMSE "
            << format_double(100.0 * errors.rmse, 1) << "%, MAE "
            << format_double(100.0 * errors.mae, 1)
            << "% (paper medians: 13% / 8%)\n";
  const double cushion = estimate_cushion(truth, forecast);
  std::cout << "provisioning cushion from this window: "
            << format_double(cushion, 3) << "x\n";
  return 0;
}
