// Ablation of Switchboard's design ideas (§4) on the Table 3 workload:
//   1. peak-aware backup OFF   -> additive Eq 1-2 backup (Fig 4b style)
//   2. capacity reuse OFF      -> every failure scenario priced from scratch
//   3. joint compute+network OFF -> compute-first LP, network follows
//   4. joint scenario LP ON    -> the exact Eq 3+7/8 formulation (upper
//                                 bound on what the decomposition can save)
//   5. application-specific OFF -> usage-log provisioning: capacity pinned
//      to the historical placement's per-DC/per-link peaks, scaled for
//      growth, with no ability to re-shift calls (§4.4's contrast).
//
// Flags: --slot_s=10800 --configs=14 --growth=1.3
#include <iostream>

#include "baselines/locality_first.h"
#include "bench_util.h"
#include "core/backup_lp.h"
#include "core/provisioner.h"

namespace sb {
namespace {

struct Row {
  std::string variant;
  double cores;
  double wan;
  double cost;
};

}  // namespace

int run(int argc, char** argv) {
  const double slot_s = bench::arg_double(argc, argv, "slot_s", 10800.0);
  const std::size_t configs = bench::arg_size(argc, argv, "configs", 14);
  const double growth = bench::arg_double(argc, argv, "growth", 1.3);

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const DemandMatrix demand =
      bench::design_day_demand(scenario, slot_s, configs);
  const World& world = scenario.world();
  const Topology& topo = scenario.topology();

  std::cout << "Ablation of Switchboard's §4 ideas (with backup, DC + link "
               "failures)\n\n";

  auto provision = [&](ProvisionOptions options) {
    options.include_link_failures = true;
    return SwitchboardProvisioner(ctx, options).provision(demand);
  };

  std::vector<Row> rows;
  auto add = [&](const std::string& name, const CapacityPlan& plan) {
    rows.push_back({name, plan.total_cores(), plan.total_wan_gbps(),
                    plan.total_cost(world, topo)});
  };

  ProvisionOptions full;
  add("full Switchboard (sequential reuse)", provision(full).capacity);

  ProvisionOptions joint = full;
  joint.joint_scenarios = true;
  add("exact joint scenario LP (Eq 3+7/8)", provision(joint).capacity);

  ProvisionOptions no_reuse = full;
  no_reuse.capacity_reuse = false;
  add("capacity reuse OFF (independent scenarios)",
      provision(no_reuse).capacity);

  ProvisionOptions additive = full;
  additive.peak_aware_backup = false;
  add("peak-aware backup OFF (additive Eq 1-2)", provision(additive).capacity);

  ProvisionOptions compute_first = full;
  compute_first.joint_network = false;
  add("joint compute+network OFF (compute-first)",
      provision(compute_first).capacity);

  TextTable table({"Variant", "Cores", "WAN Gbps", "Cost", "Cost vs full"});
  const double full_cost = rows.front().cost;
  for (const Row& r : rows) {
    table.row()
        .cell(r.variant)
        .cell(r.cores, 1)
        .cell(r.wan, 3)
        .cell(r.cost, 1)
        .cell(r.cost / full_cost);
  }
  std::cout << table;

  // ---- §4.4: application-specific vs usage-log provisioning ----
  print_banner(std::cout,
               "application-specific provisioning under demand growth "
               "(§4.4)");
  // Grow India-homed demand by `growth`; the app-aware planner re-solves
  // and can shift calls, while usage-log provisioning must scale the old
  // placement's per-resource peaks in place.
  const LocationId in = *world.find_location("IN");
  DemandMatrix grown = make_demand_matrix(demand.configs(),
                                          demand.slot_count());
  for (std::size_t c = 0; c < demand.config_count(); ++c) {
    const bool india_homed =
        scenario.registry->get(demand.config_at(c)).majority_location() == in;
    for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
      grown.set_demand(t, c,
                       demand.demand(t, c) * (india_homed ? growth : 1.0));
    }
  }
  ProvisionOptions no_backup;
  no_backup.with_backup = false;
  const ProvisionResult app_aware =
      SwitchboardProvisioner(ctx, no_backup).provision(grown);

  // Usage-log provisioning: yesterday's placement (LF on the old demand),
  // each DC/link peak scaled by that resource's own observed growth.
  const PlacementMatrix old_placement = locality_first_placement(demand, ctx);
  PlacementMatrix grown_placement(demand.slot_count(), demand.config_count(),
                                  world.dc_count());
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      for (DcId dc : world.dc_ids()) {
        const double share = demand.demand(t, c) > 0
                                 ? old_placement.calls(t, c, dc) /
                                       demand.demand(t, c)
                                 : 0.0;
        grown_placement.set_calls(t, c, dc, share * grown.demand(t, c));
      }
    }
  }
  const CapacityPlan usage_log =
      plan_from_usage(compute_usage(grown_placement, grown, ctx));

  TextTable app({"Approach", "Cores", "WAN Gbps", "Cost"});
  app.row()
      .cell("app-specific (re-optimizes placement)")
      .cell(app_aware.capacity.total_cores(), 1)
      .cell(app_aware.capacity.total_wan_gbps(), 3)
      .cell(app_aware.capacity.total_cost(world, topo), 1);
  app.row()
      .cell("usage-log (scales old placement)")
      .cell(usage_log.total_cores(), 1)
      .cell(usage_log.total_wan_gbps(), 3)
      .cell(usage_log.total_cost(world, topo), 1);
  std::cout << app;
  std::cout << "\napp-specific provisioning absorbs the India surge by "
               "shifting calls instead of growing the India peak (§4.4)\n";
  return 0;
}

}  // namespace sb

int main(int argc, char** argv) { return sb::run(argc, argv); }
