file(REMOVE_RECURSE
  "CMakeFiles/sb_trace.dir/config_sampler.cpp.o"
  "CMakeFiles/sb_trace.dir/config_sampler.cpp.o.d"
  "CMakeFiles/sb_trace.dir/diurnal.cpp.o"
  "CMakeFiles/sb_trace.dir/diurnal.cpp.o.d"
  "CMakeFiles/sb_trace.dir/scenario.cpp.o"
  "CMakeFiles/sb_trace.dir/scenario.cpp.o.d"
  "CMakeFiles/sb_trace.dir/trace_gen.cpp.o"
  "CMakeFiles/sb_trace.dir/trace_gen.cpp.o.d"
  "libsb_trace.a"
  "libsb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
