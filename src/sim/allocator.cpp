#include "sim/allocator.h"

#include "baselines/baseline.h"
#include "common/error.h"

namespace sb {

RoundRobinAllocator::RoundRobinAllocator(EvalContext ctx) : ctx_(ctx) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "RoundRobinAllocator: incomplete context");
  std::unordered_map<std::string, std::size_t> region_index;
  const std::size_t locations = ctx_.world->location_count();
  location_region_.resize(locations);
  for (std::size_t i = 0; i < locations; ++i) {
    const std::string& region =
        ctx_.world->location(LocationId(static_cast<std::uint32_t>(i))).region;
    const auto [it, inserted] =
        region_index.emplace(region, region_dcs_.size());
    if (inserted) {
      std::vector<DcId> dcs = ctx_.world->dcs_in_region(region);
      if (dcs.empty()) dcs = ctx_.world->dc_ids();
      region_dcs_.push_back(std::move(dcs));
    }
    location_region_[i] = it->second;
  }
  region_cursor_.assign(region_dcs_.size(), 0);
}

DcId RoundRobinAllocator::on_call_start(CallId call, LocationId first_joiner,
                                        SimTime /*now*/) {
  const std::size_t region = location_region_[first_joiner.value()];
  const std::vector<DcId>& dcs = region_dcs_[region];
  std::size_t& cursor = region_cursor_[region];
  const DcId dc = dcs[cursor % dcs.size()];
  ++cursor;
  active_[call] = dc;
  return dc;
}

FreezeResult RoundRobinAllocator::on_config_frozen(CallId call,
                                                   const CallConfig& /*config*/,
                                                   SimTime /*now*/) {
  const auto it = active_.find(call);
  require(it != active_.end(), "RoundRobinAllocator: unknown call");
  return FreezeResult{it->second, false, false, ServerId()};
}

void RoundRobinAllocator::on_call_end(CallId call, SimTime /*now*/) {
  active_.erase(call);
}

LocalityFirstAllocator::LocalityFirstAllocator(EvalContext ctx) : ctx_(ctx) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "LocalityFirstAllocator: incomplete context");
  all_dcs_ = ctx_.world->dc_ids();
  dc_down_.assign(all_dcs_.size(), 0);
}

std::vector<DcId> LocalityFirstAllocator::up_dcs() const {
  std::vector<DcId> up;
  up.reserve(all_dcs_.size());
  for (DcId dc : all_dcs_) {
    if (dc_up(dc)) up.push_back(dc);
  }
  // Everything down: fail open rather than refuse placement.
  return up.empty() ? all_dcs_ : up;
}

DcId LocalityFirstAllocator::on_call_start(CallId call,
                                           LocationId first_joiner,
                                           SimTime /*now*/) {
  const DcId dc = ctx_.latency->closest_dc(first_joiner, up_dcs());
  active_[call] = {dc, first_joiner};
  return dc;
}

FreezeResult LocalityFirstAllocator::on_config_frozen(CallId call,
                                                      const CallConfig& config,
                                                      SimTime /*now*/) {
  const auto it = active_.find(call);
  require(it != active_.end(), "LocalityFirstAllocator: unknown call");
  std::vector<DcId> candidates = region_candidates(config, *ctx_.world);
  std::erase_if(candidates, [&](DcId dc) { return !dc_up(dc); });
  if (candidates.empty()) candidates = up_dcs();
  const DcId target = min_acl_dc(config, candidates, *ctx_.latency);
  FreezeResult result{target, target != it->second.dc, false,
                      ServerId()};
  if (result.migrated) {
    ++migrations_;
    it->second.dc = target;
  }
  return result;
}

void LocalityFirstAllocator::on_call_end(CallId call, SimTime /*now*/) {
  active_.erase(call);
}

fault::FailoverOutcome LocalityFirstAllocator::on_dc_failed(DcId dc,
                                                            SimTime /*now*/) {
  dc_down_[dc.value()] = 1;
  // LF has no backup pool and no capacity notion: every evacuated call goes
  // to the surviving DC closest to its first joiner, whatever that DC's
  // provisioned size. Calls are never dropped — the realized usage overrun
  // (not a drop count) is how LF pays for failures.
  fault::FailoverOutcome outcome;
  for (auto& [id, state] : active_) {
    if (state.dc != dc) continue;
    const DcId target = ctx_.latency->closest_dc(state.first_joiner, up_dcs());
    outcome.moved.push_back({id, state.dc, target, ServerId()});
    state.dc = target;
  }
  return outcome;
}

void LocalityFirstAllocator::on_dc_recovered(DcId dc, SimTime /*now*/) {
  dc_down_[dc.value()] = 0;
}

}  // namespace sb
