#include "check/fuzzer.h"

#include <algorithm>

#include "common/rng.h"
#include "geo/world_presets.h"
#include "loop/demand_schedule.h"
#include "lp/solver.h"
#include "trace/diurnal.h"
#include "trace/trace_gen.h"

namespace sb::check {

namespace {

/// Stamps a flash-crowd DemandSchedule onto the serialized trace: each call
/// takes its multiplier at (start, first-joiner location) and is thinned
/// (m < 1) or duplicated (m >= 1, fresh ids above the existing range) —
/// the FuzzCall twin of loop::DemandSchedule::scale_trace, kept in sync
/// with its semantics so shrunk repros describe the same transformation.
void apply_flash(std::vector<FuzzCall>& calls, const loop::DemandSchedule& sched,
                 Rng& rng, std::size_t max_calls) {
  std::uint64_t next_id = 0;
  for (const FuzzCall& fc : calls) next_id = std::max(next_id, fc.id + 1);
  std::vector<FuzzCall> scaled;
  scaled.reserve(calls.size());
  for (const FuzzCall& fc : calls) {
    const LocationId first =
        fc.legs.empty() ? LocationId() : fc.legs.front().location;
    const double m = sched.multiplier_at(fc.start_s, first);
    if (m < 1.0) {
      if (rng.chance(m)) scaled.push_back(fc);
      continue;
    }
    scaled.push_back(fc);
    const double extra = m - 1.0;
    auto copies = static_cast<std::size_t>(extra);
    if (rng.chance(extra - static_cast<double>(copies))) ++copies;
    for (std::size_t k = 0; k < copies; ++k) {
      FuzzCall dup = fc;
      dup.id = next_id++;
      scaled.push_back(std::move(dup));
    }
  }
  if (scaled.size() > max_calls) scaled.resize(max_calls);
  calls = std::move(scaled);
}

}  // namespace

FuzzCase ScenarioFuzzer::generate(std::uint64_t seed) const {
  // Mix the raw seed so consecutive --seed-base runs do not feed xoshiro
  // near-identical states (splitmix inside Rng handles most of it; the
  // constant keeps seed 0 away from the Rng default).
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234abcdULL);

  FuzzCase c;
  c.seed = seed;

  // World: a handful of locations and DCs over a random geographic box.
  RandomWorldParams wp;
  wp.dc_count = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params_.min_dcs),
                      static_cast<std::int64_t>(params_.max_dcs)));
  wp.location_count = std::max(
      wp.dc_count, static_cast<std::size_t>(rng.uniform_int(
                       4, static_cast<std::int64_t>(params_.max_locations))));
  wp.knn = static_cast<std::size_t>(rng.uniform_int(2, 3));
  GeoModel geo = make_random_world(rng, wp);
  c.world.locations = geo.world.locations();
  c.world.dcs = geo.world.datacenters();
  c.world.links = geo.topology.links();

  // Config universe + trace shape.
  UniverseParams up;
  up.config_count = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params_.min_configs),
                      static_cast<std::int64_t>(params_.max_configs)));
  up.zipf_exponent = rng.uniform(0.6, 1.8);
  up.total_peak_rate_per_hour = rng.uniform(params_.min_peak_rate_per_hour,
                                            params_.max_peak_rate_per_hour);
  up.multi_country_prob = rng.uniform(0.0, 0.4);
  up.size_geometric_p = 0.5;
  up.max_participants = 10;

  TraceParams tp;
  tp.bucket_s = 900.0;
  tp.mean_duration_s = rng.uniform(240.0, 1500.0);
  tp.duration_sigma = rng.uniform(0.4, 0.9);
  tp.join_p80_s = rng.uniform(120.0, 360.0);
  tp.media_upgrade_prob = rng.uniform(0.0, 0.8);

  // Window: a weekday daytime stretch so the diurnal shape is non-trivial.
  const double day = static_cast<double>(rng.uniform_int(0, 4));
  const double start_hour = rng.uniform(8.0, 16.0);
  c.window_start_s = day * kSecondsPerDay + start_hour * kSecondsPerHour;
  c.window_end_s =
      c.window_start_s + rng.uniform(params_.min_window_s, params_.max_window_s);

  // Options are drawn BEFORE the trace so their stream position is fixed
  // (db size only gates use_plan after the fact).
  FuzzOptions& o = c.options;
  o.freeze_delay_s = rng.uniform(60.0, 600.0);
  const double buckets[] = {30.0, 60.0, 120.0};
  o.bucket_s = buckets[rng.uniform_index(3)];
  o.slot_s = 900.0;
  const std::size_t shards[] = {1, 2, 4, 16};
  o.shard_count = shards[rng.uniform_index(4)];
  o.sim_threads = static_cast<std::size_t>(rng.uniform_int(2, 4));
  o.use_plan = rng.chance(params_.plan_prob);
  o.with_backup = rng.chance(0.8);
  o.include_link_failures = rng.chance(0.5);
  o.floor_mode = rng.chance(0.5) ? 1 : 0;
  o.scenario_threads = rng.chance(0.5) ? 2 : 1;
  o.lp_method = rng.chance(0.8) ? static_cast<int>(lp::Method::kAuto)
                                : static_cast<int>(lp::Method::kSparse);
  o.rebuild_storm = rng.chance(params_.rebuild_storm_prob);
  o.chaos_skip_drain_credit = params_.chaos_skip_drain_credit;
  o.chaos_skip_server_credit = params_.chaos_skip_server_credit;

  // Fleet: optionally split every DC into 2..4 media servers. Cores are at
  // call-footprint scale (a 10-participant video call is ~0.3 cores) so
  // packing pressure, overflow admits, and stragglers all actually occur.
  // Three shapes: uniform, heterogeneous, and single-straggler (one server
  // barely larger than the biggest call).
  const bool with_fleet =
      params_.chaos_skip_server_credit || rng.chance(params_.fleet_prob);
  if (with_fleet) {
    const std::size_t shape = rng.uniform_index(3);
    for (std::uint32_t d = 0; d < c.world.dcs.size(); ++d) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(2, 4));
      const std::size_t straggler = rng.uniform_index(n);
      const double uniform_cores = rng.uniform(0.5, 2.0);
      for (std::size_t s = 0; s < n; ++s) {
        FuzzServer srv;
        srv.dc = d;
        switch (shape) {
          case 0:
            srv.cores = uniform_cores;
            break;
          case 1:
            srv.cores = rng.uniform(0.4, 3.0);
            break;
          default:
            srv.cores =
                s == straggler ? rng.uniform(0.25, 0.5) : rng.uniform(1.5, 3.0);
            break;
        }
        c.world.servers.push_back(srv);
      }
    }
  }

  // Fault storm: outage pairs over the window; durations may straddle the
  // window end (the up edge then lands after the last call event). Fleet
  // cases mix in single-server failures; the server-credit chaos knob needs
  // at least one (the leak only manifests when a drain moves calls).
  auto outages = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params_.min_outages),
                      static_cast<std::int64_t>(params_.max_outages)));
  if (params_.chaos_skip_server_credit && outages == 0) outages = 1;
  const double mean_outage_s = rng.uniform(180.0, 1200.0);
  const double server_fraction =
      params_.chaos_skip_server_credit ? 1.0 : params_.server_outage_fraction;
  // The drain-credit leak only fires on DC drains, so that chaos knob
  // concentrates every outage on DCs (the same way the server-credit knob
  // forces server_fraction to 1); detection then lands within the smoke
  // tests' 16-seed budget.
  const double link_fraction = params_.chaos_skip_drain_credit ? 0.0 : 0.25;
  const std::size_t faultable_servers =
      params_.chaos_skip_drain_credit ? 0 : c.world.servers.size();
  const fault::FaultSchedule storm = fault::FaultSchedule::random(
      rng, c.world.dcs.size(), c.world.links.size(), outages, c.window_start_s,
      c.window_end_s, mean_outage_s, link_fraction, faultable_servers,
      server_fraction);
  c.faults = storm.events();

  // Trace: materialize the call records and carry them as plain calls (the
  // config is reconstructed from the legs at materialize time).
  CallConfigRegistry registry;
  const ConfigUniverse universe =
      sample_universe(geo.world, registry, up, rng);
  const TraceGenerator gen(geo.world, registry, universe, DiurnalShape{}, tp,
                           seed);
  const CallRecordDatabase db = gen.generate(c.window_start_s, c.window_end_s);
  c.calls.reserve(std::min(db.size(), params_.max_calls));
  for (const CallRecord& rec : db.records()) {
    if (c.calls.size() >= params_.max_calls) break;
    FuzzCall fc;
    fc.id = rec.id.value();
    fc.media = registry.get(rec.config).media();
    fc.start_s = rec.start_s;
    fc.duration_s = rec.duration_s;
    fc.media_change_offset_s = rec.media_change_offset_s;
    fc.legs = rec.legs;
    c.calls.push_back(std::move(fc));
  }

  if (c.calls.empty()) {
    // Nothing to provision against; fall back to the plan-less path.
    o.use_plan = false;
    o.rebuild_storm = false;
  }
  if (!o.use_plan) o.rebuild_storm = false;

  // Cluster draws come LAST so every earlier draw keeps its stream
  // position: a non-cluster case is byte-identical to the pre-cluster
  // generator's output for the same seed.
  const bool cluster =
      o.use_plan && (params_.worker_kill_storm || params_.chaos_skip_wal_freeze ||
                     rng.chance(params_.cluster_prob));
  if (cluster) {
    const std::size_t worker_choices[] = {1, 2, 4};
    o.workers = std::min(worker_choices[rng.uniform_index(3)], o.shard_count);
    o.lease_ttl_s = rng.uniform(20.0, 120.0);
    o.chaos_skip_wal_freeze = params_.chaos_skip_wal_freeze;
    auto kills = static_cast<std::size_t>(rng.uniform_int(0, 2));
    if (params_.worker_kill_storm) {
      kills = static_cast<std::size_t>(rng.uniform_int(3, 6));
    }
    // The planted WAL bug only manifests across a crash, so chaos mode
    // guarantees at least one kill.
    if (params_.chaos_skip_wal_freeze && kills == 0) kills = 1;
    if (kills > 0) {
      fault::FaultSchedule wstorm;
      for (std::size_t k = 0; k < kills; ++k) {
        const auto w =
            static_cast<std::uint32_t>(rng.uniform_index(o.workers));
        const SimTime at = rng.uniform(c.window_start_s, c.window_end_s);
        const double down_s = rng.uniform(30.0, 900.0);
        wstorm.fail_worker(WorkerId(w), at, down_s);
      }
      for (const fault::FaultEvent& e : wstorm.events()) {
        c.faults.push_back(e);
      }
      // Keep c.faults time-sorted: the oracles' down-at scans early-exit on
      // the first event past t.
      std::stable_sort(c.faults.begin(), c.faults.end(),
                       [](const fault::FaultEvent& a,
                          const fault::FaultEvent& b) { return a.time < b.time; });
    }
  }

  // Closed-loop draws come after the cluster block (same stream-position
  // rule): a non-loop case is byte-identical to the pre-loop generator's
  // output for the same seed. The loop wraps the single-process controller,
  // so cluster cases keep their own wiring.
  const bool loop_candidate = o.use_plan && o.workers == 0;
  if (loop_candidate &&
      (params_.chaos_skip_replan || rng.chance(params_.loop_prob))) {
    o.use_loop = true;
    const double cadences[] = {120.0, 300.0, 600.0};
    o.loop_cadence_s = cadences[rng.uniform_index(3)];
    o.loop_band = rng.uniform(0.15, 0.5);
    // Under-forecast: the loop provisions from truth * scale, the simulator
    // replays the truth, so the observation leaves the band and the loop
    // must correct mid-run.
    o.loop_forecast_scale = rng.uniform(0.3, 0.7);
    o.loop_flash = static_cast<int>(rng.uniform_index(3));
    if (params_.chaos_skip_replan) {
      o.chaos_skip_replan = true;
      // The planted bug only fires on a trigger; make one certain within
      // the smoke tests' seed budget: hard under-forecast, tight band,
      // early first tick, and a freeze delay short enough that calls are
      // observed (the config is unknown before the freeze).
      o.loop_band = std::min(o.loop_band, 0.2);
      o.loop_forecast_scale = std::min(o.loop_forecast_scale, 0.35);
      o.loop_cadence_s = 120.0;
      o.freeze_delay_s = std::min(o.freeze_delay_s, 90.0);
    }
    if (o.loop_flash != 0 && !c.calls.empty()) {
      const double window = c.window_end_s - c.window_start_s;
      loop::DemandSchedule sched;
      // The rebound shape wants a DC outage to echo; without one in the
      // storm it degrades to the global spike.
      const fault::FaultEvent* dc_down = nullptr;
      const fault::FaultEvent* dc_up = nullptr;
      if (o.loop_flash == 2) {
        for (const fault::FaultEvent& e : c.faults) {
          if (e.kind == fault::FaultEvent::Kind::kDcDown && dc_down == nullptr) {
            dc_down = &e;
          } else if (dc_down != nullptr && dc_up == nullptr &&
                     e.kind == fault::FaultEvent::Kind::kDcUp &&
                     e.dc == dc_down->dc) {
            dc_up = &e;
          }
        }
      }
      if (dc_down != nullptr && dc_up != nullptr) {
        const LocationId region = c.world.dcs[dc_down->dc.value()].location;
        sched = loop::DemandSchedule::regional_rebound(
            region, dc_down->time, dc_up->time, rng.uniform(0.1, 0.5),
            rng.uniform(1.5, 3.0), rng.uniform(300.0, 900.0));
      } else {
        const SimTime spike_at = c.window_start_s + window * rng.uniform(0.2, 0.5);
        sched = loop::DemandSchedule::viral_spike(
            spike_at, window * 0.1, rng.uniform(1.5, 3.0), window * 0.2,
            window * 0.1);
      }
      apply_flash(c.calls, sched, rng, params_.max_calls);
    }
  }
  return c;
}

}  // namespace sb::check
