// Discrete-event call simulator: replays a call-record trace against an
// allocator, tracking per-DC core usage, per-link traffic, per-call ACL,
// and migrations. This is the evaluation harness behind §6.4 (migration
// frequency) and the realized-usage sanity checks against provisioned
// capacity.
//
// Event model per call: the first joiner starts the call (allocator picks
// the initial DC); remaining legs join at their offsets; the media type may
// escalate mid-call; the config freezes A seconds in (allocator may
// migrate); the call ends. Loads follow the Table 1 model and the joined
// participant set at each instant.
//
// Fault injection: pass a fault::FaultSchedule and its DC/link down/up
// events are woven into the replayed stream in strict time order, invoking
// the allocator's fault hooks (drain/failover for Switchboard) and
// re-pointing usage accounting for every call the allocator moved or
// dropped. In the concurrent driver each fault is a barrier: all partitions
// align at the fault time, exactly one invokes the hook, then all apply the
// outcome — so a drain observes precisely the events before the fault,
// matching the sequential semantics.
//
// Two driver modes: run() replays the whole event stream on the calling
// thread in strict time order (the bit-exact reference), run_concurrent()
// partitions calls by shard (CallId % threads) across a thread pool to
// drive a thread-safe allocator at scale — see the method comment for which
// report fields stay exact.
#pragma once

#include "calls/call_record.h"
#include "fault/fault_schedule.h"
#include "obs/metrics.h"
#include "sim/allocator.h"

namespace sb::obs {
class TimeSeriesRecorder;
}  // namespace sb::obs

namespace sb {

struct SimReport {
  std::string allocator;
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;      ///< calls that lived past the freeze point
  std::uint64_t migrations = 0;
  double migration_fraction = 0.0;  ///< migrations / calls (§6.4)
  /// Call-weighted mean ACL at the final hosting DC.
  double mean_acl_ms = 0.0;
  /// Fraction of calls whose first joiner is in the majority country
  /// (§5.4 reports 95.2% in Teams).
  double first_joiner_majority_fraction = 0.0;
  std::vector<double> dc_peak_cores;   ///< realized per-DC peaks
  std::vector<double> link_peak_gbps;  ///< realized per-link peaks
  std::uint64_t peak_concurrent_calls = 0;
  /// Fault outcomes (0 when no schedule was passed).
  std::uint64_t failover_migrations = 0;  ///< calls moved off failed DCs
  std::uint64_t dropped_calls = 0;        ///< calls lost to exhausted backup
  /// Realized per-media-server core peaks (packer footprint units), indexed
  /// by global ServerId. Empty when the World has no fleet. In the
  /// concurrent driver these are summed per-partition peaks (upper bounds),
  /// like link_peak_gbps.
  std::vector<double> server_peak_cores;
  /// Realized per-DC core usage sampled at bucket boundaries:
  /// dc_cores_buckets[x][b] is DC x's load at time (b+1)*bucket_s (buckets
  /// anchored at t = 0). Sample-and-hold at bucket ends, so the series is
  /// an exact time-aligned snapshot in both driver modes — this is what
  /// realized-vs-provisioned comparisons should read.
  std::vector<std::vector<double>> dc_cores_buckets;
  double bucket_s = 0.0;

  [[nodiscard]] double total_peak_cores() const;
  [[nodiscard]] double total_peak_gbps() const;
  /// Max over buckets of dc_cores_buckets[dc]; 0 when out of range/empty.
  [[nodiscard]] double dc_bucket_peak(std::size_t dc) const;
};

/// One hosting decision captured by the optional HostingLog: which record
/// was (re)hosted where, or left the system. Events of a single record
/// appear in replay order; events of different records may interleave
/// arbitrarily (concurrent partitions are concatenated), so consumers must
/// group by `record`.
struct HostingEvent {
  enum class Kind : std::uint8_t {
    kStart,  ///< call admitted; `dc` is the initial hosting DC
    kMove,   ///< freeze migration or failover move; `dc` is the new DC
    kDrop,   ///< dropped by failover (usage released; no kEnd follows)
    kEnd,    ///< normal end (usage released)
    kPack,   ///< packed onto `server` at freeze without changing DC (fleet
             ///< runs only — a no-fleet run's log is byte-identical to the
             ///< pre-fleet format)
  };
  std::size_t record = 0;  ///< index into the replayed CallRecordDatabase
  SimTime time = 0.0;
  Kind kind = Kind::kStart;
  DcId dc;  ///< hosting DC after the event (kStart/kMove/kPack only)
  /// Hosting media server after the event (kMove/kPack; invalid without a
  /// fleet or before the call's freeze).
  ServerId server;
};

/// Opt-in capture of every hosting decision a run made. The sb_check oracle
/// suite replays it single-threaded to recount dc_cores_buckets
/// independently of the UsageTracker (see check/oracles.h).
struct HostingLog {
  std::vector<HostingEvent> events;
};

class Simulator {
 public:
  explicit Simulator(EvalContext ctx);

  /// Replay engine selection. Both engines replay the same total event
  /// order — (time, seq) with unique seqs — and make identical per-event
  /// decisions; the sim differential test (ctest -L sim) enforces
  /// bit-identical hosting logs, bucket series, reports, and metric deltas
  /// between them.
  ///  - kBatched (default): events pre-sorted into a flat vector (no
  ///    per-event heap churn), per-record derived values precomputed SoA,
  ///    ACL histogram records flushed once per partition, and the allocator
  ///    bracketed with batch_begin()/batch_end() so the Switchboard adapter
  ///    amortizes its plan-swap shared lock over a whole batch of events.
  ///  - kReference: the pre-rework heap-driven loop, kept verbatim as the
  ///    bit-exact baseline the differential test and the throughput bench
  ///    compare against.
  enum class Engine { kBatched, kReference };
  void set_engine(Engine engine) { engine_ = engine; }
  [[nodiscard]] Engine engine() const { return engine_; }

  /// Max call events per allocator batch in the batched engine (bounds how
  /// long one partition holds the controller's shared plan lock, and so the
  /// latency of a closed-loop plan install racing the replay).
  void set_batch_events(std::size_t n) { batch_events_ = n == 0 ? 1 : n; }

  /// Optional telemetry hook: when set, every partition offers its event
  /// clock to the recorder (TimeSeriesRecorder::sample is thread-safe and
  /// cheap off-cadence), so registry time series advance on SIM time in both
  /// driver modes. The recorder must outlive the runs; pass nullptr to
  /// detach.
  void attach_telemetry(obs::TimeSeriesRecorder* telemetry) {
    telemetry_ = telemetry;
  }

  /// Replays `db` against `allocator` on the calling thread, every event in
  /// strict (time, insertion) order. `freeze_delay_s` is the A parameter
  /// (§6.4); calls shorter than it are never frozen or migrated. Fault
  /// events from `faults` (optional) interleave at their times, ordered
  /// before call events at the same instant. `bucket_s` sets the sampling
  /// grain of dc_cores_buckets. `hosting_log` (optional) receives every
  /// hosting decision the run made.
  SimReport run(const CallRecordDatabase& db, CallAllocator& allocator,
                double freeze_delay_s = 300.0,
                const fault::FaultSchedule* faults = nullptr,
                double bucket_s = 60.0, HostingLog* hosting_log = nullptr) const;

  /// Multi-threaded driver: partitions the event stream by CallId % threads
  /// and replays each partition on the shared thread pool. Every call's
  /// events land in exactly one partition, so each call keeps single-thread
  /// affinity and strict per-call event order (which also keeps per-call KV
  /// writes last-writer-wins). Requires a thread-safe allocator (the sharded
  /// RealtimeSelector / Switchboard; NOT the RR/LF baselines).
  ///
  /// Count and per-call fields (calls, frozen, migrations, mean_acl_ms,
  /// first_joiner_majority_fraction) are exact sums over partitions.
  /// dc_peak_cores is exact at bucket granularity: partitions sample their
  /// usage on a shared bucket grid (anchored at t = 0), the per-bucket
  /// samples sum exactly across partitions, and the peak is the max over
  /// buckets — time-aligned, unlike a sum of per-partition peaks, though it
  /// can sit below run()'s continuous peak by whatever spike fits inside
  /// one bucket. link_peak_gbps and peak_concurrent_calls remain summed
  /// per-partition peaks (upper bounds). Use run() when exact continuous
  /// peaks matter; it remains the bit-exact reference.
  ///
  /// `threads` == 0 picks hardware_concurrency; 1 degenerates to a single
  /// pool-driven partition (same event order as run()).
  SimReport run_concurrent(const CallRecordDatabase& db,
                           CallAllocator& allocator,
                           double freeze_delay_s = 300.0,
                           std::size_t threads = 0,
                           const fault::FaultSchedule* faults = nullptr,
                           double bucket_s = 60.0,
                           HostingLog* hosting_log = nullptr) const;

 private:
  struct Partial;       // per-partition accumulator (simulator.cpp)
  struct FaultRuntime;  // shared fault-event coordination (simulator.cpp)

  /// sb.sim.* handles resolved once so run() never does a registry name
  /// lookup; per-DC peak gauges are updated in the same pass that copies
  /// the peaks into the report (no second accounting path).
  struct Metrics {
    obs::Counter& calls;
    obs::Counter& frozen;
    obs::Counter& migrations;
    obs::Histogram& acl_ms;
    obs::Histogram& run_s;
    obs::Gauge& peak_concurrent_calls;
    std::vector<obs::Gauge*> dc_peak_cores;
    explicit Metrics(const EvalContext& ctx);
  };

  /// Replays the records selected by `mine` (record index -> bool) and
  /// accumulates into `out`. Identical event ordering to the pre-sharding
  /// implementation when `mine` selects everything.
  /// `partition`/`parent_span` label the per-partition trace span (parented
  /// under the driver's root span across the pool fan-out).
  void replay_partition(const CallRecordDatabase& db, CallAllocator& allocator,
                        double freeze_delay_s,
                        const std::vector<std::uint8_t>& mine, Partial& out,
                        FaultRuntime* faults, double bucket_s,
                        bool log_hosting, std::size_t partition,
                        std::uint64_t parent_span) const;
  /// The batched twin of replay_partition: same events, same decisions, same
  /// accumulator contents (the per-event switch bodies must stay in
  /// lockstep — the sim differential test enforces it), but driven off one
  /// pre-sorted event vector in allocator-bracketed batches. Batches never
  /// span a fault event: the batch (and its shared lock) ends before the
  /// partition arrives at the fault barrier.
  void replay_partition_batched(const CallRecordDatabase& db,
                                CallAllocator& allocator,
                                double freeze_delay_s,
                                const std::vector<std::uint8_t>& mine,
                                Partial& out, FaultRuntime* faults,
                                double bucket_s, bool log_hosting,
                                std::size_t partition,
                                std::uint64_t parent_span) const;
  SimReport finalize(const CallRecordDatabase& db, CallAllocator& allocator,
                     const Partial& total, double bucket_s,
                     bool bucket_peaks) const;

  EvalContext ctx_;
  Metrics metrics_;
  obs::TimeSeriesRecorder* telemetry_ = nullptr;
  Engine engine_ = Engine::kBatched;
  std::size_t batch_events_ = 256;
};

}  // namespace sb
