file(REMOVE_RECURSE
  "../bench/fig9_forecast_cdf"
  "../bench/fig9_forecast_cdf.pdb"
  "CMakeFiles/fig9_forecast_cdf.dir/fig9_forecast_cdf.cpp.o"
  "CMakeFiles/fig9_forecast_cdf.dir/fig9_forecast_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_forecast_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
