#include "lp/standard_form.h"

#include <cmath>

namespace sb::lp {

StandardForm to_standard_form(const Model& model, BoundPolicy policy) {
  StandardForm sf;
  const std::size_t n = model.variable_count();
  sf.var_map.assign(n, -1);
  sf.var_base.assign(n, 0.0);

  // Assign standard-form indices to non-fixed variables; record shifts.
  for (std::size_t i = 0; i < n; ++i) {
    const Variable& v = model.variable(static_cast<int>(i));
    if (v.lower == v.upper) {
      sf.var_base[i] = v.lower;
      sf.objective_offset += v.cost * v.lower;
      continue;
    }
    sf.var_map[i] = static_cast<int>(sf.cost.size());
    sf.var_base[i] = v.lower;
    sf.cost.push_back(v.cost);
    sf.upper.push_back(v.upper == kInf ? kInf : v.upper - v.lower);
    sf.objective_offset += v.cost * v.lower;
  }

  // Upper-bound rows for shifted variables with finite upper bounds (legacy
  // policy only; the sparse engine reads `upper` directly).
  if (policy == BoundPolicy::kUpperRows) {
    for (std::size_t i = 0; i < n; ++i) {
      const Variable& v = model.variable(static_cast<int>(i));
      if (sf.var_map[i] < 0 || v.upper == kInf) continue;
      sf.rows.push_back(StandardRow{{Term{sf.var_map[i], 1.0}},
                                    Sense::kLe,
                                    v.upper - v.lower});
    }
  }

  // Constraint rows with fixed variables folded into the rhs and the
  // remaining variables shifted (rhs -= coeff * lower).
  for (std::size_t r = 0; r < model.constraint_count(); ++r) {
    const Constraint& row = model.constraint(static_cast<int>(r));
    StandardRow out;
    out.sense = row.sense;
    out.rhs = row.rhs;
    for (const Term& t : row.terms) {
      out.rhs -= t.coeff * sf.var_base[t.var];
      if (sf.var_map[t.var] >= 0 && t.coeff != 0.0) {
        out.terms.push_back(Term{sf.var_map[t.var], t.coeff});
      }
    }
    sf.rows.push_back(std::move(out));
  }
  return sf;
}

std::vector<double> map_back(const StandardForm& sf,
                             const std::vector<double>& sf_values,
                             std::size_t model_var_count) {
  require(sf.var_map.size() == model_var_count, "map_back: size mismatch");
  std::vector<double> out(model_var_count);
  for (std::size_t i = 0; i < model_var_count; ++i) {
    out[i] = sf.var_map[i] < 0
                 ? sf.var_base[i]
                 : sf.var_base[i] + sf_values[sf.var_map[i]];
  }
  return out;
}

StandardForm extract_row_subform(const StandardForm& sf,
                                 const std::vector<int>& row_ids,
                                 std::vector<int>& col_map) {
  StandardForm sub;
  col_map.assign(sf.var_count(), -1);
  sub.rows.reserve(row_ids.size());
  for (int r : row_ids) {
    const StandardRow& row = sf.rows[static_cast<std::size_t>(r)];
    StandardRow out;
    out.sense = row.sense;
    out.rhs = row.rhs;
    out.terms.reserve(row.terms.size());
    for (const Term& t : row.terms) {
      const auto v = static_cast<std::size_t>(t.var);
      if (col_map[v] < 0) {
        col_map[v] = static_cast<int>(sub.cost.size());
        sub.cost.push_back(sf.cost[v]);
        sub.upper.push_back(sf.upper[v]);
      }
      out.terms.push_back(Term{col_map[v], t.coeff});
    }
    sub.rows.push_back(std::move(out));
  }
  return sub;
}

}  // namespace sb::lp
