// Tests for the thread pool used by scenario solves and the Fig 10 bench.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/thread_pool.h"

namespace sb {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a * b; }, 6, 7);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

}  // namespace
}  // namespace sb
