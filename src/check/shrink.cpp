#include "check/shrink.h"

#include <algorithm>
#include <cstdint>

#include "common/error.h"

namespace sb::check {

namespace {

/// Tracks the current best case and runs candidates against the predicate
/// "still fails the same oracle".
class Shrinker {
 public:
  Shrinker(FuzzCase best, std::string oracle, const CheckOptions& opts)
      : best_(std::move(best)), oracle_(std::move(oracle)), opts_(opts) {}

  [[nodiscard]] const FuzzCase& best() const { return best_; }
  [[nodiscard]] std::size_t attempts() const { return attempts_; }
  [[nodiscard]] std::size_t successes() const { return successes_; }
  [[nodiscard]] const std::string& oracle() const { return oracle_; }

  /// Runs the candidate; adopts it as the new best when it still fails the
  /// target oracle. A candidate that passes, skips (infeasible
  /// provisioning), or fails a DIFFERENT oracle is rejected.
  bool accept(const FuzzCase& candidate) {
    ++attempts_;
    const CheckResult r = run_case(candidate, opts_);
    if (r.first_oracle() != oracle_) return false;
    best_ = candidate;
    ++successes_;
    return true;
  }

  /// Pass 1: remove call chunks, ddmin style — halves first, then smaller
  /// chunks down to single calls. Restarts the granularity whenever a chunk
  /// removal sticks (the remaining calls often shrink further).
  bool shrink_calls() {
    bool progress = false;
    std::size_t chunk = std::max<std::size_t>(best_.calls.size() / 2, 1);
    while (chunk >= 1 && !best_.calls.empty()) {
      bool removed_any = false;
      for (std::size_t at = 0; at < best_.calls.size();) {
        FuzzCase candidate = best_;
        const std::size_t take =
            std::min(chunk, candidate.calls.size() - at);
        candidate.calls.erase(
            candidate.calls.begin() + static_cast<std::ptrdiff_t>(at),
            candidate.calls.begin() + static_cast<std::ptrdiff_t>(at + take));
        if (accept(candidate)) {
          removed_any = progress = true;
          // best_ shrank; retry the same offset against the new tail.
        } else {
          at += take;
        }
      }
      if (!removed_any || chunk == 1) {
        if (chunk == 1) break;
        chunk = std::max<std::size_t>(chunk / 2, 1);
      } else {
        chunk = std::max<std::size_t>(
            std::min(chunk, std::max<std::size_t>(best_.calls.size() / 2, 1)),
            1);
      }
    }
    return progress;
  }

  /// Pass 2: drop individual fault events (an orphaned up-edge is a no-op,
  /// so down/up pairs shrink one edge at a time).
  bool shrink_faults() {
    bool progress = false;
    for (std::size_t i = 0; i < best_.faults.size();) {
      FuzzCase candidate = best_;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (accept(candidate)) {
        progress = true;
      } else {
        ++i;
      }
    }
    return progress;
  }

  /// Removes controller worker `w` from a cluster case: decrements the
  /// worker count, drops the removed worker's fault events, and renumbers
  /// worker ids above it (mirroring erase_servers). Shrinking to zero
  /// workers turns the case back into the single-process path, so every
  /// worker event goes.
  static void erase_worker(FuzzCase& c, std::uint32_t w) {
    --c.options.workers;
    std::vector<fault::FaultEvent> kept;
    kept.reserve(c.faults.size());
    for (fault::FaultEvent e : c.faults) {
      if (e.is_worker()) {
        if (c.options.workers == 0 || e.worker.value() == w) continue;
        if (e.worker.value() > w) e.worker = WorkerId(e.worker.value() - 1);
      }
      kept.push_back(e);
    }
    c.faults = std::move(kept);
  }

  /// Pass 2b: remove controller workers one at a time (cluster cases only;
  /// kill schedules shrink with them). A candidate that reaches zero
  /// workers reverts to the single-process controller path.
  bool shrink_workers() {
    bool progress = false;
    for (std::uint32_t w = 0;
         best_.options.workers > 0 && w < best_.options.workers;) {
      FuzzCase candidate = best_;
      erase_worker(candidate, w);
      if (accept(candidate)) {
        progress = true;
      } else {
        ++w;
      }
    }
    return progress;
  }

  /// Drops the servers whose index in `c.world.servers` is marked in
  /// `remove`, renumbering the global ServerId space and rewriting server
  /// fault events (events on a removed server are dropped).
  static void erase_servers(FuzzCase& c, const std::vector<bool>& remove) {
    std::vector<std::size_t> remap(c.world.servers.size(), 0);
    std::vector<FuzzServer> kept_servers;
    kept_servers.reserve(c.world.servers.size());
    for (std::size_t s = 0; s < c.world.servers.size(); ++s) {
      remap[s] = remove[s] ? SIZE_MAX : kept_servers.size();
      if (!remove[s]) kept_servers.push_back(c.world.servers[s]);
    }
    c.world.servers = std::move(kept_servers);
    std::vector<fault::FaultEvent> kept;
    kept.reserve(c.faults.size());
    for (fault::FaultEvent e : c.faults) {
      if (e.is_server()) {
        if (remap[e.server.value()] == SIZE_MAX) continue;
        e.server = ServerId(static_cast<std::uint32_t>(remap[e.server.value()]));
      }
      kept.push_back(e);
    }
    c.faults = std::move(kept);
  }

  /// Pass 3: remove whole DCs (keeping at least one), renumbering every
  /// DcId above the removed index and dropping that DC's fault events plus
  /// its fleet (server indices are global, so the whole server space is
  /// renumbered too). Worlds whose provisioning becomes infeasible are
  /// rejected by the predicate (run_case reports a skip, not the target
  /// oracle).
  bool shrink_dcs() {
    bool progress = false;
    for (std::size_t d = 0; best_.world.dcs.size() > 1 &&
                            d < best_.world.dcs.size();) {
      FuzzCase candidate = best_;
      candidate.world.dcs.erase(candidate.world.dcs.begin() +
                                static_cast<std::ptrdiff_t>(d));
      std::vector<fault::FaultEvent> kept;
      kept.reserve(candidate.faults.size());
      for (fault::FaultEvent e : candidate.faults) {
        if (e.is_dc()) {
          if (e.dc.value() == d) continue;
          if (e.dc.value() > d) e.dc = DcId(e.dc.value() - 1);
        }
        kept.push_back(e);
      }
      candidate.faults = std::move(kept);
      std::vector<bool> remove(candidate.world.servers.size(), false);
      for (std::size_t s = 0; s < candidate.world.servers.size(); ++s) {
        remove[s] = candidate.world.servers[s].dc == d;
      }
      erase_servers(candidate, remove);
      for (FuzzServer& srv : candidate.world.servers) {
        if (srv.dc > d) --srv.dc;
      }
      if (accept(candidate)) {
        progress = true;
      } else {
        ++d;
      }
    }
    return progress;
  }

  /// Pass 3b: remove individual media servers, keeping at least one per DC
  /// (a fleet world must cover every DC). Shrinks straggler repros down to
  /// the one server that matters.
  bool shrink_servers() {
    bool progress = false;
    for (std::size_t s = 0; s < best_.world.servers.size();) {
      std::size_t siblings = 0;
      for (const FuzzServer& other : best_.world.servers) {
        siblings += other.dc == best_.world.servers[s].dc ? 1 : 0;
      }
      if (siblings <= 1) {
        ++s;
        continue;
      }
      FuzzCase candidate = best_;
      std::vector<bool> remove(candidate.world.servers.size(), false);
      remove[s] = true;
      erase_servers(candidate, remove);
      if (accept(candidate)) {
        progress = true;
      } else {
        ++s;
      }
    }
    return progress;
  }

  /// Pass 4: truncate the window to the surviving calls' span (affects the
  /// provisioning horizon, not the replay, so this mostly shrinks the LP).
  bool shrink_window() {
    if (best_.calls.empty()) return false;
    double last = best_.window_start_s;
    for (const FuzzCall& call : best_.calls) {
      last = std::max(last, call.start_s + 1.0);
    }
    if (last >= best_.window_end_s) return false;
    FuzzCase candidate = best_;
    candidate.window_end_s = last;
    return accept(candidate);
  }

 private:
  FuzzCase best_;
  std::string oracle_;
  CheckOptions opts_;
  std::size_t attempts_ = 0;
  std::size_t successes_ = 0;
};

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing,
                         const CheckOptions& check_opts,
                         const ShrinkOptions& opts) {
  const CheckResult initial = run_case(failing, check_opts);
  require(!initial.ok() && !initial.provision_infeasible,
          "shrink_case: input does not fail any oracle");
  Shrinker s(failing, initial.first_oracle(), check_opts);
  for (std::size_t round = 0; round < opts.max_rounds; ++round) {
    bool progress = false;
    progress |= s.shrink_calls();
    progress |= s.shrink_faults();
    progress |= s.shrink_workers();
    progress |= s.shrink_dcs();
    progress |= s.shrink_servers();
    progress |= s.shrink_window();
    if (!progress) break;
  }
  return {s.best(), s.oracle(), s.attempts(), s.successes()};
}

}  // namespace sb::check
