// google-benchmark microbenchmarks for the realtime path: MP selector
// assign/freeze/end cycles and KV-store operations (without injected
// latency, to measure the data-structure cost itself).
#include <benchmark/benchmark.h>

#include "core/realtime.h"
#include "geo/world_presets.h"
#include "kvstore/kvstore.h"

namespace sb {
namespace {

struct Fixture {
  GeoModel geo = make_apac_world();
  CallConfigRegistry registry;
  LoadModel loads = LoadModel::paper_default();
  AllocationPlan plan{48, 1, 5, 1800.0};
  CallConfig config = CallConfig::make({{LocationId(0), 3}},
                                       MediaType::kVideo);

  Fixture() {
    const ConfigId id = registry.intern(config);
    plan.config_columns = {id};
    for (TimeSlot t = 0; t < 48; ++t) {
      for (std::uint32_t x = 0; x < 5; ++x) {
        plan.set_quota(t, 0, DcId(x), 1u << 20);  // effectively unlimited
      }
    }
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&geo.world, &geo.topology, &geo.latency, &registry,
                       &loads};
  }
};

void BM_SelectorAssignFreezeEnd(benchmark::State& state) {
  Fixture f;
  RealtimeSelector selector(f.ctx(), &f.plan, {});
  std::uint32_t next = 0;
  for (auto _ : state) {
    const CallId call(next++);
    selector.on_call_start(call, LocationId(0), 0.0);
    selector.on_config_frozen(call, f.config, 300.0);
    selector.on_call_end(call, 400.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_SelectorAssignFreezeEnd);

void BM_ClosestDcLookup(benchmark::State& state) {
  Fixture f;
  const std::vector<DcId> dcs = f.geo.world.dc_ids();
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.geo.latency.closest_dc(
        LocationId(i++ % f.geo.world.location_count()), dcs));
  }
}
BENCHMARK(BM_ClosestDcLookup);

void BM_KvStoreSetNoLatency(benchmark::State& state) {
  KvStoreOptions options;
  options.inject_latency = false;
  KvStore store(options);
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.set("call:" + std::to_string(i++ % 4096) + ":dc", "3");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KvStoreSetNoLatency);

void BM_KvStoreIncrNoLatency(benchmark::State& state) {
  KvStoreOptions options;
  options.inject_latency = false;
  KvStore store(options);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.incr("call:" + std::to_string(i++ % 64) + ":legs", 1));
  }
}
BENCHMARK(BM_KvStoreIncrNoLatency);

void BM_AclComputation(benchmark::State& state) {
  Fixture f;
  const CallConfig spread = CallConfig::make(
      {{LocationId(0), 4}, {LocationId(1), 2}, {LocationId(5), 1}},
      MediaType::kVideo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl_ms(spread, DcId(1), f.geo.latency));
  }
}
BENCHMARK(BM_AclComputation);

}  // namespace
}  // namespace sb

BENCHMARK_MAIN();
