#include "core/realtime.h"

#include <algorithm>

#include "common/error.h"

namespace sb {

RealtimeSelector::RealtimeSelector(EvalContext ctx, const AllocationPlan* plan,
                                   RealtimeOptions options,
                                   SimTime plan_start_s)
    : ctx_(ctx),
      plan_(plan),
      options_(options),
      plan_start_s_(plan_start_s),
      shard_count_(std::max<std::size_t>(options.shard_count, 1)) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "RealtimeSelector: incomplete context");
  all_dcs_ = ctx_.world->dc_ids();
  require(!all_dcs_.empty(), "RealtimeSelector: world has no DCs");
  shards_ = std::make_unique<CallShard[]>(shard_count_);
  stats_ = std::make_unique<ShardStats[]>(shard_count_);
  if (plan_) {
    const std::size_t cells = plan_->config_count() * plan_->dc_count();
    usage_ = std::make_unique<std::atomic<std::uint32_t>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      usage_[i].store(0, std::memory_order_relaxed);
    }
  }
}

bool RealtimeSelector::try_debit(std::size_t col, DcId dc,
                                 std::uint32_t quota) {
  std::atomic<std::uint32_t>& u = usage(col, dc);
  std::uint32_t cur = u.load(std::memory_order_relaxed);
  while (cur < quota) {
    if (u.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

DcId RealtimeSelector::on_call_start(CallId call, LocationId first_joiner,
                                     SimTime /*now*/) {
  // closest_dc only reads the immutable latency matrix, so it runs before
  // the stripe lock is taken.
  const DcId dc = ctx_.latency->closest_dc(first_joiner, all_dcs_);
  CallShard& s = shard(call);
  {
    std::lock_guard lock(s.mutex);
    const auto [it, inserted] = s.calls.emplace(call, ActiveCall{dc});
    require(inserted, "on_call_start: duplicate call id");
  }
  shard_stats(call).calls_started.fetch_add(1, std::memory_order_relaxed);
  return dc;
}

FreezeResult RealtimeSelector::on_config_frozen(CallId call,
                                                const CallConfig& config,
                                                SimTime now) {
  CallShard& s = shard(call);
  ShardStats& stat = shard_stats(call);
  std::lock_guard lock(s.mutex);
  const auto it = s.calls.find(call);
  require(it != s.calls.end(), "on_config_frozen: unknown call");
  ActiveCall& state = it->second;
  stat.calls_frozen.fetch_add(1, std::memory_order_relaxed);

  const ConfigId id = ctx_.registry->find(config);
  const std::size_t col =
      plan_ && id.valid() ? plan_->column_of(id) : AllocationPlan::npos;

  FreezeResult result{state.dc, false, col != AllocationPlan::npos};
  if (!result.planned) {
    // §5.4: unanticipated config -> its closest (min ACL) DC.
    stat.unplanned.fetch_add(1, std::memory_order_relaxed);
    const DcId target = min_acl_dc(config, all_dcs_, *ctx_.latency);
    result.migrated = target != state.dc;
    if (result.migrated) {
      stat.migrations.fetch_add(1, std::memory_order_relaxed);
    }
    state.dc = target;
    result.dc = target;
    return result;
  }

  const TimeSlot slot = plan_->slot_at(now - plan_start_s_);
  if (try_debit(col, state.dc, plan_->quota(slot, col, state.dc))) {
    // Initial heuristic matched the plan: just debit (§5.4b).
    stat.slot_debits.fetch_add(1, std::memory_order_relaxed);
    state.plan_col = col;
    state.holds_slot = true;
    return result;
  }
  // Migrate to the planned DC with spare quota and the lowest ACL (§5.4c).
  // Another thread can drain a candidate between the scan and our debit, so
  // retry the scan until a debit lands or every quota reads exhausted; the
  // CAS keeps accounting exact either way.
  DcId best;
  for (;;) {
    best = DcId();
    double best_acl = 0.0;
    for (DcId dc : all_dcs_) {
      if (usage(col, dc).load(std::memory_order_relaxed) >=
          plan_->quota(slot, col, dc)) {
        continue;
      }
      const double a = acl_ms(config, dc, *ctx_.latency);
      if (!best.valid() || a < best_acl) {
        best = dc;
        best_acl = a;
      }
    }
    if (!best.valid()) {
      // All quotas exhausted (plan under-estimated this config's
      // concurrency): stay put rather than thrash; provisioning cushions
      // make this rare.
      stat.overflow.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    if (try_debit(col, best, plan_->quota(slot, col, best))) break;
  }
  stat.slot_debits.fetch_add(1, std::memory_order_relaxed);
  state.plan_col = col;
  state.holds_slot = true;
  if (best != state.dc) {
    stat.migrations.fetch_add(1, std::memory_order_relaxed);
    result.migrated = true;
    state.dc = best;
    result.dc = best;
  }
  return result;
}

void RealtimeSelector::on_call_end(CallId call, SimTime /*now*/) {
  CallShard& s = shard(call);
  std::lock_guard lock(s.mutex);
  const auto it = s.calls.find(call);
  require(it != s.calls.end(), "on_call_end: unknown call");
  const ActiveCall& state = it->second;
  if (state.holds_slot) {
    // Debits and credits pair exactly (holds_slot is set only after a
    // successful CAS debit), so the counter cannot underflow.
    usage(state.plan_col, state.dc).fetch_sub(1, std::memory_order_acq_rel);
    shard_stats(call).slot_credits.fetch_add(1, std::memory_order_relaxed);
  }
  s.calls.erase(it);
}

RealtimeSelector::Stats RealtimeSelector::stats() const {
  Stats out;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const ShardStats& s = stats_[i];
    out.calls_started += s.calls_started.load(std::memory_order_relaxed);
    out.calls_frozen += s.calls_frozen.load(std::memory_order_relaxed);
    out.migrations += s.migrations.load(std::memory_order_relaxed);
    out.unplanned += s.unplanned.load(std::memory_order_relaxed);
    out.overflow += s.overflow.load(std::memory_order_relaxed);
    out.slot_debits += s.slot_debits.load(std::memory_order_relaxed);
    out.slot_credits += s.slot_credits.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t RealtimeSelector::active_calls() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard lock(shards_[i].mutex);
    total += shards_[i].calls.size();
  }
  return total;
}

std::uint64_t RealtimeSelector::held_slots() const {
  if (!plan_) return 0;
  std::uint64_t total = 0;
  const std::size_t cells = plan_->config_count() * plan_->dc_count();
  for (std::size_t i = 0; i < cells; ++i) {
    total += usage_[i].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace sb
