// Reproduces §6.4: frequency of inter-DC call migration. The realtime
// selector assigns a call to the DC closest to its first joiner and may
// migrate it when the config freezes at A = 300 s. The paper reports that
// Switchboard migrates only 1.53% of calls — the same as Locality-First —
// while Round-Robin never migrates (and pays for it in latency).
//
// Flags: --hours=8 --plan_configs=40
#include <iostream>

#include "bench_util.h"
#include "core/controller.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace sb;
  const double hours = bench::arg_double(argc, argv, "hours", 8.0);
  const std::size_t plan_configs =
      bench::arg_size(argc, argv, "plan_configs", 40);

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  // Build a Switchboard allocation plan for the day, then replay a busy
  // window against all three allocators. The §5.2 cushion inflates the
  // planned demand so realized (Poisson) load rarely exhausts plan slots.
  const double cushion = bench::arg_double(argc, argv, "cushion", 1.3);
  DemandMatrix demand =
      bench::design_day_demand(scenario, 3600.0, plan_configs);
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      demand.set_demand(t, c, demand.demand(t, c) * cushion);
    }
  }
  ProvisionOptions provision_options;
  provision_options.include_link_failures = false;
  SwitchboardProvisioner provisioner(ctx, provision_options);
  const ProvisionResult provision = provisioner.provision(demand);
  AllocationPlanner planner(ctx, {});
  const AllocationPlan plan = planner.plan(demand, provision.capacity, 3600.0);

  const double start = kSecondsPerDay;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + hours * kSecondsPerHour);

  Simulator sim(ctx);
  RealtimeSelector selector(ctx, &plan, {}, start);
  SwitchboardAllocator sb_alloc(selector);
  LocalityFirstAllocator lf(ctx);
  RoundRobinAllocator rr(ctx);

  std::cout << "§6.4: migration frequency over " << db.size()
            << " calls (A = 300 s)\n\n";
  TextTable table({"Scheme", "calls", "migrations", "migrated %", "ACL ms",
                   "paper"});
  struct Run {
    CallAllocator* allocator;
    const char* paper;
  };
  for (const Run run : {Run{&sb_alloc, "1.53%"}, Run{&lf, "1.53%"},
                        Run{&rr, "0% (never migrates)"}}) {
    const SimReport report = sim.run(db, *run.allocator);
    table.row()
        .cell(report.allocator)
        .cell(report.calls)
        .cell(report.migrations)
        .cell(100.0 * report.migration_fraction)
        .cell(report.mean_acl_ms, 1)
        .cell(run.paper);
  }
  std::cout << table;

  const RealtimeSelector::Stats stats = selector.stats();
  std::cout << "\nSwitchboard selector detail: frozen="
            << stats.calls_frozen << " unplanned=" << stats.unplanned
            << " overflow=" << stats.overflow << "\n";

  // The supporting §5.4 statistic that makes the heuristic work.
  Simulator check(ctx);
  RoundRobinAllocator probe(ctx);
  const SimReport probe_report = check.run(db, probe);
  std::cout << "first joiner in majority country: "
            << format_double(
                   100.0 * probe_report.first_joiner_majority_fraction, 1)
            << "% of calls (paper: 95.2%)\n";
  return 0;
}
