# Empty compiler generated dependencies file for core_provision_test.
# This may be replaced when dependencies are built.
