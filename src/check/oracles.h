// The invariant oracle suite + differential executors behind sb_fuzz. One
// call to run_case() executes a FuzzCase end to end (provision -> plan ->
// sequential sim with hosting log) and then checks:
//   - lp-feasibility: the provisioning LP's base placement re-checked
//     against the provisioned capacities and the demand completeness rows;
//   - exactly-once: every started call is ended or dropped exactly once
//     (from the hosting log), drops only under DC faults;
//   - conservation: at quiescence the selector holds zero calls and zero
//     plan slots and slot debits == credits (this is the oracle the
//     chaos_skip_drain_credit knob provably trips);
//   - server-conservation (fleet cases): a single-threaded recount of
//     per-server admitted/released millicores from the hosting log equals
//     the packer's cumulative atomic counters exactly, every server's
//     occupancy is zero at quiescence, and per-DC totals equal the sum
//     over the DC's servers (the oracle chaos_skip_server_credit trips);
//   - recount: the report's per-DC bucket series equals an independent
//     single-threaded recount from the hosting log;
//   - down-dc: no hosting decision lands on a failed DC while another is up;
//   - determinism: a second sequential run is bit-identical;
//   - seq-vs-concurrent: run_concurrent agrees on counts (and, without plan
//     quotas, on the bucket series); its own hosting log passes the
//     exactly-once/recount/conservation oracles;
//   - lp-differential: sparse vs dense-inverse provisioning and warm vs
//     cold scenario solves agree on objectives (small shapes only);
//   - rebuild-storm: concurrent plan rebuilds + fault edges + signaling
//     churn leave the facade usable and a fresh clean cycle conserved.
// Provisioning that is infeasible BY CONSTRUCTION (a failure scenario with
// no feasible placement) is a skip, not a failure.
#pragma once

#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace sb::check {

struct OracleFailure {
  std::string oracle;  ///< stable name, used by the shrinker's same-bug test
  std::string detail;
};

struct CheckResult {
  std::vector<OracleFailure> failures;
  bool provision_infeasible = false;  ///< skipped: scenario LP infeasible
  std::uint64_t calls = 0;
  std::uint64_t dropped = 0;
  std::uint64_t failover_moves = 0;
  /// Integral of realized per-DC bucket load above provisioned
  /// serving+backup (core-seconds). A stat, not a failure: a realized
  /// Poisson trace may legitimately exceed mean-concurrency provisioning.
  double over_capacity_core_s = 0.0;
  /// Black-box flight recording: the last spans in the ring when an oracle
  /// failed (CheckOptions::capture_flight; empty on success, with tracing
  /// compiled out, or when the option is off). sb_fuzz writes this next to
  /// the shrunken repro as Chrome trace-event JSON.
  std::vector<obs::SpanData> flight;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// Name of the first failing oracle ("" when ok). The shrinker minimizes
  /// while THIS oracle keeps failing so it never chases a different bug.
  [[nodiscard]] std::string first_oracle() const {
    return failures.empty() ? std::string() : failures.front().oracle;
  }
  [[nodiscard]] std::string summary() const;
};

struct CheckOptions {
  bool run_determinism = true;
  bool run_concurrent = true;
  bool run_lp_differential = true;
  bool run_rebuild_storm = true;  ///< gates the case's rebuild_storm flag
  /// Reset the global SpanRecorder before the case and, on any oracle
  /// failure, snapshot the ring into CheckResult::flight — the black-box
  /// record of what the controller did leading up to the violation. Size
  /// the recorder's ring (SpanRecorder::configure) before the first span
  /// to bound the retained window.
  bool capture_flight = false;
};

/// Executes the case and every applicable oracle. Never throws for scenario
/// bugs — unexpected sb::Error surfaces as an "exception" failure.
[[nodiscard]] CheckResult run_case(const FuzzCase& c,
                                   const CheckOptions& opts = {});

/// Independent recount of the per-DC bucket load series from a hosting log
/// plus the call records (single-threaded, order-insensitive; exposed so
/// check_test can tamper with a log and watch the oracle trip).
[[nodiscard]] std::vector<std::vector<double>> recount_dc_buckets(
    const Materialized& m, const HostingLog& log, double bucket_s,
    std::size_t bucket_count);

/// Cumulative admitted/released millicores one server should have seen.
struct ServerTotals {
  std::int64_t admitted_mc = 0;
  std::int64_t released_mc = 0;
};

/// Independent single-threaded recount of per-server packer totals from a
/// hosting log: each record's static frozen footprint (config participants
/// x per-participant cores, quantized through pack::to_millicores — the
/// packer's own unit) is admitted at its kPack/kMove events and released at
/// server changes and kDrop/kEnd. Indexed by global ServerId; exposed so
/// check_test can tamper with a log and watch the oracle trip.
[[nodiscard]] std::vector<ServerTotals> recount_server_totals(
    const Materialized& m, const HostingLog& log);

}  // namespace sb::check
