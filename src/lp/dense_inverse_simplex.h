// Legacy revised simplex: two-phase, sparse columns, dense periodically
// refactorized basis inverse. Kept as a reference implementation and bench
// comparison point for the sparse LU/eta engine in lp/revised_simplex.h —
// the dense binv_ costs O(m^2) per pivot and O(m^3) per refactorization,
// which is exactly the scaling wall the sparse engine removes. Guarded by a
// row limit in the solver facade; do not use for new call sites.
#pragma once

#include "lp/dense_simplex.h"
#include "lp/standard_form.h"

namespace sb::lp {

/// Solves a standard-form LP (upper bounds materialized as rows) with the
/// dense-inverse revised simplex.
SfSolution solve_dense_inverse(const StandardForm& sf,
                               const SimplexOptions& options);

}  // namespace sb::lp
