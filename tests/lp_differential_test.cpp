// Differential property tests for the sparse LU/eta simplex family: on
// hundreds of seeded instances — random bounded-variable LPs, bound-flip-
// heavy LPs, provisioning-shaped LPs, and degenerate transportation LPs —
// the sparse primal engine, the dual simplex (Method::kDual), and the
// block-angular decomposition (DecomposePolicy::kForce) must all match the
// dense tableau's optimal objective, and every answer must pass the
// independent feasibility validator. Additional sweeps force Bland's
// anti-cycling rule almost immediately (stall_limit = 1) and check that
// parallel decomposition is bit-identical to its sequential run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "lp/solver.h"

namespace sb::lp {
namespace {

struct DiffSpec {
  std::uint64_t seed;
  std::size_t vars;
  std::size_t rows;
};

/// Random LP with BOUNDED variables: every variable gets a lower bound in
/// [0, 2] and, with probability 1/2, a finite upper bound. Variables with a
/// finite upper may take a negative cost (bounded below by the box, so the
/// problem stays bounded); free-upward variables keep non-negative costs.
/// Feasible by construction via an in-box witness.
Model make_bounded_random_lp(const DiffSpec& spec) {
  Rng rng(spec.seed);
  Model m;
  std::vector<double> witness(spec.vars);
  for (std::size_t i = 0; i < spec.vars; ++i) {
    const double lo = rng.uniform(0.0, 2.0);
    const bool boxed = rng.chance(0.5);
    const double hi = boxed ? lo + rng.uniform(0.5, 8.0) : kInf;
    const double cost =
        boxed ? rng.uniform(-3.0, 4.0) : rng.uniform(0.0, 4.0);
    witness[i] = boxed ? rng.uniform(lo, hi) : lo + rng.uniform(0.0, 6.0);
    m.add_variable(lo, hi, cost);
  }
  for (std::size_t r = 0; r < spec.rows; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < spec.vars; ++i) {
      if (!rng.chance(0.4)) continue;
      const double coeff = rng.uniform(-3.0, 3.0);
      terms.push_back({static_cast<int>(i), coeff});
      lhs += coeff * witness[i];
    }
    if (terms.empty()) continue;
    const double pick = rng.uniform();
    if (pick < 0.4) {
      m.add_constraint(std::move(terms), Sense::kLe,
                       lhs + rng.uniform(0.0, 4.0));
    } else if (pick < 0.8) {
      m.add_constraint(std::move(terms), Sense::kGe,
                       lhs - rng.uniform(0.0, 4.0));
    } else {
      m.add_constraint(std::move(terms), Sense::kEq, lhs);
    }
  }
  return m;
}

/// The bench's provisioning shape at test scale: per-DC capacity-peak
/// variables, per-(slot, config) completeness equalities, per-slot kLe
/// usage rows linking placements to the peaks.
Model make_provisioning_lp(std::size_t slots, std::size_t configs,
                           std::size_t dcs, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<int> cp(dcs);
  for (std::size_t x = 0; x < dcs; ++x) {
    cp[x] = m.add_variable(0.0, kInf, rng.uniform(0.9, 1.4));
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::vector<Term>> dc_rows(dcs);
    for (std::size_t c = 0; c < configs; ++c) {
      std::vector<Term> completeness;
      for (std::size_t x = 0; x < dcs; ++x) {
        const int s = m.add_variable(0.0, kInf, 1e-6 * rng.uniform(5, 100));
        dc_rows[x].push_back({s, rng.uniform(0.01, 0.1)});
        completeness.push_back({s, 1.0});
      }
      m.add_constraint(std::move(completeness), Sense::kEq,
                       rng.uniform(0.0, 50.0));
    }
    for (std::size_t x = 0; x < dcs; ++x) {
      dc_rows[x].push_back({cp[x], -1.0});
      m.add_constraint(std::move(dc_rows[x]), Sense::kLe, 0.0);
    }
  }
  return m;
}

/// Bound-flip-heavy LP: EVERY variable is boxed (often narrowly) with a
/// signed cost, and rows are sparse, so most of the optimum rests on bounds
/// and a cold solve is dominated by bound-to-bound moves — the primal
/// engine's batched flips and the dual engine's bound-flipping ratio test.
/// Feasible by construction via an in-box witness; bounded because every
/// variable is boxed.
Model make_flip_heavy_lp(const DiffSpec& spec) {
  Rng rng(spec.seed);
  Model m;
  std::vector<double> witness(spec.vars);
  for (std::size_t i = 0; i < spec.vars; ++i) {
    const double lo = rng.uniform(0.0, 1.0);
    const double hi = lo + rng.uniform(0.1, 2.0);
    witness[i] = rng.uniform(lo, hi);
    m.add_variable(lo, hi, rng.uniform(-5.0, 5.0));
  }
  for (std::size_t r = 0; r < spec.rows; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < spec.vars; ++i) {
      if (!rng.chance(0.25)) continue;
      const double coeff = rng.uniform(-2.0, 2.0);
      terms.push_back({static_cast<int>(i), coeff});
      lhs += coeff * witness[i];
    }
    if (terms.empty()) continue;
    if (rng.chance(0.5)) {
      m.add_constraint(std::move(terms), Sense::kLe,
                       lhs + rng.uniform(0.0, 2.0));
    } else {
      m.add_constraint(std::move(terms), Sense::kGe,
                       lhs - rng.uniform(0.0, 2.0));
    }
  }
  return m;
}

/// Degenerate transportation LP: equal costs on many arcs and zero-slack
/// supplies create heavy reduced-cost and ratio-test ties.
Model make_degenerate_lp(std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  const std::size_t src = 2 + rng.uniform_index(3);
  const std::size_t dst = 2 + rng.uniform_index(4);
  std::vector<double> demand(dst);
  double total = 0.0;
  for (std::size_t j = 0; j < dst; ++j) {
    demand[j] = static_cast<double>(1 + rng.uniform_index(5));
    total += demand[j];
  }
  std::vector<std::vector<int>> v(src, std::vector<int>(dst));
  for (std::size_t i = 0; i < src; ++i) {
    for (std::size_t j = 0; j < dst; ++j) {
      // Two cost levels only -> massive tie sets.
      v[i][j] = m.add_variable(0.0, kInf, rng.chance(0.5) ? 1.0 : 2.0);
    }
  }
  for (std::size_t i = 0; i < src; ++i) {
    std::vector<Term> row;
    for (std::size_t j = 0; j < dst; ++j) row.push_back({v[i][j], 1.0});
    // Supplies sum exactly to demand: every supply row is tight.
    m.add_constraint(std::move(row), Sense::kLe,
                     total / static_cast<double>(src));
  }
  for (std::size_t j = 0; j < dst; ++j) {
    std::vector<Term> col;
    for (std::size_t i = 0; i < src; ++i) col.push_back({v[i][j], 1.0});
    m.add_constraint(std::move(col), Sense::kEq, demand[j]);
  }
  return m;
}

void expect_sparse_matches_dense(const Model& m, const SolveOptions& sparse_opt,
                                 std::uint64_t seed) {
  SolveOptions dense_opt;
  dense_opt.method = Method::kDense;
  const Solution dense = solve(m, dense_opt);
  const Solution sparse = solve(m, sparse_opt);
  ASSERT_EQ(dense.status, SolveStatus::kOptimal) << "seed=" << seed;
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal) << "seed=" << seed;
  const double scale = std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(dense.objective, sparse.objective, 1e-5 * scale)
      << "seed=" << seed;
  const ValidationReport report = validate_solution(m, sparse.values, 1e-5);
  EXPECT_TRUE(report.feasible)
      << "seed=" << seed << " sparse violated " << report.worst << " by "
      << report.max_violation;
  // The sparse engine must also report a usable basis on every optimum.
  EXPECT_EQ(sparse.basis.size(), m.variable_count());
}

class BoundedRandomDifferentialTest
    : public ::testing::TestWithParam<DiffSpec> {};

TEST_P(BoundedRandomDifferentialTest, SparseMatchesDense) {
  const Model m = make_bounded_random_lp(GetParam());
  SolveOptions sparse_opt;
  sparse_opt.method = Method::kSparse;
  expect_sparse_matches_dense(m, sparse_opt, GetParam().seed);
}

TEST_P(BoundedRandomDifferentialTest, DualMatchesDense) {
  // Cold dual starts on these instances are mostly dual-feasible (unboxed
  // variables carry non-negative costs); where they are not, the facade's
  // primal fallback must still land on the dense optimum.
  const Model m = make_bounded_random_lp(GetParam());
  SolveOptions dual_opt;
  dual_opt.method = Method::kDual;
  expect_sparse_matches_dense(m, dual_opt, GetParam().seed);
}

std::vector<DiffSpec> make_bounded_specs() {
  std::vector<DiffSpec> specs;
  std::uint64_t seed = 20000;
  for (std::size_t vars : {4u, 10u, 24u}) {
    for (std::size_t rows : {3u, 8u, 16u, 32u}) {
      for (int rep = 0; rep < 12; ++rep) {
        specs.push_back({seed++, vars, rows});
      }
    }
  }
  return specs;  // 3 * 4 * 12 = 144 cases
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundedRandomDifferentialTest,
                         ::testing::ValuesIn(make_bounded_specs()),
                         [](const auto& info) {
                           const DiffSpec& s = info.param;
                           return "seed" + std::to_string(s.seed) + "_v" +
                                  std::to_string(s.vars) + "_r" +
                                  std::to_string(s.rows);
                         });

class FlipHeavyDifferentialTest : public ::testing::TestWithParam<DiffSpec> {};

TEST_P(FlipHeavyDifferentialTest, SparseMatchesDense) {
  const Model m = make_flip_heavy_lp(GetParam());
  SolveOptions sparse_opt;
  sparse_opt.method = Method::kSparse;
  expect_sparse_matches_dense(m, sparse_opt, GetParam().seed);
}

TEST_P(FlipHeavyDifferentialTest, DualMatchesDense) {
  const Model m = make_flip_heavy_lp(GetParam());
  SolveOptions dual_opt;
  dual_opt.method = Method::kDual;
  expect_sparse_matches_dense(m, dual_opt, GetParam().seed);
}

std::vector<DiffSpec> make_flip_heavy_specs() {
  std::vector<DiffSpec> specs;
  std::uint64_t seed = 50000;
  for (std::size_t vars : {8u, 20u, 40u}) {
    for (std::size_t rows : {4u, 10u, 20u}) {
      for (int rep = 0; rep < 8; ++rep) {
        specs.push_back({seed++, vars, rows});
      }
    }
  }
  return specs;  // 3 * 3 * 8 = 72 cases
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlipHeavyDifferentialTest,
                         ::testing::ValuesIn(make_flip_heavy_specs()),
                         [](const auto& info) {
                           const DiffSpec& s = info.param;
                           return "seed" + std::to_string(s.seed) + "_v" +
                                  std::to_string(s.vars) + "_r" +
                                  std::to_string(s.rows);
                         });

struct ProvShape {
  std::uint64_t seed;
  std::size_t slots;
  std::size_t configs;
  std::size_t dcs;
};

class ProvisioningShapedDifferentialTest
    : public ::testing::TestWithParam<ProvShape> {};

TEST_P(ProvisioningShapedDifferentialTest, SparseMatchesDense) {
  const ProvShape& p = GetParam();
  const Model m = make_provisioning_lp(p.slots, p.configs, p.dcs, p.seed);
  SolveOptions sparse_opt;
  sparse_opt.method = Method::kSparse;
  expect_sparse_matches_dense(m, sparse_opt, p.seed);
}

TEST_P(ProvisioningShapedDifferentialTest, DualMatchesDense) {
  const ProvShape& p = GetParam();
  const Model m = make_provisioning_lp(p.slots, p.configs, p.dcs, p.seed);
  SolveOptions dual_opt;
  dual_opt.method = Method::kDual;
  expect_sparse_matches_dense(m, dual_opt, p.seed);
}

std::vector<ProvShape> make_prov_shapes() {
  std::vector<ProvShape> shapes;
  std::uint64_t seed = 30000;
  for (std::size_t slots : {2u, 4u, 6u}) {
    for (std::size_t configs : {4u, 8u}) {
      for (std::size_t dcs : {3u, 5u}) {
        for (int rep = 0; rep < 4; ++rep) {
          shapes.push_back({seed++, slots, configs, dcs});
        }
      }
    }
  }
  return shapes;  // 3 * 2 * 2 * 4 = 48 cases
}

INSTANTIATE_TEST_SUITE_P(Shapes, ProvisioningShapedDifferentialTest,
                         ::testing::ValuesIn(make_prov_shapes()),
                         [](const auto& info) {
                           const ProvShape& p = info.param;
                           return "seed" + std::to_string(p.seed) + "_t" +
                                  std::to_string(p.slots) + "_c" +
                                  std::to_string(p.configs) + "_d" +
                                  std::to_string(p.dcs);
                         });

/// Degenerate instances solved with stall_limit = 1, so the sparse engine
/// drops to Bland's rule after a single non-improving pivot — the
/// anti-cycling path must still reach the dense engine's optimum.
class BlandFallbackTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlandFallbackTest, DegenerateInstancesSolveUnderBland) {
  const Model m = make_degenerate_lp(GetParam());
  SolveOptions sparse_opt;
  sparse_opt.method = Method::kSparse;
  sparse_opt.stall_limit = 1;
  expect_sparse_matches_dense(m, sparse_opt, GetParam());
}

TEST_P(BlandFallbackTest, DegenerateInstancesSolveUnderDualBland) {
  // Same degenerate instances through the dual engine: its stall detector
  // must engage lowest-index selection (flips disabled) and still finish —
  // directly or via the primal fallback.
  const Model m = make_degenerate_lp(GetParam());
  SolveOptions dual_opt;
  dual_opt.method = Method::kDual;
  dual_opt.stall_limit = 1;
  expect_sparse_matches_dense(m, dual_opt, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlandFallbackTest,
                         ::testing::Range<std::uint64_t>(700, 712));

/// Shapes large enough (slots > 6) that the per-DC peak columns clear the
/// degree cutoff and detect_blocks finds one block per slot.
class DecomposeDifferentialTest : public ::testing::TestWithParam<ProvShape> {};

TEST_P(DecomposeDifferentialTest, DecomposedMatchesDense) {
  const ProvShape& p = GetParam();
  const Model m = make_provisioning_lp(p.slots, p.configs, p.dcs, p.seed);
  SolveOptions opt;
  opt.method = Method::kSparse;
  opt.decompose = DecomposePolicy::kForce;
  expect_sparse_matches_dense(m, opt, p.seed);
}

TEST_P(DecomposeDifferentialTest, ParallelDecompositionIsBitIdentical) {
  const ProvShape& p = GetParam();
  const Model m = make_provisioning_lp(p.slots, p.configs, p.dcs, p.seed);
  SolveOptions opt;
  opt.method = Method::kSparse;
  opt.decompose = DecomposePolicy::kForce;
  opt.decompose_threads = 1;
  const Solution sequential = solve(m, opt);
  opt.decompose_threads = 4;
  const Solution parallel = solve(m, opt);
  ASSERT_EQ(sequential.status, parallel.status) << "seed=" << p.seed;
  ASSERT_EQ(sequential.values.size(), parallel.values.size());
  for (std::size_t i = 0; i < sequential.values.size(); ++i) {
    // Bit-identical, not merely close: subproblems are independent and the
    // stitch walks blocks in index order regardless of thread count.
    EXPECT_EQ(sequential.values[i], parallel.values[i])
        << "seed=" << p.seed << " var=" << i;
  }
  ASSERT_EQ(sequential.basis, parallel.basis) << "seed=" << p.seed;
  EXPECT_EQ(sequential.iterations, parallel.iterations);
}

std::vector<ProvShape> make_decompose_shapes() {
  std::vector<ProvShape> shapes;
  std::uint64_t seed = 40000;
  for (std::size_t slots : {8u, 12u}) {
    for (std::size_t configs : {3u, 6u}) {
      for (std::size_t dcs : {3u, 4u}) {
        shapes.push_back({seed++, slots, configs, dcs});
      }
    }
  }
  return shapes;  // 2 * 2 * 2 = 8 cases
}

INSTANTIATE_TEST_SUITE_P(Shapes, DecomposeDifferentialTest,
                         ::testing::ValuesIn(make_decompose_shapes()),
                         [](const auto& info) {
                           const ProvShape& p = info.param;
                           return "seed" + std::to_string(p.seed) + "_t" +
                                  std::to_string(p.slots) + "_c" +
                                  std::to_string(p.configs) + "_d" +
                                  std::to_string(p.dcs);
                         });

}  // namespace
}  // namespace sb::lp
