// Closed-loop autoscaling under a flash crowd (DESIGN.md "Closed-loop
// control"): the forecast is sized for the base design day, the truth trace
// carries a viral spike the forecast never saw, and a DC fails at the
// spike's peak. The open-loop controller keeps the stale plan and its
// provisioned failover budgets, so the drain sheds calls; the
// AdaptiveController observes the deviation through the telemetry feed,
// re-provisions with a warm-started LP, and installs the corrected plan
// before the fault lands — the same drain then fits inside the enlarged
// serving+backup budgets. The bench fails (exit 1) unless the open loop
// drops calls and the closed loop drops strictly fewer.
//
// Flags: --amplify=60 --peak=4.0 --cadence_s=300 --band=0.3
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "fault/failover.h"
#include "fault/fault_schedule.h"
#include "loop/adaptive.h"
#include "loop/demand_schedule.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace sb;
  const double amplify = bench::arg_double(argc, argv, "amplify", 60.0);
  const double peak = bench::arg_double(argc, argv, "peak", 4.0);
  const double cadence_s = bench::arg_double(argc, argv, "cadence_s", 300.0);
  const double band = bench::arg_double(argc, argv, "band", 0.3);
  obs::SpanRecorder::global().set_enabled(false);

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  // Forecast: the base design day, amplified, with no knowledge of the
  // spike. Both controllers provision and plan from exactly this matrix.
  const double slot_s = 3600.0;
  DemandMatrix forecast = bench::design_day_demand(scenario, slot_s, 30);
  for (TimeSlot t = 0; t < forecast.slot_count(); ++t) {
    for (std::size_t c = 0; c < forecast.config_count(); ++c) {
      forecast.set_demand(t, c, forecast.demand(t, c) * amplify);
    }
  }

  // Truth: a window centered on the design day's busiest slot — where the
  // provisioned backup margins are thinnest — whose demand ramps to `peak`x,
  // holds, and decays, with the loaded DC dying mid-hold.
  TimeSlot peak_slot = 0;
  double peak_demand = 0.0;
  for (TimeSlot t = 0; t < forecast.slot_count(); ++t) {
    double total = 0.0;
    for (std::size_t c = 0; c < forecast.config_count(); ++c) {
      total += forecast.demand(t, c);
    }
    if (total > peak_demand) {
      peak_demand = total;
      peak_slot = t;
    }
  }
  const double peak_time =
      kSecondsPerDay + (static_cast<double>(peak_slot) + 0.5) * slot_s;
  const double window_s = 3.0 * kSecondsPerHour;
  const double window_start = peak_time - 0.5 * window_s;
  const double ramp_start = window_start + 20.0 * 60.0;
  const double ramp_s = 40.0 * 60.0;
  const double hold_s = 60.0 * 60.0;
  const double decay_s = 30.0 * 60.0;
  loop::DemandSchedule spike =
      loop::DemandSchedule::viral_spike(ramp_start, ramp_s, peak, hold_s,
                                        decay_s);
  spike.add_phase({0.0, 2.0 * kSecondsPerDay, amplify, LocationId()});
  const CallRecordDatabase db = spike.scale_trace(
      scenario.trace->generate(window_start, window_start + window_s), 1);

  const double fail_at = peak_time;
  const double outage_s = 30.0 * 60.0;

  std::cout << "flash crowd: " << db.size() << " calls over "
            << window_s / kSecondsPerHour << " h, spike to " << peak
            << "x, DC failure at spike peak, " << outage_s / 60.0
            << " min outage\n\n";

  ControllerOptions options;
  options.provision.include_link_failures = false;

  // Shared yardstick: the per-DC serving+backup capacity of the ORIGINAL
  // (pre-spike) provision. The closed loop may outgrow it mid-run; the
  // overcap numbers measure realized load against the original plan.
  std::vector<double> base_capacity;
  DcId victim;
  Simulator sim(ctx);

  // ---- Open loop: the plan never changes after the window starts.
  std::uint64_t open_dropped = 0;
  double open_overcap = 0.0;
  {
    Switchboard controller(ctx, options);
    const ProvisionResult provision = controller.provision(forecast);
    base_capacity.resize(ctx.world->dc_count());
    for (std::size_t x = 0; x < base_capacity.size(); ++x) {
      base_capacity[x] = provision.capacity.dc_total_cores(
          DcId(static_cast<std::uint32_t>(x)));
    }
    // Fail the DC actually carrying the most load when the fault lands: a
    // no-fault replay of the same spiked trace reveals the realized
    // per-DC usage at the failure instant.
    controller.build_allocation_plan(forecast, kSecondsPerDay);
    {
      ControllerAllocator baseline(controller);
      const SimReport base = sim.run(db, baseline, 300.0);
      std::size_t busiest = 0;
      double most = -1.0;
      const auto bucket =
          static_cast<std::size_t>(fail_at / base.bucket_s) - 1;
      for (std::size_t x = 0; x < base.dc_cores_buckets.size(); ++x) {
        const auto& series = base.dc_cores_buckets[x];
        const double load = bucket < series.size() ? series[bucket] : 0.0;
        if (load > most) {
          most = load;
          busiest = x;
        }
      }
      victim = DcId(static_cast<std::uint32_t>(busiest));
    }
    controller.build_allocation_plan(forecast, kSecondsPerDay);
    fault::FaultSchedule faults;
    faults.fail_dc(victim, fail_at, outage_s);
    ControllerAllocator alloc(controller);
    const SimReport rep = sim.run(db, alloc, 300.0, &faults);
    open_dropped = rep.dropped_calls;
    open_overcap = fault::over_capacity_core_s(rep.dc_cores_buckets,
                                               base_capacity, rep.bucket_s);
    std::cout << "open loop:   " << rep.calls << " calls, "
              << rep.failover_migrations << " failover moves, "
              << rep.dropped_calls << " dropped, "
              << format_double(open_overcap, 1) << " overcap core-s\n";
  }

  // ---- Closed loop: same forecast, same fault, but the AdaptiveController
  // watches the telemetry feed and re-provisions when the spike leaves the
  // deviation band.
  std::uint64_t closed_dropped = 0;
  double closed_overcap = 0.0;
  loop::LoopStats stats;
  {
    Switchboard controller(ctx, options);
    (void)controller.provision(forecast);
    controller.build_allocation_plan(forecast, kSecondsPerDay);
    fault::FaultSchedule faults;
    faults.fail_dc(victim, fail_at, outage_s);
    obs::TimeSeriesRecorder recorder(&obs::MetricsRegistry::global(),
                                     {.period_s = 60.0});
    loop::LoopOptions lopts;
    lopts.cadence_s = cadence_s;
    lopts.deviation_band = band;
    loop::AdaptiveController loop(controller, ctx, forecast, kSecondsPerDay,
                                  slot_s, lopts, &recorder);
    const SimReport rep = sim.run(db, loop, 300.0, &faults);
    stats = loop.stats();
    closed_dropped = rep.dropped_calls;
    closed_overcap = fault::over_capacity_core_s(rep.dc_cores_buckets,
                                                 base_capacity, rep.bucket_s);
    std::cout << "closed loop: " << rep.calls << " calls, "
              << rep.failover_migrations << " failover moves, "
              << rep.dropped_calls << " dropped, "
              << format_double(closed_overcap, 1)
              << " overcap core-s vs the ORIGINAL capacity ("
              << stats.replans << " replans from " << stats.triggers
              << " triggers over " << stats.ticks << " ticks)\n";
  }

  const bool open_sheds = open_dropped > 0;
  const bool closed_better = closed_dropped < open_dropped;
  std::cout << "\n"
            << (open_sheds && closed_better
                    ? "closed-loop re-provision absorbed the flash crowd"
                    : "REGRESSION: closed loop did not beat open loop")
            << " (open dropped " << open_dropped << ", closed dropped "
            << closed_dropped << ")\n";

  bench::emit_json("sec_loop", "calls", static_cast<double>(db.size()));
  bench::emit_json("sec_loop", "open_dropped_calls",
                   static_cast<double>(open_dropped));
  bench::emit_json("sec_loop", "closed_dropped_calls",
                   static_cast<double>(closed_dropped));
  bench::emit_json("sec_loop", "open_over_capacity_core_s", open_overcap);
  bench::emit_json("sec_loop", "closed_over_capacity_core_s", closed_overcap);
  bench::emit_json("sec_loop", "closed_replans",
                   static_cast<double>(stats.replans));
  bench::emit_json("sec_loop", "closed_triggers",
                   static_cast<double>(stats.triggers));
  return open_sheds && closed_better ? 0 : 1;
}
