// Shared definitions for the two state-of-the-art baselines of §3:
// Round-Robin (RR) and Locality-First (LF). Both produce the same
// BaselineResult shape so Table 3's comparison code treats every scheme
// uniformly.
#pragma once

#include "calls/demand.h"
#include "core/capacity_plan.h"
#include "core/placement.h"

namespace sb {

struct BaselineResult {
  CapacityPlan capacity;
  /// No-failure placement the scheme would operate with.
  PlacementMatrix placement;
  /// Call-weighted mean ACL of that placement.
  double mean_acl_ms = 0.0;
};

struct BaselineOptions {
  /// Provision backup compute + the WAN peaks of failure scenarios.
  bool with_backup = true;
  bool include_link_failures = true;
  double acl_threshold_ms = kDefaultAclThresholdMs;
};

/// DCs a config's calls may use: the DCs of the majority location's region
/// (§2.1 — a call is hosted within its region), or every DC if the region
/// has none.
std::vector<DcId> region_candidates(const CallConfig& config,
                                    const World& world);

}  // namespace sb
