// sb_fuzz: the scenario-fuzzing driver over sb_check.
//
//   sb_fuzz --seeds 256                # fuzz seeds 0..255
//   sb_fuzz --seeds 64 --budget-s 60   # stop early after 60 s wall clock
//   sb_fuzz --chaos skip-drain-credit  # mutation mode: MUST fail (oracle
//                                      # self-test; exit 0 iff a failure was
//                                      # found and shrunk)
//   sb_fuzz --chaos skip-server-credit # same, for the per-server packer
//                                      # conservation oracle (forces fleets
//                                      # plus at least one server outage)
//   sb_fuzz --chaos skip-wal-freeze    # same, for the cluster WAL: a lost
//                                      # freeze record must trip conservation
//                                      # across a worker crash + replay
//   sb_fuzz --chaos skip-replan        # same, for the closed loop: a control
//                                      # tick that counts its trigger but
//                                      # drops the re-provision must trip the
//                                      # loop-replan oracle
//   sb_fuzz --storm worker-kill        # every case runs the sb_cluster path
//                                      # under a multi-kill worker storm
//                                      # (failures here are real bugs)
//   sb_fuzz --replay repro.json        # re-run one repro file; exit 1 if it
//                                      # (still) fails
//   sb_fuzz --replay-dir tests/repros  # regression-run a repro corpus:
//                                      # every case must PASS
//   sb_fuzz --dump 7 case.json         # write seed 7's generated case
//
// On a fuzzing failure the case is shrunk and written to --out (default
// "sb_fuzz_repros") as repro_seed<N>.json, and the exit code is 1 (unless
// --chaos, where finding the planted bug is the point). The shrunken case is
// re-run with the flight recorder armed and the span ring is dumped next to
// the repro as repro_seed<N>.flight.json (Chrome trace-event JSON) — the
// black-box record of what the controller did leading up to the violation.
//
// Observability flags: --flight-capacity bounds the per-thread span ring
// (the retained flight window); --trace-out writes the full-session span
// trace at exit; --metrics-out writes the final MetricsRegistry snapshot.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/oracles.h"
#include "check/shrink.h"
#include "common/error.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace {

struct Args {
  std::uint64_t seeds = 64;
  std::uint64_t seed_base = 0;
  double budget_s = 0.0;  ///< 0 = unlimited
  std::string replay;
  std::string replay_dir;
  std::string out_dir = "sb_fuzz_repros";
  std::string dump_file;
  std::uint64_t dump_seed = 0;
  bool dump = false;
  bool chaos_drain = false;
  bool chaos_server = false;
  bool chaos_wal = false;
  bool chaos_replan = false;
  bool storm_workers = false;
  bool keep_going = false;
  bool no_shrink = false;
  std::uint64_t flight_capacity = 8192;  ///< per-thread span ring slots
  std::string trace_out;
  std::string metrics_out;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: sb_fuzz [--seeds N] [--seed-base S] [--budget-s T]\n"
      "               [--out DIR]\n"
      "               [--chaos skip-drain-credit|skip-server-credit|"
      "skip-wal-freeze|skip-replan]\n"
      "               [--storm worker-kill]\n"
      "               [--keep-going] [--no-shrink]\n"
      "               [--flight-capacity N] [--trace-out FILE]\n"
      "               [--metrics-out FILE]\n"
      "       sb_fuzz --replay FILE\n"
      "       sb_fuzz --replay-dir DIR\n"
      "       sb_fuzz --dump SEED FILE\n");
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      a.seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (v == nullptr) return false;
      a.seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--budget-s") {
      const char* v = next();
      if (v == nullptr) return false;
      a.budget_s = std::strtod(v, nullptr);
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      a.replay = v;
    } else if (arg == "--replay-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      a.replay_dir = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      a.out_dir = v;
    } else if (arg == "--dump") {
      const char* s = next();
      const char* f = next();
      if (s == nullptr || f == nullptr) return false;
      a.dump = true;
      a.dump_seed = std::strtoull(s, nullptr, 10);
      a.dump_file = f;
    } else if (arg == "--chaos") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "skip-drain-credit") == 0) {
        a.chaos_drain = true;
      } else if (v != nullptr && std::strcmp(v, "skip-server-credit") == 0) {
        a.chaos_server = true;
      } else if (v != nullptr && std::strcmp(v, "skip-wal-freeze") == 0) {
        a.chaos_wal = true;
      } else if (v != nullptr && std::strcmp(v, "skip-replan") == 0) {
        a.chaos_replan = true;
      } else {
        std::fprintf(stderr, "sb_fuzz: unknown chaos mode\n");
        return false;
      }
    } else if (arg == "--storm") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "worker-kill") == 0) {
        a.storm_workers = true;
      } else {
        std::fprintf(stderr, "sb_fuzz: unknown storm mode\n");
        return false;
      }
    } else if (arg == "--keep-going") {
      a.keep_going = true;
    } else if (arg == "--no-shrink") {
      a.no_shrink = true;
    } else if (arg == "--flight-capacity") {
      const char* v = next();
      if (v == nullptr) return false;
      a.flight_capacity = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      a.trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      a.metrics_out = v;
    } else {
      std::fprintf(stderr, "sb_fuzz: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int replay_one(const std::string& path) {
  const sb::check::FuzzCase c = sb::check::load_repro(path);
  const sb::check::CheckResult r = sb::check::run_case(c);
  std::printf("%s: %s\n  %s\n", path.c_str(), c.describe().c_str(),
              r.summary().c_str());
  return r.ok() ? 0 : 1;
}

int replay_dir(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  int failures = 0;
  for (const std::string& f : files) {
    failures += replay_one(f) == 0 ? 0 : 1;
  }
  std::printf("replayed %zu repro(s), %d failing\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}

/// Shrinks a failing case and writes the repro; returns the repro path.
/// The minimized case is then re-run with the flight recorder armed and the
/// captured span ring lands next to the repro as <stem>.flight.json, so the
/// dump always matches the case the repro file holds.
std::string write_failure(const sb::check::FuzzCase& c, bool no_shrink,
                          const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  sb::check::FuzzCase minimized = c;
  if (!no_shrink) {
    const sb::check::ShrinkResult s = sb::check::shrink_case(c);
    minimized = s.best;
    std::printf("  shrunk to: %s (%zu attempts, %zu accepted, oracle=%s)\n",
                minimized.describe().c_str(), s.attempts, s.successes,
                s.oracle.c_str());
  }
  const std::string path =
      out_dir + "/repro_seed" + std::to_string(c.seed) + ".json";
  sb::check::write_repro(minimized, path);
  std::printf("  repro written to %s\n", path.c_str());

  sb::check::CheckOptions flight_opts;
  flight_opts.capture_flight = true;
  const sb::check::CheckResult rerun =
      sb::check::run_case(minimized, flight_opts);
  if (!rerun.flight.empty()) {
    const std::string flight_path =
        out_dir + "/repro_seed" + std::to_string(c.seed) + ".flight.json";
    std::ofstream out(flight_path);
    if (out) {
      sb::obs::write_chrome_trace(out, rerun.flight);
      std::printf("  flight recording written to %s (%zu spans)\n",
                  flight_path.c_str(), rerun.flight.size());
    }
  }
  return path;
}

int fuzz(const Args& a) {
  sb::check::FuzzerParams params;
  params.chaos_skip_drain_credit = a.chaos_drain;
  params.chaos_skip_server_credit = a.chaos_server;
  params.chaos_skip_wal_freeze = a.chaos_wal;
  params.chaos_skip_replan = a.chaos_replan;
  params.worker_kill_storm = a.storm_workers;
  const bool chaos =
      a.chaos_drain || a.chaos_server || a.chaos_wal || a.chaos_replan;
  const sb::check::ScenarioFuzzer fuzzer(params);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t run = 0;
  std::uint64_t skipped = 0;
  std::uint64_t failed = 0;
  for (std::uint64_t i = 0; i < a.seeds; ++i) {
    if (a.budget_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() > a.budget_s) {
        std::printf("budget exhausted after %llu seed(s)\n",
                    static_cast<unsigned long long>(run));
        break;
      }
    }
    const std::uint64_t seed = a.seed_base + i;
    const sb::check::FuzzCase c = fuzzer.generate(seed);
    const sb::check::CheckResult r = sb::check::run_case(c);
    ++run;
    if (r.provision_infeasible) {
      ++skipped;
      continue;
    }
    if (!r.ok()) {
      ++failed;
      std::printf("seed %llu FAILED: %s\n  %s\n",
                  static_cast<unsigned long long>(seed), c.describe().c_str(),
                  r.summary().c_str());
      write_failure(c, a.no_shrink, a.out_dir);
      if (chaos || !a.keep_going) break;
    }
  }
  std::printf("fuzzed %llu seed(s): %llu failed, %llu skipped "
              "(provisioning infeasible)\n",
              static_cast<unsigned long long>(run),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(skipped));
  if (chaos) {
    // Mutation mode inverts the exit code: the planted bug MUST be caught.
    if (failed == 0) {
      std::fprintf(stderr,
                   "sb_fuzz --chaos: planted bug was NOT detected\n");
      return 1;
    }
    return 0;
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

/// Exit-time observability dumps (run whatever way the tool exits normally).
int finish(const Args& a, int code) {
  if (!a.trace_out.empty()) {
    std::uint64_t dropped = 0;
    if (sb::obs::dump_chrome_trace(a.trace_out, &dropped)) {
      std::printf("trace written to %s%s\n", a.trace_out.c_str(),
                  dropped > 0 ? " (ring wrapped; oldest spans dropped)" : "");
    } else {
      std::fprintf(stderr, "sb_fuzz: cannot write %s\n", a.trace_out.c_str());
    }
  }
  if (!a.metrics_out.empty()) {
    std::ofstream out(a.metrics_out);
    if (out) {
      sb::obs::MetricsRegistry::global().snapshot().write_json(out);
      std::printf("metrics written to %s\n", a.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "sb_fuzz: cannot write %s\n",
                   a.metrics_out.c_str());
    }
  }
  return code;
}

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) {
    usage();
    return 2;
  }
  // Size the span ring before any span is recorded: this is the flight
  // window each thread retains (see SpanRecorderOptions::ring_capacity).
  sb::obs::SpanRecorder::global().configure(
      {.enabled = true, .ring_capacity = a.flight_capacity});
  try {
    if (a.dump) {
      const sb::check::FuzzCase c =
          sb::check::ScenarioFuzzer().generate(a.dump_seed);
      sb::check::write_repro(c, a.dump_file);
      std::printf("seed %llu (%s) written to %s\n",
                  static_cast<unsigned long long>(a.dump_seed),
                  c.describe().c_str(), a.dump_file.c_str());
      return 0;
    }
    if (!a.replay.empty()) return finish(a, replay_one(a.replay));
    if (!a.replay_dir.empty()) return finish(a, replay_dir(a.replay_dir));
    return finish(a, fuzz(a));
  } catch (const sb::Error& e) {
    std::fprintf(stderr, "sb_fuzz: %s\n", e.what());
    return 2;
  }
}
