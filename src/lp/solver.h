// Solver facade: converts a Model to standard form, dispatches to a simplex
// implementation, and maps the answer back to model variable space. This is
// the only LP entry point the rest of Switchboard uses.
#pragma once

#include "lp/dense_simplex.h"
#include "lp/model.h"

namespace sb::lp {

enum class Method {
  kAuto,     ///< revised simplex for >= 100 rows, dense tableau otherwise
  kDense,    ///< force the dense tableau (reference implementation)
  kRevised,  ///< force the revised simplex
};

struct SolveOptions : SimplexOptions {
  Method method = Method::kAuto;
  /// Run the presolve reductions (singleton rows -> bounds, empty rows,
  /// early infeasibility) before the simplex. See lp/presolve.h.
  bool use_presolve = true;
};

/// Solves `model` (minimization). The returned Solution's `values` cover all
/// model variables, including fixed ones. Throws InvalidArgument for models
/// with non-finite lower bounds; solver failures are reported via
/// Solution::status, not exceptions.
Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace sb::lp
