file(REMOVE_RECURSE
  "../bench/fig7_call_configs"
  "../bench/fig7_call_configs.pdb"
  "CMakeFiles/fig7_call_configs.dir/fig7_call_configs.cpp.o"
  "CMakeFiles/fig7_call_configs.dir/fig7_call_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_call_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
