// Reproduces Fig 7: (a) per-config call-count forecast vs ground truth,
// (b) heterogeneous growth across 15 call configs, (c) fraction of calls
// covered by the top-N% call configs (paper: top 0.1% cover 86%, top 1%
// cover 93%).
//
// Flags: --history_weeks=8 --horizon_days=7 --universe=4000
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "forecast/forecaster.h"

int main(int argc, char** argv) {
  using namespace sb;
  const std::size_t history_weeks =
      bench::arg_size(argc, argv, "history_weeks", 8);
  const std::size_t horizon_days =
      bench::arg_size(argc, argv, "horizon_days", 7);
  const std::size_t universe_size =
      bench::arg_size(argc, argv, "universe", 4000);

  // A large universe so the coverage curve (c) has a meaningful tail.
  Scenario scenario = make_apac_scenario({.config_count = universe_size});
  const TraceGenerator& trace = *scenario.trace;
  const double bucket_s = trace.params().bucket_s;
  const std::size_t season = static_cast<std::size_t>(
      kSecondsPerWeek / bucket_s);  // weekly seasonality

  // ---- (a) forecast vs ground truth for the most popular config ----
  print_banner(std::cout,
               "Fig 7(a): forecast vs ground truth (top config, daily "
               "totals)");
  const double history_end = history_weeks * kSecondsPerWeek;
  const double horizon_end = history_end + horizon_days * kSecondsPerDay;
  const auto history = trace.arrival_count_series(0, 0.0, history_end);
  const auto truth =
      trace.arrival_count_series(0, history_end, horizon_end);
  const auto forecast = forecast_calls(history, season, truth.size());

  TextTable fa({"day", "truth calls", "forecast calls", "error %"});
  const std::size_t per_day = static_cast<std::size_t>(kSecondsPerDay / bucket_s);
  for (std::size_t d = 0; d < horizon_days; ++d) {
    double t_sum = 0.0;
    double f_sum = 0.0;
    for (std::size_t b = d * per_day;
         b < std::min((d + 1) * per_day, truth.size()); ++b) {
      t_sum += truth[b];
      f_sum += forecast[b];
    }
    fa.row()
        .cell(std::to_string(d + 1))
        .cell(t_sum, 0)
        .cell(f_sum, 0)
        .cell(t_sum > 0 ? 100.0 * (f_sum - t_sum) / t_sum : 0.0, 1);
  }
  std::cout << fa;
  const NormalizedErrors errors = normalized_errors(truth, forecast);
  std::cout << "bucket-level normalized RMSE "
            << format_double(100.0 * errors.rmse, 1) << "%, MAE "
            << format_double(100.0 * errors.mae, 1) << "%\n";

  // ---- (b) growth across 15 configs over ~4 months ----
  print_banner(std::cout,
               "Fig 7(b): growth in call counts for 15 configs over 16 weeks "
               "(normalized to max growth)");
  const std::size_t sample = std::min<std::size_t>(
      15, scenario.trace->universe().configs.size());
  std::vector<double> growth(sample);
  double max_growth = 0.0;
  for (std::size_t i = 0; i < sample; ++i) {
    // Expected weekly totals at week 1 vs week 16 (diurnal cancels out).
    const double wg = trace.universe().configs[i].weekly_growth;
    growth[i] = std::pow(wg, 16.0);
    max_growth = std::max(max_growth, growth[i]);
  }
  TextTable fb({"config rank", "16-week growth", "normalized"});
  for (std::size_t i = 0; i < sample; ++i) {
    fb.row()
        .cell(std::to_string(i))
        .cell(growth[i], 3)
        .cell(growth[i] / max_growth);
  }
  std::cout << fb;

  // ---- (c) coverage by top-N configs ----
  print_banner(std::cout, "Fig 7(c): fraction of calls covered by top-N% "
                          "configs");
  const ConfigUniverse& universe = trace.universe();
  const double total_rate = universe.total_base_rate();
  TextTable fc({"top-N%", "configs", "call coverage %", "paper"});
  struct Mark {
    double pct;
    const char* paper;
  };
  for (const Mark mark : {Mark{0.1, "86%"}, Mark{0.5, "-"}, Mark{1.0, "93%"},
                          Mark{5.0, "-"}, Mark{10.0, "-"}}) {
    const std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(universe.configs.size() * mark.pct / 100.0));
    double covered = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      covered += universe.configs[i].base_rate_per_hour;
    }
    fc.row()
        .cell(format_double(mark.pct, 1))
        .cell(static_cast<std::uint64_t>(count))
        .cell(100.0 * covered / total_rate, 1)
        .cell(mark.paper);
  }
  std::cout << fc;
  std::cout << "(universe: " << universe.configs.size()
            << " configs; the paper saw 10M+ configs with the same skew "
               "shape)\n";
  return 0;
}
