file(REMOVE_RECURSE
  "../bench/ablation_ideas"
  "../bench/ablation_ideas.pdb"
  "CMakeFiles/ablation_ideas.dir/ablation_ideas.cpp.o"
  "CMakeFiles/ablation_ideas.dir/ablation_ideas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ideas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
