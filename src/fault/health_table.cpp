#include "fault/health_table.h"

#include "common/error.h"

namespace sb::fault {

HealthTable::HealthTable(std::size_t dc_count, std::size_t link_count,
                         std::size_t server_count, std::size_t worker_count)
    : dc_count_(dc_count), link_count_(link_count),
      server_count_(server_count), worker_count_(worker_count) {
  require(dc_count_ > 0, "HealthTable: no DCs");
  dcs_ = std::make_unique<Entry[]>(dc_count_);
  if (link_count_ > 0) links_ = std::make_unique<Entry[]>(link_count_);
  if (server_count_ > 0) servers_ = std::make_unique<Entry[]>(server_count_);
  if (worker_count_ > 0) workers_ = std::make_unique<Entry[]>(worker_count_);
}

HealthState HealthTable::flip(Entry& entry, bool up,
                              std::atomic<std::uint32_t>& counter) {
  const std::uint64_t want_down = up ? 0 : 1;
  std::uint64_t cur = entry.word.load(std::memory_order_relaxed);
  for (;;) {
    if ((cur & 1u) == want_down) return unpack(cur);  // redundant set
    const std::uint64_t next = (((cur >> 1) + 1) << 1) | want_down;
    if (entry.word.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      // Exactly one thread wins each flip, so the down counter moves once
      // per transition and all_up() stays exact.
      if (up) {
        counter.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        counter.fetch_add(1, std::memory_order_acq_rel);
      }
      return unpack(next);
    }
  }
}

HealthState HealthTable::set_dc(DcId dc, bool up) {
  require(dc.valid() && dc.value() < dc_count_, "HealthTable: bad DC id");
  return flip(dcs_[dc.value()], up, down_total_);
}

HealthState HealthTable::set_link(LinkId link, bool up) {
  require(link.valid() && link.value() < link_count_,
          "HealthTable: bad link id");
  return flip(links_[link.value()], up, down_total_);
}

HealthState HealthTable::set_server(ServerId server, bool up) {
  require(server.valid() && server.value() < server_count_,
          "HealthTable: bad server id");
  return flip(servers_[server.value()], up, down_total_);
}

HealthState HealthTable::set_worker(WorkerId worker, bool up) {
  require(worker.valid() && worker.value() < worker_count_,
          "HealthTable: bad worker id");
  return flip(workers_[worker.value()], up, down_workers_);
}

bool HealthTable::dc_up(DcId dc) const {
  return (dcs_[dc.value()].word.load(std::memory_order_acquire) & 1u) == 0;
}

bool HealthTable::link_up(LinkId link) const {
  return (links_[link.value()].word.load(std::memory_order_acquire) & 1u) == 0;
}

bool HealthTable::server_up(ServerId server) const {
  return (servers_[server.value()].word.load(std::memory_order_acquire) &
          1u) == 0;
}

HealthState HealthTable::dc_state(DcId dc) const {
  return unpack(dcs_[dc.value()].word.load(std::memory_order_acquire));
}

HealthState HealthTable::link_state(LinkId link) const {
  return unpack(links_[link.value()].word.load(std::memory_order_acquire));
}

HealthState HealthTable::server_state(ServerId server) const {
  return unpack(servers_[server.value()].word.load(std::memory_order_acquire));
}

bool HealthTable::worker_up(WorkerId worker) const {
  return (workers_[worker.value()].word.load(std::memory_order_acquire) &
          1u) == 0;
}

HealthState HealthTable::worker_state(WorkerId worker) const {
  return unpack(workers_[worker.value()].word.load(std::memory_order_acquire));
}

std::size_t HealthTable::down_dcs() const {
  std::size_t n = 0;
  for (std::size_t x = 0; x < dc_count_; ++x) {
    if (!dc_up(DcId(static_cast<std::uint32_t>(x)))) ++n;
  }
  return n;
}

std::size_t HealthTable::down_links() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < link_count_; ++l) {
    if (!link_up(LinkId(static_cast<std::uint32_t>(l)))) ++n;
  }
  return n;
}

std::size_t HealthTable::down_servers() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < server_count_; ++s) {
    if (!server_up(ServerId(static_cast<std::uint32_t>(s)))) ++n;
  }
  return n;
}

}  // namespace sb::fault
