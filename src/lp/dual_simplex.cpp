#include "lp/dual_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "lp/basis.h"
#include "lp/lu_factor.h"
#include "obs/span.h"

namespace sb::lp {
namespace {

/// Pivot-row entries below this cannot anchor a dual pivot or a ratio-test
/// breakpoint (mirrors the primal feasibility_tol use in its ratio test).
constexpr double kAlphaTol = 1e-9;
/// Rounds of end-game dual-feasibility repair (flip wrong-sign boxed
/// nonbasics on fresh factors and resume) before handing off to the primal.
constexpr int kMaxFinishRounds = 3;
/// Rounds of basis repair during load (same as the primal engine).
constexpr int kMaxRepairRounds = 5;

class DualSimplex {
 public:
  DualSimplex(const StandardForm& sf, const SimplexOptions& options)
      : options_(options),
        n_(sf.var_count()),
        m_(sf.rows.size()),
        total_(n_ + m_) {
    build(sf);
  }

  SfSolution run(const std::vector<VarStatus>* warm, DualSolveStats* stats) {
    SfSolution out;
    obs::Span span("lp.dual", obs::Subsystem::kLp);
    init(warm);
    if (!make_dual_feasible()) {
      // The start cannot be repaired by bound flips (an unboxed column's
      // reduced cost has the wrong sign). Hand the — still valid — basis
      // to the primal engine.
      fill_statuses(out);
      out.status = SolveStatus::kIterationLimit;
      if (stats != nullptr) fill_stats(stats, /*cleanup=*/true);
      span.attr(obs::AttrKey::kStatus, -1);
      return out;
    }
    out.status = iterate(out.iterations);
    span.attr(obs::AttrKey::kIterations,
              static_cast<std::int64_t>(out.iterations));
    span.attr(obs::AttrKey::kFactorizations,
              static_cast<std::int64_t>(basis_state_.factorizations()));
    fill_statuses(out);
    if (out.status == SolveStatus::kOptimal) {
      out.values.resize(n_);
      for (std::size_t j = 0; j < n_; ++j) {
        out.values[j] = status_[j] == VarStatus::kBasic
                            ? x_basic_[static_cast<std::size_t>(pos_of_[j])]
                            : nonbasic_value(static_cast<int>(j));
      }
    }
    if (stats != nullptr) fill_stats(stats, fell_back_);
    return out;
  }

 private:
  // ---- model construction (mirrors the primal engine) --------------------

  void build(const StandardForm& sf) {
    columns_.resize(total_);
    lower_.assign(total_, 0.0);
    upper_.assign(total_, kInf);
    cost_.assign(total_, 0.0);
    rhs_.resize(m_);
    for (std::size_t j = 0; j < n_; ++j) {
      cost_[j] = sf.cost[j];
      upper_[j] = sf.upper[j];
    }
    rows_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      const StandardRow& row = sf.rows[r];
      for (const Term& t : row.terms) {
        columns_[static_cast<std::size_t>(t.var)].emplace_back(r, t.coeff);
        rows_[r].emplace_back(static_cast<std::size_t>(t.var), t.coeff);
      }
      const std::size_t lj = n_ + r;
      columns_[lj].emplace_back(r, 1.0);
      switch (row.sense) {
        case Sense::kLe:
          break;  // s in [0, inf)
        case Sense::kGe:
          lower_[lj] = -kInf;
          upper_[lj] = 0.0;
          break;
        case Sense::kEq:
          upper_[lj] = 0.0;
          break;
      }
      rhs_[r] = row.rhs;
    }
    status_.assign(total_, VarStatus::kAtLower);
    pos_of_.assign(total_, -1);
    w_.resize(m_);
    cb_.resize(m_);
    bwork_.resize(m_);
    rho_.resize(m_);
    alpha_.resize(total_);
  }

  [[nodiscard]] double nonbasic_value(int j) const {
    const auto ju = static_cast<std::size_t>(j);
    return status_[ju] == VarStatus::kAtUpper ? upper_[ju] : lower_[ju];
  }

  [[nodiscard]] VarStatus resting_status(std::size_t j) const {
    return lower_[j] == -kInf ? VarStatus::kAtUpper : VarStatus::kAtLower;
  }

  [[nodiscard]] bool boxed(std::size_t j) const {
    return lower_[j] > -kInf && upper_[j] < kInf && upper_[j] > lower_[j];
  }

  /// Installs the warm statuses (or a cold all-logical basis), factorizes
  /// with repair, and computes basic values. Same crash contract as the
  /// primal engine's init_warm.
  void init(const std::vector<VarStatus>* warm) {
    basis_.clear();
    const bool usable =
        warm != nullptr && (warm->size() == n_ || warm->size() == total_);
    const bool has_row_hints = usable && warm->size() == total_;
    for (std::size_t j = 0; j < n_; ++j) {
      const VarStatus hint = usable ? (*warm)[j] : VarStatus::kAtLower;
      switch (hint) {
        case VarStatus::kBasic:
          if (basis_.size() < m_) {
            basis_.push_back(static_cast<int>(j));
            status_[j] = VarStatus::kBasic;
          } else {
            status_[j] = resting_status(j);
          }
          break;
        case VarStatus::kAtUpper:
          status_[j] =
              upper_[j] < kInf ? VarStatus::kAtUpper : VarStatus::kAtLower;
          break;
        default:
          status_[j] = resting_status(j);
          break;
      }
    }
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t lj = n_ + r;
      if ((!usable || (has_row_hints && (*warm)[lj] == VarStatus::kBasic)) &&
          basis_.size() < m_) {
        basis_.push_back(static_cast<int>(lj));
        status_[lj] = VarStatus::kBasic;
      } else {
        status_[lj] = resting_status(lj);
      }
    }
    // Pad any shortfall with nonbasic logicals (load_with_repair swaps out
    // dependent picks).
    for (std::size_t r = 0; r < m_ && basis_.size() < m_; ++r) {
      const std::size_t lj = n_ + r;
      if (status_[lj] == VarStatus::kBasic) continue;
      basis_.push_back(static_cast<int>(lj));
      status_[lj] = VarStatus::kBasic;
    }
    if (!load_with_repair()) {
      throw InternalError("dual simplex: basis failed to factorize");
    }
    compute_basic_values();
  }

  bool load_with_repair() {
    std::vector<const SparseCol*> cols;
    for (int round = 0; round < kMaxRepairRounds; ++round) {
      cols.clear();
      cols.reserve(basis_.size());
      for (int col : basis_) {
        cols.push_back(&columns_[static_cast<std::size_t>(col)]);
      }
      const Basis::LoadResult res = basis_state_.load(cols, m_);
      if (res.clean() && basis_.size() == m_) {
        std::fill(pos_of_.begin(), pos_of_.end(), -1);
        for (std::size_t p = 0; p < m_; ++p) {
          pos_of_[static_cast<std::size_t>(basis_[p])] = static_cast<int>(p);
          status_[static_cast<std::size_t>(basis_[p])] = VarStatus::kBasic;
        }
        return true;
      }
      std::vector<int> next;
      next.reserve(m_);
      std::size_t rej = 0;
      for (std::size_t p = 0; p < basis_.size(); ++p) {
        if (rej < res.rejected.size() &&
            res.rejected[rej] == static_cast<int>(p)) {
          ++rej;
          const auto col = static_cast<std::size_t>(basis_[p]);
          status_[col] = resting_status(col);
          continue;
        }
        next.push_back(basis_[p]);
      }
      for (int r : res.unpivoted_rows) {
        const std::size_t lj = n_ + static_cast<std::size_t>(r);
        next.push_back(static_cast<int>(lj));
        status_[lj] = VarStatus::kBasic;
      }
      basis_ = std::move(next);
      if (basis_.size() != m_) return false;
    }
    return false;
  }

  void compute_basic_values() {
    bwork_.clear();
    for (std::size_t r = 0; r < m_; ++r) {
      if (rhs_[r] != 0.0) bwork_.set(static_cast<int>(r), rhs_[r]);
    }
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = nonbasic_value(static_cast<int>(j));
      if (v == 0.0) continue;
      for (const auto& [r, a] : columns_[j]) {
        bwork_.add(static_cast<int>(r), -a * v);
      }
    }
    basis_state_.ftran(bwork_);
    x_basic_.assign(m_, 0.0);
    for (int p : bwork_.nz) {
      if (p >= 0 && static_cast<std::size_t>(p) < m_) {
        x_basic_[static_cast<std::size_t>(p)] =
            bwork_.values[static_cast<std::size_t>(p)];
      }
    }
    bwork_.clear();
  }

  bool refactorize() {
    if (!load_with_repair()) return false;
    compute_basic_values();
    return true;
  }

  // ---- dual machinery ----------------------------------------------------

  /// Recomputes the duals y = B^-T c_B into cb_.
  void compute_duals() {
    cb_.clear();
    for (std::size_t p = 0; p < m_; ++p) {
      const double c = cost_[static_cast<std::size_t>(basis_[p])];
      if (c != 0.0) cb_.set(static_cast<int>(p), c);
    }
    basis_state_.btran(cb_);
  }

  [[nodiscard]] double reduced_cost(int j) const {
    const auto ju = static_cast<std::size_t>(j);
    double d = cost_[ju];
    for (const auto& [r, v] : columns_[ju]) {
      d -= cb_.values[r] * v;
    }
    return d;
  }

  /// Flips every wrong-sign BOXED nonbasic onto its other bound; returns
  /// false when an unboxed nonbasic has a wrong-sign reduced cost (the
  /// start is not dual-repairable by flips). Recomputes basic values when
  /// anything flipped.
  bool make_dual_feasible() {
    compute_duals();
    const double dtol = options_.optimality_tol;
    bool flipped = false;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (!(upper_[j] - lower_[j] > 0.0)) continue;  // fixed: any sign is fine
      const double d = reduced_cost(static_cast<int>(j));
      if (status_[j] == VarStatus::kAtLower && d < -dtol) {
        if (upper_[j] == kInf) return false;
        status_[j] = VarStatus::kAtUpper;
        ++bound_flips_;
        flipped = true;
      } else if (status_[j] == VarStatus::kAtUpper && d > dtol) {
        if (lower_[j] == -kInf) return false;
        status_[j] = VarStatus::kAtLower;
        ++bound_flips_;
        flipped = true;
      }
    }
    if (flipped) compute_basic_values();
    return true;
  }

  /// Largest primal bound violation among the basics; -1 when primal
  /// feasible. Under bland_ the lowest violating position wins instead.
  [[nodiscard]] int pick_leaving() const {
    const double ftol = options_.feasibility_tol;
    int best = -1;
    double best_viol = ftol;
    for (std::size_t p = 0; p < m_; ++p) {
      const auto col = static_cast<std::size_t>(basis_[p]);
      const double x = x_basic_[p];
      double viol = 0.0;
      if (x < lower_[col] - ftol) {
        viol = lower_[col] - x;
      } else if (x > upper_[col] + ftol) {
        viol = x - upper_[col];
      } else {
        continue;
      }
      if (bland_) return static_cast<int>(p);
      if (viol > best_viol) {
        best_viol = viol;
        best = static_cast<int>(p);
      }
    }
    return best;
  }

  struct Breakpoint {
    double ratio;
    int col;
    double alpha;  ///< sigma * alpha_j (the eligible-signed pivot-row entry)
  };

  SolveStatus iterate(std::size_t& iterations) {
    bland_ = false;
    std::size_t stalled = 0;
    int finish_rounds = 0;
    double last_infeas = kInf;
    const double dtol = options_.optimality_tol;
    while (true) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      if (basis_state_.update_count() >= options_.refactor_interval) {
        if (!refactorize()) {
          throw InternalError("dual simplex: basis repair failed");
        }
      }

      const int r = pick_leaving();
      if (r < 0) {
        // Primal feasible. Declare optimality only against fresh factors
        // AND a fresh dual-feasibility check: eta drift can both hide a
        // violation and let a reduced cost creep across zero.
        if (basis_state_.update_count() > 0) {
          if (!refactorize()) {
            throw InternalError("dual simplex: basis repair failed");
          }
          continue;
        }
        if (!make_dual_feasible() || ++finish_rounds > kMaxFinishRounds) {
          fell_back_ = true;
          return SolveStatus::kIterationLimit;
        }
        if (pick_leaving() >= 0) continue;  // repair flips broke feasibility
        return SolveStatus::kOptimal;
      }

      compute_duals();

      const auto leave_col =
          static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)]);
      const double x_r = x_basic_[static_cast<std::size_t>(r)];
      // sigma: +1 when the leaving basic exceeds its upper bound (it will
      // come to rest there), -1 when below its lower bound.
      const double sigma = x_r > upper_[leave_col] ? 1.0 : -1.0;

      // Pivot row alpha = e_r^T B^-1 A through the row-wise copy.
      rho_.clear();
      rho_.set(r, 1.0);
      basis_state_.btran(rho_);
      alpha_.clear();
      for (int i : rho_.nz) {
        const double rv = rho_.values[static_cast<std::size_t>(i)];
        if (rv == 0.0) continue;
        for (const auto& [col, v] : rows_[static_cast<std::size_t>(i)]) {
          alpha_.add(static_cast<int>(col), rv * v);
        }
        alpha_.add(static_cast<int>(n_) + i, rv);
      }

      // Collect dual ratio-test breakpoints: nonbasic j whose reduced cost
      // would cross zero as the duals move by t * sigma * rho.
      breakpoints_.clear();
      for (int j : alpha_.nz) {
        const auto ju = static_cast<std::size_t>(j);
        if (status_[ju] == VarStatus::kBasic) continue;
        if (!(upper_[ju] - lower_[ju] > 0.0)) continue;  // fixed (kEq slack)
        const double q = sigma * alpha_.values[ju];
        if (status_[ju] == VarStatus::kAtLower) {
          if (q <= kAlphaTol) continue;
        } else {
          if (q >= -kAlphaTol) continue;
        }
        const double d = reduced_cost(j);
        double ratio = d / q;
        if (ratio < 0.0) ratio = 0.0;  // within-tolerance dual drift
        breakpoints_.push_back({ratio, j, q});
      }
      alpha_.clear();

      if (breakpoints_.empty()) {
        if (basis_state_.update_count() > 0) {
          // Could be eta drift; retry against fresh factors.
          if (!refactorize()) {
            throw InternalError("dual simplex: basis repair failed");
          }
          continue;
        }
        // Dual unbounded: the leaving row's violation cannot be repaired —
        // the primal is infeasible.
        return SolveStatus::kInfeasible;
      }

      std::sort(breakpoints_.begin(), breakpoints_.end(),
                [](const Breakpoint& a, const Breakpoint& b) {
                  return a.ratio < b.ratio ||
                         (a.ratio == b.ratio && a.col < b.col);
                });

      // Bound-flipping ratio test: walk the breakpoints in dual-step order.
      // The dual objective's slope starts at the primal violation |delta|;
      // flipping a boxed breakpoint column to its other bound costs
      // |alpha| * range of slope. The entering column is the first
      // breakpoint the slope cannot pay for (or an unboxed one, which
      // cannot flip). Under Bland, no flipping: lowest ratio, lowest index.
      const double viol = sigma > 0.0 ? x_r - upper_[leave_col]
                                      : lower_[leave_col] - x_r;
      double slope = viol;
      flips_.clear();
      int entering = -1;
      for (const Breakpoint& bp : breakpoints_) {
        entering = bp.col;
        if (bland_) break;
        const auto ju = static_cast<std::size_t>(bp.col);
        if (!boxed(ju)) break;
        const double flip_cost = std::abs(bp.alpha) * (upper_[ju] - lower_[ju]);
        if (slope - flip_cost <= dtol) break;
        slope -= flip_cost;
        flips_.push_back(bp.col);
        entering = -1;  // consumed as a flip unless a later bp enters
      }
      if (entering < 0) {
        // Every breakpoint was flipped and the slope never went negative:
        // the last flip must enter instead (keep one pivot per iteration).
        entering = flips_.back();
        flips_.pop_back();
      }

      // FTRAN the entering column under the CURRENT basis.
      w_.clear();
      for (const auto& [row, v] : columns_[static_cast<std::size_t>(entering)]) {
        w_.add(static_cast<int>(row), v);
      }
      basis_state_.ftran(w_);
      const double pivot = w_.values[static_cast<std::size_t>(r)];
      if (std::abs(pivot) < kAlphaTol * 10.0) {
        if (basis_state_.update_count() > 0) {
          if (!refactorize()) {
            throw InternalError("dual simplex: basis repair failed");
          }
          continue;  // retry the iteration with fresh factors
        }
        fell_back_ = true;  // genuinely tiny pivot; let the primal finish
        return SolveStatus::kIterationLimit;
      }

      // Batched flip application: one FTRAN covers every flipped column's
      // effect on the basics. Computed under the current basis, BEFORE the
      // pivot's eta is appended.
      bwork_.clear();
      if (!flips_.empty()) {
        for (int j : flips_) {
          const auto ju = static_cast<std::size_t>(j);
          const double delta = status_[ju] == VarStatus::kAtLower
                                   ? upper_[ju] - lower_[ju]
                                   : lower_[ju] - upper_[ju];
          for (const auto& [row, v] : columns_[ju]) {
            bwork_.add(static_cast<int>(row), v * delta);
          }
        }
        basis_state_.ftran(bwork_);
      }

      // Append the pivot eta; on numerical rejection refactorize and retry
      // (no state has been mutated yet).
      if (!basis_state_.update(r, w_)) {
        if (!refactorize()) {
          throw InternalError("dual simplex: basis repair failed");
        }
        continue;
      }

      // Commit the flips.
      for (int j : flips_) {
        const auto ju = static_cast<std::size_t>(j);
        status_[ju] = status_[ju] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                         : VarStatus::kAtLower;
      }
      bound_flips_ += flips_.size();
      for (int p : bwork_.nz) {
        x_basic_[static_cast<std::size_t>(p)] -=
            bwork_.values[static_cast<std::size_t>(p)];
      }
      bwork_.clear();

      // Pivot: entering moves off its bound far enough to bring the leaving
      // basic exactly to its violated bound (post-flip violation).
      const auto ent = static_cast<std::size_t>(entering);
      const double bound_r =
          sigma > 0.0 ? upper_[leave_col] : lower_[leave_col];
      const double delta_q =
          (x_basic_[static_cast<std::size_t>(r)] - bound_r) / pivot;
      for (int p : w_.nz) {
        x_basic_[static_cast<std::size_t>(p)] -=
            delta_q * w_.values[static_cast<std::size_t>(p)];
      }
      status_[leave_col] = sigma > 0.0 ? VarStatus::kAtUpper
                                       : VarStatus::kAtLower;
      pos_of_[leave_col] = -1;
      basis_[static_cast<std::size_t>(r)] = entering;
      pos_of_[ent] = r;
      const double enter_from = nonbasic_value(entering);
      status_[ent] = VarStatus::kBasic;
      x_basic_[static_cast<std::size_t>(r)] = enter_from + delta_q;
      ++iterations;

      // Stall detection on the total primal infeasibility (the dual
      // objective's progress measure). Degenerate plateaus switch to
      // Bland-style lowest-index selection with flipping disabled.
      const double infeas = infeasibility();
      if (infeas < last_infeas - 1e-12 * (1.0 + last_infeas)) {
        stalled = 0;
        last_infeas = infeas;
        if (bland_) bland_ = false;
      } else if (++stalled >= options_.stall_limit && !bland_) {
        bland_ = true;
      }
    }
  }

  [[nodiscard]] double infeasibility() const {
    double total = 0.0;
    for (std::size_t p = 0; p < m_; ++p) {
      const auto col = static_cast<std::size_t>(basis_[p]);
      const double x = x_basic_[p];
      if (x < lower_[col]) total += lower_[col] - x;
      if (x > upper_[col]) total += x - upper_[col];
    }
    return total;
  }

  void fill_statuses(SfSolution& out) const {
    out.statuses.resize(total_);
    for (std::size_t j = 0; j < total_; ++j) out.statuses[j] = status_[j];
  }

  void fill_stats(DualSolveStats* stats, bool cleanup) const {
    stats->factorizations = basis_state_.factorizations();
    stats->eta_nnz = basis_state_.eta_nnz();
    stats->bound_flips = bound_flips_;
    stats->needs_primal_cleanup = cleanup;
  }

  const SimplexOptions options_;
  const std::size_t n_;
  const std::size_t m_;
  const std::size_t total_;

  std::vector<SparseCol> columns_;
  std::vector<SparseCol> rows_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<double> rhs_;

  Basis basis_state_;
  std::vector<int> basis_;
  std::vector<int> pos_of_;
  std::vector<VarStatus> status_;
  std::vector<double> x_basic_;

  std::size_t bound_flips_ = 0;
  bool bland_ = false;
  bool fell_back_ = false;

  std::vector<Breakpoint> breakpoints_;
  std::vector<int> flips_;

  IndexedVector w_;      ///< entering column FTRAN image
  IndexedVector cb_;     ///< duals y
  IndexedVector bwork_;  ///< rhs / batched-flip workspace
  IndexedVector rho_;    ///< pivot row of B^-1
  IndexedVector alpha_;  ///< pivot row in column space
};

}  // namespace

SfSolution solve_dual(const StandardForm& sf, const SimplexOptions& options,
                      const std::vector<VarStatus>* warm,
                      DualSolveStats* stats) {
  if (sf.rows.empty()) {
    // No constraints: same closed form as the primal engine.
    return solve_sparse(sf, options, nullptr, nullptr);
  }
  DualSimplex engine(sf, options);
  return engine.run(warm, stats);
}

}  // namespace sb::lp
