// Reproduces Fig 8: average fraction of participants that have joined as a
// function of time since the meeting started. The paper freezes the call
// config at A = 300 s because ~80% of participants have joined by then.
//
// Flags: --hours=6
#include <algorithm>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sb;
  const double hours = bench::arg_double(argc, argv, "hours", 6.0);

  Scenario scenario = make_apac_scenario();
  // A busy Tuesday window.
  const double start = kSecondsPerDay + 2.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + hours * kSecondsPerHour);
  std::vector<double> offsets = db.join_offsets();
  std::sort(offsets.begin(), offsets.end());

  std::cout << "Fig 8: average fraction of participants joined since "
               "meeting start (" << db.size() << " calls, "
            << offsets.size() << " legs)\n\n";
  TextTable table({"seconds", "fraction joined"});
  for (double t : {0.0, 30.0, 60.0, 120.0, 180.0, 240.0, 300.0, 420.0, 600.0,
                   900.0, 1800.0}) {
    const auto joined = static_cast<double>(
        std::upper_bound(offsets.begin(), offsets.end(), t) -
        offsets.begin());
    table.row()
        .cell(format_double(t, 0))
        .cell(joined / static_cast<double>(offsets.size()));
  }
  std::cout << table;

  const auto at300 = static_cast<double>(
      std::upper_bound(offsets.begin(), offsets.end(), 300.0) -
      offsets.begin());
  std::cout << "\nfraction joined by A=300 s: "
            << format_double(at300 / static_cast<double>(offsets.size()), 3)
            << " (paper: ~0.80 -> freeze the config at A = 300 s)\n";
  return 0;
}
