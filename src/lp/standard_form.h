// Conversion of a Model to computational standard form:
//
//     minimize c'x   s.t.  A x {<=,>=,=} b,   0 <= x <= u
//
// Fixed variables (lower == upper) are substituted out; remaining variables
// are shifted by their lower bound. Finite upper bounds are handled by
// policy: the legacy dense solvers want them materialized as extra `<=`
// rows (BoundPolicy::kUpperRows); the sparse bounded-variable simplex keeps
// them in the per-variable `upper` array instead (BoundPolicy::kInline),
// which keeps the row count — and the basis size — independent of how many
// variables are bounded. map_back() restores values in the original model's
// variable space either way.
#pragma once

#include <vector>

#include "lp/model.h"

namespace sb::lp {

struct StandardRow {
  std::vector<Term> terms;  ///< indices into standard-form variables
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// How finite upper bounds are represented in the standard form.
enum class BoundPolicy {
  kUpperRows,  ///< emit one `x <= u` row per bounded variable (dense solvers)
  kInline,     ///< keep bounds in `upper`; no extra rows (sparse engine)
};

struct StandardForm {
  std::vector<double> cost;       ///< per standard-form variable
  std::vector<double> upper;      ///< shifted upper bound (kInf if none)
  std::vector<StandardRow> rows;
  double objective_offset = 0.0;  ///< from fixed variables and shifts

  // Mapping back to the original model:
  std::vector<int> var_map;      ///< model var -> sf var, or -1 if fixed
  std::vector<double> var_base;  ///< shift (lower bound) or fixed value

  [[nodiscard]] std::size_t var_count() const { return cost.size(); }
};

/// Builds the standard form. Throws InvalidArgument if any variable has a
/// non-finite lower bound.
StandardForm to_standard_form(const Model& model,
                              BoundPolicy policy = BoundPolicy::kUpperRows);

/// Maps standard-form values back into the model's variable space.
std::vector<double> map_back(const StandardForm& sf,
                             const std::vector<double>& sf_values,
                             std::size_t model_var_count);

/// Extracts the sub-LP induced by a row subset: the returned form contains
/// exactly `row_ids` (in the given order) and every variable appearing in
/// them, with costs and bounds carried over. `col_map` (sized var_count())
/// is filled with parent-column -> sub-column indices, -1 for columns
/// outside the subset. Used by the block-angular decomposition
/// (lp/block_decompose.h); the sub-form's var_map/var_base are left empty —
/// it maps to the PARENT standard form via `col_map`, not to a model.
StandardForm extract_row_subform(const StandardForm& sf,
                                 const std::vector<int>& row_ids,
                                 std::vector<int>& col_map);

}  // namespace sb::lp
