#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <string>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace sb {

double SimReport::total_peak_cores() const {
  double acc = 0.0;
  for (double v : dc_peak_cores) acc += v;
  return acc;
}

double SimReport::total_peak_gbps() const {
  double acc = 0.0;
  for (double v : link_peak_gbps) acc += v;
  return acc;
}

namespace {

enum class EventType : std::uint8_t {
  kStart = 0,
  kLegJoin = 1,
  kMediaChange = 2,
  kFreeze = 3,
  kEnd = 4,
};

struct Event {
  SimTime time;
  std::uint64_t seq;  ///< tie-break so ordering is deterministic
  EventType type;
  std::size_t record;
  std::size_t leg;  ///< for kLegJoin

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Live per-call simulation state.
struct LiveCall {
  DcId dc;
  MediaType media = MediaType::kAudio;
  std::vector<CallLeg> joined;
  bool active = false;
};

/// Mutable usage counters with peak tracking.
class UsageTracker {
 public:
  UsageTracker(const EvalContext& ctx)
      : ctx_(ctx),
        dc_cores_(ctx.world->dc_count(), 0.0),
        dc_peaks_(ctx.world->dc_count(), 0.0),
        link_gbps_(ctx.topology->link_count(), 0.0),
        link_peaks_(ctx.topology->link_count(), 0.0) {}

  void add_leg(DcId dc, MediaType media, LocationId loc, double sign) {
    const double cores = ctx_.loads->cores_per_participant(media) * sign;
    dc_cores_[dc.value()] += cores;
    if (sign > 0) {
      dc_peaks_[dc.value()] =
          std::max(dc_peaks_[dc.value()], dc_cores_[dc.value()]);
    }
    const double gbps =
        ctx_.loads->mbps_per_participant(media) / kMbpsPerGbps * sign;
    const LocationId dc_loc = ctx_.world->datacenter(dc).location;
    for (LinkId l : ctx_.topology->path(dc_loc, loc)) {
      link_gbps_[l.value()] += gbps;
      if (sign > 0) {
        link_peaks_[l.value()] =
            std::max(link_peaks_[l.value()], link_gbps_[l.value()]);
      }
    }
  }

  void add_call(const LiveCall& call, double sign) {
    for (const CallLeg& leg : call.joined) {
      add_leg(call.dc, call.media, leg.location, sign);
    }
  }

  [[nodiscard]] std::vector<double> dc_peaks() const { return dc_peaks_; }
  [[nodiscard]] std::vector<double> link_peaks() const { return link_peaks_; }

 private:
  const EvalContext& ctx_;
  std::vector<double> dc_cores_;
  std::vector<double> dc_peaks_;
  std::vector<double> link_gbps_;
  std::vector<double> link_peaks_;
};

}  // namespace

Simulator::Simulator(EvalContext ctx) : ctx_(ctx) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "Simulator: incomplete context");
}

SimReport Simulator::run(const CallRecordDatabase& db, CallAllocator& allocator,
                         double freeze_delay_s) const {
  require(freeze_delay_s > 0.0, "Simulator::run: freeze delay");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  static obs::Counter& calls_metric = registry.counter("sb.sim.calls");
  static obs::Counter& frozen_metric = registry.counter("sb.sim.frozen");
  static obs::Counter& migrations_metric =
      registry.counter("sb.sim.migrations");
  static obs::Histogram& acl_metric = registry.histogram(
      "sb.sim.acl_ms", {.min = 0.1, .max = 1000.0, .bucket_count = 80});
  static obs::Histogram& run_metric = registry.histogram("sb.sim.run_s");
  obs::ScopedTimer run_timer(run_metric);
  const auto& records = db.records();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  for (std::size_t r = 0; r < records.size(); ++r) {
    const CallRecord& rec = records[r];
    queue.push({rec.start_s, seq++, EventType::kStart, r, 0});
    for (std::size_t leg = 1; leg < rec.legs.size(); ++leg) {
      queue.push({rec.start_s + rec.legs[leg].join_offset_s, seq++,
                  EventType::kLegJoin, r, leg});
    }
    const CallConfig& config = ctx_.registry->get(rec.config);
    if (config.media() != MediaType::kAudio && rec.media_change_offset_s > 0.0) {
      queue.push({rec.start_s + rec.media_change_offset_s, seq++,
                  EventType::kMediaChange, r, 0});
    }
    if (rec.duration_s > freeze_delay_s) {
      queue.push({rec.start_s + freeze_delay_s, seq++, EventType::kFreeze, r,
                  0});
    }
    queue.push({rec.start_s + rec.duration_s, seq++, EventType::kEnd, r, 0});
  }

  UsageTracker usage(ctx_);
  std::vector<LiveCall> live(records.size());
  SimReport report;
  report.allocator = allocator.name();
  double acl_sum = 0.0;
  std::uint64_t majority_first = 0;
  std::uint64_t concurrent = 0;

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    const CallRecord& rec = records[ev.record];
    const CallConfig& config = ctx_.registry->get(rec.config);
    LiveCall& call = live[ev.record];

    switch (ev.type) {
      case EventType::kStart: {
        const LocationId first = rec.legs.front().location;
        call.dc = allocator.on_call_start(rec.id, first, ev.time);
        // Media starts as audio when an upgrade event is pending, else at
        // the config's media type.
        call.media = rec.media_change_offset_s > 0.0 ? MediaType::kAudio
                                                     : config.media();
        call.joined = {rec.legs.front()};
        call.active = true;
        usage.add_leg(call.dc, call.media, first, +1.0);
        ++report.calls;
        if (first == config.majority_location()) ++majority_first;
        ++concurrent;
        report.peak_concurrent_calls =
            std::max(report.peak_concurrent_calls, concurrent);
        break;
      }
      case EventType::kLegJoin: {
        if (!call.active) break;  // leg joined after the call ended
        call.joined.push_back(rec.legs[ev.leg]);
        usage.add_leg(call.dc, call.media, rec.legs[ev.leg].location, +1.0);
        break;
      }
      case EventType::kMediaChange: {
        if (!call.active) break;
        usage.add_call(call, -1.0);
        call.media = config.media();
        usage.add_call(call, +1.0);
        break;
      }
      case EventType::kFreeze: {
        if (!call.active) break;
        ++report.frozen;
        const FreezeResult result =
            allocator.on_config_frozen(rec.id, config, ev.time);
        if (result.migrated) {
          ++report.migrations;
          usage.add_call(call, -1.0);
          call.dc = result.dc;
          usage.add_call(call, +1.0);
        }
        break;
      }
      case EventType::kEnd: {
        if (!call.active) break;
        usage.add_call(call, -1.0);
        call.active = false;
        allocator.on_call_end(rec.id, ev.time);
        const double final_acl_ms = acl_ms(config, call.dc, *ctx_.latency);
        acl_sum += final_acl_ms;
        acl_metric.record(final_acl_ms);
        --concurrent;
        break;
      }
    }
  }

  report.migration_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(report.migrations) /
                static_cast<double>(report.calls);
  report.mean_acl_ms =
      report.calls == 0 ? 0.0 : acl_sum / static_cast<double>(report.calls);
  report.first_joiner_majority_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(majority_first) /
                static_cast<double>(report.calls);
  report.dc_peak_cores = usage.dc_peaks();
  report.link_peak_gbps = usage.link_peaks();

  calls_metric.inc(report.calls);
  frozen_metric.inc(report.frozen);
  migrations_metric.inc(report.migrations);
  // Peak gauges hold the max across every run in the process; registration
  // here is off the event loop, so name lookups are fine.
  for (std::size_t x = 0; x < report.dc_peak_cores.size(); ++x) {
    registry.gauge("sb.sim.dc_peak_cores." + std::to_string(x))
        .max_of(report.dc_peak_cores[x]);
  }
  registry.gauge("sb.sim.peak_concurrent_calls")
      .max_of(static_cast<double>(report.peak_concurrent_calls));
  return report;
}

}  // namespace sb
