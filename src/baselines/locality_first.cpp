#include "baselines/locality_first.h"

#include <algorithm>

#include "common/error.h"
#include "core/backup_lp.h"
#include "core/failure.h"

namespace sb {

namespace {

/// Min-ACL DC among a config's usable DCs under a scenario.
DcId best_dc(const CallConfig& config, const EvalContext& ctx,
             const FailureScenario& scenario) {
  const World& world = *ctx.world;
  std::vector<DcId> usable;
  for (DcId dc : region_candidates(config, world)) {
    if (!dc_available(scenario, dc)) continue;
    const LocationId dc_loc = world.datacenter(dc).location;
    bool blocked = false;
    for (const ConfigEntry& e : config.entries()) {
      if (uses_failed_link(scenario, *ctx.topology, dc_loc, e.location)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) usable.push_back(dc);
  }
  if (usable.empty()) {
    for (DcId dc : region_candidates(config, world)) {
      if (dc_available(scenario, dc)) usable.push_back(dc);
    }
  }
  require(!usable.empty(), "locality first: no DC available under scenario");
  return min_acl_dc(config, usable, *ctx.latency);
}

}  // namespace

PlacementMatrix locality_first_placement(const DemandMatrix& demand,
                                         const EvalContext& ctx) {
  PlacementMatrix placement(demand.slot_count(), demand.config_count(),
                            ctx.world->dc_count());
  for (std::size_t c = 0; c < demand.config_count(); ++c) {
    const CallConfig& config = ctx.registry->get(demand.config_at(c));
    const DcId dc = best_dc(config, ctx, FailureScenario::none());
    for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
      const double d = demand.demand(t, c);
      if (d > 0.0) placement.set_calls(t, c, dc, d);
    }
  }
  return placement;
}

BaselineResult provision_locality_first(const DemandMatrix& demand,
                                        const EvalContext& ctx,
                                        const BaselineOptions& options) {
  const World& world = *ctx.world;
  const Topology& topo = *ctx.topology;

  PlacementMatrix base = locality_first_placement(demand, ctx);
  const UsageProfile base_usage = compute_usage(base, demand, ctx);

  BaselineResult result{plan_from_usage(base_usage), std::move(base), 0.0};
  result.mean_acl_ms = mean_acl_ms(result.placement, demand, ctx);

  if (!options.with_backup) return result;

  // Backup compute: the Eq 1-2 LP over the serving peaks.
  result.capacity.dc_backup_cores =
      solve_backup_lp(result.capacity.dc_serving_cores);

  // WAN capacity across failure scenarios.
  for (const FailureScenario& scenario :
       enumerate_failures(world, topo, options.include_link_failures)) {
    if (scenario.type == FailureScenario::Type::kNone) continue;

    PlacementMatrix shifted(demand.slot_count(), demand.config_count(),
                            world.dc_count());
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      const CallConfig& config = ctx.registry->get(demand.config_at(c));
      const DcId nominal = best_dc(config, ctx, FailureScenario::none());

      // Where do this config's calls sit under the scenario?
      std::vector<std::pair<DcId, double>> shares;
      const LocationId nominal_loc = world.datacenter(nominal).location;
      bool nominal_usable = dc_available(scenario, nominal);
      if (nominal_usable) {
        for (const ConfigEntry& e : config.entries()) {
          if (uses_failed_link(scenario, topo, nominal_loc, e.location)) {
            nominal_usable = false;
            break;
          }
        }
      }
      if (nominal_usable) {
        shares.emplace_back(nominal, 1.0);
      } else {
        // Failover to the next-closest usable DC (lowest ACL among
        // survivors / DCs whose paths avoid the failed link). The Eq 1-2 LP
        // sized the backup cores; the WAN impact follows the short detour.
        shares.emplace_back(best_dc(config, ctx, scenario), 1.0);
      }
      for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
        const double d = demand.demand(t, c);
        if (d <= 0.0) continue;
        for (const auto& [dc, w] : shares) {
          shifted.add_calls(t, c, dc, d * w);
        }
      }
    }
    const std::vector<double> peaks =
        compute_usage(shifted, demand, ctx).link_peaks();
    for (std::size_t l = 0; l < peaks.size(); ++l) {
      result.capacity.link_gbps[l] =
          std::max(result.capacity.link_gbps[l], peaks[l]);
    }
  }
  return result;
}

}  // namespace sb
