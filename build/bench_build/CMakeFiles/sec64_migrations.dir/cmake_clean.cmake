file(REMOVE_RECURSE
  "../bench/sec64_migrations"
  "../bench/sec64_migrations.pdb"
  "CMakeFiles/sec64_migrations.dir/sec64_migrations.cpp.o"
  "CMakeFiles/sec64_migrations.dir/sec64_migrations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
