// Solver facade: converts a Model to standard form, dispatches to a simplex
// implementation, and maps the answer back to model variable space. This is
// the only LP entry point the rest of Switchboard uses.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/dense_simplex.h"
#include "lp/model.h"

namespace sb::lp {

enum class Method {
  kAuto,     ///< routing table below: dense / sparse / dual / decomposed
  kDense,    ///< force the dense tableau (reference implementation)
  kRevised,  ///< force the legacy dense-inverse revised simplex
  kSparse,   ///< force the sparse LU/eta bounded-variable engine
  kDual,     ///< force the dual simplex (lp/dual_simplex.h); falls back to
             ///< the primal sparse engine when it cannot finish
};

/// Whether kAuto may route a cold large solve through the block-angular
/// decomposition (lp/block_decompose.h).
enum class DecomposePolicy {
  kAuto,   ///< decompose when cold, >= decompose_min_rows rows, and
           ///< detect_blocks finds >= decompose_min_blocks blocks
  kOff,    ///< never decompose
  kForce,  ///< decompose whenever detection finds >= 2 blocks (testing)
};

/// kAuto cutoff: models with at least this many constraints go to the sparse
/// engine; below it the dense tableau's tiny constant factor wins (tuned
/// with bench/micro_lp.cpp — the crossover sits well under 100 rows because
/// the sparse engine prices and factorizes only nonzeros).
inline constexpr std::size_t kAutoSparseRowCutoff = 32;

/// The dense tableau materializes an m x (n + m) tableau and the legacy
/// revised simplex a dense m x m inverse; both are quadratic-plus in the row
/// count. Forcing them beyond these limits throws InvalidArgument instead of
/// silently burning memory and time — use Method::kSparse (or kAuto) for
/// large instances. Limits count standard-form rows, which for these
/// engines include one row per finite upper bound.
inline constexpr std::size_t kDenseRowLimit = 2000;
inline constexpr std::size_t kDenseInverseRowLimit = 8000;

struct SolveOptions : SimplexOptions {
  Method method = Method::kAuto;
  /// Run the presolve reductions (singleton rows -> bounds, empty rows,
  /// early infeasibility) before the simplex. See lp/presolve.h.
  bool use_presolve = true;
  /// Optional warm start for the sparse engine: one status per model
  /// variable, as returned in Solution::basis by a previous solve of a
  /// structurally similar model (same variables, perturbed rows/bounds —
  /// e.g. successive failure scenarios). Ignored by the dense engines;
  /// a mismatched size falls back to a cold start.
  std::vector<VarStatus> warm_start;
  /// Optional companion to `warm_start`: one status per model constraint,
  /// as returned in Solution::row_basis. Supplying it preserves which rows
  /// were tight vs slack in the hint basis, eliminating most of the repair
  /// pivots a variables-only warm start needs. Ignored unless `warm_start`
  /// is also set and both sizes match their model dimensions.
  std::vector<VarStatus> warm_start_rows;
  /// Route warm-started solves through the dual simplex under kAuto. The
  /// dual engine repairs primal bound violations without touching dual
  /// feasibility, which is exactly what a re-solve after bound tightening
  /// (capacity floors, failure scenarios) perturbs — set this on re-solve
  /// call-sites where the model changed by bounds/rhs rather than costs.
  bool dual_resolve = false;
  /// Cold-solve decomposition policy; see DecomposePolicy.
  DecomposePolicy decompose = DecomposePolicy::kAuto;
  /// kAuto decomposition requires at least this many standard-form rows —
  /// below it the monolithic sparse solve wins outright.
  std::size_t decompose_min_rows = 512;
  /// ... and at least this many detected blocks, so the clean-up solve has
  /// meaningfully smaller work than the original LP.
  std::size_t decompose_min_blocks = 4;
  /// Thread-pool size for parallel subproblem solves; <= 1 solves them
  /// sequentially. Subproblems are independent and stitched in block order,
  /// so the result is bit-identical at any thread count.
  std::size_t decompose_threads = 1;
};

/// Solves `model` (minimization). The returned Solution's `values` cover all
/// model variables, including fixed ones. Throws InvalidArgument for models
/// with non-finite lower bounds or when a dense method is forced beyond its
/// row limit; solver failures are reported via Solution::status, not
/// exceptions.
Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace sb::lp
