// Cluster HA: kill each controller worker, one at a time, mid-way through
// a busy replay window and compare against the single-process baseline on
// the same trace. The claims under test (DESIGN.md "Distributed control
// plane"): a worker crash drops and moves NOTHING — the media plane keeps
// hosting while the dead worker's shards are re-adopted by survivors via
// KV WAL replay at a bumped epoch — and call lifecycle transitions stay
// exactly-once across crash-recovery: the hosting log is bit-identical to
// the baseline's, every start is matched by one end, and the WAL is empty
// at quiescence. Also reports the re-adoption latency histogram (time from
// kill to takeover, expedited or lease-expiry).
//
// Flags: --plan_configs=30 --cushion=1.3 --workers=4
//        --window_h=2 --kill_at_h=1 --outage_h=0.5 --lease_ttl=120
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.h"
#include "cluster/allocator.h"
#include "cluster/controller.h"
#include "core/controller.h"
#include "fault/fault_schedule.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace {

bool logs_equal(const sb::HostingLog& a, const sb::HostingLog& b) {
  if (a.events.size() != b.events.size()) return false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const sb::HostingEvent& x = a.events[i];
    const sb::HostingEvent& y = b.events[i];
    if (x.record != y.record || x.time != y.time || x.kind != y.kind ||
        x.dc != y.dc || x.server != y.server) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const std::size_t plan_configs =
      bench::arg_size(argc, argv, "plan_configs", 30);
  const double cushion = bench::arg_double(argc, argv, "cushion", 1.3);
  const auto workers = bench::arg_size(argc, argv, "workers", 4);
  const double window_s =
      bench::arg_double(argc, argv, "window_h", 2.0) * kSecondsPerHour;
  const double kill_at_s =
      bench::arg_double(argc, argv, "kill_at_h", 1.0) * kSecondsPerHour;
  const double outage_s =
      bench::arg_double(argc, argv, "outage_h", 0.5) * kSecondsPerHour;
  const double lease_ttl_s = bench::arg_double(argc, argv, "lease_ttl", 120.0);

  Scenario scenario = make_apac_scenario();
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  const double slot_s = 3600.0;
  DemandMatrix demand = bench::design_day_demand(scenario, slot_s, plan_configs);
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      demand.set_demand(t, c, demand.demand(t, c) * cushion);
    }
  }
  ControllerOptions options;
  options.provision.include_link_failures = false;
  options.worker_rows = workers;
  Switchboard controller(ctx, options);
  (void)controller.provision(demand);

  // A mid-morning busy window; every run replays exactly this trace.
  const double window_start = kSecondsPerDay + 10.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(window_start, window_start + window_s);
  const Simulator sim(ctx);
  obs::Histogram& readoption = obs::MetricsRegistry::global().histogram(
      "sb.cluster.readoption_latency_s");

  // Single-process baseline: the pre-cluster path on the same plan/trace.
  controller.build_allocation_plan(demand, kSecondsPerDay);
  ControllerAllocator baseline_alloc(controller);
  HostingLog baseline_log;
  const SimReport baseline =
      sim.run(db, baseline_alloc, 300.0, nullptr, 60.0, &baseline_log);
  const RealtimeSelector::Stats baseline_rs = controller.realtime_stats();

  std::cout << "cluster HA: " << workers << " workers over " << db.size()
            << " calls, each killed at +"
            << format_double(kill_at_s / kSecondsPerHour, 1)
            << " h for " << format_double(outage_s / kSecondsPerHour, 2)
            << " h (baseline dropped " << baseline.dropped_calls
            << ", moved " << baseline.failover_migrations << ")\n\n";

  TextTable table({"killed", "calls", "dropped", "moved", "takeovers",
                   "replayed", "re-adopt s (mean/max)", "WAL live",
                   "log vs baseline"});

  double readopt_mean_sum = 0.0;
  double readopt_max = 0.0;
  double dropped_total = 0.0;
  double replayed_total = 0.0;
  double divergence = 0.0;  // duplicate or lost lifecycle transitions
  double fenced_total = 0.0;
  for (std::size_t w = 0; w < workers; ++w) {
    controller.build_allocation_plan(demand, kSecondsPerDay);
    cluster::ClusterController cl(
        controller,
        cluster::ClusterOptions{.workers = workers,
                                .lease_ttl_s = lease_ttl_s});
    cluster::ClusterAllocator alloc(cl);
    fault::FaultSchedule faults;
    faults.fail_worker(WorkerId(static_cast<std::uint32_t>(w)),
                       window_start + kill_at_s, outage_s);
    readoption.reset();
    HostingLog log;
    const SimReport report = sim.run(db, alloc, 300.0, &faults, 60.0, &log);
    const obs::HistogramData lat = readoption.collect();
    const cluster::ClusterStats cs = cl.stats();
    const RealtimeSelector::Stats rs = controller.realtime_stats();
    const bool identical = logs_equal(baseline_log, log);

    // Exactly-once accounting across the crash: any imbalance here is a
    // duplicated or lost lifecycle transition.
    const auto lost_or_dup =
        static_cast<double>(rs.slot_debits - rs.slot_credits) +
        static_cast<double>(cl.wal_size()) +
        static_cast<double>(controller.active_calls()) +
        static_cast<double>(rs.calls_started - baseline_rs.calls_started) +
        (identical ? 0.0 : 1.0);
    divergence += lost_or_dup;
    dropped_total += static_cast<double>(report.dropped_calls);
    replayed_total += static_cast<double>(cs.replayed_records);
    fenced_total += static_cast<double>(cs.stale_events_fenced);
    readopt_mean_sum += lat.mean();
    readopt_max = std::max(readopt_max, lat.max);

    table.row()
        .cell("worker-" + std::to_string(w))
        .cell(report.calls)
        .cell(report.dropped_calls)
        .cell(report.failover_migrations)
        .cell(std::to_string(cs.takeovers_expedited) + " exp / " +
              std::to_string(cs.takeovers_ttl) + " ttl")
        .cell(cs.replayed_records)
        .cell(format_double(lat.mean(), 2) + " / " +
              format_double(lat.max, 2))
        .cell(cl.wal_size())
        .cell(identical ? "identical" : "DIVERGED");
  }
  std::cout << table;

  const double readopt_mean =
      workers > 0 ? readopt_mean_sum / static_cast<double>(workers) : 0.0;
  std::cout << "\nworker crashes dropped " << dropped_total
            << " calls (baseline " << baseline.dropped_calls
            << "); mean re-adoption " << format_double(readopt_mean, 2)
            << " s; " << divergence
            << " duplicate/lost lifecycle transitions\n";

  bench::emit_json("sec_ha", "baseline_dropped_calls",
                   static_cast<double>(baseline.dropped_calls));
  bench::emit_json("sec_ha", "ha_dropped_calls_total", dropped_total);
  bench::emit_json("sec_ha", "drops_during_failover_vs_baseline",
                   dropped_total -
                       static_cast<double>(workers) *
                           static_cast<double>(baseline.dropped_calls));
  bench::emit_json("sec_ha", "readoption_latency_mean_s", readopt_mean);
  bench::emit_json("sec_ha", "readoption_latency_max_s", readopt_max);
  bench::emit_json("sec_ha", "wal_records_replayed_total", replayed_total);
  bench::emit_json("sec_ha", "duplicate_or_lost_transitions", divergence);
  bench::emit_json("sec_ha", "stale_events_fenced_total", fenced_total);
  return divergence == 0.0 ? 0 : 1;
}
