# Empty compiler generated dependencies file for table3_provisioning.
# This may be replaced when dependencies are built.
