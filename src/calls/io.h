// CSV interchange for call records and demand matrices, so real deployments
// can feed their own data into the pipeline (and benches can export series
// for external plotting).
//
// Record CSV columns: call_id,start_s,duration_s,media,legs
//   legs is ";"-separated "COUNTRY@join_offset" entries ordered by offset,
//   e.g. "IN@0;IN@12.5;JP@230". The call config is derived from the legs
//   and media and interned into the registry on read.
//
// Demand CSV: header "slot,<config>,<config>,..." where each config is its
// canonical description, e.g. "((IN-2,JP-1),audio)"; one row per time slot.
#pragma once

#include <iosfwd>
#include <string>

#include "calls/call_record.h"
#include "calls/demand.h"
#include "geo/world.h"

namespace sb {

/// Parses a canonical config description ("((IN-2,JP-1),audio)") against a
/// world's location names. Throws InvalidArgument on malformed input or
/// unknown locations/media.
CallConfig parse_call_config(const std::string& text, const World& world);

/// Parses a media-type label ("audio", "screen", "video").
MediaType parse_media_type(const std::string& text);

void write_records_csv(std::ostream& out, const CallRecordDatabase& db,
                       const CallConfigRegistry& registry, const World& world);

/// Reads records written by write_records_csv (or hand-authored in the same
/// format); configs are interned into `registry`.
CallRecordDatabase read_records_csv(const std::string& csv,
                                    CallConfigRegistry& registry,
                                    const World& world);

void write_demand_csv(std::ostream& out, const DemandMatrix& demand,
                      const CallConfigRegistry& registry, const World& world);

DemandMatrix read_demand_csv(const std::string& csv,
                             CallConfigRegistry& registry, const World& world);

}  // namespace sb
