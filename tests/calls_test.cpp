// Tests for media load model, call configs, ACL, records, and demand.
#include <gtest/gtest.h>

#include "calls/acl.h"
#include "calls/call_record.h"
#include "calls/demand.h"
#include "geo/world_presets.h"

namespace sb {
namespace {

TEST(LoadModelTest, PaperDefaultMatchesTable1Ratios) {
  const LoadModel m = LoadModel::paper_default();
  // Compute load: screen-share 1-2x audio, video 2-4x audio.
  const double cl_audio = m.cores_per_participant(MediaType::kAudio);
  const double cl_ss = m.cores_per_participant(MediaType::kScreenShare);
  const double cl_video = m.cores_per_participant(MediaType::kVideo);
  EXPECT_GE(cl_ss / cl_audio, 1.0);
  EXPECT_LE(cl_ss / cl_audio, 2.0);
  EXPECT_GE(cl_video / cl_audio, 2.0);
  EXPECT_LE(cl_video / cl_audio, 4.0);
  // Network load: screen-share 10-20x, video 30-40x audio.
  const double nl_audio = m.mbps_per_participant(MediaType::kAudio);
  EXPECT_GE(m.mbps_per_participant(MediaType::kScreenShare) / nl_audio, 10.0);
  EXPECT_LE(m.mbps_per_participant(MediaType::kScreenShare) / nl_audio, 20.0);
  EXPECT_GE(m.mbps_per_participant(MediaType::kVideo) / nl_audio, 30.0);
  EXPECT_LE(m.mbps_per_participant(MediaType::kVideo) / nl_audio, 40.0);
  // Offload-preference ordering (§6.3): audio first, video last.
  EXPECT_LT(m.offload_ratio(MediaType::kAudio),
            m.offload_ratio(MediaType::kScreenShare));
  EXPECT_LT(m.offload_ratio(MediaType::kScreenShare),
            m.offload_ratio(MediaType::kVideo));
}

TEST(CallConfigTest, CanonicalizesEntries) {
  const CallConfig a = CallConfig::make(
      {{LocationId(2), 1}, {LocationId(0), 2}, {LocationId(2), 3}},
      MediaType::kVideo);
  const CallConfig b = CallConfig::make(
      {{LocationId(0), 2}, {LocationId(2), 4}}, MediaType::kVideo);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.total_participants(), 6u);
  EXPECT_EQ(a.majority_location(), LocationId(2));
  EXPECT_FALSE(a.single_location());
}

TEST(CallConfigTest, MajorityTieBreaksToLowestId) {
  const CallConfig c = CallConfig::make(
      {{LocationId(3), 2}, {LocationId(1), 2}}, MediaType::kAudio);
  EXPECT_EQ(c.majority_location(), LocationId(1));
}

TEST(CallConfigTest, RejectsBadInput) {
  EXPECT_THROW(CallConfig::make({}, MediaType::kAudio), InvalidArgument);
  EXPECT_THROW(CallConfig::make({{LocationId(0), 0}}, MediaType::kAudio),
               InvalidArgument);
}

TEST(CallConfigRegistryTest, InternsOnce) {
  CallConfigRegistry reg;
  const CallConfig a =
      CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
  const CallConfig b =
      CallConfig::make({{LocationId(0), 2}}, MediaType::kVideo);
  const ConfigId ia = reg.intern(a);
  const ConfigId ib = reg.intern(b);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(reg.intern(a), ia);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find(a), ia);
  EXPECT_FALSE(reg.find(CallConfig::make({{LocationId(1), 1}},
                                         MediaType::kAudio))
                   .valid());
  EXPECT_EQ(reg.get(ib).media(), MediaType::kVideo);
}

TEST(AclTest, WeightedAverageOfLegs) {
  const GeoModel apac = make_apac_world();
  const World& w = apac.world;
  const LocationId in = *w.find_location("IN");
  const LocationId jp = *w.find_location("JP");
  const DcId dc_in = *w.find_datacenter("DC-India");
  const CallConfig c =
      CallConfig::make({{in, 3}, {jp, 1}}, MediaType::kAudio);
  const double expected = (3.0 * apac.latency.latency_ms(dc_in, in) +
                           1.0 * apac.latency.latency_ms(dc_in, jp)) /
                          4.0;
  EXPECT_NEAR(acl_ms(c, dc_in, apac.latency), expected, 1e-9);
}

TEST(AclTest, FeasibleDcsFallsBackToMinAcl) {
  const GeoModel apac = make_apac_world();
  const LocationId in = *apac.world.find_location("IN");
  const CallConfig c = CallConfig::make({{in, 2}}, MediaType::kAudio);
  // Impossible threshold: must return exactly the min-ACL DC.
  const auto dcs =
      feasible_dcs(c, apac.world.dc_ids(), apac.latency, 0.001);
  ASSERT_EQ(dcs.size(), 1u);
  EXPECT_EQ(dcs[0], min_acl_dc(c, apac.world.dc_ids(), apac.latency));
  EXPECT_EQ(dcs[0], *apac.world.find_datacenter("DC-India"));
  // Generous threshold: everything qualifies.
  EXPECT_EQ(feasible_dcs(c, apac.world.dc_ids(), apac.latency, 1e6).size(),
            apac.world.dc_count());
}

CallRecord make_record(std::uint32_t id, ConfigId config, double start,
                       double duration,
                       std::vector<CallLeg> legs = {{LocationId(0), 0.0}}) {
  CallRecord r;
  r.id = CallId(id);
  r.config = config;
  r.start_s = start;
  r.duration_s = duration;
  r.legs = std::move(legs);
  return r;
}

TEST(CallRecordDatabaseTest, TopConfigsAndSeries) {
  CallRecordDatabase db;
  const ConfigId c0(0);
  const ConfigId c1(1);
  for (int i = 0; i < 5; ++i) {
    db.add(make_record(static_cast<std::uint32_t>(i), c0, 100.0 * i, 50.0));
  }
  db.add(make_record(100, c1, 0.0, 50.0));

  const auto counts = db.config_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, c0);
  EXPECT_EQ(counts[0].second, 5u);
  EXPECT_EQ(db.top_configs(1), std::vector<ConfigId>{c0});

  const auto series = db.arrival_series(c0, 100.0, 0.0, 500.0);
  ASSERT_EQ(series.size(), 5u);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(CallRecordDatabaseTest, RejectsMalformedRecords) {
  CallRecordDatabase db;
  CallRecord bad = make_record(0, ConfigId(0), 0.0, 10.0);
  bad.legs = {{LocationId(0), 5.0}, {LocationId(1), 1.0}};  // unsorted
  EXPECT_THROW(db.add(bad), InvalidArgument);
  EXPECT_THROW(db.add(make_record(1, ConfigId{}, 0.0, 10.0)),
               InvalidArgument);
}

TEST(DemandMatrixTest, FromRecordsSplitsConcurrencyAcrossSlots) {
  CallRecordDatabase db;
  const ConfigId c0(0);
  // One call spanning slots [0, 1.5): contributes 1.0 to slot 0 and 0.5 to
  // slot 1 with 100 s slots.
  db.add(make_record(0, c0, 0.0, 150.0));
  const DemandMatrix m =
      DemandMatrix::from_records(db, {c0}, 100.0, 0.0, 300.0);
  EXPECT_EQ(m.slot_count(), 3u);
  EXPECT_NEAR(m.demand(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(m.demand(1, 0), 0.5, 1e-12);
  EXPECT_NEAR(m.demand(2, 0), 0.0, 1e-12);
  EXPECT_NEAR(m.total(), 1.5, 1e-12);
}

TEST(DemandMatrixTest, LocationCoreDemand) {
  CallConfigRegistry reg;
  const ConfigId cfg = reg.intern(CallConfig::make(
      {{LocationId(0), 2}, {LocationId(1), 1}}, MediaType::kVideo));
  DemandMatrix m = make_demand_matrix({cfg}, 2);
  m.set_demand(0, 0, 10.0);
  m.set_demand(1, 0, 0.0);
  const LoadModel loads = LoadModel::paper_default();
  const auto series = location_core_demand(m, reg, loads, LocationId(0));
  EXPECT_NEAR(series[0],
              10.0 * 2 * loads.cores_per_participant(MediaType::kVideo),
              1e-12);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
  const auto other = location_core_demand(m, reg, loads, LocationId(2));
  EXPECT_DOUBLE_EQ(other[0], 0.0);
}

TEST(DemandMatrixTest, ColumnLookup) {
  DemandMatrix m = make_demand_matrix({ConfigId(7), ConfigId(3)}, 1);
  EXPECT_EQ(m.column_of(ConfigId(3)), 1u);
  EXPECT_EQ(m.config_at(0), ConfigId(7));
  EXPECT_THROW(m.column_of(ConfigId(9)), InvalidArgument);
}

}  // namespace
}  // namespace sb
