#include "cluster/shard_map.h"

#include <algorithm>

#include "common/error.h"

namespace sb::cluster {

ShardMap::ShardMap(std::size_t shard_count, std::size_t worker_count,
                   std::uint64_t initial_epoch)
    : shards_(shard_count), worker_count_(worker_count) {
  require(worker_count >= 1, "ShardMap: need at least one worker");
  require(worker_count <= shard_count,
          "ShardMap: more workers than shards");
  for (std::size_t w = 0; w < worker_count; ++w) {
    const auto [begin, end] =
        initial_range(WorkerId(static_cast<std::uint32_t>(w)));
    for (std::size_t s = begin; s < end; ++s) {
      shards_[s] = ShardOwnership{WorkerId(static_cast<std::uint32_t>(w)),
                                  initial_epoch, false};
    }
  }
}

const ShardOwnership& ShardMap::shard(std::size_t s) const {
  require(s < shards_.size(), "ShardMap: shard out of range");
  return shards_[s];
}

ShardOwnership& ShardMap::shard_mut(std::size_t s) {
  require(s < shards_.size(), "ShardMap: shard out of range");
  return shards_[s];
}

std::pair<std::size_t, std::size_t> ShardMap::initial_range(
    WorkerId w) const {
  require(w.valid() && w.value() < worker_count_, "ShardMap: bad worker id");
  // First (shard_count % worker_count) workers get one extra shard, so the
  // partition is contiguous and balanced to within one shard.
  const std::size_t n = shards_.size();
  const std::size_t base = n / worker_count_;
  const std::size_t extra = n % worker_count_;
  const std::size_t i = w.value();
  const std::size_t begin = i * base + std::min<std::size_t>(i, extra);
  const std::size_t end = begin + base + (i < extra ? 1 : 0);
  return {begin, end};
}

std::vector<std::size_t> ShardMap::owned_by(WorkerId w) const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].owner == w) out.push_back(s);
  }
  return out;
}

std::size_t ShardMap::shards_owned(WorkerId w) const {
  std::size_t n = 0;
  for (const ShardOwnership& o : shards_) {
    if (o.owner == w) ++n;
  }
  return n;
}

std::size_t ShardMap::orphaned_shards() const {
  std::size_t n = 0;
  for (const ShardOwnership& o : shards_) {
    if (!o.owner.valid()) ++n;
  }
  return n;
}

bool ShardMap::any_dirty() const {
  for (const ShardOwnership& o : shards_) {
    if (o.dirty) return true;
  }
  return false;
}

}  // namespace sb::cluster
