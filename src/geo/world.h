// The world model: participant locations (countries), regions, and
// datacenters. This is the substrate standing in for Azure's footprint —
// the provisioning LP only consumes the ids, costs and coordinates defined
// here (see DESIGN.md, substitutions table).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace sb {

/// A participant location at country granularity (the granularity call
/// configs use, §5.1).
struct Location {
  std::string name;                ///< e.g. "JP"
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double utc_offset_hours = 0.0;   ///< drives the diurnal demand shift (Fig 3)
  double population_weight = 1.0;  ///< relative share of call participants
  std::string region;              ///< e.g. "APAC"; DCs serve their region
};

/// A datacenter able to host MP servers.
struct Datacenter {
  std::string name;        ///< e.g. "DC-Tokyo"
  LocationId location;     ///< country the DC sits in
  double core_cost = 1.0;  ///< per-core provisioning cost (Eq 3's DC_Cost)
};

/// One media server inside a datacenter's fleet. Registering servers is
/// opt-in: a World with zero servers models each DC as one fungible core
/// pool (the paper's abstraction) and every packing code path disappears.
struct MediaServer {
  std::string name;   ///< e.g. "Tokyo-ms0"
  DcId dc;            ///< owning datacenter
  double cores = 0.0; ///< physical core capacity of this server
};

/// Registry of locations and datacenters. Ids are dense indices into the
/// registration order, so modules can keep parallel vectors keyed by id.
class World {
 public:
  LocationId add_location(Location loc);
  DcId add_datacenter(Datacenter dc);
  ServerId add_server(MediaServer server);

  [[nodiscard]] std::size_t location_count() const { return locations_.size(); }
  [[nodiscard]] std::size_t dc_count() const { return dcs_.size(); }
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  /// True when at least one media server is registered; enables the packing
  /// layer. With fleets, every DC must own at least one server (enforced by
  /// the consumers that pack).
  [[nodiscard]] bool has_fleets() const { return !servers_.empty(); }

  [[nodiscard]] const Location& location(LocationId id) const;
  [[nodiscard]] const Datacenter& datacenter(DcId id) const;
  [[nodiscard]] const MediaServer& server(ServerId id) const;

  [[nodiscard]] const std::vector<Location>& locations() const {
    return locations_;
  }
  [[nodiscard]] const std::vector<Datacenter>& datacenters() const {
    return dcs_;
  }
  [[nodiscard]] const std::vector<MediaServer>& servers() const {
    return servers_;
  }
  /// Servers owned by `dc`, in registration order (empty when no fleet).
  [[nodiscard]] const std::vector<ServerId>& servers_in_dc(DcId dc) const;

  /// Lookup by name; nullopt if absent.
  [[nodiscard]] std::optional<LocationId> find_location(
      const std::string& name) const;
  [[nodiscard]] std::optional<DcId> find_datacenter(
      const std::string& name) const;
  [[nodiscard]] std::optional<ServerId> find_server(
      const std::string& name) const;

  /// All datacenters whose location is in `region`.
  [[nodiscard]] std::vector<DcId> dcs_in_region(const std::string& region) const;

  /// Region of the given datacenter (its location's region).
  [[nodiscard]] const std::string& dc_region(DcId id) const;

  /// Iteration helpers: every valid id, in order.
  [[nodiscard]] std::vector<LocationId> location_ids() const;
  [[nodiscard]] std::vector<DcId> dc_ids() const;
  [[nodiscard]] std::vector<ServerId> server_ids() const;

 private:
  std::vector<Location> locations_;
  std::vector<Datacenter> dcs_;
  std::vector<MediaServer> servers_;
  /// Per-DC server id lists, parallel to dcs_. Sized lazily by add_server so
  /// servers may be registered after all DCs exist.
  std::vector<std::vector<ServerId>> servers_by_dc_;
};

/// Great-circle distance in km between two (lat, lon) points (haversine).
double geo_distance_km(double lat1_deg, double lon1_deg, double lat2_deg,
                       double lon2_deg);

}  // namespace sb
