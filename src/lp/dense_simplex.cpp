#include "lp/dense_simplex.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sb::lp {
namespace {

/// Dense two-phase tableau. Rows 0..m-1 are constraints; a separate
/// objective vector holds reduced costs. Column layout:
/// [0, n) structural, [n, n+slacks) slack/surplus, then artificials.
class DenseTableau {
 public:
  DenseTableau(const StandardForm& sf, const SimplexOptions& options)
      : options_(options), n_(sf.var_count()), m_(sf.rows.size()) {
    build(sf);
  }

  SfSolution run() {
    SfSolution result;
    // Phase 1: minimize the sum of artificials.
    if (artificial_begin_ < cols_) {
      set_phase1_objective();
      const SolveStatus p1 = iterate(result.iterations, /*phase1=*/true);
      if (p1 == SolveStatus::kIterationLimit) {
        result.status = p1;
        return result;
      }
      if (phase1_objective() > options_.feasibility_tol * rhs_scale_) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
      expel_artificials();
    }
    // Phase 2: the real objective over non-artificial columns.
    set_phase2_objective();
    result.status = iterate(result.iterations, /*phase1=*/false);
    if (result.status == SolveStatus::kOptimal) {
      result.values.assign(n_, 0.0);
      for (std::size_t r = 0; r < m_; ++r) {
        if (basis_[r] < n_) result.values[basis_[r]] = rhs(r);
      }
    }
    return result;
  }

 private:
  double& at(std::size_t r, std::size_t c) { return data_[r * stride_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * stride_ + c]; }
  double& rhs(std::size_t r) { return data_[r * stride_ + cols_]; }
  double rhs(std::size_t r) const { return data_[r * stride_ + cols_]; }

  void build(const StandardForm& sf) {
    // Count slack and artificial columns; rows are normalized to rhs >= 0.
    std::size_t slack_count = 0;
    std::size_t artificial_count = 0;
    std::vector<int> row_sign(m_, 1);
    std::vector<Sense> sense(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      sense[r] = sf.rows[r].sense;
      if (sf.rows[r].rhs < 0.0) {
        row_sign[r] = -1;
        if (sense[r] == Sense::kLe) {
          sense[r] = Sense::kGe;
        } else if (sense[r] == Sense::kGe) {
          sense[r] = Sense::kLe;
        }
      }
      if (sense[r] != Sense::kEq) ++slack_count;
      // kGe rows get a surplus (-1) column whose basis slot needs an
      // artificial; kEq rows need one outright.
      if (sense[r] != Sense::kLe) ++artificial_count;
    }
    slack_begin_ = n_;
    artificial_begin_ = n_ + slack_count;
    cols_ = artificial_begin_ + artificial_count;
    stride_ = cols_ + 1;
    data_.assign(m_ * stride_, 0.0);
    objective_.assign(cols_ + 1, 0.0);
    cost_.assign(cols_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) cost_[j] = sf.cost[j];
    basis_.assign(m_, 0);
    banned_.assign(cols_, false);

    std::size_t next_slack = slack_begin_;
    std::size_t next_artificial = artificial_begin_;
    rhs_scale_ = 1.0;
    for (std::size_t r = 0; r < m_; ++r) {
      const double sign = row_sign[r];
      for (const Term& t : sf.rows[r].terms) {
        at(r, static_cast<std::size_t>(t.var)) += sign * t.coeff;
      }
      rhs(r) = sign * sf.rows[r].rhs;
      rhs_scale_ = std::max(rhs_scale_, std::abs(rhs(r)));
      if (sense[r] == Sense::kLe) {
        at(r, next_slack) = 1.0;
        basis_[r] = next_slack++;
      } else if (sense[r] == Sense::kGe) {
        at(r, next_slack) = -1.0;
        ++next_slack;
        at(r, next_artificial) = 1.0;
        basis_[r] = next_artificial++;
      } else {
        at(r, next_artificial) = 1.0;
        basis_[r] = next_artificial++;
      }
    }
  }

  void set_phase1_objective() {
    std::fill(objective_.begin(), objective_.end(), 0.0);
    for (std::size_t j = artificial_begin_; j < cols_; ++j) objective_[j] = 1.0;
    price_out_basis();
  }

  void set_phase2_objective() {
    std::fill(objective_.begin(), objective_.end(), 0.0);
    for (std::size_t j = 0; j < cols_; ++j) objective_[j] = cost_[j];
    for (std::size_t j = artificial_begin_; j < cols_; ++j) banned_[j] = true;
    price_out_basis();
  }

  /// Subtracts basic rows from the objective so reduced costs of basic
  /// variables become zero.
  void price_out_basis() {
    for (std::size_t r = 0; r < m_; ++r) {
      const double c = objective_[basis_[r]];
      if (c == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) objective_[j] -= c * at(r, j);
    }
  }

  double phase1_objective() const { return -objective_[cols_]; }

  SolveStatus iterate(std::size_t& iterations, bool phase1) {
    bool bland = false;
    std::size_t stall = 0;
    double last_objective = -objective_[cols_];
    for (;; ++iterations) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      const int entering = pick_entering(bland);
      if (entering < 0) return SolveStatus::kOptimal;
      const int leaving = pick_leaving(static_cast<std::size_t>(entering),
                                       phase1);
      if (leaving < 0) {
        // Phase 1 is bounded below by zero, so no finite ratio means a bug.
        if (phase1) throw InternalError("dense simplex: phase-1 unbounded");
        return SolveStatus::kUnbounded;
      }
      pivot(static_cast<std::size_t>(leaving),
            static_cast<std::size_t>(entering));
      const double objective = -objective_[cols_];
      if (objective < last_objective - options_.optimality_tol) {
        stall = 0;
        last_objective = objective;
      } else if (++stall >= options_.stall_limit) {
        bland = true;  // anti-cycling fallback
      }
    }
  }

  int pick_entering(bool bland) const {
    int best = -1;
    double best_cost = -options_.optimality_tol;
    for (std::size_t j = 0; j < cols_; ++j) {
      if (banned_[j]) continue;
      const double c = objective_[j];
      if (c < best_cost) {
        if (bland) return static_cast<int>(j);
        best_cost = c;
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  /// Ratio test. In phase 2, basic artificials that would *increase*
  /// (coefficient < 0) force a zero-step pivot so they leave instead of
  /// going positive (they carry an implicit upper bound of zero).
  int pick_leaving(std::size_t entering, bool phase1) const {
    int leaving = -1;
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      const double a = at(r, entering);
      double ratio;
      if (a > options_.feasibility_tol) {
        ratio = rhs(r) / a;
      } else if (!phase1 && basis_[r] >= artificial_begin_ &&
                 a < -options_.feasibility_tol) {
        ratio = 0.0;
      } else {
        continue;
      }
      if (leaving < 0 || ratio < best_ratio - options_.optimality_tol ||
          (ratio < best_ratio + options_.optimality_tol &&
           basis_[r] < basis_[static_cast<std::size_t>(leaving)])) {
        leaving = static_cast<int>(r);
        best_ratio = ratio;
      }
    }
    return leaving;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = at(row, col);
    require(std::abs(p) > options_.feasibility_tol * 1e-3,
            "dense simplex: tiny pivot");
    const double inv = 1.0 / p;
    for (std::size_t j = 0; j <= cols_; ++j) at(row, j) *= inv;
    at(row, col) = 1.0;  // cancel roundoff
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == row) continue;
      const double factor = at(r, col);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) {
        at(r, j) -= factor * at(row, j);
      }
      at(r, col) = 0.0;
    }
    const double ofactor = objective_[col];
    if (ofactor != 0.0) {
      for (std::size_t j = 0; j <= cols_; ++j) {
        objective_[j] -= ofactor * at(row, j);
      }
      objective_[col] = 0.0;
    }
    basis_[row] = col;
    // Clamp tiny negative rhs introduced by roundoff.
    for (std::size_t r = 0; r < m_; ++r) {
      if (rhs(r) < 0.0 && rhs(r) > -options_.feasibility_tol) rhs(r) = 0.0;
    }
  }

  /// After phase 1, pivots remaining zero-valued artificials out of the
  /// basis where possible; rows where no pivot exists are redundant and
  /// harmless (the artificial stays basic at zero and is banned in phase 2,
  /// with the ratio-test guard keeping it at zero).
  void expel_artificials() {
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < artificial_begin_) continue;
      for (std::size_t j = 0; j < artificial_begin_; ++j) {
        if (std::abs(at(r, j)) > options_.feasibility_tol) {
          pivot(r, j);
          break;
        }
      }
    }
  }

  SimplexOptions options_;
  std::size_t n_ = 0;  ///< structural columns
  std::size_t m_ = 0;  ///< rows
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t artificial_begin_ = 0;
  double rhs_scale_ = 1.0;
  std::vector<double> data_;       ///< m_ x stride_ tableau
  std::vector<double> objective_;  ///< reduced costs + negated objective
  std::vector<double> cost_;       ///< phase-2 costs per column
  std::vector<std::size_t> basis_;
  std::vector<bool> banned_;
};

}  // namespace

SfSolution solve_dense(const StandardForm& sf, const SimplexOptions& options) {
  if (sf.rows.empty()) {
    // No constraints: each variable sits at 0 (its shifted lower bound)
    // unless a negative cost makes the problem unbounded.
    SfSolution result;
    for (double c : sf.cost) {
      if (c < 0.0) {
        result.status = SolveStatus::kUnbounded;
        return result;
      }
    }
    result.status = SolveStatus::kOptimal;
    result.values.assign(sf.var_count(), 0.0);
    return result;
  }
  DenseTableau tableau(sf, options);
  return tableau.run();
}

}  // namespace sb::lp
