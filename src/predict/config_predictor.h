// Call-config prediction for recurring meetings (§8): a two-part model —
// MOMC features into logistic regression per participant — aggregated into
// a predicted per-country participant count for the next instance, compared
// against the previous-instance baseline on RMSE/MAE of those counts.
#pragma once

#include "common/rng.h"
#include "geo/world.h"
#include "predict/logistic.h"
#include "predict/momc.h"

namespace sb {

/// One recurring meeting: a fixed roster with an attendance bit per
/// (instance, participant).
struct MeetingSeries {
  std::vector<LocationId> roster;  ///< location of each roster member
  /// attendance[instance][participant] in {0,1}.
  std::vector<std::vector<std::uint8_t>> attendance;

  [[nodiscard]] std::size_t instances() const { return attendance.size(); }
  /// Per-location attended count at one instance.
  [[nodiscard]] std::vector<double> location_counts(
      std::size_t instance, std::size_t location_count) const;
};

struct SeriesGenParams {
  std::size_t series_count = 400;
  std::size_t min_instances = 8;
  std::size_t max_instances = 24;
  std::size_t min_roster = 3;
  std::size_t max_roster = 40;
  /// A few series get rosters up to this size ("dozens or even hundreds",
  /// §8 — where the previous-instance baseline is particularly bad).
  std::size_t large_roster = 250;
  double large_roster_prob = 0.08;
};

/// Synthesizes recurring-meeting series: each participant follows a sticky
/// two-state (attend/miss) Markov behaviour, with a minority of strict
/// alternators — the temporal predispositions the MOMC is built to catch.
std::vector<MeetingSeries> generate_meeting_series(const World& world,
                                                   const SeriesGenParams& params,
                                                   Rng& rng);

/// The trained two-part predictor.
class ConfigPredictor {
 public:
  explicit ConfigPredictor(std::size_t max_order = 3);

  /// Trains the MOMC and the logistic layer on all transitions in
  /// `training` (every instance except each series' last is available as a
  /// training target with its preceding history).
  void train(const std::vector<MeetingSeries>& training);

  /// Probability that roster member `p` of `series` attends instance
  /// `instance`, given attendance before it.
  [[nodiscard]] double attendance_prob(const MeetingSeries& series,
                                       std::size_t participant,
                                       std::size_t instance) const;

  /// Expected per-location participant counts at `instance` (sum of
  /// per-member attendance probabilities — the variance-minimizing
  /// aggregate).
  [[nodiscard]] std::vector<double> predict_counts(
      const MeetingSeries& series, std::size_t instance,
      std::size_t location_count) const;

 private:
  [[nodiscard]] std::vector<double> features(
      std::span<const std::uint8_t> history) const;

  MarkovAttendanceModel momc_;
  LogisticRegression logistic_;
};

/// RMSE/MAE of predicted vs true per-country counts, averaged over the
/// evaluated instances (the paper's §8 metric).
struct PredictionEval {
  double rmse = 0.0;
  double mae = 0.0;
  std::size_t instances = 0;
};

/// Evaluates the model on each series' final instance.
PredictionEval evaluate_model(const ConfigPredictor& model,
                              const std::vector<MeetingSeries>& test,
                              std::size_t location_count);

/// Evaluates the previous-instance baseline (predict counts = last
/// instance's counts) on each series' final instance.
PredictionEval evaluate_previous_instance(
    const std::vector<MeetingSeries>& test, std::size_t location_count);

}  // namespace sb
