// Fixed-size thread pool. Used to run independent LP failure-scenario solves
// concurrently (§5.3's per-scenario decomposition) and by the Fig 10
// controller throughput benchmark's writer threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sb {

/// A minimal work-queue thread pool. Tasks are std::function<void()>;
/// submit() wraps arbitrary callables and returns a future. Destruction
/// drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// @param thread_count number of workers; 0 means hardware_concurrency
  ///        (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)`; the returned future carries the result or the
  /// exception thrown by the task.
  template <typename Fn, typename... Args>
  auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Result = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<Fn>(fn),
         ... args = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    std::future<Result> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace sb
