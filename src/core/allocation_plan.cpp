#include "core/allocation_plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace sb {

AllocationPlan::AllocationPlan(std::size_t slot_count, std::size_t config_count,
                               std::size_t dc_count, double slot_s)
    : fractional(slot_count, config_count, dc_count),
      slots_(slot_count),
      configs_(config_count),
      dcs_(dc_count),
      slot_s_(slot_s),
      quotas_(slot_count * config_count * dc_count, 0) {
  require(slot_s > 0.0, "AllocationPlan: slot width");
}

std::uint32_t AllocationPlan::quota(TimeSlot t, std::size_t c, DcId dc) const {
  require(t < slots_ && c < configs_ && dc.valid() && dc.value() < dcs_,
          "AllocationPlan::quota: out of range");
  return quotas_[(static_cast<std::size_t>(t) * configs_ + c) * dcs_ +
                 dc.value()];
}

void AllocationPlan::set_quota(TimeSlot t, std::size_t c, DcId dc,
                               std::uint32_t calls) {
  require(t < slots_ && c < configs_ && dc.valid() && dc.value() < dcs_,
          "AllocationPlan::set_quota: out of range");
  quotas_[(static_cast<std::size_t>(t) * configs_ + c) * dcs_ + dc.value()] =
      calls;
}

TimeSlot AllocationPlan::slot_at(SimTime offset_s) const {
  if (offset_s <= 0.0) return 0;
  const auto slot = static_cast<std::size_t>(offset_s / slot_s_);
  return static_cast<TimeSlot>(std::min(slot, slots_ - 1));
}

std::size_t AllocationPlan::column_of(ConfigId config) const {
  if (!col_index_.empty()) {
    return config.valid() && config.value() < col_index_.size()
               ? col_index_[config.value()]
               : npos;
  }
  for (std::size_t i = 0; i < config_columns.size(); ++i) {
    if (config_columns[i] == config) return i;
  }
  return npos;
}

void AllocationPlan::build_column_index() {
  std::uint32_t max_id = 0;
  for (ConfigId id : config_columns) {
    if (id.valid()) max_id = std::max(max_id, id.value());
  }
  col_index_.assign(static_cast<std::size_t>(max_id) + 1, npos);
  for (std::size_t i = 0; i < config_columns.size(); ++i) {
    if (config_columns[i].valid()) col_index_[config_columns[i].value()] = i;
  }
}

AllocationPlanner::AllocationPlanner(EvalContext ctx, AllocationOptions options)
    : ctx_(ctx), options_(options) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "AllocationPlanner: incomplete context");
}

AllocationPlan AllocationPlanner::plan(const DemandMatrix& demand,
                                       const CapacityPlan& capacity,
                                       double slot_s) const {
  const World& world = *ctx_.world;
  const Topology& topo = *ctx_.topology;
  const std::size_t slots = demand.slot_count();
  const std::size_t config_count = demand.config_count();
  const std::vector<DcId> all_dcs = world.dc_ids();

  struct Candidates {
    std::vector<DcId> dcs;
    std::vector<HostingProfile> profiles;
  };
  std::vector<Candidates> cands(config_count);
  for (std::size_t c = 0; c < config_count; ++c) {
    const CallConfig& config = ctx_.registry->get(demand.config_at(c));
    cands[c].dcs = feasible_dcs(config, all_dcs, *ctx_.latency,
                                options_.acl_threshold_ms);
    for (DcId dc : cands[c].dcs) {
      cands[c].profiles.push_back(make_hosting_profile(config, dc, ctx_));
    }
  }

  lp::Model model;
  std::vector<std::vector<int>> s_var(slots * config_count);
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      if (demand.demand(t, c) <= 0.0) continue;
      auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      for (std::size_t k = 0; k < cands[c].dcs.size(); ++k) {
        // Eq 10: minimize total latency-weighted placement.
        vars.push_back(model.add_variable(0.0, lp::kInf,
                                          cands[c].profiles[k].acl_ms, ""));
      }
    }
  }

  for (TimeSlot t = 0; t < slots; ++t) {
    std::vector<std::vector<lp::Term>> dc_rows(world.dc_count());
    std::vector<std::vector<lp::Term>> link_rows(topo.link_count());
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      for (std::size_t k = 0; k < vars.size(); ++k) {
        const HostingProfile& profile = cands[c].profiles[k];
        dc_rows[cands[c].dcs[k].value()].push_back(
            {vars[k], profile.cores_per_call});
        for (const auto& [l, gbps] : profile.link_gbps_per_call) {
          link_rows[l.value()].push_back({vars[k], gbps});
        }
      }
    }
    for (std::size_t x = 0; x < world.dc_count(); ++x) {
      if (dc_rows[x].empty()) continue;
      model.add_constraint(
          std::move(dc_rows[x]), lp::Sense::kLe,
          capacity.dc_total_cores(DcId(static_cast<std::uint32_t>(x))));
    }
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      if (link_rows[l].empty()) continue;
      model.add_constraint(std::move(link_rows[l]), lp::Sense::kLe,
                           capacity.link_gbps[l]);
    }
  }
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      if (vars.empty()) continue;
      std::vector<lp::Term> terms;
      for (int v : vars) terms.push_back({v, 1.0});
      model.add_constraint(std::move(terms), lp::Sense::kEq,
                           demand.demand(t, c));
    }
  }

  const lp::Solution solution = lp::solve(model, options_.lp_options);
  if (!solution.optimal()) {
    throw SolveError("allocation LP returned " +
                     lp::to_string(solution.status) +
                     " (is the capacity plan sufficient for this demand?)");
  }

  AllocationPlan plan(slots, config_count, world.dc_count(), slot_s);
  plan.config_columns = demand.configs();
  plan.build_column_index();
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      if (vars.empty()) continue;
      // Fractional optimum, then largest-remainder rounding to an integral
      // quota totalling ceil(D_tc) so the realtime selector always has at
      // least the expected number of slots.
      std::vector<double> shares(vars.size());
      double placed = 0.0;
      for (std::size_t k = 0; k < vars.size(); ++k) {
        shares[k] = solution.values[vars[k]];
        plan.fractional.set_calls(t, c, cands[c].dcs[k], shares[k]);
        placed += shares[k];
      }
      auto total = static_cast<std::uint32_t>(std::ceil(placed - 1e-9));
      std::vector<std::uint32_t> quota(vars.size());
      std::uint32_t assigned = 0;
      for (std::size_t k = 0; k < vars.size(); ++k) {
        quota[k] = static_cast<std::uint32_t>(shares[k]);
        assigned += quota[k];
      }
      std::vector<std::size_t> order(vars.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return shares[a] - std::floor(shares[a]) >
               shares[b] - std::floor(shares[b]);
      });
      for (std::size_t i = 0; assigned < total; ++i) {
        ++quota[order[i % order.size()]];
        ++assigned;
      }
      for (std::size_t k = 0; k < vars.size(); ++k) {
        plan.set_quota(t, c, cands[c].dcs[k], quota[k]);
      }
    }
  }
  plan.mean_acl_ms = mean_acl_ms(plan.fractional, demand, ctx_);
  return plan;
}

}  // namespace sb
