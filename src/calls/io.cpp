#include "calls/io.h"

#include <charconv>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"
#include "common/table.h"

namespace sb {

namespace {

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    require(used == text.size(), what + ": trailing characters in '" + text +
                                     "'");
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument(what + ": cannot parse number '" + text + "'");
  }
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string legs_field(const CallRecord& record, const World& world) {
  std::string out;
  for (std::size_t i = 0; i < record.legs.size(); ++i) {
    if (i > 0) out += ';';
    out += world.location(record.legs[i].location).name;
    out += '@';
    out += format_double(record.legs[i].join_offset_s, 3);
  }
  return out;
}

}  // namespace

MediaType parse_media_type(const std::string& text) {
  if (text == "audio") return MediaType::kAudio;
  if (text == "screen") return MediaType::kScreenShare;
  if (text == "video") return MediaType::kVideo;
  throw InvalidArgument("parse_media_type: unknown media '" + text + "'");
}

CallConfig parse_call_config(const std::string& text, const World& world) {
  // Format: ((IN-2,JP-1),audio)
  require(text.size() > 6 && text.front() == '(' && text.back() == ')',
          "parse_call_config: malformed '" + text + "'");
  const std::size_t inner_close = text.rfind("),");
  require(inner_close != std::string::npos && text[1] == '(',
          "parse_call_config: malformed '" + text + "'");
  const std::string entries_text = text.substr(2, inner_close - 2);
  const std::string media_text =
      text.substr(inner_close + 2, text.size() - inner_close - 3);

  std::vector<ConfigEntry> entries;
  for (const std::string& part : split(entries_text, ',')) {
    const std::size_t dash = part.rfind('-');
    require(dash != std::string::npos && dash > 0,
            "parse_call_config: bad entry '" + part + "'");
    const std::string name = part.substr(0, dash);
    const auto loc = world.find_location(name);
    require(loc.has_value(), "parse_call_config: unknown location '" + name +
                                 "'");
    const double count = parse_double(part.substr(dash + 1), "count");
    require(count >= 1.0, "parse_call_config: bad count in '" + part + "'");
    entries.push_back({*loc, static_cast<std::uint32_t>(count)});
  }
  return CallConfig::make(std::move(entries), parse_media_type(media_text));
}

void write_records_csv(std::ostream& out, const CallRecordDatabase& db,
                       const CallConfigRegistry& registry, const World& world) {
  CsvWriter writer(out);
  writer.write_row({"call_id", "start_s", "duration_s", "media", "legs"});
  for (const CallRecord& record : db.records()) {
    const CallConfig& config = registry.get(record.config);
    writer.write_row({std::to_string(record.id.value()),
                      format_double(record.start_s, 3),
                      format_double(record.duration_s, 3),
                      to_string(config.media()), legs_field(record, world)});
  }
}

CallRecordDatabase read_records_csv(const std::string& csv,
                                    CallConfigRegistry& registry,
                                    const World& world) {
  const auto rows = parse_csv(csv);
  require(!rows.empty() && rows[0].size() == 5 && rows[0][0] == "call_id",
          "read_records_csv: missing or malformed header");
  CallRecordDatabase db;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    require(row.size() == 5,
            "read_records_csv: row " + std::to_string(r) + " has " +
                std::to_string(row.size()) + " fields");
    CallRecord record;
    record.id = CallId(static_cast<std::uint32_t>(
        parse_double(row[0], "call_id")));
    record.start_s = parse_double(row[1], "start_s");
    record.duration_s = parse_double(row[2], "duration_s");
    const MediaType media = parse_media_type(row[3]);

    std::vector<ConfigEntry> entries;
    for (const std::string& leg_text : split(row[4], ';')) {
      const std::size_t at = leg_text.find('@');
      require(at != std::string::npos,
              "read_records_csv: bad leg '" + leg_text + "'");
      const std::string name = leg_text.substr(0, at);
      const auto loc = world.find_location(name);
      require(loc.has_value(),
              "read_records_csv: unknown location '" + name + "'");
      record.legs.push_back(
          CallLeg{*loc, parse_double(leg_text.substr(at + 1), "offset")});
      entries.push_back({*loc, 1});
    }
    require(!record.legs.empty(), "read_records_csv: record without legs");
    record.config = registry.intern(CallConfig::make(std::move(entries), media));
    db.add(std::move(record));
  }
  return db;
}

void write_demand_csv(std::ostream& out, const DemandMatrix& demand,
                      const CallConfigRegistry& registry, const World& world) {
  CsvWriter writer(out);
  std::vector<std::string> header{"slot"};
  for (std::size_t c = 0; c < demand.config_count(); ++c) {
    header.push_back(registry.get(demand.config_at(c)).describe(world));
  }
  writer.write_row(header);
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      row.push_back(format_double(demand.demand(t, c), 6));
    }
    writer.write_row(row);
  }
}

DemandMatrix read_demand_csv(const std::string& csv,
                             CallConfigRegistry& registry, const World& world) {
  const auto rows = parse_csv(csv);
  require(rows.size() >= 2 && rows[0].size() >= 2 && rows[0][0] == "slot",
          "read_demand_csv: missing or malformed header");
  std::vector<ConfigId> configs;
  for (std::size_t c = 1; c < rows[0].size(); ++c) {
    configs.push_back(registry.intern(parse_call_config(rows[0][c], world)));
  }
  DemandMatrix demand = make_demand_matrix(configs, rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    require(rows[r].size() == rows[0].size(),
            "read_demand_csv: ragged row " + std::to_string(r));
    for (std::size_t c = 1; c < rows[r].size(); ++c) {
      demand.set_demand(static_cast<TimeSlot>(r - 1), c - 1,
                        parse_double(rows[r][c], "demand"));
    }
  }
  return demand;
}

}  // namespace sb
