// Tests for the KV store substrate: semantics, concurrency, and latency
// injection bounds.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "kvstore/kvstore.h"

namespace sb {
namespace {

KvStoreOptions fast_options() {
  KvStoreOptions options;
  options.inject_latency = false;
  return options;
}

TEST(KvStoreTest, SetGetEraseSemantics) {
  KvStore store(fast_options());
  EXPECT_FALSE(store.get("missing").has_value());
  store.set("a", "1");
  EXPECT_EQ(store.get("a"), "1");
  store.set("a", "2");
  EXPECT_EQ(store.get("a"), "2");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, IncrStartsAtZero) {
  KvStore store(fast_options());
  EXPECT_EQ(store.incr("counter", 5), 5);
  EXPECT_EQ(store.incr("counter", -2), 3);
  EXPECT_EQ(store.get("counter"), "3");
}

TEST(KvStoreTest, ConcurrentIncrementsAreAtomic) {
  KvStore store(fast_options());
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kOpsPerThread; ++i) store.incr("shared", 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.get("shared"), std::to_string(kThreads * kOpsPerThread));
}

TEST(KvStoreTest, ConcurrentDisjointWrites) {
  KvStore store(fast_options());
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 200; ++i) {
        store.set("k" + std::to_string(t) + ":" + std::to_string(i),
                  std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), 1200u);
  EXPECT_EQ(store.get("k3:77"), "77");
}

TEST(KvStoreTest, InjectedLatencyWithinPaperRange) {
#ifndef SB_METRICS_ENABLED
  GTEST_SKIP() << "op stats ride on sb::obs; built with SB_METRICS=OFF";
#else
  KvStoreOptions options;
  options.min_latency_ms = 0.3;
  options.max_latency_ms = 4.2;
  KvStore store(options);
  for (int i = 0; i < 30; ++i) store.set("k", "v");
  const KvStore::OpStats stats = store.stats();
  EXPECT_EQ(stats.ops, 30u);
  // §6.6 reports write latencies of 0.3-4.2 ms.
  EXPECT_GE(stats.min_latency_ms, 0.3);
  EXPECT_LE(stats.max_latency_ms, 4.2);
  EXPECT_GT(stats.mean_latency_ms(), 0.3);

  // The OpStats view is a projection of the per-instance histogram; its
  // percentiles must sit inside the injected range too.
  const obs::HistogramData histogram = store.latency_histogram();
  EXPECT_EQ(histogram.count, 30u);
  EXPECT_GE(histogram.p50() * 1e3, 0.3);
  EXPECT_LE(histogram.p99() * 1e3, 4.2);

  store.reset_stats();
  EXPECT_EQ(store.stats().ops, 0u);
  EXPECT_EQ(store.latency_histogram().count, 0u);
#endif
}

TEST(KvStoreTest, VersionedPutIfSemantics) {
  KvStore store(fast_options());
  // Create-if-absent: expected version 0 on a missing key.
  const auto v1 = store.put_if("k", "a", 0);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, 1u);
  // Create-if-absent on an existing key must fail.
  EXPECT_FALSE(store.put_if("k", "clobber", 0).has_value());
  EXPECT_EQ(store.get("k"), "a");
  // CAS with the right version succeeds and bumps it.
  const auto v2 = store.put_if("k", "b", *v1);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, 2u);
  // Stale CAS (old version) must fail and leave the value alone.
  EXPECT_FALSE(store.put_if("k", "stale", *v1).has_value());
  EXPECT_EQ(store.get("k"), "b");
  // Plain set() bumps the version too, so a CAS racing a set loses.
  store.set("k", "c");
  const auto ver = store.get_versioned("k");
  ASSERT_TRUE(ver.has_value());
  EXPECT_EQ(ver->value, "c");
  EXPECT_EQ(ver->version, 3u);
  EXPECT_FALSE(store.put_if("k", "stale", *v2).has_value());
}

TEST(KvStoreTest, PutIfContentionEightThreads) {
  // Eight threads CAS-loop the same key; every successful CAS appends one
  // token. Success count and final version must equal the token total —
  // no lost or duplicated CAS under contention.
  KvStore store(fast_options());
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kWinsPerThread = 100;
  ASSERT_TRUE(store.put_if("ctr", "0", 0).has_value());
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store] {
      for (std::size_t w = 0; w < kWinsPerThread;) {
        const auto cur = store.get_versioned("ctr");
        if (!cur.has_value()) continue;  // never happens; keep gtest
                                         // asserts off worker threads
        const auto next = std::to_string(std::stoull(cur->value) + 1);
        if (store.put_if("ctr", next, cur->version).has_value()) ++w;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const auto settled = store.get_versioned("ctr");
  ASSERT_TRUE(settled.has_value());
  EXPECT_EQ(settled->value, std::to_string(kThreads * kWinsPerThread));
  EXPECT_EQ(settled->version, 1u + kThreads * kWinsPerThread);
}

TEST(KvStoreTest, ScanPrefixIsSortedAndScoped) {
  KvStore store(fast_options());
  store.set("wal:3:10", "c");
  store.set("wal:3:2", "b");
  store.set("wal:12:1", "x");
  store.set("lease:w0", "y");
  const auto rows = store.scan_prefix("wal:3:");
  ASSERT_EQ(rows.size(), 2u);
  // Lexicographic over the full key, deterministic across shard layouts.
  EXPECT_EQ(rows[0].first, "wal:3:10");
  EXPECT_EQ(rows[1].first, "wal:3:2");
  EXPECT_EQ(rows[0].second, "c");
  EXPECT_TRUE(store.scan_prefix("wal:7:").empty());
}

TEST(KvStoreTest, LeaseLifecycle) {
  KvStore store(fast_options());
  // Grant, then a competing owner is refused until expiry.
  EXPECT_TRUE(store.acquire_lease("L", "w0", 10.0, 0.0));
  EXPECT_FALSE(store.acquire_lease("L", "w1", 10.0, 5.0));
  // Re-acquire by the same owner refreshes rather than conflicts.
  EXPECT_TRUE(store.acquire_lease("L", "w0", 10.0, 5.0));
  const auto info = store.lease("L");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->owner, "w0");
  EXPECT_DOUBLE_EQ(info->expires_at, 15.0);
  // Renewal works while live, fails once lapsed.
  EXPECT_TRUE(store.renew_lease("L", "w0", 10.0, 14.0));
  EXPECT_FALSE(store.renew_lease("L", "w1", 10.0, 14.0));  // wrong owner
  EXPECT_FALSE(store.renew_lease("L", "w0", 10.0, 99.0));  // lapsed
  // A lapsed lease is up for grabs.
  EXPECT_TRUE(store.acquire_lease("L", "w1", 10.0, 99.0));
  EXPECT_TRUE(store.release_lease("L", "w1"));
  EXPECT_FALSE(store.release_lease("L", "w1"));
  EXPECT_FALSE(store.lease("L").has_value());
}

TEST(KvStoreTest, ExpireLeasesSweepsOnlyLapsed) {
  KvStore store(fast_options());
  EXPECT_TRUE(store.acquire_lease("a", "w0", 5.0, 0.0));
  EXPECT_TRUE(store.acquire_lease("b", "w1", 50.0, 0.0));
  EXPECT_TRUE(store.acquire_lease("c", "w2", 5.0, 0.0));
  const auto expired = store.expire_leases(10.0);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0], "a");  // sorted sweep: deterministic adoption order
  EXPECT_EQ(expired[1], "c");
  EXPECT_FALSE(store.lease("a").has_value());
  ASSERT_TRUE(store.lease("b").has_value());
  EXPECT_TRUE(store.expire_leases(10.0).empty());  // idempotent
}

TEST(KvStoreTest, ValidatesOptions) {
  KvStoreOptions bad;
  bad.shard_count = 0;
  EXPECT_THROW(KvStore{bad}, InvalidArgument);
  KvStoreOptions bad_range;
  bad_range.min_latency_ms = 5.0;
  bad_range.max_latency_ms = 1.0;
  EXPECT_THROW(KvStore{bad_range}, InvalidArgument);
}

// Eight threads hammer disjoint-but-overlapping key ranges with a mix of
// set/get/incr/erase while latency injection is ON (the concurrent path the
// controller drives). Afterwards the op-stats projection and the latency
// histogram must agree on exactly how many operations ran — no sample lost
// or double-counted under contention — and the store must hold exactly the
// keys the deterministic op schedule leaves behind.
TEST(KvStoreTest, MixedStressConservesOpStatsHistogram) {
  KvStoreOptions options;
  options.inject_latency = true;
  options.min_latency_ms = 0.005;  // keep the stress fast but on the
  options.max_latency_ms = 0.05;   // injected-latency code path
  KvStore store(options);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "k" + std::to_string(t) + ":" + std::to_string(i % 8);
        switch (i % 4) {
          case 0:
            store.set(key, std::to_string(i));
            break;
          case 1:
            (void)store.get(key);
            break;
          case 2:
            (void)store.incr("ctr:" + std::to_string(t), 1);
            break;
          default:
            (void)store.erase(key);
            break;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

#ifdef SB_METRICS_ENABLED
  // Snapshot the stats BEFORE the semantic checks below: incr() (even with
  // delta 0) rides the same instrumented path and would add samples.
  const KvStore::OpStats stats = store.stats();
  const obs::HistogramData histogram = store.latency_histogram();
#endif

  // Per-thread schedule: i%4==0 sets k<t>:<i%8> (i%8 in {0,4}), i%4==3
  // erases (i%8 in {3,7}) — disjoint, so both set keys survive, plus one
  // counter key per thread.
  EXPECT_EQ(store.size(), kThreads * 3);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.incr("ctr:" + std::to_string(t), 0),
              static_cast<std::int64_t>(kOpsPerThread / 4));
  }

#ifdef SB_METRICS_ENABLED
  EXPECT_EQ(stats.ops, kThreads * kOpsPerThread);
  EXPECT_EQ(histogram.count, kThreads * kOpsPerThread);
  // Histogram conservation: bucket counts (including both overflow
  // buckets) sum exactly to the observation count.
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : histogram.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, histogram.count);
  EXPECT_GE(stats.min_latency_ms, options.min_latency_ms);
  EXPECT_LE(stats.max_latency_ms, options.max_latency_ms);
  EXPECT_NEAR(histogram.sum * 1e3, stats.total_latency_ms,
              1e-6 * stats.total_latency_ms);
#endif
}

}  // namespace
}  // namespace sb
