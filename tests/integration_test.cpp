// End-to-end integration tests: the full Switchboard pipeline (demand ->
// provisioning LP -> allocation plan -> realtime selector -> DES replay)
// and the Table 3 orderings between Switchboard and the baselines.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/locality_first.h"
#include "baselines/round_robin.h"
#include "common/csv.h"
#include "core/controller.h"
#include "obs/snapshot.h"
#include "sim/simulator.h"
#include "trace/scenario.h"

namespace sb {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_apac_scenario());
    loads_ = new LoadModel(LoadModel::paper_default());
    ctx_ = new EvalContext{&scenario_->world(), &scenario_->topology(),
                           &scenario_->latency(), scenario_->registry.get(),
                           loads_};
    // One Tuesday of expected demand over the top-20 configs, 1-hour slots.
    DemandMatrix full = scenario_->trace->expected_demand(
        3600.0, kSecondsPerDay, 2 * kSecondsPerDay);
    std::vector<ConfigId> top;
    for (std::size_t i = 0; i < 20; ++i) top.push_back(full.config_at(i));
    demand_ = new DemandMatrix(make_demand_matrix(top, full.slot_count()));
    for (TimeSlot t = 0; t < full.slot_count(); ++t) {
      for (std::size_t c = 0; c < top.size(); ++c) {
        demand_->set_demand(t, c, full.demand(t, c));
      }
    }
  }
  static void TearDownTestSuite() {
    delete demand_;
    delete ctx_;
    delete loads_;
    delete scenario_;
  }

  static Scenario* scenario_;
  static LoadModel* loads_;
  static EvalContext* ctx_;
  static DemandMatrix* demand_;
};
Scenario* PipelineFixture::scenario_ = nullptr;
LoadModel* PipelineFixture::loads_ = nullptr;
EvalContext* PipelineFixture::ctx_ = nullptr;
DemandMatrix* PipelineFixture::demand_ = nullptr;

TEST_F(PipelineFixture, ProvisioningCoversDemandInEveryScenario) {
  ProvisionOptions options;
  options.include_link_failures = false;
  SwitchboardProvisioner provisioner(*ctx_, options);
  const ProvisionResult result = provisioner.provision(*demand_);

  // Every scenario's requirement is dominated by the combined plan.
  for (const ScenarioOutcome& outcome : result.scenarios) {
    for (std::size_t x = 0; x < scenario_->world().dc_count(); ++x) {
      EXPECT_LE(outcome.required.dc_serving_cores[x],
                result.capacity.dc_total_cores(
                    DcId(static_cast<std::uint32_t>(x))) +
                    1e-5)
          << outcome.scenario.name;
    }
    for (std::size_t l = 0; l < scenario_->topology().link_count(); ++l) {
      EXPECT_LE(outcome.required.link_gbps[l],
                result.capacity.link_gbps[l] + 1e-7)
          << outcome.scenario.name;
    }
  }
  // The F0 placement hosts all demand.
  for (TimeSlot t = 0; t < demand_->slot_count(); ++t) {
    for (std::size_t c = 0; c < demand_->config_count(); ++c) {
      EXPECT_NEAR(result.base_placement.total_calls(t, c),
                  demand_->demand(t, c), 1e-4);
    }
  }
}

TEST_F(PipelineFixture, Table3OrderingsHold) {
  // The paper's headline relationships (Table 3), checked on the synthetic
  // workload. Without backup:
  //   cores: SB <= LF (SB never needs more compute than LF)
  //   WAN:   SB <= LF << RR
  //   cost:  SB < LF < RR
  //   ACL:   LF <= SB << RR, SB within the 120 ms constraint
  const BaselineOptions base_options{.with_backup = false};
  const BaselineResult rr =
      provision_round_robin(*demand_, *ctx_, base_options);
  const BaselineResult lf =
      provision_locality_first(*demand_, *ctx_, base_options);

  ProvisionOptions sb_options;
  sb_options.with_backup = false;
  SwitchboardProvisioner provisioner(*ctx_, sb_options);
  const ProvisionResult sb = provisioner.provision(*demand_);

  const World& world = scenario_->world();
  const Topology& topo = scenario_->topology();
  const double rr_cost = rr.capacity.total_cost(world, topo);
  const double lf_cost = lf.capacity.total_cost(world, topo);
  const double sb_cost = sb.capacity.total_cost(world, topo);

  EXPECT_LE(sb.capacity.total_cores(), lf.capacity.total_cores() * 1.001);
  // SB minimizes joint cost, so its raw Gbps can tie LF's (it may trade a
  // little cheap bandwidth for expensive compute); it must never be
  // meaningfully worse.
  EXPECT_LE(sb.capacity.total_wan_gbps(),
            lf.capacity.total_wan_gbps() * 1.25);
  EXPECT_LT(lf.capacity.total_wan_gbps(),
            0.6 * rr.capacity.total_wan_gbps());
  EXPECT_LT(sb_cost, lf_cost * 1.001);
  EXPECT_LT(lf_cost, rr_cost);
  EXPECT_LT(sb.mean_acl_ms, 0.8 * rr.mean_acl_ms);
  EXPECT_LE(sb.mean_acl_ms, kDefaultAclThresholdMs + 1.0);
}

TEST_F(PipelineFixture, AllocationPlanRestoresLfLatencyWithBackup) {
  // §6.3: with backup capacity provisioned, Switchboard's allocation ends
  // up with the same latency as LF (it can serve everything locally).
  ProvisionOptions options;
  options.include_link_failures = false;
  SwitchboardProvisioner provisioner(*ctx_, options);
  const ProvisionResult provision = provisioner.provision(*demand_);

  AllocationPlanner planner(*ctx_, {});
  const AllocationPlan plan =
      planner.plan(*demand_, provision.capacity, 3600.0);

  const BaselineResult lf = provision_locality_first(
      *demand_, *ctx_, BaselineOptions{.with_backup = false});
  EXPECT_NEAR(plan.mean_acl_ms, lf.mean_acl_ms, 0.10 * lf.mean_acl_ms);
  EXPECT_LE(plan.mean_acl_ms, provision.mean_acl_ms + 1e-6);
}

/// Drives a Switchboard controller through the simulator's allocator hooks.
class ControllerAllocator final : public CallAllocator {
 public:
  explicit ControllerAllocator(Switchboard& controller)
      : controller_(&controller) {}
  DcId on_call_start(CallId call, LocationId first, SimTime now) override {
    return controller_->call_started(call, first, now);
  }
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override {
    return controller_->config_frozen(call, config, now);
  }
  void on_call_end(CallId call, SimTime now) override {
    controller_->call_ended(call, now);
  }
  [[nodiscard]] std::string name() const override { return "controller"; }

 private:
  Switchboard* controller_;
};

TEST_F(PipelineFixture, ControllerEndToEndWithSimulator) {
  ControllerOptions options;
  options.provision.include_link_failures = false;
  options.slot_s = 3600.0;
  Switchboard controller(*ctx_, options);
  controller.provision(*demand_);
  controller.build_allocation_plan(*demand_, kSecondsPerDay);

  // Replay four busy hours through the controller-driven selector.
  const double start = kSecondsPerDay + 3.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario_->trace->generate(start, start + 4.0 * kSecondsPerHour);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  ControllerAllocator allocator(controller);
  Simulator sim(*ctx_);
  const SimReport report = sim.run(db, allocator);
  EXPECT_EQ(report.calls, db.size());

  const RealtimeSelector::Stats stats = controller.realtime_stats();
  EXPECT_EQ(stats.calls_started, db.size());
  // §6.4: migrations are a small fraction of calls.
  EXPECT_LT(report.migration_fraction, 0.12);
  // Most calls belong to planned (top-20) configs' complement — the ones
  // outside the plan fall back gracefully rather than erroring.
  EXPECT_GT(stats.calls_frozen, 0u);

#ifdef SB_METRICS_ENABLED
  // The controller emits one sb.realtime counter per event, so the delta
  // over this replay must match the selector's own accounting exactly.
  const obs::MetricsSnapshot delta =
      obs::snapshot_diff(before, obs::MetricsRegistry::global().snapshot());
  EXPECT_EQ(delta.counter_value("sb.realtime.calls_started"), db.size());
  EXPECT_EQ(delta.counter_value("sb.realtime.calls_ended"), db.size());
  EXPECT_EQ(delta.counter_value("sb.realtime.configs_frozen"),
            stats.calls_frozen);
  EXPECT_EQ(delta.counter_value("sb.realtime.migrations"), report.migrations);
  EXPECT_EQ(delta.counter_value("sb.sim.calls"), db.size());
  const obs::HistogramSample* freeze =
      delta.find_histogram("sb.realtime.freeze_latency_s");
  ASSERT_NE(freeze, nullptr);
  EXPECT_EQ(freeze->data.count, stats.calls_frozen);
  EXPECT_GT(freeze->data.p99(), 0.0);
#endif
}

TEST_F(PipelineFixture, MetricsSnapshotExportsAllSubsystems) {
#ifndef SB_METRICS_ENABLED
  GTEST_SKIP() << "built with SB_METRICS=OFF";
#else
  // Exercise every instrumented subsystem once: provisioning (lp +
  // provisioner), the allocation plan, and a KV-backed realtime replay
  // (realtime + kvstore + sim).
  ControllerOptions options;
  options.provision.include_link_failures = false;
  options.provision.with_backup = false;
  options.slot_s = 3600.0;
  Switchboard controller(*ctx_, options);
  controller.provision(*demand_);
  controller.build_allocation_plan(*demand_, kSecondsPerDay);
  KvStoreOptions store_options;
  store_options.inject_latency = false;
  KvStore store(store_options);
  controller.attach_store(&store);

  const double start = kSecondsPerDay + 3.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario_->trace->generate(start, start + 1.0 * kSecondsPerHour);
  ControllerAllocator allocator(controller);
  Simulator sim(*ctx_);
  sim.run(db, allocator);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const auto dir = std::filesystem::temp_directory_path();
  const auto csv_path = dir / "sb_metrics_snapshot.csv";
  const auto json_path = dir / "sb_metrics_snapshot.json";
  {
    std::ofstream csv(csv_path);
    snap.write_csv(csv);
    std::ofstream json(json_path);
    snap.write_json(json);
  }

  // Both files exist and name metrics from all five subsystems.
  for (const char* subsystem :
       {"sb.realtime.", "sb.provisioner.", "sb.lp.", "sb.kvstore.",
        "sb.sim."}) {
    bool counter_or_gauge_or_hist = false;
    for (const auto& c : snap.counters) {
      if (c.name.rfind(subsystem, 0) == 0) counter_or_gauge_or_hist = true;
    }
    for (const auto& h : snap.histograms) {
      if (h.name.rfind(subsystem, 0) == 0) counter_or_gauge_or_hist = true;
    }
    EXPECT_TRUE(counter_or_gauge_or_hist) << subsystem;
  }

  std::stringstream csv_text;
  csv_text << std::ifstream(csv_path).rdbuf();
  const auto rows = parse_csv(csv_text.str());
  ASSERT_GT(rows.size(), 5u);
  EXPECT_EQ(rows.front().front(), "kind");
  std::size_t subsystems_in_csv = 0;
  for (const char* subsystem :
       {"sb.realtime.", "sb.provisioner.", "sb.lp.", "sb.kvstore.",
        "sb.sim."}) {
    for (const auto& row : rows) {
      if (row.size() > 1 && row[1].rfind(subsystem, 0) == 0) {
        ++subsystems_in_csv;
        break;
      }
    }
  }
  EXPECT_EQ(subsystems_in_csv, 5u);

  std::stringstream json_text;
  json_text << std::ifstream(json_path).rdbuf();
  const std::string json_str = json_text.str();
  for (const char* key :
       {"\"counters\"", "\"histograms\"", "sb.lp.solve_s",
        "sb.realtime.freeze_latency_s", "sb.kvstore.op_latency_s",
        "sb.provisioner.scenario_solve_s", "sb.sim.acl_ms", "\"p99\""}) {
    EXPECT_NE(json_str.find(key), std::string::npos) << key;
  }

  std::filesystem::remove(csv_path);
  std::filesystem::remove(json_path);
#endif
}

TEST_F(PipelineFixture, JointNetworkAblationNeverBeatsJoint) {
  ProvisionOptions joint;
  joint.with_backup = false;
  ProvisionOptions compute_first = joint;
  compute_first.joint_network = false;

  SwitchboardProvisioner joint_prov(*ctx_, joint);
  SwitchboardProvisioner seq_prov(*ctx_, compute_first);
  const ProvisionResult j = joint_prov.provision(*demand_);
  const ProvisionResult s = seq_prov.provision(*demand_);
  const double j_cost =
      j.capacity.total_cost(scenario_->world(), scenario_->topology());
  const double s_cost =
      s.capacity.total_cost(scenario_->world(), scenario_->topology());
  // §4.3: joint optimization can only help total cost.
  EXPECT_LE(j_cost, s_cost * 1.001);
}

}  // namespace
}  // namespace sb
