#include "loop/adaptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "obs/timer.h"
#include "obs/timeseries.h"

namespace sb::loop {

namespace {
constexpr std::uint32_t kNoCol = std::numeric_limits<std::uint32_t>::max();
}  // namespace

AdaptiveController::AdaptiveController(Switchboard& sb, EvalContext ctx,
                                       DemandMatrix forecast,
                                       SimTime plan_start_s, double slot_s,
                                       LoopOptions options,
                                       obs::TimeSeriesRecorder* recorder)
    : sb_(&sb),
      inner_(sb),
      ctx_(ctx),
      plan_start_s_(plan_start_s),
      slot_s_(slot_s),
      options_(options),
      recorder_(recorder),
      forecast_(std::move(forecast)),
      next_due_(plan_start_s + options.cadence_s),
      observed_gauge_(
          obs::MetricsRegistry::global().gauge("sb.loop.observed_calls")),
      tick_counter_(obs::MetricsRegistry::global().counter("sb.loop.ticks")),
      trigger_counter_(
          obs::MetricsRegistry::global().counter("sb.loop.triggers")),
      replan_counter_(
          obs::MetricsRegistry::global().counter("sb.loop.replans")),
      tick_s_(obs::MetricsRegistry::global().histogram("sb.loop.tick_s")) {
  require(ctx_.registry != nullptr, "AdaptiveController: incomplete context");
  require(options_.cadence_s > 0.0, "AdaptiveController: cadence");
  require(slot_s_ > 0.0, "AdaptiveController: slot width");
  require(sb_->provision_result().has_value(),
          "AdaptiveController: controller has no provision result");
  for (std::size_t col = 0; col < forecast_.config_count(); ++col) {
    col_of_.emplace(forecast_.config_at(col), static_cast<std::uint32_t>(col));
  }
  observed_ =
      std::make_unique<std::atomic<std::int64_t>[]>(forecast_.config_count());
  for (std::size_t col = 0; col < forecast_.config_count(); ++col) {
    observed_[col].store(0, std::memory_order_relaxed);
  }
}

int& AdaptiveController::batch_depth() {
  thread_local int depth = 0;
  return depth;
}

void AdaptiveController::batch_begin() {
  ++batch_depth();
  inner_.batch_begin();
}

void AdaptiveController::batch_end(SimTime now) {
  inner_.batch_end(now);
  --batch_depth();
  // The inner allocator just released the shared plan lock, so a tick here
  // can take the exclusive lock without deadlocking against ourselves.
  maybe_tick(now);
}

DcId AdaptiveController::on_call_start(CallId call, LocationId first_joiner,
                                       SimTime now) {
  const DcId dc = inner_.on_call_start(call, first_joiner, now);
  if (batch_depth() == 0) maybe_tick(now);
  return dc;
}

FreezeResult AdaptiveController::on_config_frozen(CallId call,
                                                  const CallConfig& config,
                                                  SimTime now) {
  return on_config_frozen(call, ctx_.registry->find(config), config, now);
}

FreezeResult AdaptiveController::on_config_frozen(CallId call, ConfigId id,
                                                  const CallConfig& config,
                                                  SimTime now) {
  const FreezeResult result = inner_.on_config_frozen(call, id, config, now);
  track_freeze(call, id);
  if (batch_depth() == 0) maybe_tick(now);
  return result;
}

void AdaptiveController::on_call_end(CallId call, SimTime now) {
  inner_.on_call_end(call, now);
  untrack(call);
  if (batch_depth() == 0) maybe_tick(now);
}

fault::FailoverOutcome AdaptiveController::on_dc_failed(DcId dc, SimTime now) {
  fault::FailoverOutcome outcome = inner_.on_dc_failed(dc, now);
  untrack_outcome(outcome);
  return outcome;
}

void AdaptiveController::on_dc_recovered(DcId dc, SimTime now) {
  inner_.on_dc_recovered(dc, now);
}

void AdaptiveController::on_link_failed(LinkId link, SimTime now) {
  inner_.on_link_failed(link, now);
}

void AdaptiveController::on_link_recovered(LinkId link, SimTime now) {
  inner_.on_link_recovered(link, now);
}

fault::FailoverOutcome AdaptiveController::on_server_failed(ServerId server,
                                                            SimTime now) {
  fault::FailoverOutcome outcome = inner_.on_server_failed(server, now);
  untrack_outcome(outcome);
  return outcome;
}

void AdaptiveController::on_server_recovered(ServerId server, SimTime now) {
  inner_.on_server_recovered(server, now);
}

LoopStats AdaptiveController::stats() const {
  return {ticks_.load(std::memory_order_relaxed),
          triggers_.load(std::memory_order_relaxed),
          replans_.load(std::memory_order_relaxed),
          solve_errors_.load(std::memory_order_relaxed)};
}

DemandMatrix AdaptiveController::current_forecast() const {
  std::lock_guard lock(tick_mutex_);
  return forecast_;
}

double AdaptiveController::observed_total() const {
  double total = 0.0;
  for (std::size_t col = 0; col < forecast_.config_count(); ++col) {
    total += static_cast<double>(observed_[col].load(std::memory_order_relaxed));
  }
  return total;
}

void AdaptiveController::track_freeze(CallId call, ConfigId id) {
  std::uint32_t col = kNoCol;
  if (id.valid()) {
    const auto it = col_of_.find(id);
    if (it != col_of_.end()) col = it->second;
  }
  if (col == kNoCol) return;  // config outside the forecast: not observed
  observed_[col].fetch_add(1, std::memory_order_relaxed);
  TrackShard& shard = track_[call.value() % kTrackShards];
  std::lock_guard lock(shard.mutex);
  shard.col_of_call[call] = col;
}

void AdaptiveController::untrack(CallId call) {
  TrackShard& shard = track_[call.value() % kTrackShards];
  std::uint32_t col = kNoCol;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.col_of_call.find(call);
    if (it == shard.col_of_call.end()) return;  // never frozen / untracked
    col = it->second;
    shard.col_of_call.erase(it);
  }
  observed_[col].fetch_sub(1, std::memory_order_relaxed);
}

void AdaptiveController::untrack_outcome(const fault::FailoverOutcome& outcome) {
  // Dropped calls get no on_call_end from the simulator; release their
  // observation here so the live count cannot drift upward across faults.
  for (CallId dropped : outcome.dropped) untrack(dropped);
}

TimeSlot AdaptiveController::slot_of(SimTime now) const {
  const double offset = std::max(0.0, now - plan_start_s_);
  const auto slot = static_cast<std::size_t>(offset / slot_s_);
  const std::size_t last = forecast_.slot_count() == 0
                               ? 0
                               : forecast_.slot_count() - 1;
  return static_cast<TimeSlot>(std::min(slot, last));
}

void AdaptiveController::maybe_tick(SimTime now) {
  if (now < next_due_.load(std::memory_order_relaxed)) return;
  // try_lock: if a peer thread is mid-tick, this cadence point is theirs;
  // blocking the replay behind a provisioning solve would serialize the
  // whole pool for no benefit.
  std::unique_lock lock(tick_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (now < next_due_.load(std::memory_order_relaxed)) return;
  tick(now);
  double due = next_due_.load(std::memory_order_relaxed);
  while (due <= now) due += options_.cadence_s;
  next_due_.store(due, std::memory_order_relaxed);
}

void AdaptiveController::tick(SimTime now) {
  obs::ScopedTimer timer(tick_s_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  tick_counter_.inc();

  // Publish the shadow observation, cut a telemetry sample at this sim
  // time, and read the signal back THROUGH the recorder feed — the loop
  // consumes the same time series any offline consumer sees. With metrics
  // compiled out (or no recorder attached) the feed reads 0 and the shadow
  // value stands in.
  double observed = observed_total();
  observed_gauge_.set(observed);
  if (recorder_ != nullptr) {
    recorder_->force_sample(now);
    const double fed = recorder_->last("gauge:sb.loop.observed_calls");
    if (fed > 0.0) observed = fed;
  }

  const TimeSlot slot = slot_of(now);
  double forecast_total = 0.0;
  for (std::size_t col = 0; col < forecast_.config_count(); ++col) {
    forecast_total += forecast_.demand(slot, col);
  }
  const double deviation =
      std::abs(observed - forecast_total) / std::max(forecast_total, 1.0);
  if (deviation <= options_.deviation_band) return;

  triggers_.fetch_add(1, std::memory_order_relaxed);
  trigger_counter_.inc();
  if (options_.chaos_skip_replan) return;  // planted bug: trigger, no replan

  DemandMatrix corrected = corrected_demand(slot);
  try {
    sb_->provision(corrected, have_warm_ ? &warm_basis_ : nullptr,
                   &warm_basis_);
    have_warm_ = true;
    sb_->install_plan(corrected, plan_start_s_, now);
  } catch (const SolveError&) {
    // A corrected demand the scenario LPs cannot serve (capacity ceiling):
    // keep the old plan and forecast, try again next out-of-band tick.
    solve_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  replans_.fetch_add(1, std::memory_order_relaxed);
  replan_counter_.inc();
  // Future deviation is measured against what we just installed, so a
  // correctly-sized correction silences the loop (no thrash).
  forecast_ = std::move(corrected);
}

DemandMatrix AdaptiveController::corrected_demand(TimeSlot slot) const {
  DemandMatrix out = forecast_;
  for (std::size_t col = 0; col < forecast_.config_count(); ++col) {
    const double obs =
        static_cast<double>(observed_[col].load(std::memory_order_relaxed));
    const double fc = forecast_.demand(slot, col);
    double ratio;
    if (fc > 1e-9) {
      ratio = obs / fc;
    } else {
      ratio = obs > 0.0 ? options_.ratio_cap : 1.0;
    }
    ratio = std::clamp(ratio, options_.ratio_floor, options_.ratio_cap);
    for (TimeSlot t = slot; t < forecast_.slot_count(); ++t) {
      const double scaled = forecast_.demand(t, col) * ratio;
      // The current slot floors at what is live right now: capacity must
      // cover the calls already admitted, whatever the forecast said.
      out.set_demand(t, col, t == slot ? std::max(scaled, obs) : scaled);
    }
  }
  return out;
}

}  // namespace sb::loop
