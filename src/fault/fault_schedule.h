// Deterministic fault-injection schedules: timed DC-down/up and
// link-down/up events the Simulator weaves into its event stream (both
// run() and run_concurrent()). Schedules are plain sorted data — building
// one never touches the runtime — so the same schedule replays identically
// across driver modes and thread counts. Helpers cover the §5.3 experiment
// shapes ("fail each DC at its regional peak") and seedable random outage
// storms for stress tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace sb::fault {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kDcDown,
    kDcUp,
    kLinkDown,
    kLinkUp,
    kServerDown,
    kServerUp,
    kWorkerDown,
    kWorkerUp,
  };

  SimTime time = 0.0;
  Kind kind = Kind::kDcDown;
  DcId dc;          ///< valid iff kind is kDcDown/kDcUp
  LinkId link;      ///< valid iff kind is kLinkDown/kLinkUp
  ServerId server;  ///< valid iff kind is kServerDown/kServerUp
  WorkerId worker;  ///< valid iff kind is kWorkerDown/kWorkerUp

  [[nodiscard]] bool is_dc() const {
    return kind == Kind::kDcDown || kind == Kind::kDcUp;
  }
  [[nodiscard]] bool is_server() const {
    return kind == Kind::kServerDown || kind == Kind::kServerUp;
  }
  [[nodiscard]] bool is_worker() const {
    return kind == Kind::kWorkerDown || kind == Kind::kWorkerUp;
  }
  [[nodiscard]] bool is_down() const {
    return kind == Kind::kDcDown || kind == Kind::kLinkDown ||
           kind == Kind::kServerDown || kind == Kind::kWorkerDown;
  }
};

/// An ordered list of fault events. Builder methods may be called in any
/// order; events() returns them sorted by (time, insertion order), which is
/// the order every simulator driver applies them in.
class FaultSchedule {
 public:
  FaultSchedule& dc_down(DcId dc, SimTime at);
  FaultSchedule& dc_up(DcId dc, SimTime at);
  FaultSchedule& link_down(LinkId link, SimTime at);
  FaultSchedule& link_up(LinkId link, SimTime at);
  FaultSchedule& server_down(ServerId server, SimTime at);
  FaultSchedule& server_up(ServerId server, SimTime at);
  FaultSchedule& worker_down(WorkerId worker, SimTime at);
  FaultSchedule& worker_up(WorkerId worker, SimTime at);
  /// Outage pair: down at `at`, back up `duration_s` later.
  FaultSchedule& fail_dc(DcId dc, SimTime at, double duration_s);
  FaultSchedule& fail_link(LinkId link, SimTime at, double duration_s);
  FaultSchedule& fail_server(ServerId server, SimTime at, double duration_s);
  /// Controller-worker crash/restart pair (sb_cluster HA). A worker kill
  /// never drops calls — the media plane keeps serving — so these events
  /// only exercise the control-plane re-adoption path.
  FaultSchedule& fail_worker(WorkerId worker, SimTime at, double duration_s);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events sorted by (time, insertion order). Stable, so two events at the
  /// same instant apply in the order they were added.
  [[nodiscard]] std::vector<FaultEvent> events() const;

  /// Index of the slot where `dc_cores_by_slot` peaks (ties: earliest).
  [[nodiscard]] static std::size_t peak_slot(
      const std::vector<double>& dc_cores_by_slot);

  /// The §5.3 experiment shape: one down/up outage per DC, each at the
  /// moment its own planned core usage peaks. `dc_cores[x][t]` is DC x's
  /// usage in slot t (UsageProfile::dc_cores layout); the outage for DC x
  /// starts at `t0 + peak_slot * slot_s` and lasts `duration_s`.
  [[nodiscard]] static FaultSchedule each_dc_at_peak(
      const std::vector<std::vector<double>>& dc_cores, double slot_s,
      double t0, double duration_s);

  /// Seedable random storm: `outages` outage pairs over [t0, t1), each
  /// picking a uniform DC (or, with probability `link_fraction` when
  /// link_count > 0, a uniform link; or, with probability `server_fraction`
  /// when server_count > 0, a uniform media server). Outage lengths are
  /// exponential with mean `mean_outage_s`. Deterministic for a given Rng
  /// state; with server_count == 0 the random stream is identical to the
  /// pre-fleet signature, so existing callers replay unchanged.
  [[nodiscard]] static FaultSchedule random(Rng& rng, std::size_t dc_count,
                                            std::size_t link_count,
                                            std::size_t outages, double t0,
                                            double t1, double mean_outage_s,
                                            double link_fraction = 0.25,
                                            std::size_t server_count = 0,
                                            double server_fraction = 0.25);

  /// Rebuilds a schedule from an explicit event list (repro replay and the
  /// sb_check shrinker). Events keep their relative order at equal times —
  /// round-tripping through events() is the identity. Ids must be valid for
  /// their kind.
  [[nodiscard]] static FaultSchedule from_events(
      std::vector<FaultEvent> events);

 private:
  std::vector<FaultEvent> events_;  ///< insertion order
};

}  // namespace sb::fault
