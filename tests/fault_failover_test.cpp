// Integration tests for runtime failover (DESIGN.md "Failure model &
// runtime failover"): selector drains (slot re-debit, backup hosting, the
// drop-only-when-exhausted policy), controller fail/recover cycles with
// exact quota conservation, the §5.3 provisioning property that survivors
// can always absorb a failed DC's planned load, and fault-schedule replay
// through both simulator drivers (label: fault).
#include <gtest/gtest.h>

#include <algorithm>

#include "calls/demand.h"
#include "core/controller.h"
#include "core/provisioner.h"
#include "core/realtime.h"
#include "fault/fault_schedule.h"
#include "sim/simulator.h"
#include "trace/scenario.h"

namespace sb {
namespace {

/// Two locations, two DCs, cheap world where everything is latency-feasible.
struct TwoDcWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  TwoDcWorld() : world(make_world()), topology(world), latency(2, 2) {
    topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world() {
    World w;
    w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
    w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
    w.add_datacenter({"DC-A", LocationId(0), 1.0});
    w.add_datacenter({"DC-B", LocationId(1), 1.0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() : plan_(1, 1, 2, 1800.0) {
    config_ = CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
    config_id_ = world_.registry.intern(config_);
    plan_.config_columns = {config_id_};
  }

  TwoDcWorld world_;
  AllocationPlan plan_;
  CallConfig config_ = CallConfig::make({{LocationId(0), 1}},
                                        MediaType::kAudio);
  ConfigId config_id_;
};

TEST_F(FailoverTest, DrainMovesSlotHoldersToSurvivingQuota) {
  plan_.set_quota(0, 0, DcId(0), 4);
  plan_.set_quota(0, 0, DcId(1), 4);
  fault::HealthTable health(2, 1);
  RealtimeSelector selector(world_.ctx(), &plan_, {}, 0.0, &health);
  for (std::uint32_t c = 1; c <= 3; ++c) {
    selector.on_call_start(CallId(c), LocationId(0), 0.0);
    selector.on_config_frozen(CallId(c), config_, 300.0);
  }
  EXPECT_EQ(selector.held_slots(), 3u);

  health.set_dc(DcId(0), false);
  const fault::FailoverOutcome outcome = selector.drain_dc(DcId(0), 400.0, {});
  EXPECT_EQ(outcome.moved.size(), 3u);
  EXPECT_TRUE(outcome.dropped.empty());
  for (const fault::FailoverMove& m : outcome.moved) {
    EXPECT_EQ(m.from, DcId(0));
    EXPECT_EQ(m.to, DcId(1));
  }
  // Slots were credited at DC 0's cell and re-debited at DC 1's: still
  // exactly three held, and the load followed the calls.
  EXPECT_EQ(selector.held_slots(), 3u);
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(0)), 0.0);
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(1)), 3 * 2 * 1.0);
  EXPECT_EQ(selector.stats().failover_moves, 3u);

  for (std::uint32_t c = 1; c <= 3; ++c) {
    selector.on_call_end(CallId(c), 500.0);
  }
  EXPECT_EQ(selector.held_slots(), 0u);
  const RealtimeSelector::Stats stats = selector.stats();
  EXPECT_EQ(stats.slot_debits + stats.failover_moves,
            stats.slot_credits + stats.failover_moves);
  EXPECT_EQ(stats.slot_debits, stats.slot_credits);
}

TEST_F(FailoverTest, DrainFallsBackToBackupWhenQuotaExhausted) {
  // DC 1 has quota for one call only; the other two slot-holders keep their
  // DC-0 accounting cells and are hosted on DC 1's backup budget.
  plan_.set_quota(0, 0, DcId(0), 4);
  plan_.set_quota(0, 0, DcId(1), 1);
  fault::HealthTable health(2, 1);
  RealtimeSelector selector(world_.ctx(), &plan_, {}, 0.0, &health);
  for (std::uint32_t c = 1; c <= 3; ++c) {
    selector.on_call_start(CallId(c), LocationId(0), 0.0);
    selector.on_config_frozen(CallId(c), config_, 300.0);
  }

  health.set_dc(DcId(0), false);
  const std::vector<double> budget = {0.0, 100.0};  // plenty at DC 1
  const fault::FailoverOutcome outcome =
      selector.drain_dc(DcId(0), 400.0, budget);
  EXPECT_EQ(outcome.moved.size(), 3u);
  EXPECT_TRUE(outcome.dropped.empty());
  EXPECT_EQ(selector.held_slots(), 3u);  // 1 at DC 1's cell + 2 kept at DC 0's
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(1)), 6.0);

  // Ending a backup-hosted call credits the cell it still holds (DC 0's),
  // not its hosting DC — the conservation check would fail otherwise.
  for (std::uint32_t c = 1; c <= 3; ++c) {
    selector.on_call_end(CallId(c), 500.0);
  }
  EXPECT_EQ(selector.held_slots(), 0u);
  EXPECT_EQ(selector.stats().slot_debits, selector.stats().slot_credits);
}

TEST_F(FailoverTest, DropsOnlyWhenBackupTrulyExhausted) {
  plan_.set_quota(0, 0, DcId(0), 8);
  plan_.set_quota(0, 0, DcId(1), 0);
  fault::HealthTable health(2, 1);
  RealtimeSelector selector(world_.ctx(), &plan_, {}, 0.0, &health);
  for (std::uint32_t c = 1; c <= 4; ++c) {
    selector.on_call_start(CallId(c), LocationId(0), 0.0);
    selector.on_config_frozen(CallId(c), config_, 300.0);
  }
  // Budget fits exactly two of the 2-core calls at DC 1 (no quota there).
  health.set_dc(DcId(0), false);
  const std::vector<double> budget = {0.0, 4.0};
  const fault::FailoverOutcome outcome =
      selector.drain_dc(DcId(0), 400.0, budget);
  EXPECT_EQ(outcome.moved.size(), 2u);
  EXPECT_EQ(outcome.dropped.size(), 2u);
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(1)), 4.0);
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(0)), 0.0);
  // Dropped calls credited their slots on the way out; the two survivors
  // kept theirs.
  EXPECT_EQ(selector.held_slots(), 2u);
  EXPECT_EQ(selector.active_calls(), 2u);
  const RealtimeSelector::Stats stats = selector.stats();
  EXPECT_EQ(stats.failover_drops, 2u);

  for (const fault::FailoverMove& m : outcome.moved) {
    selector.on_call_end(m.call, 500.0);
  }
  EXPECT_EQ(selector.held_slots(), 0u);
  EXPECT_EQ(selector.stats().slot_debits, selector.stats().slot_credits);
}

TEST_F(FailoverTest, UnfrozenCallsRehomeAndAreNeverCapacityDropped) {
  fault::HealthTable health(2, 1);
  RealtimeSelector selector(world_.ctx(), &plan_, {}, 0.0, &health);
  selector.on_call_start(CallId(1), LocationId(0), 0.0);  // not yet frozen
  health.set_dc(DcId(0), false);
  const std::vector<double> budget = {0.0, 0.0};  // zero budget everywhere
  const fault::FailoverOutcome outcome =
      selector.drain_dc(DcId(0), 100.0, budget);
  ASSERT_EQ(outcome.moved.size(), 1u);
  EXPECT_TRUE(outcome.dropped.empty());
  EXPECT_EQ(outcome.moved[0].to, DcId(1));
  // Its config (and load) is unknown, so no budget check applies.
  selector.on_call_end(CallId(1), 200.0);
  EXPECT_EQ(selector.active_calls(), 0u);
}

TEST_F(FailoverTest, DegradedStartAndFreezeAvoidDownDcs) {
  plan_.set_quota(0, 0, DcId(0), 4);
  plan_.set_quota(0, 0, DcId(1), 4);
  fault::HealthTable health(2, 1);
  RealtimeSelector selector(world_.ctx(), &plan_, {}, 0.0, &health);
  health.set_dc(DcId(0), false);
  // Location 0's closest DC is the down DC-A: the degraded start heuristic
  // must pick DC-B instead, and the freeze must debit there too.
  EXPECT_EQ(selector.on_call_start(CallId(1), LocationId(0), 0.0), DcId(1));
  const FreezeResult r = selector.on_config_frozen(CallId(1), config_, 300.0);
  EXPECT_EQ(r.dc, DcId(1));
  EXPECT_FALSE(r.migrated);
  health.set_dc(DcId(0), true);
  // Healthy again: back to the plain closest-DC heuristic, bit-identical to
  // a selector with no health table.
  EXPECT_EQ(selector.on_call_start(CallId(2), LocationId(0), 400.0), DcId(0));
}

TEST_F(FailoverTest, ControllerFailRecoverCycleConservesQuota) {
  TwoDcWorld& w = world_;
  ControllerOptions options;
  Switchboard controller(w.ctx(), options);

  // No plan yet: the controller still serves and fails over (no budgets, so
  // nothing can drop).
  for (std::uint32_t c = 1; c <= 6; ++c) {
    controller.call_started(CallId(c), LocationId(0), 0.0);
    controller.config_frozen(CallId(c), config_, 300.0);
  }
  EXPECT_TRUE(controller.health().all_up());
  const fault::FailoverOutcome outcome =
      controller.dc_failed(DcId(0), 400.0);
  EXPECT_FALSE(controller.health().dc_up(DcId(0)));
  EXPECT_EQ(outcome.moved.size(), 6u);
  EXPECT_TRUE(outcome.dropped.empty());

  // While degraded, new calls land on the survivor.
  EXPECT_EQ(controller.call_started(CallId(7), LocationId(0), 450.0),
            DcId(1));
  controller.dc_recovered(DcId(0), 500.0);
  EXPECT_TRUE(controller.health().all_up());
  EXPECT_EQ(controller.call_started(CallId(8), LocationId(0), 550.0),
            DcId(0));

  for (std::uint32_t c = 1; c <= 8; ++c) {
    controller.call_ended(CallId(c), 600.0);
  }
  const RealtimeSelector::Stats stats = controller.realtime_stats();
  EXPECT_EQ(stats.failover_moves, 6u);
  EXPECT_EQ(stats.failover_drops, 0u);
  EXPECT_EQ(stats.slot_debits, stats.slot_credits);
}

TEST(FailoverPropertyTest, SurvivorsCoverEverySingleDcFailureAtPeak) {
  // The §5.3 guarantee the runtime failover leans on: for every single-DC
  // failure scenario, the surviving DCs' provisioned serving+backup must
  // cover the ENTIRE planned demand peak — the failed DC's share included.
  Scenario scenario = make_apac_scenario({.config_count = 60});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  DemandMatrix full = scenario.trace->expected_demand(
      7200.0, kSecondsPerDay, 2 * kSecondsPerDay);
  std::vector<ConfigId> top;
  for (std::size_t i = 0; i < std::min<std::size_t>(15, full.config_count());
       ++i) {
    top.push_back(full.config_at(i));
  }
  DemandMatrix demand = make_demand_matrix(top, full.slot_count());
  for (TimeSlot t = 0; t < full.slot_count(); ++t) {
    for (std::size_t c = 0; c < top.size(); ++c) {
      demand.set_demand(t, c, full.demand(t, c));
    }
  }

  ProvisionOptions options;
  options.include_link_failures = false;
  SwitchboardProvisioner provisioner(ctx, options);
  const ProvisionResult result = provisioner.provision(demand);
  const UsageProfile usage =
      compute_usage(result.base_placement, demand, ctx);

  const std::vector<FailureScenario> scenarios = enumerate_failures(
      scenario.world(), scenario.topology(), /*include_link_failures=*/false);
  std::size_t dc_scenarios = 0;
  for (const FailureScenario& s : scenarios) {
    if (s.type != FailureScenario::Type::kDc) continue;
    ++dc_scenarios;
    double survivor_capacity = 0.0;
    for (DcId y : scenario.world().dc_ids()) {
      if (y == s.dc) continue;
      survivor_capacity += result.capacity.dc_total_cores(y);
    }
    // Total demand peak with the failed DC's planned load folded in: all of
    // it must fit on the survivors.
    double total_peak = 0.0;
    const std::size_t slots = usage.dc_cores.empty()
                                  ? 0
                                  : usage.dc_cores.front().size();
    for (std::size_t t = 0; t < slots; ++t) {
      double at_t = 0.0;
      for (std::size_t x = 0; x < usage.dc_cores.size(); ++x) {
        at_t += usage.dc_cores[x][t];
      }
      total_peak = std::max(total_peak, at_t);
    }
    EXPECT_GE(survivor_capacity + 1e-5, total_peak) << s.name;
    // The scenario is non-trivial: a DC the plan actually provisions carried
    // real planned load. (A DC the optimizer left empty — zero cores — is
    // trivially coverable; engines differ only in whether its usage row
    // holds an exact zero or 1e-15 numerical dust, so don't assert on it.)
    if (result.capacity.dc_total_cores(s.dc) > 1e-6) {
      const auto& failed_series = usage.dc_cores[s.dc.value()];
      EXPECT_GT(*std::max_element(failed_series.begin(), failed_series.end()),
                1e-9)
          << s.name;
    }
  }
  EXPECT_EQ(dc_scenarios, scenario.world().dc_count());
}

TEST(FaultSimulationTest, ScheduledOutageDrainsAndRecoversDeterministically) {
  // Replay a window with a mid-window DC outage through the sequential
  // driver twice: identical reports (fault injection is deterministic), a
  // non-zero drain, zero drops (empty budget), and nobody left on the dead
  // DC while it is down.
  Scenario scenario = make_apac_scenario({.config_count = 80});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const double start = kSecondsPerDay + 10.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + kSecondsPerHour);
  ASSERT_GT(db.size(), 0u);

  fault::FaultSchedule faults;
  const DcId victim(0);
  faults.fail_dc(victim, start + 0.4 * kSecondsPerHour,
                 0.3 * kSecondsPerHour);

  Simulator sim(ctx);
  SimReport reports[2];
  for (int i = 0; i < 2; ++i) {
    fault::HealthTable health(scenario.world().dc_count(),
                              scenario.topology().link_count());
    RealtimeSelector selector(ctx, nullptr, {}, 0.0, &health);
    SwitchboardAllocator alloc(selector, &health);
    reports[i] = sim.run(db, alloc, 300.0, &faults);
    EXPECT_TRUE(health.all_up());  // outage recovered inside the window
  }
  EXPECT_GT(reports[0].failover_migrations, 0u);
  EXPECT_EQ(reports[0].dropped_calls, 0u);
  EXPECT_EQ(reports[0].failover_migrations, reports[1].failover_migrations);
  EXPECT_EQ(reports[0].mean_acl_ms, reports[1].mean_acl_ms);
  EXPECT_EQ(reports[0].dc_cores_buckets, reports[1].dc_cores_buckets);

  // While the DC is down, its bucketed usage must be exactly zero (the
  // drain cleared it and the degraded heuristic admits nobody new).
  const double down_from = 0.4 * kSecondsPerHour + start;
  const double up_at = down_from + 0.3 * kSecondsPerHour;
  const auto& buckets = reports[0].dc_cores_buckets[victim.value()];
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double bucket_end = (b + 1) * reports[0].bucket_s;
    if (bucket_end > down_from && bucket_end < up_at) {
      // Accumulated add/sub of doubles leaves ~1e-17 residue, not exact 0.
      EXPECT_NEAR(buckets[b], 0.0, 1e-9) << "bucket " << b;
    }
  }
}

TEST(FaultSimulationTest, ConcurrentDriverMatchesSequentialUnderFaults) {
  // The fault barrier must make the concurrent drain equivalent to the
  // sequential one: with the slotless (no-plan) selector every decision is
  // order-independent, so moved/dropped counts and the time-aligned bucket
  // series must match exactly across drivers and thread counts.
  Scenario scenario = make_apac_scenario({.config_count = 80});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const double start = kSecondsPerDay + 10.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + kSecondsPerHour);

  fault::FaultSchedule faults;
  faults.fail_dc(DcId(0), start + 0.3 * kSecondsPerHour,
                 0.2 * kSecondsPerHour);
  faults.fail_dc(DcId(1), start + 0.6 * kSecondsPerHour,
                 0.2 * kSecondsPerHour);

  Simulator sim(ctx);
  fault::HealthTable seq_health(scenario.world().dc_count(),
                                scenario.topology().link_count());
  RealtimeSelector seq_selector(ctx, nullptr, {}, 0.0, &seq_health);
  SwitchboardAllocator seq_alloc(seq_selector, &seq_health);
  const SimReport seq = sim.run(db, seq_alloc, 300.0, &faults);

  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    fault::HealthTable health(scenario.world().dc_count(),
                              scenario.topology().link_count());
    RealtimeSelector selector(ctx, nullptr, {}, 0.0, &health);
    SwitchboardAllocator alloc(selector, &health);
    const SimReport conc =
        sim.run_concurrent(db, alloc, 300.0, threads, &faults);
    EXPECT_EQ(conc.calls, seq.calls) << threads;
    EXPECT_EQ(conc.failover_migrations, seq.failover_migrations) << threads;
    EXPECT_EQ(conc.dropped_calls, seq.dropped_calls) << threads;
    ASSERT_EQ(conc.dc_cores_buckets.size(), seq.dc_cores_buckets.size());
    for (std::size_t x = 0; x < seq.dc_cores_buckets.size(); ++x) {
      const auto& s = seq.dc_cores_buckets[x];
      const auto& c = conc.dc_cores_buckets[x];
      for (std::size_t b = 0; b < std::max(s.size(), c.size()); ++b) {
        EXPECT_NEAR(b < c.size() ? c[b] : 0.0, b < s.size() ? s[b] : 0.0,
                    1e-6)
            << "dc " << x << " bucket " << b << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace sb
