# Empty compiler generated dependencies file for core_allocation_test.
# This may be replaced when dependencies are built.
