#include "check/oracles.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "calls/demand.h"
#include "cluster/allocator.h"
#include "cluster/controller.h"
#include "common/error.h"
#include "core/controller.h"
#include "core/failure.h"
#include "core/provisioner.h"
#include "fault/failover.h"
#include "loop/adaptive.h"
#include "lp/solver.h"
#include "pack/packer.h"
#include "sim/allocator.h"

namespace sb::check {

namespace {

/// Tolerance for comparing independently-summed floating-point series (the
/// tracker and the recount accumulate the same deltas in different orders).
constexpr double kSumTol = 1e-6;
/// Tolerance for LP-derived quantities (objectives, placements).
constexpr double kLpTol = 1e-5;

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

void fail(std::vector<OracleFailure>& out, std::string oracle,
          std::string detail) {
  out.push_back({std::move(oracle), std::move(detail)});
}

/// Demand horizon: window start through the last call's end, rounded up to
/// whole provisioning slots so the allocation plan covers every freeze the
/// simulation will issue (the plan clamps beyond-horizon times anyway; the
/// rounding just keeps the LP honest about tail demand).
DemandMatrix build_demand(const Materialized& m, const FuzzCase& c) {
  double end = c.window_end_s;
  for (const CallRecord& rec : m.db.records()) {
    end = std::max(end, rec.start_s + rec.duration_s);
  }
  const double slot_s = c.options.slot_s;
  const double span = std::max(end - c.window_start_s, slot_s);
  const auto slots = static_cast<std::size_t>(std::ceil(span / slot_s - 1e-9));
  const double horizon = c.window_start_s + static_cast<double>(slots) * slot_s;
  return DemandMatrix::from_records(m.db, m.registry.ids(), slot_s,
                                    c.window_start_s, horizon);
}

/// The under-forecast a closed-loop case plans from: every cell of the true
/// demand scaled by one factor. The simulator replays the truth, so the
/// observation leaves the loop's deviation band and the tick must correct.
DemandMatrix scaled_demand(const DemandMatrix& d, double scale) {
  DemandMatrix out = d;
  for (TimeSlot t = 0; t < d.slot_count(); ++t) {
    for (std::size_t col = 0; col < d.config_count(); ++col) {
      out.set_demand(t, col, d.demand(t, col) * scale);
    }
  }
  return out;
}

ControllerOptions controller_options(const FuzzOptions& o) {
  ControllerOptions copts;
  copts.slot_s = o.slot_s;
  copts.provision.with_backup = o.with_backup;
  copts.provision.include_link_failures = o.include_link_failures;
  copts.provision.floor_mode = o.floor_mode == 1
                                   ? ProvisionOptions::FloorMode::kFromBase
                                   : ProvisionOptions::FloorMode::kChained;
  copts.provision.scenario_threads = o.scenario_threads;
  copts.provision.lp_options.method = static_cast<lp::Method>(o.lp_method);
  copts.allocation.lp_options.method = static_cast<lp::Method>(o.lp_method);
  copts.realtime.freeze_delay_s = o.freeze_delay_s;
  copts.realtime.shard_count = o.shard_count;
  copts.realtime.chaos_skip_drain_credit = o.chaos_skip_drain_credit;
  copts.realtime.chaos_skip_server_credit = o.chaos_skip_server_credit;
  copts.worker_rows = o.workers;
  return copts;
}

RealtimeOptions realtime_options(const FuzzOptions& o) {
  RealtimeOptions ropts;
  ropts.freeze_delay_s = o.freeze_delay_s;
  ropts.shard_count = o.shard_count;
  ropts.chaos_skip_drain_credit = o.chaos_skip_drain_credit;
  ropts.chaos_skip_server_credit = o.chaos_skip_server_credit;
  return ropts;
}

/// One executor instance: either the full controller path (provision ->
/// plan -> ControllerAllocator) or the plan-less selector path. Every run
/// (reference, determinism re-run, concurrent differential) constructs a
/// fresh Exec so no state leaks between runs.
class Exec {
 public:
  /// `demand` must be non-null iff the case uses a plan. Throws SolveError
  /// when provisioning is infeasible (the caller maps that to a skip).
  Exec(const Materialized& m, const FuzzCase& c, const DemandMatrix* demand) {
    if (c.options.use_plan) {
      require(demand != nullptr, "Exec: plan path needs a demand matrix");
      sb_ = std::make_unique<Switchboard>(m.ctx(),
                                          controller_options(c.options));
      sb_->provision(*demand);
      sb_->build_allocation_plan(*demand, c.window_start_s);
      if (c.options.workers > 0) {
        // Cluster mode: the same Switchboard becomes the media plane under
        // N controller workers. With workers == 1 and no kills this path is
        // bit-identical to ControllerAllocator (asserted by cluster_test).
        cluster::ClusterOptions clopts;
        clopts.workers = c.options.workers;
        clopts.lease_ttl_s = c.options.lease_ttl_s;
        clopts.chaos_skip_wal_freeze = c.options.chaos_skip_wal_freeze;
        cluster_ = std::make_unique<cluster::ClusterController>(*sb_, clopts);
        cluster_alloc_ = std::make_unique<cluster::ClusterAllocator>(*cluster_);
      } else if (c.options.use_loop) {
        // Closed-loop mode: the AdaptiveController wraps the controller,
        // observes the replayed demand, and installs corrected plans
        // mid-run. `demand` here is the (possibly under-scaled) forecast.
        loop::LoopOptions lopts;
        lopts.cadence_s = c.options.loop_cadence_s;
        lopts.deviation_band = c.options.loop_band;
        lopts.chaos_skip_replan = c.options.chaos_skip_replan;
        loop_alloc_ = std::make_unique<loop::AdaptiveController>(
            *sb_, m.ctx(), *demand, c.window_start_s, c.options.slot_s,
            lopts);
      } else {
        controller_alloc_ = std::make_unique<ControllerAllocator>(*sb_);
      }
    } else {
      health_ = std::make_unique<fault::HealthTable>(m.world.dc_count(),
                                                     m.topology.link_count(),
                                                     m.world.server_count());
      selector_ = std::make_unique<RealtimeSelector>(
          m.ctx(), nullptr, realtime_options(c.options), 0.0, health_.get());
      selector_alloc_ =
          std::make_unique<SwitchboardAllocator>(*selector_, health_.get());
    }
  }

  [[nodiscard]] CallAllocator& allocator() {
    if (cluster_alloc_) return *cluster_alloc_;
    if (loop_alloc_) return *loop_alloc_;
    return sb_ ? static_cast<CallAllocator&>(*controller_alloc_)
               : static_cast<CallAllocator&>(*selector_alloc_);
  }
  [[nodiscard]] RealtimeSelector::Stats stats() const {
    return sb_ ? sb_->realtime_stats() : selector_->stats();
  }
  [[nodiscard]] std::uint64_t held_slots() const {
    return sb_ ? sb_->held_slots() : selector_->held_slots();
  }
  [[nodiscard]] std::size_t active_calls() const {
    return sb_ ? sb_->active_calls() : selector_->active_calls();
  }
  [[nodiscard]] Switchboard* controller() { return sb_.get(); }
  /// Cluster facade (null outside cluster mode).
  [[nodiscard]] cluster::ClusterController* cluster() { return cluster_.get(); }
  /// Closed-loop controller (null outside loop mode).
  [[nodiscard]] loop::AdaptiveController* loop() { return loop_alloc_.get(); }
  /// Live packer (null without a fleet). Only meaningful at quiescence.
  [[nodiscard]] const pack::ServerPacker* packer() const {
    return sb_ ? sb_->packer() : selector_->packer();
  }

 private:
  std::unique_ptr<Switchboard> sb_;
  std::unique_ptr<ControllerAllocator> controller_alloc_;
  std::unique_ptr<cluster::ClusterController> cluster_;
  std::unique_ptr<cluster::ClusterAllocator> cluster_alloc_;
  std::unique_ptr<loop::AdaptiveController> loop_alloc_;
  std::unique_ptr<fault::HealthTable> health_;
  std::unique_ptr<RealtimeSelector> selector_;
  std::unique_ptr<SwitchboardAllocator> selector_alloc_;
};

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Re-checks the provisioning LP's base placement against the provisioned
/// capacities: per-slot DC usage within serving cores, per-slot link usage
/// within link capacity, and every (slot, config) demand fully placed (the
/// Eq 4 completeness rows).
void lp_feasibility_oracle(const Materialized& m, const DemandMatrix& demand,
                           const ProvisionResult& pr,
                           std::vector<OracleFailure>& out) {
  const UsageProfile usage = compute_usage(pr.base_placement, demand, m.ctx());
  for (std::size_t x = 0; x < usage.dc_cores.size(); ++x) {
    const double cap = pr.capacity.dc_serving_cores[x];
    for (std::size_t t = 0; t < usage.dc_cores[x].size(); ++t) {
      const double used = usage.dc_cores[x][t];
      if (used > cap + kLpTol * std::max(1.0, cap)) {
        std::ostringstream os;
        os << "dc " << x << " slot " << t << " uses " << used
           << " cores > serving " << cap;
        fail(out, "lp-feasibility", os.str());
        return;
      }
    }
  }
  for (std::size_t l = 0; l < usage.link_gbps.size(); ++l) {
    const double cap = pr.capacity.link_gbps[l];
    for (std::size_t t = 0; t < usage.link_gbps[l].size(); ++t) {
      const double used = usage.link_gbps[l][t];
      if (used > cap + kLpTol * std::max(1.0, cap)) {
        std::ostringstream os;
        os << "link " << l << " slot " << t << " uses " << used
           << " gbps > capacity " << cap;
        fail(out, "lp-feasibility", os.str());
        return;
      }
    }
  }
  for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
    for (std::size_t cc = 0; cc < demand.config_count(); ++cc) {
      const double placed = pr.base_placement.total_calls(t, cc);
      const double want = demand.demand(t, cc);
      if (!close(placed, want, kLpTol)) {
        std::ostringstream os;
        os << "slot " << t << " config col " << cc << " places " << placed
           << " calls, demand " << want;
        fail(out, "lp-feasibility", os.str());
        return;
      }
    }
  }
}

/// Per-record lifecycle from the hosting log: exactly one kStart first,
/// only kMove in the middle, exactly one terminal kDrop/kEnd, nothing
/// after; every record present; drops only when the case has a DC outage.
void exactly_once_oracle(const Materialized& m, const FuzzCase& c,
                         const HostingLog& log,
                         std::vector<OracleFailure>& out) {
  const std::size_t n = m.db.size();
  // 0 = unseen, 1 = started, 2 = terminated.
  std::vector<std::uint8_t> state(n, 0);
  bool drop_fault = false;
  for (const fault::FaultEvent& e : c.faults) {
    drop_fault |= e.kind == fault::FaultEvent::Kind::kDcDown ||
                  e.kind == fault::FaultEvent::Kind::kServerDown;
  }
  for (const HostingEvent& e : log.events) {
    if (e.record >= n) {
      fail(out, "exactly-once",
           "hosting event references record " + std::to_string(e.record) +
               " of " + std::to_string(n));
      return;
    }
    std::uint8_t& s = state[e.record];
    switch (e.kind) {
      case HostingEvent::Kind::kStart:
        if (s != 0) {
          fail(out, "exactly-once",
               "record " + std::to_string(e.record) + " started twice");
          return;
        }
        s = 1;
        break;
      case HostingEvent::Kind::kMove:
      case HostingEvent::Kind::kPack:
        if (s != 1) {
          fail(out, "exactly-once",
               "record " + std::to_string(e.record) +
                   " moved while not live (state " + std::to_string(s) + ")");
          return;
        }
        break;
      case HostingEvent::Kind::kDrop:
        if (!drop_fault) {
          fail(out, "exactly-once",
               "record " + std::to_string(e.record) +
                   " dropped with no DC or server outage in the schedule");
          return;
        }
        [[fallthrough]];
      case HostingEvent::Kind::kEnd:
        if (s != 1) {
          fail(out, "exactly-once",
               "record " + std::to_string(e.record) +
                   " terminated while not live (state " + std::to_string(s) +
                   ")");
          return;
        }
        s = 2;
        break;
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (state[r] != 2) {
      fail(out, "exactly-once",
           "record " + std::to_string(r) + " never " +
               (state[r] == 0 ? "started" : "terminated"));
      return;
    }
  }
}

/// True when `dc` is down at `t` for CALL events: fault events apply before
/// call events at the same instant, so an outage covers [down_t, up_t).
bool dc_down_at(const std::vector<fault::FaultEvent>& faults, DcId dc,
                SimTime t) {
  bool down = false;
  for (const fault::FaultEvent& e : faults) {
    if (e.time > t) break;
    if (!e.is_dc() || e.dc != dc) continue;
    down = e.kind == fault::FaultEvent::Kind::kDcDown;
  }
  return down;
}

std::size_t dcs_down_at(const std::vector<fault::FaultEvent>& faults,
                        std::size_t dc_count, SimTime t) {
  std::size_t down = 0;
  for (std::uint32_t x = 0; x < dc_count; ++x) {
    down += dc_down_at(faults, DcId(x), t) ? 1 : 0;
  }
  return down;
}

/// No hosting decision may land on a failed DC while at least one DC is up
/// (with EVERY DC down the selector fails open by design — a degraded
/// placement beats refusing service).
void down_dc_oracle(const Materialized& m, const FuzzCase& c,
                    const HostingLog& log, std::vector<OracleFailure>& out) {
  if (c.faults.empty()) return;
  const std::size_t dc_count = m.world.dc_count();
  for (const HostingEvent& e : log.events) {
    if (e.kind != HostingEvent::Kind::kStart &&
        e.kind != HostingEvent::Kind::kMove) {
      continue;
    }
    if (!dc_down_at(c.faults, e.dc, e.time)) continue;
    if (dcs_down_at(c.faults, dc_count, e.time) >= dc_count) continue;
    std::ostringstream os;
    os << "record " << e.record << " "
       << (e.kind == HostingEvent::Kind::kStart ? "started" : "moved")
       << " onto down dc " << e.dc.value() << " at t=" << e.time;
    fail(out, "down-dc", os.str());
    return;
  }
}

/// Quiescence conservation: the selector tracks no calls and holds no plan
/// slots, slot debits balance credits, and the selector's own counters
/// agree with the simulator's report. This is the oracle the
/// chaos_skip_drain_credit knob trips (a leaked debit keeps held_slots
/// non-zero forever).
void conservation_oracle(const Exec& exec, const SimReport& rep,
                         std::size_t record_count,
                         std::vector<OracleFailure>& out) {
  const RealtimeSelector::Stats s = exec.stats();
  const auto check = [&](bool ok, const std::string& detail) {
    if (!ok) fail(out, "conservation", detail);
  };
  check(exec.active_calls() == 0,
        "selector still tracks " + std::to_string(exec.active_calls()) +
            " calls at quiescence");
  check(exec.held_slots() == 0,
        "selector still holds " + std::to_string(exec.held_slots()) +
            " plan slots at quiescence");
  check(s.slot_debits == s.slot_credits,
        "slot debits " + std::to_string(s.slot_debits) + " != credits " +
            std::to_string(s.slot_credits));
  check(s.calls_started == rep.calls,
        "selector started " + std::to_string(s.calls_started) +
            " calls, simulator replayed " + std::to_string(rep.calls));
  check(rep.calls == record_count,
        "simulator replayed " + std::to_string(rep.calls) + " of " +
            std::to_string(record_count) + " records");
  check(s.calls_frozen == rep.frozen,
        "selector froze " + std::to_string(s.calls_frozen) +
            ", simulator reports " + std::to_string(rep.frozen));
  check(s.failover_drops == rep.dropped_calls,
        "selector dropped " + std::to_string(s.failover_drops) +
            ", simulator reports " + std::to_string(rep.dropped_calls));
  check(s.failover_moves == rep.failover_migrations,
        "selector re-homed " + std::to_string(s.failover_moves) +
            ", simulator reports " + std::to_string(rep.failover_migrations));
}

/// Cluster conservation (cluster cases only): at quiescence the WAL must be
/// empty (every started call's record was erased by exactly one terminal
/// event, across any number of crash/replay cycles), no shard may still be
/// marked dirty, the epoch must have stayed monotone from its birth value,
/// and every scheduled kill/restart must have been observed. A duplicated
/// or lost call-lifecycle transition strands a WAL record forever.
void cluster_conservation_oracle(Exec& exec, const FuzzCase& c,
                                 std::vector<OracleFailure>& out) {
  cluster::ClusterController* cl = exec.cluster();
  if (cl == nullptr) return;
  const auto check = [&](bool ok, const std::string& detail) {
    if (!ok) fail(out, "cluster-conservation", detail);
  };
  check(cl->wal_size() == 0,
        "WAL still holds " + std::to_string(cl->wal_size()) +
            " call records at quiescence");
  check(!cl->shard_map().any_dirty(), "dirty shards at quiescence");
  check(cl->epoch() >= 1, "cluster epoch regressed below its birth value");
  const cluster::ClusterStats cs = cl->stats();
  // Effective transitions only: overlapping outage pairs for one worker
  // deliver redundant edges the controller ignores. c.faults is in replay
  // order (time-sorted, stable), so this recount is exact.
  std::vector<std::uint8_t> alive(c.options.workers, 1);
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
  for (const fault::FaultEvent& e : c.faults) {
    if (!e.is_worker() || e.worker.value() >= alive.size()) continue;
    std::uint8_t& a = alive[e.worker.value()];
    if (e.kind == fault::FaultEvent::Kind::kWorkerDown && a == 1) {
      a = 0;
      ++kills;
    } else if (e.kind == fault::FaultEvent::Kind::kWorkerUp && a == 0) {
      a = 1;
      ++restarts;
    }
  }
  check(cs.worker_kills == kills,
        "observed " + std::to_string(cs.worker_kills) + " worker kills, " +
            "schedule carries " + std::to_string(kills));
  check(cs.worker_restarts == restarts,
        "observed " + std::to_string(cs.worker_restarts) +
            " worker restarts, schedule carries " + std::to_string(restarts));
  check(cs.stale_events_fenced == 0,
        "in-process dispatch fenced " +
            std::to_string(cs.stale_events_fenced) + " events as stale");
}

/// Closed-loop accounting (loop cases only): every out-of-band trigger
/// must be answered — by an executed replan or an explicitly-counted solve
/// failure. This is the oracle the chaos_skip_replan knob provably trips
/// (the planted bug counts the trigger, then silently drops the
/// re-provision, so triggers run ahead of replans + solve_errors forever).
void loop_replan_oracle(Exec& exec, std::vector<OracleFailure>& out) {
  loop::AdaptiveController* lc = exec.loop();
  if (lc == nullptr) return;
  const loop::LoopStats s = lc->stats();
  if (s.triggers != s.replans + s.solve_errors) {
    std::ostringstream os;
    os << "loop counted " << s.triggers << " out-of-band triggers but only "
       << s.replans << " replans + " << s.solve_errors
       << " solve errors (a re-provision was silently dropped)";
    fail(out, "loop-replan", os.str());
  }
}

/// Per-server conservation (fleet cases only): the packer's cumulative
/// atomic admit/release counters must equal an exact integer recount from
/// the hosting log, every server's occupancy must be zero at quiescence,
/// and per-DC occupancy must equal the sum over the DC's servers. This is
/// the oracle the chaos_skip_server_credit knob provably trips (a skipped
/// release leaves released_mc short and occupancy non-zero forever).
void server_conservation_oracle(const Exec& exec, const Materialized& m,
                                const HostingLog& log,
                                std::vector<OracleFailure>& out) {
  const pack::ServerPacker* packer = exec.packer();
  if (packer == nullptr) return;
  const std::vector<pack::ServerStats> stats = packer->stats();
  const std::vector<ServerTotals> want = recount_server_totals(m, log);
  if (stats.size() != want.size()) {
    fail(out, "server-conservation",
         "packer tracks " + std::to_string(stats.size()) +
             " servers, world has " + std::to_string(want.size()));
    return;
  }
  for (std::size_t s = 0; s < stats.size(); ++s) {
    if (stats[s].admitted_mc != want[s].admitted_mc) {
      std::ostringstream os;
      os << "server " << s << " packer admitted " << stats[s].admitted_mc
         << " mc, hosting-log recount " << want[s].admitted_mc;
      fail(out, "server-conservation", os.str());
      return;
    }
    if (stats[s].released_mc != want[s].released_mc) {
      std::ostringstream os;
      os << "server " << s << " packer released " << stats[s].released_mc
         << " mc, hosting-log recount " << want[s].released_mc;
      fail(out, "server-conservation", os.str());
      return;
    }
    if (stats[s].admitted_mc != stats[s].released_mc) {
      std::ostringstream os;
      os << "server " << s << " occupancy "
         << (stats[s].admitted_mc - stats[s].released_mc)
         << " mc at quiescence (admitted " << stats[s].admitted_mc
         << ", released " << stats[s].released_mc << ")";
      fail(out, "server-conservation", os.str());
      return;
    }
  }
  for (std::uint32_t x = 0; x < m.world.dc_count(); ++x) {
    const DcId dc(x);
    std::int64_t fleet_mc = 0;
    for (ServerId sid : packer->fleet(dc)) {
      fleet_mc += pack::to_millicores(packer->server_cores_used(sid));
    }
    const std::int64_t dc_mc = pack::to_millicores(packer->dc_cores_used(dc));
    if (fleet_mc != dc_mc) {
      std::ostringstream os;
      os << "dc " << x << " occupancy " << dc_mc
         << " mc != sum over its servers " << fleet_mc;
      fail(out, "server-conservation", os.str());
      return;
    }
  }
}

/// Compares the report's bucket series against the independent recount.
void recount_oracle(const Materialized& m, const FuzzCase& c,
                    const SimReport& rep, const HostingLog& log,
                    const std::string& oracle_name,
                    std::vector<OracleFailure>& out) {
  std::size_t buckets = 0;
  for (const auto& row : rep.dc_cores_buckets) {
    buckets = std::max(buckets, row.size());
  }
  const auto counted =
      recount_dc_buckets(m, log, c.options.bucket_s, buckets);
  if (counted.size() != rep.dc_cores_buckets.size()) {
    fail(out, oracle_name,
         "recount has " + std::to_string(counted.size()) + " DCs, report " +
             std::to_string(rep.dc_cores_buckets.size()));
    return;
  }
  for (std::size_t x = 0; x < counted.size(); ++x) {
    const auto& want = counted[x];
    const auto& got = rep.dc_cores_buckets[x];
    for (std::size_t b = 0; b < buckets; ++b) {
      const double w = b < want.size() ? want[b] : 0.0;
      const double g = b < got.size() ? got[b] : 0.0;
      if (!close(w, g, kSumTol)) {
        std::ostringstream os;
        os << "dc " << x << " bucket " << b << " recount " << w
           << " != tracked " << g;
        fail(out, oracle_name, os.str());
        return;
      }
    }
  }
}

bool buckets_close(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t x = 0; x < a.size(); ++x) {
    const std::size_t n = std::max(a[x].size(), b[x].size());
    for (std::size_t i = 0; i < n; ++i) {
      const double av = i < a[x].size() ? a[x][i] : 0.0;
      const double bv = i < b[x].size() ? b[x][i] : 0.0;
      if (!close(av, bv, kSumTol)) return false;
    }
  }
  return true;
}

bool logs_equal(const HostingLog& a, const HostingLog& b) {
  if (a.events.size() != b.events.size()) return false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const HostingEvent& x = a.events[i];
    const HostingEvent& y = b.events[i];
    if (x.record != y.record || x.time != y.time || x.kind != y.kind ||
        x.dc != y.dc || x.server != y.server) {
      return false;
    }
  }
  return true;
}

/// Sparse LU/eta simplex vs the dense-inverse revised simplex on the same
/// scenario LPs, plus warm-started vs cold scenario solves. Optimal
/// OBJECTIVES are unique (placements need not be), so that is what is
/// compared. Only run on small shapes — the dense engine is O(rows^2)
/// memory. Scenario infeasibility here is a skip, not a failure.
void lp_differential_oracle(const Materialized& m, const FuzzCase& c,
                            const DemandMatrix& demand,
                            std::vector<OracleFailure>& out) {
  const std::size_t rows_est =
      demand.slot_count() * (m.world.dc_count() + m.topology.link_count() +
                             demand.config_count());
  if (rows_est == 0 || rows_est > 2000) return;

  ProvisionOptions po = controller_options(c.options).provision;
  po.scenario_threads = 1;
  po.lp_options.method = lp::Method::kSparse;
  const SwitchboardProvisioner sparse(m.ctx(), po);
  po.lp_options.method = lp::Method::kRevised;
  const SwitchboardProvisioner revised(m.ctx(), po);

  try {
    ScenarioBasisHint basis;
    const ScenarioOutcome f0_sparse = sparse.solve_scenario(
        demand, FailureScenario::none(), nullptr, nullptr, nullptr, &basis);
    const ScenarioOutcome f0_revised =
        revised.solve_scenario(demand, FailureScenario::none());
    if (!close(f0_sparse.lp_objective, f0_revised.lp_objective, kLpTol)) {
      std::ostringstream os;
      os << "F0 objective sparse " << f0_sparse.lp_objective << " != revised "
         << f0_revised.lp_objective;
      fail(out, "lp-differential", os.str());
      return;
    }
    if (m.world.dc_count() < 2) return;
    const FailureScenario f1 = FailureScenario::dc_failure(DcId(0), m.world);
    const ScenarioOutcome warm = sparse.solve_scenario(
        demand, f1, nullptr, nullptr, &basis, nullptr);
    const ScenarioOutcome cold = sparse.solve_scenario(demand, f1);
    if (!close(warm.lp_objective, cold.lp_objective, kLpTol)) {
      std::ostringstream os;
      os << "dc0-failure objective warm " << warm.lp_objective << " != cold "
         << cold.lp_objective;
      fail(out, "lp-differential", os.str());
    }
  } catch (const SolveError&) {
    // A failure scenario with no feasible placement is a property of the
    // random world, not a solver bug.
  }
}

/// Hammers the controller with concurrent signaling while the main thread
/// rebuilds the plan and flips DC health, then verifies a fresh plan and a
/// clean sequential cycle end balanced. Plan rebuilds orphan in-flight
/// calls BY DESIGN (the selector is rebuilt), so churn threads treat
/// sb::Error as expected; the invariant is that the controller itself stays
/// usable and conserves state once the churn stops.
void rebuild_storm_oracle(Exec& exec, const Materialized& m,
                          const FuzzCase& c, const DemandMatrix& demand,
                          std::vector<OracleFailure>& out) {
  Switchboard* sb = exec.controller();
  if (sb == nullptr || m.db.size() == 0) return;
  const SimTime t0 = c.window_end_s + 3600.0;
  const std::size_t dc_count = m.world.dc_count();
  const CallRecord& sample = m.db.records().front();
  const CallConfig& sample_config = m.registry.get(sample.config);
  const LocationId sample_loc = sample.legs.front().location;

  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  churn.reserve(3);
  for (std::uint32_t w = 0; w < 3; ++w) {
    churn.emplace_back([&, w] {
      std::uint32_t id = (w + 1) << 20;
      while (!stop.load(std::memory_order_relaxed)) {
        const CallId call(id++);
        try {
          sb->call_started(call, sample_loc, t0);
          sb->config_frozen(call, sample_config, t0);
          sb->call_ended(call, t0 + 1.0);
        } catch (const Error&) {
          // A plan swap or drain between this call's events tore it down;
          // expected under churn.
        }
      }
    });
  }
  try {
    for (std::size_t i = 0; i < 8; ++i) {
      sb->build_allocation_plan(demand, c.window_start_s);
      if (dc_count > 1) {
        const DcId dc(static_cast<std::uint32_t>(i % dc_count));
        sb->dc_failed(dc, t0);
        sb->dc_recovered(dc, t0);
      }
    }
  } catch (const Error& e) {
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : churn) t.join();
    fail(out, "rebuild-storm",
         std::string("rebuild/fault churn threw: ") + e.what());
    return;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : churn) t.join();

  // Quiesce: every DC healthy, fresh plan (fresh selector + quota table),
  // then a clean sequential cycle must leave the controller balanced.
  for (std::uint32_t x = 0; x < dc_count; ++x) {
    sb->dc_recovered(DcId(x), t0);
  }
  sb->build_allocation_plan(demand, c.window_start_s);
  const std::size_t cycle = std::min<std::size_t>(m.db.size(), 50);
  for (std::size_t i = 0; i < cycle; ++i) {
    const CallRecord& rec = m.db.records()[i];
    const CallId call(static_cast<std::uint32_t>((2u << 20) + i));
    sb->call_started(call, rec.legs.front().location, t0);
    sb->config_frozen(call, m.registry.get(rec.config), t0);
    sb->call_ended(call, t0 + 1.0);
  }
  const RealtimeSelector::Stats s = sb->realtime_stats();
  if (sb->active_calls() != 0 || sb->held_slots() != 0 ||
      s.slot_debits != s.slot_credits) {
    std::ostringstream os;
    os << "post-storm clean cycle not conserved: active="
       << sb->active_calls() << " held=" << sb->held_slots()
       << " debits=" << s.slot_debits << " credits=" << s.slot_credits;
    fail(out, "rebuild-storm", os.str());
  }
}

}  // namespace

std::vector<std::vector<double>> recount_dc_buckets(
    const Materialized& m, const HostingLog& log, double bucket_s,
    std::size_t bucket_count) {
  require(bucket_s > 0.0, "recount_dc_buckets: bucket_s must be positive");
  const auto& records = m.db.records();
  const std::size_t dc_count = m.world.dc_count();
  // Per-bucket load DELTAS, prefix-summed into samples at the end. An event
  // at time t first shows up in the sample taken at the next bucket end
  // strictly after t, i.e. bucket floor(t / bucket_s) (the tracker samples
  // bucket ends <= t before applying the event at t).
  std::vector<std::vector<double>> series(
      dc_count, std::vector<double>(bucket_count, 0.0));
  const auto add_delta = [&](SimTime t, DcId dc, double cores) {
    if (cores == 0.0 || !dc.valid()) return;
    const auto b = static_cast<std::size_t>(std::floor(t / bucket_s));
    if (b < bucket_count) series[dc.value()][b] += cores;
  };

  std::vector<std::vector<const HostingEvent*>> per_record(records.size());
  for (const HostingEvent& e : log.events) {
    require(e.record < records.size(),
            "recount_dc_buckets: hosting event references unknown record");
    per_record[e.record].push_back(&e);
  }

  // Merged per-record timeline entry. Hosting events sort before trace
  // events at equal times (rank 0 vs 1): the call must exist before a leg
  // can join, and every other same-instant ordering provably yields the
  // same bucket samples (sampling precedes all events at t, and the
  // deltas land in the same bucket either way).
  struct Ev {
    SimTime t;
    int rank;
    int kind;  ///< 0 = hosting event, 1 = leg join, 2 = media change
    const HostingEvent* host;
  };
  for (std::size_t r = 0; r < records.size(); ++r) {
    const CallRecord& rec = records[r];
    const CallConfig& config = m.registry.get(rec.config);
    std::vector<Ev> evs;
    evs.reserve(per_record[r].size() + rec.legs.size() + 1);
    for (const HostingEvent* he : per_record[r]) {
      evs.push_back({he->time, 0, 0, he});
    }
    for (std::size_t leg = 1; leg < rec.legs.size(); ++leg) {
      evs.push_back(
          {rec.start_s + rec.legs[leg].join_offset_s, 1, 1, nullptr});
    }
    const bool upgrade = config.media() != MediaType::kAudio &&
                         rec.media_change_offset_s > 0.0;
    if (upgrade) {
      evs.push_back({rec.start_s + rec.media_change_offset_s, 1, 2, nullptr});
    }
    std::stable_sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
      return a.t < b.t || (a.t == b.t && a.rank < b.rank);
    });

    bool active = false;
    DcId dc;
    MediaType media = MediaType::kAudio;
    double joined = 0.0;
    const auto cores_pp = [&](MediaType mt) {
      return m.loads.cores_per_participant(mt);
    };
    for (const Ev& ev : evs) {
      if (ev.kind == 0) {
        const HostingEvent& he = *ev.host;
        switch (he.kind) {
          case HostingEvent::Kind::kStart:
            active = true;
            dc = he.dc;
            media = rec.media_change_offset_s > 0.0 ? MediaType::kAudio
                                                    : config.media();
            joined = 1.0;
            add_delta(he.time, dc, cores_pp(media));
            break;
          case HostingEvent::Kind::kMove:
            if (!active) break;
            add_delta(he.time, dc, -cores_pp(media) * joined);
            dc = he.dc;
            add_delta(he.time, dc, cores_pp(media) * joined);
            break;
          case HostingEvent::Kind::kDrop:
          case HostingEvent::Kind::kEnd:
            if (!active) break;
            add_delta(he.time, dc, -cores_pp(media) * joined);
            active = false;
            break;
          case HostingEvent::Kind::kPack:
            break;  // intra-DC packing; DC-level load is unchanged
        }
      } else if (ev.kind == 1) {
        if (!active) continue;  // call already dropped/ended
        joined += 1.0;
        add_delta(ev.t, dc, cores_pp(media));
      } else {
        if (!active) continue;
        add_delta(ev.t, dc, (cores_pp(config.media()) - cores_pp(media)) *
                                joined);
        media = config.media();
      }
    }
  }
  for (auto& row : series) {
    for (std::size_t b = 1; b < row.size(); ++b) row[b] += row[b - 1];
  }
  return series;
}

std::vector<ServerTotals> recount_server_totals(const Materialized& m,
                                                const HostingLog& log) {
  std::vector<ServerTotals> totals(m.world.server_count());
  const auto& records = m.db.records();
  // Current packed server per record. Events of one record appear in replay
  // order in the log (different records interleave, but server accounting
  // is per-record independent), so one forward pass suffices.
  std::vector<ServerId> current(records.size());
  for (const HostingEvent& e : log.events) {
    require(e.record < records.size(),
            "recount_server_totals: hosting event references unknown record");
    ServerId& cur = current[e.record];
    if (e.kind == HostingEvent::Kind::kStart) continue;
    if (!cur.valid() && !e.server.valid()) continue;
    const CallRecord& rec = records[e.record];
    const CallConfig& config = m.registry.get(rec.config);
    // The packer's unit: the static frozen footprint, quantized through the
    // same to_millicores the packer uses — comparisons are exact integers.
    const std::int64_t fp = pack::to_millicores(
        config.total_participants() *
        m.loads.cores_per_participant(config.media()));
    switch (e.kind) {
      case HostingEvent::Kind::kPack:
      case HostingEvent::Kind::kMove:
        if (e.server == cur) break;
        if (cur.valid()) totals[cur.value()].released_mc += fp;
        if (e.server.valid()) {
          require(e.server.value() < totals.size(),
                  "recount_server_totals: hosting event references unknown "
                  "server");
          totals[e.server.value()].admitted_mc += fp;
        }
        cur = e.server;
        break;
      case HostingEvent::Kind::kDrop:
      case HostingEvent::Kind::kEnd:
        if (cur.valid()) totals[cur.value()].released_mc += fp;
        cur = ServerId();
        break;
      case HostingEvent::Kind::kStart:
        break;  // handled above
    }
  }
  return totals;
}

std::string CheckResult::summary() const {
  std::ostringstream os;
  if (provision_infeasible) {
    os << "skip (provisioning infeasible)";
    return os.str();
  }
  os << (ok() ? "ok" : "FAIL") << " calls=" << calls << " dropped=" << dropped
     << " moves=" << failover_moves;
  if (over_capacity_core_s > 0.0) {
    os << " over_cap_core_s=" << over_capacity_core_s;
  }
  for (const OracleFailure& f : failures) {
    os << "\n  [" << f.oracle << "] " << f.detail;
  }
  return os.str();
}

CheckResult run_case(const FuzzCase& c, const CheckOptions& opts) {
  CheckResult res;
  // Flight mode: start the black box from a clean ring so the recording is
  // this case's activity only (retained per-thread up to the ring capacity).
  if (opts.capture_flight) obs::SpanRecorder::global().reset();
  try {
    const std::unique_ptr<Materialized> mp = c.materialize();
    const Materialized& m = *mp;
    const Simulator sim(m.ctx());
    const fault::FaultSchedule* faults =
        m.faults.empty() ? nullptr : &m.faults;

    std::optional<DemandMatrix> demand;
    std::optional<DemandMatrix> forecast;
    if (c.options.use_plan) {
      demand.emplace(build_demand(m, c));
      if (c.options.use_loop && c.options.loop_forecast_scale != 1.0) {
        // Loop cases plan from the under-scaled forecast; the simulator
        // replays the true trace, so the loop must correct mid-run.
        forecast.emplace(
            scaled_demand(*demand, c.options.loop_forecast_scale));
      }
      try {
        // Provision once, throw-away: discovers infeasibility before any
        // oracle machinery runs so it can be reported as a skip.
        Exec probe(m, c, forecast ? &*forecast : &*demand);
      } catch (const SolveError&) {
        res.provision_infeasible = true;
        return res;
      }
    }
    const DemandMatrix* dp =
        forecast ? &*forecast : (demand ? &*demand : nullptr);

    // Reference run: sequential, bit-exact, hosting log captured.
    Exec ref(m, c, dp);
    HostingLog log;
    const SimReport rep =
        sim.run(m.db, ref.allocator(), c.options.freeze_delay_s, faults,
                c.options.bucket_s, &log);
    res.calls = rep.calls;
    res.dropped = rep.dropped_calls;
    res.failover_moves = rep.failover_migrations;

    if (c.options.use_plan) {
      const ProvisionResult& pr = *ref.controller()->provision_result();
      if (ref.loop() == nullptr) {
        lp_feasibility_oracle(m, *dp, pr, res.failures);
      } else if (ref.loop()->stats().solve_errors == 0) {
        // After replans the live provision result corresponds to the loop's
        // current forecast (updated only on a fully-successful replan). A
        // solve error leaves the two out of step, so skip the check then.
        lp_feasibility_oracle(m, ref.loop()->current_forecast(), pr,
                              res.failures);
      }
      std::vector<double> cap(m.world.dc_count(), 0.0);
      for (std::uint32_t x = 0; x < cap.size(); ++x) {
        cap[x] = pr.capacity.dc_total_cores(DcId(x));
      }
      res.over_capacity_core_s = fault::over_capacity_core_s(
          rep.dc_cores_buckets, cap, c.options.bucket_s);
    }
    exactly_once_oracle(m, c, log, res.failures);
    conservation_oracle(ref, rep, m.db.size(), res.failures);
    cluster_conservation_oracle(ref, c, res.failures);
    loop_replan_oracle(ref, res.failures);
    recount_oracle(m, c, rep, log, "recount", res.failures);
    server_conservation_oracle(ref, m, log, res.failures);
    down_dc_oracle(m, c, log, res.failures);

    // Determinism: a fresh sequential run must be bit-identical.
    if (opts.run_determinism && res.failures.empty()) {
      Exec re(m, c, dp);
      HostingLog log2;
      const SimReport rep2 =
          sim.run(m.db, re.allocator(), c.options.freeze_delay_s, faults,
                  c.options.bucket_s, &log2);
      if (rep2.calls != rep.calls || rep2.frozen != rep.frozen ||
          rep2.migrations != rep.migrations ||
          rep2.dropped_calls != rep.dropped_calls ||
          rep2.failover_migrations != rep.failover_migrations ||
          rep2.dc_cores_buckets != rep.dc_cores_buckets ||
          !logs_equal(log, log2)) {
        fail(res.failures, "determinism",
             "second sequential run diverged from the first");
      }
    }

    // Sequential vs concurrent differential. With plan quotas the CAS
    // acquisition order legitimately changes WHICH DC serves a call, so
    // only call conservation is compared cross-run — but the concurrent
    // run's own hosting log must satisfy every single-run oracle.
    if (opts.run_concurrent && res.failures.empty()) {
      Exec conc(m, c, dp);
      HostingLog clog;
      const SimReport crep = sim.run_concurrent(
          m.db, conc.allocator(), c.options.freeze_delay_s,
          c.options.sim_threads, faults, c.options.bucket_s, &clog);
      if (crep.calls != rep.calls) {
        fail(res.failures, "seq-vs-concurrent",
             "concurrent run replayed " + std::to_string(crep.calls) +
                 " calls, sequential " + std::to_string(rep.calls));
      }
      bool server_outage = false;
      for (const fault::FaultEvent& e : c.faults) {
        server_outage |= e.kind == fault::FaultEvent::Kind::kServerDown;
      }
      if (!c.options.use_plan &&
          !(server_outage && m.world.server_count() > 0)) {
        // Plan-less decisions are per-call pure functions of health state,
        // so the two drivers must agree exactly on outcomes (buckets only
        // up to summation order). A server outage breaks this: which server
        // hosts a call depends on packer CAS interleaving, so a server
        // drain's spill/drop choices legitimately differ across drivers —
        // those cases are still covered by the per-run oracles below.
        if (crep.frozen != rep.frozen || crep.migrations != rep.migrations ||
            crep.dropped_calls != rep.dropped_calls ||
            crep.failover_migrations != rep.failover_migrations) {
          fail(res.failures, "seq-vs-concurrent",
               "plan-less concurrent run diverged: frozen " +
                   std::to_string(crep.frozen) + "/" +
                   std::to_string(rep.frozen) + " migrations " +
                   std::to_string(crep.migrations) + "/" +
                   std::to_string(rep.migrations) + " drops " +
                   std::to_string(crep.dropped_calls) + "/" +
                   std::to_string(rep.dropped_calls));
        }
        if (!buckets_close(crep.dc_cores_buckets, rep.dc_cores_buckets)) {
          fail(res.failures, "seq-vs-concurrent",
               "plan-less concurrent bucket series diverged");
        }
      }
      exactly_once_oracle(m, c, clog, res.failures);
      conservation_oracle(conc, crep, m.db.size(), res.failures);
      cluster_conservation_oracle(conc, c, res.failures);
      loop_replan_oracle(conc, res.failures);
      recount_oracle(m, c, crep, clog, "recount-concurrent", res.failures);
      server_conservation_oracle(conc, m, clog, res.failures);
      down_dc_oracle(m, c, clog, res.failures);
    }

    if (opts.run_lp_differential && c.options.use_plan &&
        res.failures.empty()) {
      lp_differential_oracle(m, c, *demand, res.failures);
    }

    if (opts.run_rebuild_storm && c.options.rebuild_storm &&
        ref.loop() == nullptr && res.failures.empty()) {
      // Loop cases skip the storm: the loop's last corrected capacities
      // need not cover the pre-loop demand matrix the storm rebuilds from.
      rebuild_storm_oracle(ref, m, c, *demand, res.failures);
    }
  } catch (const Error& e) {
    fail(res.failures, "exception", e.what());
  }
  if (opts.capture_flight && !res.ok()) {
    res.flight = obs::SpanRecorder::global().collect();
  }
  return res;
}

}  // namespace sb::check
