file(REMOVE_RECURSE
  "libsb_kvstore.a"
)
