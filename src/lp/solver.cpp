#include "lp/solver.h"

#include "lp/presolve.h"
#include "lp/revised_simplex.h"
#include "lp/standard_form.h"

namespace sb::lp {

Solution solve(const Model& model, const SolveOptions& options) {
  const Model* target = &model;
  PresolveResult pre;
  if (options.use_presolve) {
    pre = presolve(model);
    if (pre.infeasible) {
      Solution solution;
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    target = &pre.reduced;
  }
  const StandardForm sf = to_standard_form(*target);

  Method method = options.method;
  if (method == Method::kAuto) {
    method = sf.rows.size() >= 100 ? Method::kRevised : Method::kDense;
  }
  const SfSolution raw = method == Method::kDense ? solve_dense(sf, options)
                                                  : solve_revised(sf, options);

  Solution solution;
  solution.status = raw.status;
  solution.iterations = raw.iterations;
  if (raw.status == SolveStatus::kOptimal) {
    // Presolve preserves variable indices, so mapping back through the
    // reduced model's standard form lands in the original variable space.
    solution.values = map_back(sf, raw.values, model.variable_count());
    solution.objective = model.objective_value(solution.values);
  }
  return solution;
}

}  // namespace sb::lp
