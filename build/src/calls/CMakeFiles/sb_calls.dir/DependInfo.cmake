
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calls/acl.cpp" "src/calls/CMakeFiles/sb_calls.dir/acl.cpp.o" "gcc" "src/calls/CMakeFiles/sb_calls.dir/acl.cpp.o.d"
  "/root/repo/src/calls/call_config.cpp" "src/calls/CMakeFiles/sb_calls.dir/call_config.cpp.o" "gcc" "src/calls/CMakeFiles/sb_calls.dir/call_config.cpp.o.d"
  "/root/repo/src/calls/call_record.cpp" "src/calls/CMakeFiles/sb_calls.dir/call_record.cpp.o" "gcc" "src/calls/CMakeFiles/sb_calls.dir/call_record.cpp.o.d"
  "/root/repo/src/calls/demand.cpp" "src/calls/CMakeFiles/sb_calls.dir/demand.cpp.o" "gcc" "src/calls/CMakeFiles/sb_calls.dir/demand.cpp.o.d"
  "/root/repo/src/calls/io.cpp" "src/calls/CMakeFiles/sb_calls.dir/io.cpp.o" "gcc" "src/calls/CMakeFiles/sb_calls.dir/io.cpp.o.d"
  "/root/repo/src/calls/media.cpp" "src/calls/CMakeFiles/sb_calls.dir/media.cpp.o" "gcc" "src/calls/CMakeFiles/sb_calls.dir/media.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sb_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
