file(REMOVE_RECURSE
  "../bench/table3_provisioning"
  "../bench/table3_provisioning.pdb"
  "CMakeFiles/table3_provisioning.dir/table3_provisioning.cpp.o"
  "CMakeFiles/table3_provisioning.dir/table3_provisioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
