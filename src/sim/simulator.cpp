#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/timer.h"

namespace sb {

double SimReport::total_peak_cores() const {
  double acc = 0.0;
  for (double v : dc_peak_cores) acc += v;
  return acc;
}

double SimReport::total_peak_gbps() const {
  double acc = 0.0;
  for (double v : link_peak_gbps) acc += v;
  return acc;
}

namespace {

enum class EventType : std::uint8_t {
  kStart = 0,
  kLegJoin = 1,
  kMediaChange = 2,
  kFreeze = 3,
  kEnd = 4,
};

struct Event {
  SimTime time;
  std::uint64_t seq;  ///< tie-break so ordering is deterministic
  EventType type;
  std::size_t record;
  std::size_t leg;  ///< for kLegJoin

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Live per-call simulation state.
struct LiveCall {
  DcId dc;
  MediaType media = MediaType::kAudio;
  std::vector<CallLeg> joined;
  bool active = false;
};

/// Mutable usage counters with peak tracking.
class UsageTracker {
 public:
  UsageTracker(const EvalContext& ctx)
      : ctx_(ctx),
        dc_cores_(ctx.world->dc_count(), 0.0),
        dc_peaks_(ctx.world->dc_count(), 0.0),
        link_gbps_(ctx.topology->link_count(), 0.0),
        link_peaks_(ctx.topology->link_count(), 0.0) {}

  void add_leg(DcId dc, MediaType media, LocationId loc, double sign) {
    const double cores = ctx_.loads->cores_per_participant(media) * sign;
    dc_cores_[dc.value()] += cores;
    if (sign > 0) {
      dc_peaks_[dc.value()] =
          std::max(dc_peaks_[dc.value()], dc_cores_[dc.value()]);
    }
    const double gbps =
        ctx_.loads->mbps_per_participant(media) / kMbpsPerGbps * sign;
    const LocationId dc_loc = ctx_.world->datacenter(dc).location;
    for (LinkId l : ctx_.topology->path(dc_loc, loc)) {
      link_gbps_[l.value()] += gbps;
      if (sign > 0) {
        link_peaks_[l.value()] =
            std::max(link_peaks_[l.value()], link_gbps_[l.value()]);
      }
    }
  }

  void add_call(const LiveCall& call, double sign) {
    for (const CallLeg& leg : call.joined) {
      add_leg(call.dc, call.media, leg.location, sign);
    }
  }

  [[nodiscard]] const std::vector<double>& dc_peaks() const {
    return dc_peaks_;
  }
  [[nodiscard]] const std::vector<double>& link_peaks() const {
    return link_peaks_;
  }

 private:
  const EvalContext& ctx_;
  std::vector<double> dc_cores_;
  std::vector<double> dc_peaks_;
  std::vector<double> link_gbps_;
  std::vector<double> link_peaks_;
};

}  // namespace

/// Per-partition accumulator; one per driver thread, merged after the join.
struct Simulator::Partial {
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;
  std::uint64_t migrations = 0;
  double acl_sum = 0.0;
  std::uint64_t majority_first = 0;
  std::uint64_t peak_concurrent = 0;
  std::vector<double> dc_peaks;
  std::vector<double> link_peaks;

  void merge(const Partial& other) {
    calls += other.calls;
    frozen += other.frozen;
    migrations += other.migrations;
    acl_sum += other.acl_sum;
    majority_first += other.majority_first;
    // Peaks merge as sums of per-partition peaks: an upper bound on the
    // time-aligned peak (partitions replay without a shared clock).
    peak_concurrent += other.peak_concurrent;
    if (dc_peaks.empty()) dc_peaks.assign(other.dc_peaks.size(), 0.0);
    for (std::size_t i = 0; i < other.dc_peaks.size(); ++i) {
      dc_peaks[i] += other.dc_peaks[i];
    }
    if (link_peaks.empty()) link_peaks.assign(other.link_peaks.size(), 0.0);
    for (std::size_t i = 0; i < other.link_peaks.size(); ++i) {
      link_peaks[i] += other.link_peaks[i];
    }
  }
};

Simulator::Metrics::Metrics(const EvalContext& ctx)
    : calls(obs::MetricsRegistry::global().counter("sb.sim.calls")),
      frozen(obs::MetricsRegistry::global().counter("sb.sim.frozen")),
      migrations(obs::MetricsRegistry::global().counter("sb.sim.migrations")),
      acl_ms(obs::MetricsRegistry::global().histogram(
          "sb.sim.acl_ms", {.min = 0.1, .max = 1000.0, .bucket_count = 80})),
      run_s(obs::MetricsRegistry::global().histogram("sb.sim.run_s")),
      peak_concurrent_calls(obs::MetricsRegistry::global().gauge(
          "sb.sim.peak_concurrent_calls")) {
  require(ctx.world != nullptr, "Simulator: incomplete context");
  dc_peak_cores.reserve(ctx.world->dc_count());
  for (std::size_t x = 0; x < ctx.world->dc_count(); ++x) {
    dc_peak_cores.push_back(&obs::MetricsRegistry::global().gauge(
        "sb.sim.dc_peak_cores." + std::to_string(x)));
  }
}

Simulator::Simulator(EvalContext ctx) : ctx_(ctx), metrics_(ctx_) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "Simulator: incomplete context");
}

void Simulator::replay_partition(const CallRecordDatabase& db,
                                 CallAllocator& allocator,
                                 double freeze_delay_s,
                                 const std::vector<std::uint8_t>& mine,
                                 Partial& out) const {
  const auto& records = db.records();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (!mine[r]) continue;
    const CallRecord& rec = records[r];
    queue.push({rec.start_s, seq++, EventType::kStart, r, 0});
    for (std::size_t leg = 1; leg < rec.legs.size(); ++leg) {
      queue.push({rec.start_s + rec.legs[leg].join_offset_s, seq++,
                  EventType::kLegJoin, r, leg});
    }
    const CallConfig& config = ctx_.registry->get(rec.config);
    if (config.media() != MediaType::kAudio && rec.media_change_offset_s > 0.0) {
      queue.push({rec.start_s + rec.media_change_offset_s, seq++,
                  EventType::kMediaChange, r, 0});
    }
    if (rec.duration_s > freeze_delay_s) {
      queue.push({rec.start_s + freeze_delay_s, seq++, EventType::kFreeze, r,
                  0});
    }
    queue.push({rec.start_s + rec.duration_s, seq++, EventType::kEnd, r, 0});
  }

  UsageTracker usage(ctx_);
  std::vector<LiveCall> live(records.size());
  std::uint64_t concurrent = 0;

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    const CallRecord& rec = records[ev.record];
    const CallConfig& config = ctx_.registry->get(rec.config);
    LiveCall& call = live[ev.record];

    switch (ev.type) {
      case EventType::kStart: {
        const LocationId first = rec.legs.front().location;
        call.dc = allocator.on_call_start(rec.id, first, ev.time);
        // Media starts as audio when an upgrade event is pending, else at
        // the config's media type.
        call.media = rec.media_change_offset_s > 0.0 ? MediaType::kAudio
                                                     : config.media();
        call.joined = {rec.legs.front()};
        call.active = true;
        usage.add_leg(call.dc, call.media, first, +1.0);
        ++out.calls;
        if (first == config.majority_location()) ++out.majority_first;
        ++concurrent;
        out.peak_concurrent = std::max(out.peak_concurrent, concurrent);
        break;
      }
      case EventType::kLegJoin: {
        if (!call.active) break;  // leg joined after the call ended
        call.joined.push_back(rec.legs[ev.leg]);
        usage.add_leg(call.dc, call.media, rec.legs[ev.leg].location, +1.0);
        break;
      }
      case EventType::kMediaChange: {
        if (!call.active) break;
        usage.add_call(call, -1.0);
        call.media = config.media();
        usage.add_call(call, +1.0);
        break;
      }
      case EventType::kFreeze: {
        if (!call.active) break;
        ++out.frozen;
        const FreezeResult result =
            allocator.on_config_frozen(rec.id, config, ev.time);
        if (result.migrated) {
          ++out.migrations;
          usage.add_call(call, -1.0);
          call.dc = result.dc;
          usage.add_call(call, +1.0);
        }
        break;
      }
      case EventType::kEnd: {
        if (!call.active) break;
        usage.add_call(call, -1.0);
        call.active = false;
        allocator.on_call_end(rec.id, ev.time);
        const double final_acl_ms = acl_ms(config, call.dc, *ctx_.latency);
        out.acl_sum += final_acl_ms;
        metrics_.acl_ms.record(final_acl_ms);
        --concurrent;
        break;
      }
    }
  }

  out.dc_peaks = usage.dc_peaks();
  out.link_peaks = usage.link_peaks();
}

SimReport Simulator::finalize(const CallRecordDatabase& /*db*/,
                              CallAllocator& allocator,
                              const Partial& total) const {
  SimReport report;
  report.allocator = allocator.name();
  report.calls = total.calls;
  report.frozen = total.frozen;
  report.migrations = total.migrations;
  report.peak_concurrent_calls = total.peak_concurrent;
  report.migration_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(report.migrations) /
                static_cast<double>(report.calls);
  report.mean_acl_ms =
      report.calls == 0 ? 0.0
                        : total.acl_sum / static_cast<double>(report.calls);
  report.first_joiner_majority_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(total.majority_first) /
                static_cast<double>(report.calls);

  metrics_.calls.inc(report.calls);
  metrics_.frozen.inc(report.frozen);
  metrics_.migrations.inc(report.migrations);
  // One pass copies the realized peaks into the report and raises the
  // process-wide peak gauges (handles resolved at construction; no per-run
  // name lookups or second accounting loop).
  report.dc_peak_cores = total.dc_peaks;
  for (std::size_t x = 0; x < report.dc_peak_cores.size(); ++x) {
    metrics_.dc_peak_cores[x]->max_of(report.dc_peak_cores[x]);
  }
  report.link_peak_gbps = total.link_peaks;
  metrics_.peak_concurrent_calls.max_of(
      static_cast<double>(report.peak_concurrent_calls));
  return report;
}

SimReport Simulator::run(const CallRecordDatabase& db, CallAllocator& allocator,
                         double freeze_delay_s) const {
  require(freeze_delay_s > 0.0, "Simulator::run: freeze delay");
  obs::ScopedTimer run_timer(metrics_.run_s);
  Partial total;
  const std::vector<std::uint8_t> all(db.records().size(), 1);
  replay_partition(db, allocator, freeze_delay_s, all, total);
  return finalize(db, allocator, total);
}

SimReport Simulator::run_concurrent(const CallRecordDatabase& db,
                                    CallAllocator& allocator,
                                    double freeze_delay_s,
                                    std::size_t threads) const {
  require(freeze_delay_s > 0.0, "Simulator::run_concurrent: freeze delay");
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  obs::ScopedTimer run_timer(metrics_.run_s);
  const auto& records = db.records();

  // Partition by call shard: every event of a call replays on one thread,
  // which preserves per-call ordering (start < freeze < end) and gives the
  // controller's KV writes per-key last-writer-wins for free.
  std::vector<std::vector<std::uint8_t>> mine(
      threads, std::vector<std::uint8_t>(records.size(), 0));
  for (std::size_t r = 0; r < records.size(); ++r) {
    mine[records[r].id.value() % threads][r] = 1;
  }

  ThreadPool pool(threads);
  std::vector<std::future<Partial>> futures;
  futures.reserve(threads);
  for (std::size_t p = 0; p < threads; ++p) {
    futures.push_back(pool.submit([this, &db, &allocator, freeze_delay_s,
                                   part = &mine[p]] {
      Partial out;
      replay_partition(db, allocator, freeze_delay_s, *part, out);
      return out;
    }));
  }
  Partial total;
  for (auto& f : futures) total.merge(f.get());
  return finalize(db, allocator, total);
}

}  // namespace sb
