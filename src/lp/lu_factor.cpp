#include "lp/lu_factor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sb::lp {
namespace {

/// Threshold partial pivoting: a pinned (symbolically chosen) pivot is kept
/// only while it is within this factor of the column's largest candidate,
/// otherwise the numeric pass falls back to the largest entry.
constexpr double kPivotThreshold = 0.01;
/// Entries below this are numerically zero for pivoting purposes; a column
/// whose candidates are all below it is rejected as dependent.
constexpr double kPivotAbsTol = 1e-10;

}  // namespace

std::vector<int> LuFactor::factorize(
    const std::vector<const SparseCol*>& cols, std::size_t m) {
  m_ = m;
  const std::size_t k_cols = cols.size();
  l_.clear();
  u_.clear();
  l_.reserve(k_cols);
  u_.reserve(k_cols);
  eta_of_row_.assign(m, -1);
  unpivoted_rows_.clear();
  fill_nnz_ = 0;
  work_.resize(m);
  result_.resize(m);
  queued_.assign(m, 0);
  heap_.clear();

  // --- Symbolic Markowitz-style ordering: peel row/column singletons
  // (fill-free pivots), then sparsest-column-first for the nucleus.
  std::vector<std::vector<int>> rowlist(m);
  std::vector<int> colcount(k_cols, 0);
  std::vector<int> rowcount(m, 0);
  for (std::size_t p = 0; p < k_cols; ++p) {
    colcount[p] = static_cast<int>(cols[p]->size());
    for (const auto& [r, v] : *cols[p]) {
      rowlist[r].push_back(static_cast<int>(p));
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    rowcount[r] = static_cast<int>(rowlist[r].size());
  }
  std::vector<unsigned char> col_active(k_cols, 1);
  std::vector<unsigned char> row_active(m, 1);
  std::vector<int> col_queue;
  std::vector<int> row_queue;
  for (std::size_t p = 0; p < k_cols; ++p) {
    if (colcount[p] == 1) col_queue.push_back(static_cast<int>(p));
  }
  for (std::size_t r = 0; r < m; ++r) {
    if (rowcount[r] == 1) row_queue.push_back(static_cast<int>(r));
  }

  std::vector<std::pair<int, int>> order;  ///< (position, pinned row or -1)
  order.reserve(k_cols);
  auto symbolic_pivot = [&](int p, int r) {
    order.emplace_back(p, r);
    col_active[p] = 0;
    row_active[r] = 0;
    for (const auto& [r2, v2] : *cols[p]) {
      if (!row_active[r2]) continue;
      if (--rowcount[r2] == 1) row_queue.push_back(static_cast<int>(r2));
    }
    for (int p2 : rowlist[r]) {
      if (!col_active[p2]) continue;
      if (--colcount[p2] == 1) col_queue.push_back(p2);
    }
  };
  while (true) {
    if (!col_queue.empty()) {
      const int p = col_queue.back();
      col_queue.pop_back();
      if (!col_active[p] || colcount[p] != 1) continue;
      int pin = -1;
      for (const auto& [r, v] : *cols[p]) {
        if (row_active[r]) {
          pin = static_cast<int>(r);
          break;
        }
      }
      if (pin >= 0) symbolic_pivot(p, pin);
      continue;
    }
    if (!row_queue.empty()) {
      const int r = row_queue.back();
      row_queue.pop_back();
      if (!row_active[r] || rowcount[r] != 1) continue;
      int pin = -1;
      for (int p : rowlist[r]) {
        if (col_active[p]) {
          pin = p;
          break;
        }
      }
      if (pin >= 0) symbolic_pivot(pin, r);
      continue;
    }
    break;
  }
  std::vector<int> nucleus;
  for (std::size_t p = 0; p < k_cols; ++p) {
    if (col_active[p]) nucleus.push_back(static_cast<int>(p));
  }
  std::stable_sort(nucleus.begin(), nucleus.end(),
                   [&](int a, int b) { return colcount[a] < colcount[b]; });
  for (int p : nucleus) order.emplace_back(p, -1);

  // --- Numeric left-looking pass in the symbolic order.
  std::vector<int> rejected;
  for (const auto& [pos, pinned] : order) {
    const SparseCol& col = *cols[static_cast<std::size_t>(pos)];
    work_.clear();
    for (const auto& [r, v] : col) work_.add(static_cast<int>(r), v);
    apply_l(work_);

    // Split the transformed column into U entries (pivoted rows) and pivot
    // candidates (unpivoted rows).
    double best_abs = 0.0;
    int best_row = -1;
    for (int i : work_.nz) {
      const double v = work_.values[static_cast<std::size_t>(i)];
      if (v == 0.0 || eta_of_row_[static_cast<std::size_t>(i)] >= 0) continue;
      const double a = std::abs(v);
      if (a > best_abs) {
        best_abs = a;
        best_row = i;
      }
    }
    if (best_abs <= kPivotAbsTol) {
      rejected.push_back(pos);
      continue;
    }
    int pivot_row = best_row;
    if (pinned >= 0 && eta_of_row_[static_cast<std::size_t>(pinned)] < 0) {
      const double pv =
          std::abs(work_.values[static_cast<std::size_t>(pinned)]);
      if (pv > kPivotAbsTol && pv >= kPivotThreshold * best_abs) {
        pivot_row = pinned;
      }
    }

    const double diag = work_.values[static_cast<std::size_t>(pivot_row)];
    const int k = static_cast<int>(l_.size());
    UCol ucol;
    ucol.position = pos;
    ucol.pivot_row = pivot_row;
    ucol.diag = diag;
    LEta eta;
    eta.pivot_row = pivot_row;
    const double inv = 1.0 / diag;
    for (int i : work_.nz) {
      const double v = work_.values[static_cast<std::size_t>(i)];
      if (v == 0.0 || i == pivot_row) continue;
      const int prev = eta_of_row_[static_cast<std::size_t>(i)];
      if (prev >= 0) {
        ucol.entries.emplace_back(prev, v);
      } else {
        eta.entries.emplace_back(i, v * inv);
      }
    }
    fill_nnz_ += ucol.entries.size() + eta.entries.size() + 1;
    u_.push_back(std::move(ucol));
    l_.push_back(std::move(eta));
    eta_of_row_[static_cast<std::size_t>(pivot_row)] = k;
  }
  work_.clear();

  for (std::size_t r = 0; r < m; ++r) {
    if (eta_of_row_[r] < 0) unpivoted_rows_.push_back(static_cast<int>(r));
  }
  std::sort(rejected.begin(), rejected.end());
  gwork_.assign(l_.size(), 0.0);
  return rejected;
}

/// Applies the L etas reachable from x's pattern, in pivot order, via a
/// min-heap worklist (Gilbert-Peierls-style sparse lower solve).
void LuFactor::apply_l(IndexedVector& x) const {
  auto push = [&](int k) {
    if (queued_[static_cast<std::size_t>(k)]) return;
    queued_[static_cast<std::size_t>(k)] = 1;
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  };
  for (int r : x.nz) {
    const int k = eta_of_row_[static_cast<std::size_t>(r)];
    if (k >= 0 && x.values[static_cast<std::size_t>(r)] != 0.0) push(k);
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int k = heap_.back();
    heap_.pop_back();
    queued_[static_cast<std::size_t>(k)] = 0;
    const LEta& eta = l_[static_cast<std::size_t>(k)];
    const double t = x.values[static_cast<std::size_t>(eta.pivot_row)];
    if (t == 0.0) continue;
    for (const auto& [i, l] : eta.entries) {
      x.add(i, -l * t);
      if (x.values[static_cast<std::size_t>(i)] == 0.0) continue;
      const int k2 = eta_of_row_[static_cast<std::size_t>(i)];
      if (k2 > k) push(k2);
    }
  }
}

void LuFactor::ftran(IndexedVector& x) const {
  apply_l(x);
  // U backsolve, pivots in reverse order; result lands in position space.
  result_.clear();
  for (std::size_t k = u_.size(); k-- > 0;) {
    const UCol& uc = u_[k];
    const double xr = x.values[static_cast<std::size_t>(uc.pivot_row)];
    if (xr == 0.0) continue;
    const double z = xr / uc.diag;
    result_.set(uc.position, z);
    for (const auto& [j, uv] : uc.entries) {
      x.add(u_[static_cast<std::size_t>(j)].pivot_row, -uv * z);
    }
  }
  x.clear();
  std::swap(x, result_);
}

void LuFactor::btran(IndexedVector& x) const {
  // U^T forward solve into gwork_ (indexed by pivot order).
  const std::size_t kp = u_.size();
  for (std::size_t k = 0; k < kp; ++k) {
    const UCol& uc = u_[k];
    double acc = x.values[static_cast<std::size_t>(uc.position)];
    for (const auto& [j, uv] : uc.entries) {
      const double g = gwork_[static_cast<std::size_t>(j)];
      if (g != 0.0) acc -= uv * g;
    }
    gwork_[k] = acc == 0.0 ? 0.0 : acc / uc.diag;
  }
  // Scatter into row space and apply L^T etas in reverse order.
  x.clear();
  for (std::size_t k = 0; k < kp; ++k) {
    if (gwork_[k] != 0.0) x.set(u_[k].pivot_row, gwork_[k]);
    gwork_[k] = 0.0;
  }
  for (std::size_t k = kp; k-- > 0;) {
    const LEta& eta = l_[k];
    double acc = x.values[static_cast<std::size_t>(eta.pivot_row)];
    bool any = acc != 0.0;
    for (const auto& [i, l] : eta.entries) {
      const double v = x.values[static_cast<std::size_t>(i)];
      if (v != 0.0) {
        acc -= l * v;
        any = true;
      }
    }
    if (any) x.set(eta.pivot_row, acc);
  }
}

}  // namespace sb::lp
