#include "obs/snapshot.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"

namespace sb::obs {

namespace {

template <typename Sample>
const Sample* find_by_name(const std::vector<Sample>& samples,
                           std::string_view name) {
  const auto it = std::find_if(
      samples.begin(), samples.end(),
      [name](const Sample& sample) { return sample.name == name; });
  return it == samples.end() ? nullptr : &*it;
}

/// Shortest round-trippable formatting (JSON has no fixed precision).
std::string format_number(double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name,
                                             std::uint64_t fallback) const {
  const CounterSample* sample = find_counter(name);
  return sample == nullptr ? fallback : sample->value;
}

void MetricsSnapshot::write_csv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.write_row({"kind", "name", "value", "count", "sum", "mean", "min",
                    "max", "p50", "p90", "p99"});
  for (const CounterSample& c : counters) {
    writer.write_row({"counter", c.name, std::to_string(c.value), "", "", "",
                      "", "", "", "", ""});
  }
  for (const GaugeSample& g : gauges) {
    writer.write_row({"gauge", g.name, format_number(g.value), "", "", "", "",
                      "", "", "", ""});
  }
  for (const HistogramSample& h : histograms) {
    writer.write_row({"histogram", h.name, "", std::to_string(h.data.count),
                      format_number(h.data.sum), format_number(h.data.mean()),
                      format_number(h.data.min), format_number(h.data.max),
                      format_number(h.data.p50()), format_number(h.data.p90()),
                      format_number(h.data.p99())});
  }
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(counters[i].name)
        << "\": " << counters[i].value;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(gauges[i].name)
        << "\": " << format_number(gauges[i].value);
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& d = histograms[i].data;
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(histograms[i].name) << "\": {\"count\": " << d.count
        << ", \"sum\": " << format_number(d.sum)
        << ", \"mean\": " << format_number(d.mean())
        << ", \"min\": " << format_number(d.min)
        << ", \"max\": " << format_number(d.max)
        << ", \"p50\": " << format_number(d.p50())
        << ", \"p90\": " << format_number(d.p90())
        << ", \"p99\": " << format_number(d.p99()) << "}";
  }
  out << "\n  }\n}\n";
}

MetricsSnapshot snapshot_diff(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.counters.reserve(after.counters.size());
  for (const CounterSample& a : after.counters) {
    const CounterSample* b = before.find_counter(a.name);
    const std::uint64_t base = b == nullptr ? 0 : b->value;
    require(a.value >= base, "snapshot_diff: counter went backwards");
    out.counters.push_back({a.name, a.value - base});
  }
  out.gauges = after.gauges;
  out.histograms.reserve(after.histograms.size());
  for (const HistogramSample& a : after.histograms) {
    const HistogramSample* b = before.find_histogram(a.name);
    out.histograms.push_back(
        {a.name, b == nullptr ? a.data : histogram_diff(b->data, a.data)});
  }
  return out;
}

}  // namespace sb::obs
