# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geo")
subdirs("calls")
subdirs("lp")
subdirs("trace")
subdirs("forecast")
subdirs("baselines")
subdirs("core")
subdirs("sim")
subdirs("kvstore")
subdirs("predict")
