// Open-addressing hash table keyed by a StrongId, used on the selector's
// per-shard hot path. std::unordered_map costs one node allocation per
// insert and a pointer chase per lookup; at simulator replay rates (three
// map operations per call) that is the dominant shard cost. FlatIdMap keeps
// entries inline in one slot array with linear probing and backward-shift
// deletion — no tombstones, no per-entry allocation, and lookups touch one
// cache line at typical load.
//
// API is the std::unordered_map subset the selector uses: emplace / find /
// erase(iterator) / range-for / size / clear. Iterators are invalidated by
// emplace (rehash) and by erase of ANY key (backward shift moves entries);
// callers must re-find after either, which the selector already does.
// Not internally synchronized — callers hold the owning shard's lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sb {

template <typename Key, typename Value>
class FlatIdMap {
 public:
  using Entry = std::pair<Key, Value>;

  FlatIdMap() { rehash(kMinCapacity); }

  class iterator {
   public:
    iterator(FlatIdMap* map, std::size_t index, bool skip)
        : map_(map), index_(index) {
      if (skip) advance();
    }
    Entry& operator*() const { return map_->slots_[index_]; }
    Entry* operator->() const { return &map_->slots_[index_]; }
    iterator& operator++() {
      ++index_;
      advance();
      return *this;
    }
    friend bool operator==(const iterator&, const iterator&) = default;
    [[nodiscard]] std::size_t index() const { return index_; }

   private:
    void advance() {
      while (index_ < map_->slots_.size() && !map_->full_[index_]) ++index_;
    }
    FlatIdMap* map_;
    std::size_t index_;
  };

  class const_iterator {
   public:
    const_iterator(const FlatIdMap* map, std::size_t index, bool skip)
        : map_(map), index_(index) {
      if (skip) advance();
    }
    const Entry& operator*() const { return map_->slots_[index_]; }
    const Entry* operator->() const { return &map_->slots_[index_]; }
    const_iterator& operator++() {
      ++index_;
      advance();
      return *this;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) =
        default;

   private:
    void advance() {
      while (index_ < map_->slots_.size() && !map_->full_[index_]) ++index_;
    }
    const FlatIdMap* map_;
    std::size_t index_;
  };

  [[nodiscard]] iterator begin() { return {this, 0, true}; }
  [[nodiscard]] iterator end() { return {this, slots_.size(), false}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0, true}; }
  [[nodiscard]] const_iterator end() const {
    return {this, slots_.size(), false};
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Inserts unless the key is present; {slot, inserted} like the std map.
  std::pair<iterator, bool> emplace(Key key, Value value) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    std::size_t i = home_of(key);
    while (full_[i]) {
      if (slots_[i].first == key) return {iterator(this, i, false), false};
      i = (i + 1) & mask_;
    }
    full_[i] = 1;
    slots_[i] = Entry{key, std::move(value)};
    ++size_;
    return {iterator(this, i, false), true};
  }

  [[nodiscard]] iterator find(Key key) {
    std::size_t i = home_of(key);
    while (full_[i]) {
      if (slots_[i].first == key) return {this, i, false};
      i = (i + 1) & mask_;
    }
    return end();
  }
  [[nodiscard]] const_iterator find(Key key) const {
    std::size_t i = home_of(key);
    while (full_[i]) {
      if (slots_[i].first == key) return {this, i, false};
      i = (i + 1) & mask_;
    }
    return end();
  }

  /// Backward-shift deletion: every displaced entry between the hole and
  /// the next empty slot that may legally move up does, so probe chains
  /// stay unbroken without tombstones.
  void erase(iterator it) {
    std::size_t hole = it.index();
    std::size_t probe = hole;
    for (;;) {
      probe = (probe + 1) & mask_;
      if (!full_[probe]) break;
      const std::size_t home = home_of(slots_[probe].first);
      // The entry at `probe` may fill `hole` iff its home precedes or
      // equals the hole along the cyclic probe path ending at `probe`.
      if (((probe - home) & mask_) >= ((probe - hole) & mask_)) {
        slots_[hole] = std::move(slots_[probe]);
        hole = probe;
      }
    }
    slots_[hole] = Entry{};
    full_[hole] = 0;
    --size_;
  }

  void clear() {
    slots_.assign(slots_.size(), Entry{});
    full_.assign(full_.size(), 0);
    size_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t home_of(Key key) const {
    // Fibonacci hashing spreads the dense id range across the table.
    const auto h =
        static_cast<std::uint64_t>(key.value()) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  void rehash(std::size_t capacity) {
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    slots_.assign(capacity, Entry{});
    full_.assign(capacity, 0);
    mask_ = capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_full[i]) continue;
      std::size_t j = home_of(old_slots[i].first);
      while (full_[j]) j = (j + 1) & mask_;
      full_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<Entry> slots_;
  std::vector<std::uint8_t> full_;  ///< 1 = slot occupied
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sb
