// Tests for the sb_check fuzzing stack: JSON canonical round-trips, fuzzer
// determinism, clean runs over fuzzed seeds, oracle sensitivity (the
// planted chaos bug MUST be caught, shrunk small, and replay from a repro
// file), the independent bucket recount, and the validate_solution /
// FaultSchedule hooks the suite leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "check/fuzzer.h"
#include "check/json.h"
#include "check/oracles.h"
#include "check/shrink.h"
#include "common/error.h"
#include "core/realtime.h"
#include "fault/health_table.h"
#include "lp/solver.h"
#include "sim/allocator.h"
#include "sim/simulator.h"

namespace sb::check {
namespace {

TEST(JsonTest, RoundTripsValuesCanonically) {
  Json::Object o;
  o["b"] = true;
  o["n"] = 42.5;
  o["i"] = std::uint64_t{1234567890123};
  o["s"] = "hello \"world\"\n\t";
  Json::Array arr;
  arr.emplace_back(1);
  arr.emplace_back(nullptr);
  arr.emplace_back("x");
  o["a"] = Json(std::move(arr));
  const Json v(std::move(o));
  const std::string text = v.dump(2);
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed, v);
  // Canonical: dump(parse(dump(v))) is byte-identical (sorted keys, stable
  // number formatting).
  EXPECT_EQ(parsed.dump(2), text);
  EXPECT_EQ(parsed.get("i").as_u64(), 1234567890123ULL);
  EXPECT_EQ(parsed.get("s").as_string(), "hello \"world\"\n\t");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW((void)Json(1.0).as_string(), InvalidArgument);
}

TEST(FuzzerTest, GenerationIsDeterministic) {
  const ScenarioFuzzer fuzzer;
  const FuzzCase a = fuzzer.generate(7);
  const FuzzCase b = fuzzer.generate(7);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  const FuzzCase c = fuzzer.generate(8);
  EXPECT_NE(a.to_json().dump(), c.to_json().dump());
}

TEST(FuzzerTest, CaseSurvivesJsonRoundTrip) {
  const FuzzCase a = ScenarioFuzzer().generate(3);
  const FuzzCase b = FuzzCase::from_json(Json::parse(a.to_json().dump(2)));
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  // And the round-tripped case materializes to the same world/trace shape.
  const auto ma = a.materialize();
  const auto mb = b.materialize();
  EXPECT_EQ(ma->world.dc_count(), mb->world.dc_count());
  EXPECT_EQ(ma->db.size(), mb->db.size());
  EXPECT_EQ(ma->faults.size(), mb->faults.size());
}

TEST(RunCaseTest, FuzzedSeedsPassAllOracles) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const FuzzCase c = fuzzer.generate(seed);
    const CheckResult r = run_case(c);
    if (r.provision_infeasible) continue;
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.summary();
  }
}

TEST(RunCaseTest, ReplayOfSameCaseIsDeterministic) {
  const FuzzCase c = ScenarioFuzzer().generate(11);
  const CheckResult a = run_case(c);
  const CheckResult b = run_case(c);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.failover_moves, b.failover_moves);
}

// The acceptance-criteria test: planting the drain-credit leak must be
// caught by the conservation oracle within a few seeds, shrink to a small
// scenario, and the written repro must deterministically replay the
// failure after a file round-trip.
TEST(ChaosTest, PlantedDrainCreditLeakIsCaughtShrunkAndReplayable) {
  FuzzerParams params;
  params.chaos_skip_drain_credit = true;
  const ScenarioFuzzer fuzzer(params);
  FuzzCase failing;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 64 && !found; ++seed) {
    const FuzzCase c = fuzzer.generate(seed);
    const CheckResult r = run_case(c);
    if (r.provision_infeasible || r.ok()) continue;
    EXPECT_EQ(r.first_oracle(), "conservation") << r.summary();
    failing = c;
    found = true;
  }
  ASSERT_TRUE(found) << "planted bug not detected within 64 seeds";

  const ShrinkResult s = shrink_case(failing);
  EXPECT_EQ(s.oracle, "conservation");
  EXPECT_LE(s.best.calls.size(), 20u);
  EXPECT_LE(s.best.world.dcs.size(), 4u);
  EXPECT_GT(s.successes, 0u);

  const std::string path =
      (std::filesystem::temp_directory_path() / "sb_check_chaos_repro.json")
          .string();
  write_repro(s.best, path);
  const FuzzCase reloaded = load_repro(path);
  const CheckResult replay = run_case(reloaded);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.first_oracle(), "conservation") << replay.summary();
  std::remove(path.c_str());
}

TEST(FuzzerTest, WorkerKillStormForcesClusterCasesThatRoundTrip) {
  FuzzerParams params;
  params.worker_kill_storm = true;
  const ScenarioFuzzer fuzzer(params);
  bool saw_cluster = false;
  for (std::uint64_t seed = 0; seed < 12 && !saw_cluster; ++seed) {
    const FuzzCase c = fuzzer.generate(seed);
    if (c.options.workers == 0) continue;  // storms only apply to plan cases
    saw_cluster = true;
    EXPECT_TRUE(c.options.use_plan);
    EXPECT_GE(c.options.lease_ttl_s, 20.0);
    std::size_t kills = 0;
    double last_t = -1.0;
    for (const auto& e : c.faults) {
      EXPECT_GE(e.time, last_t);  // oracles require time-sorted schedules
      last_t = e.time;
      if (e.kind == fault::FaultEvent::Kind::kWorkerDown) {
        ++kills;
        EXPECT_TRUE(e.worker.valid());
        EXPECT_LT(e.worker.value(), c.options.workers);
      }
    }
    EXPECT_GE(kills, 3u);  // storm mode draws 3-6 kill/restart pairs

    // Worker fault events (kinds 6/7 with a worker index) survive the JSON
    // repro round trip byte-for-byte.
    const FuzzCase back = FuzzCase::from_json(Json::parse(c.to_json().dump()));
    EXPECT_EQ(c.to_json().dump(), back.to_json().dump());
    EXPECT_EQ(back.options.workers, c.options.workers);
  }
  EXPECT_TRUE(saw_cluster) << "no cluster case generated within 12 seeds";
}

// Satellite acceptance for the cluster fuzzing integration: the planted
// WAL bug (freeze not re-imaged, so crash replay resurrects the pre-freeze
// row and the end event credits nothing) must be caught by the
// conservation oracle, and ddmin must shrink the WORKER-KILL schedule too
// — dropping kill/restart events and workers (with renumbering) the same
// way it drops servers — while keeping the failure alive.
TEST(ChaosTest, PlantedWalFreezeSkipIsCaughtAndWorkerScheduleShrinks) {
  FuzzerParams params;
  params.chaos_skip_wal_freeze = true;
  const ScenarioFuzzer fuzzer(params);
  FuzzCase failing;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 64 && !found; ++seed) {
    const FuzzCase c = fuzzer.generate(seed);
    if (c.options.workers == 0) continue;
    const CheckResult r = run_case(c);
    if (r.provision_infeasible || r.ok()) continue;
    EXPECT_EQ(r.first_oracle(), "conservation") << r.summary();
    failing = c;
    found = true;
  }
  ASSERT_TRUE(found) << "planted WAL bug not detected within 64 seeds";

  const ShrinkResult s = shrink_case(failing);
  EXPECT_EQ(s.oracle, "conservation");
  EXPECT_GT(s.successes, 0u);

  // The bug needs a cluster and at least one kill to fire, so the shrinker
  // cannot remove them — but it must have squeezed the schedule down to
  // (near) that minimum, with every surviving worker index in range.
  EXPECT_GE(s.best.options.workers, 1u);
  EXPECT_LE(s.best.options.workers, failing.options.workers);
  std::size_t kills = 0;
  std::size_t worker_events = 0;
  for (const auto& e : s.best.faults) {
    if (!e.is_worker()) continue;
    ++worker_events;
    EXPECT_TRUE(e.worker.valid());
    EXPECT_LT(e.worker.value(), s.best.options.workers);
    if (e.kind == fault::FaultEvent::Kind::kWorkerDown) ++kills;
  }
  EXPECT_GE(kills, 1u);
  EXPECT_LE(worker_events, 4u) << "worker schedule not minimized";
  EXPECT_LE(s.best.calls.size(), 20u);

  // The shrunk repro still replays the failure after a file round trip.
  const std::string path =
      (std::filesystem::temp_directory_path() / "sb_check_wal_repro.json")
          .string();
  write_repro(s.best, path);
  const CheckResult replay = run_case(load_repro(path));
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.first_oracle(), "conservation") << replay.summary();
  std::remove(path.c_str());
}

// Healthy cluster cases (kills but no planted bug) must sail through every
// oracle, including the cluster-conservation oracle's effective-transition
// recount and WAL-quiescence checks.
TEST(RunCaseTest, WorkerKillStormSeedsPassAllOracles) {
  FuzzerParams params;
  params.worker_kill_storm = true;
  const ScenarioFuzzer fuzzer(params);
  std::size_t cluster_runs = 0;
  for (std::uint64_t seed = 0; seed < 10 && cluster_runs < 3; ++seed) {
    const FuzzCase c = fuzzer.generate(seed);
    if (c.options.workers == 0) continue;
    const CheckResult r = run_case(c);
    if (r.provision_infeasible) continue;
    ++cluster_runs;
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.summary();
  }
  EXPECT_GT(cluster_runs, 0u) << "no feasible cluster case within 10 seeds";
}

TEST(ShrinkTest, RejectsPassingCase) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const FuzzCase c = fuzzer.generate(seed);
    if (run_case(c).ok()) {
      EXPECT_THROW((void)shrink_case(c), InvalidArgument);
      return;
    }
  }
  FAIL() << "no passing seed found to shrink";
}

// The recount oracle's sensitivity: an honest hosting log reproduces the
// tracker's bucket series; a tampered one (one hosting decision re-pointed
// to a different DC) must not.
TEST(RecountTest, MatchesTrackerAndDetectsTampering) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    FuzzCase c = fuzzer.generate(seed);
    if (c.calls.empty() || c.world.dcs.size() < 2) continue;
    c.options.use_plan = false;  // drive the plain selector path directly
    c.options.rebuild_storm = false;
    const auto m = c.materialize();
    fault::HealthTable health(m->world.dc_count(), m->topology.link_count());
    RealtimeOptions ropts;
    ropts.freeze_delay_s = c.options.freeze_delay_s;
    RealtimeSelector selector(m->ctx(), nullptr, ropts, 0.0, &health);
    SwitchboardAllocator alloc(selector, &health);
    const Simulator sim(m->ctx());
    HostingLog log;
    const SimReport rep =
        sim.run(m->db, alloc, c.options.freeze_delay_s,
                m->faults.empty() ? nullptr : &m->faults, c.options.bucket_s,
                &log);
    ASSERT_FALSE(log.events.empty());
    std::size_t buckets = 0;
    for (const auto& row : rep.dc_cores_buckets) {
      buckets = std::max(buckets, row.size());
    }
    const auto honest =
        recount_dc_buckets(*m, log, c.options.bucket_s, buckets);
    ASSERT_EQ(honest.size(), rep.dc_cores_buckets.size());
    double max_err = 0.0;
    double peak = 0.0;
    for (std::size_t x = 0; x < honest.size(); ++x) {
      for (std::size_t b = 0; b < buckets; ++b) {
        const double h = b < honest[x].size() ? honest[x][b] : 0.0;
        const double t = b < rep.dc_cores_buckets[x].size()
                             ? rep.dc_cores_buckets[x][b]
                             : 0.0;
        max_err = std::max(max_err, std::abs(h - t));
        peak = std::max(peak, t);
      }
    }
    EXPECT_LE(max_err, 1e-6 * std::max(1.0, peak)) << "seed " << seed;
    if (peak == 0.0) continue;  // no load: tampering would be invisible

    HostingLog tampered = log;
    bool flipped = false;
    for (HostingEvent& e : tampered.events) {
      if (e.kind != HostingEvent::Kind::kStart) continue;
      e.dc = DcId(e.dc.value() == 0 ? 1 : 0);
      flipped = true;
      break;
    }
    ASSERT_TRUE(flipped);
    const auto forged =
        recount_dc_buckets(*m, tampered, c.options.bucket_s, buckets);
    double tamper_err = 0.0;
    for (std::size_t x = 0; x < forged.size(); ++x) {
      for (std::size_t b = 0; b < buckets; ++b) {
        const double f = b < forged[x].size() ? forged[x][b] : 0.0;
        const double t = b < rep.dc_cores_buckets[x].size()
                             ? rep.dc_cores_buckets[x][b]
                             : 0.0;
        tamper_err = std::max(tamper_err, std::abs(f - t));
      }
    }
    EXPECT_GT(tamper_err, 1e-3) << "seed " << seed;
    return;  // one full scenario exercised is enough
  }
  FAIL() << "no suitable seed (>= 2 DCs, non-empty trace) found";
}

// The full-solution validate_solution overload the LP feasibility oracle
// builds on: optimal solutions validate, corrupted ones do not.
TEST(ValidateSolutionTest, ChecksValuesAndReportedObjective) {
  lp::Model model;
  const int x = model.add_variable(0.0, lp::kInf, 1.0, "x");
  const int y = model.add_variable(0.0, lp::kInf, 2.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::kGe, 4.0, "cover");
  lp::Solution sol = lp::solve(model);
  ASSERT_TRUE(sol.optimal());
  EXPECT_TRUE(lp::validate_solution(model, sol).feasible);

  lp::Solution wrong_values = sol;
  wrong_values.values[static_cast<std::size_t>(x)] = 0.0;
  wrong_values.values[static_cast<std::size_t>(y)] = 0.0;
  EXPECT_FALSE(lp::validate_solution(model, wrong_values).feasible);

  lp::Solution wrong_objective = sol;
  wrong_objective.objective += 1.0;
  EXPECT_FALSE(lp::validate_solution(model, wrong_objective).feasible);
}

TEST(FaultScheduleTest, FromEventsRoundTripsEventOrder) {
  fault::FaultSchedule sched;
  sched.fail_dc(DcId(1), 100.0, 50.0);
  sched.fail_link(LinkId(0), 120.0, 30.0);
  const std::vector<fault::FaultEvent> events = sched.events();
  const fault::FaultSchedule rebuilt = fault::FaultSchedule::from_events(events);
  const std::vector<fault::FaultEvent> round = rebuilt.events();
  ASSERT_EQ(round.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(round[i].time, events[i].time);
    EXPECT_EQ(round[i].kind, events[i].kind);
    EXPECT_EQ(round[i].dc, events[i].dc);
    EXPECT_EQ(round[i].link, events[i].link);
  }
}

}  // namespace
}  // namespace sb::check
