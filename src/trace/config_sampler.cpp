#include "trace/config_sampler.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace sb {

double ConfigUniverse::total_base_rate() const {
  double acc = 0.0;
  for (const ConfigUsage& u : configs) acc += u.base_rate_per_hour;
  return acc;
}

namespace {

MediaType sample_media(const UniverseParams& params, Rng& rng) {
  const double u = rng.uniform();
  if (u < params.media_probs[0]) return MediaType::kAudio;
  if (u < params.media_probs[0] + params.media_probs[1]) {
    return MediaType::kScreenShare;
  }
  return MediaType::kVideo;
}

/// Total participants: 2 + Geometric(p), capped.
std::uint32_t sample_size(const UniverseParams& params, Rng& rng) {
  std::uint32_t extra = 0;
  while (!rng.chance(params.size_geometric_p) &&
         2 + extra < params.max_participants) {
    ++extra;
  }
  return 2 + extra;
}

CallConfig sample_config(const World& world, const UniverseParams& params,
                         const std::vector<double>& location_weights,
                         Rng& rng) {
  const std::uint32_t total = sample_size(params, rng);
  const auto home = LocationId(
      static_cast<std::uint32_t>(rng.weighted_index(location_weights)));
  std::vector<ConfigEntry> entries;
  if (!rng.chance(params.multi_country_prob) || total < 3 ||
      world.location_count() < 2) {
    entries.push_back({home, total});
  } else {
    // Majority stays home (60-85%); the rest spread over 1-3 other
    // countries sampled by population.
    const auto majority = std::max<std::uint32_t>(
        total / 2 + 1,
        static_cast<std::uint32_t>(total * rng.uniform(0.60, 0.85)));
    entries.push_back({home, std::min(majority, total - 1)});
    std::uint32_t remaining = total - entries[0].count;
    const std::uint32_t groups =
        std::min<std::uint32_t>(1 + static_cast<std::uint32_t>(
                                        rng.uniform_index(3)),
                                remaining);
    for (std::uint32_t g = 0; g < groups && remaining > 0; ++g) {
      LocationId other;
      do {
        other = LocationId(static_cast<std::uint32_t>(
            rng.weighted_index(location_weights)));
      } while (other == home);
      const std::uint32_t take =
          g + 1 == groups
              ? remaining
              : 1 + static_cast<std::uint32_t>(rng.uniform_index(remaining));
      entries.push_back({other, take});
      remaining -= take;
    }
  }
  return CallConfig::make(std::move(entries), sample_media(params, rng));
}

}  // namespace

ConfigUniverse sample_universe(const World& world, CallConfigRegistry& registry,
                               const UniverseParams& params, Rng& rng) {
  require(params.config_count > 0, "sample_universe: empty universe");
  require(world.location_count() > 0, "sample_universe: empty world");

  std::vector<double> weights;
  weights.reserve(world.location_count());
  for (const Location& loc : world.locations()) {
    weights.push_back(loc.population_weight);
  }

  // Zipf mass over popularity ranks; rank r's config gets pmf(r) of the
  // total rate. Duplicate configs merge their rates.
  const ZipfSampler zipf(params.config_count, params.zipf_exponent);
  std::unordered_map<ConfigId, std::size_t> index_of;
  ConfigUniverse universe;
  for (std::size_t rank = 0; rank < params.config_count; ++rank) {
    const CallConfig config = sample_config(world, params, weights, rng);
    const ConfigId id = registry.intern(config);
    const double rate = params.total_peak_rate_per_hour * zipf.pmf(rank);
    auto [it, inserted] = index_of.try_emplace(id, universe.configs.size());
    if (inserted) {
      universe.configs.push_back(
          ConfigUsage{id, rate,
                      rng.uniform(params.growth_min, params.growth_max),
                      config.majority_location()});
    } else {
      universe.configs[it->second].base_rate_per_hour += rate;
    }
  }
  // Keep ranks sorted by rate descending (ranks may have merged). The
  // ConfigId tie-break makes this a strict total order: equal-rate entries
  // (common with zipf_exponent near 0) would otherwise land in an
  // implementation-defined order — std::sort is unstable and the entries
  // arrive in unordered_map insertion order — so the sampled trace would
  // differ across standard libraries for the same seed.
  std::sort(universe.configs.begin(), universe.configs.end(),
            [](const ConfigUsage& a, const ConfigUsage& b) {
              if (a.base_rate_per_hour != b.base_rate_per_hour) {
                return a.base_rate_per_hour > b.base_rate_per_hour;
              }
              return a.config < b.config;
            });
  return universe;
}

}  // namespace sb
